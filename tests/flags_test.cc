#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "paris/util/flags.h"
#include "paris/util/status.h"

namespace paris {
namespace {

using util::FlagParser;
using util::StatusCode;

// Builds an argv the parser can consume; `args` excludes the program name.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("test_program"));
    for (const auto& s : strings_) {
      pointers_.push_back(const_cast<char*>(s.c_str()));
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char* const* argv() const { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

struct TestFlags {
  std::string output;
  int iterations = 10;
  double theta = 0.1;
  size_t threads = 0;
  bool verbose = false;
  std::string mode = "auto";

  FlagParser MakeParser() {
    FlagParser parser("test_program", "INPUT");
    parser.AddString("--output", &output, "output prefix", "PREFIX");
    parser.AddInt("--iterations", &iterations, "iteration cap");
    parser.AddDouble("--theta", &theta, "bootstrap probability");
    parser.AddSizeT("--threads", &threads, "worker threads");
    parser.AddBool("--verbose", &verbose, "chatty output");
    parser.AddChoice("--mode", &mode, {"auto", "mmap", "stream"},
                     "load mode");
    return parser;
  }
};

TEST(FlagParserTest, ParsesTypedFlagsAndPositionals) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"input.nt", "--output", "out", "--iterations", "3", "--theta",
             "0.25", "--threads=4", "--verbose", "--mode", "mmap", "extra"});
  std::vector<std::string> positional;
  ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
  EXPECT_EQ(flags.output, "out");
  EXPECT_EQ(flags.iterations, 3);
  EXPECT_DOUBLE_EQ(flags.theta, 0.25);
  EXPECT_EQ(flags.threads, 4u);
  EXPECT_TRUE(flags.verbose);
  EXPECT_EQ(flags.mode, "mmap");
  EXPECT_EQ(positional, (std::vector<std::string>{"input.nt", "extra"}));
}

TEST(FlagParserTest, DefaultsSurviveWhenUnset) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"input.nt"});
  std::vector<std::string> positional;
  ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
  EXPECT_EQ(flags.iterations, 10);
  EXPECT_DOUBLE_EQ(flags.theta, 0.1);
  EXPECT_FALSE(flags.verbose);
  EXPECT_EQ(flags.mode, "auto");
}

TEST(FlagParserTest, UnknownFlagNamesTheFlag) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--nope", "x"});
  std::vector<std::string> positional;
  auto status = parser.Parse(argv.argc(), argv.argv(), &positional);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--nope"), std::string::npos);
}

TEST(FlagParserTest, MissingValueNamesTheFlag) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--output"});
  std::vector<std::string> positional;
  auto status = parser.Parse(argv.argc(), argv.argv(), &positional);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--output"), std::string::npos);
}

TEST(FlagParserTest, MalformedNumbersAreRejected) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"--iterations", "3abc"},
           {"--iterations", ""},
           {"--theta", "fast"},
           {"--threads", "-2"}}) {
    TestFlags flags;
    FlagParser parser = flags.MakeParser();
    Argv argv(args);
    std::vector<std::string> positional;
    auto status = parser.Parse(argv.argc(), argv.argv(), &positional);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << args[1];
    EXPECT_NE(status.message().find(args[0]), std::string::npos) << args[1];
  }
}

TEST(FlagParserTest, ChoiceRejectsUnknownValueListingChoices) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--mode", "turbo"});
  std::vector<std::string> positional;
  auto status = parser.Parse(argv.argc(), argv.argv(), &positional);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("turbo"), std::string::npos);
  EXPECT_NE(status.message().find("auto|mmap|stream"), std::string::npos);
}

TEST(FlagParserTest, BoolFlagRejectsInlineValue) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--verbose=1"});
  std::vector<std::string> positional;
  EXPECT_EQ(parser.Parse(argv.argc(), argv.argv(), &positional).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, HelpStopsParsingAndRendersEveryFlag) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--help", "--nope"});
  std::vector<std::string> positional;
  ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
  EXPECT_TRUE(parser.help_requested());

  const std::string help = parser.Help();
  EXPECT_NE(help.find("usage: test_program INPUT [options]"),
            std::string::npos);
  for (const char* name : {"--output", "--iterations", "--theta", "--threads",
                           "--verbose", "--mode", "--help"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
  EXPECT_NE(help.find("auto|mmap|stream"), std::string::npos);
}

TEST(FlagParserTest, HelpWithNoRegisteredFlags) {
  // A positional-only tool still gets a sane --help block.
  FlagParser parser("bare_tool", "INPUT");
  Argv argv({"--help"});
  std::vector<std::string> positional;
  ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
  EXPECT_TRUE(parser.help_requested());
  const std::string help = parser.Help();
  EXPECT_NE(help.find("usage: bare_tool INPUT"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(FlagParserTest, StrictNumericHelpers) {
  long long i = 0;
  EXPECT_TRUE(util::ParseFullInt64("42", &i));
  EXPECT_EQ(i, 42);
  EXPECT_FALSE(util::ParseFullInt64("42x", &i));
  EXPECT_FALSE(util::ParseFullInt64("", &i));
  double d = 0.0;
  EXPECT_TRUE(util::ParseFullDouble("0.5", &d));
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_FALSE(util::ParseFullDouble("0.5s", &d));
}

TEST(ParseDurationTest, AcceptsEveryUnitAndBareSeconds) {
  const struct {
    const char* input;
    double seconds;
  } cases[] = {
      {"500ns", 500e-9}, {"250us", 250e-6}, {"500ms", 0.5}, {"2s", 2.0},
      {"1.5m", 90.0},    {"2h", 7200.0},    {"0.25", 0.25}, {"0s", 0.0},
  };
  for (const auto& c : cases) {
    double seconds = -1.0;
    ASSERT_TRUE(util::ParseDuration(c.input, "interval", &seconds).ok())
        << c.input;
    EXPECT_DOUBLE_EQ(seconds, c.seconds) << c.input;
  }
}

TEST(ParseDurationTest, RejectsMalformedAndNegative) {
  double seconds = 0.0;
  for (const char* bad : {"", "ms", "5 ms", "-1s", "-0.5", "2x", "1.5mm",
                          "1s2", "nan", "s"}) {
    const util::Status status = util::ParseDuration(bad, "interval", &seconds);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
    // The error names the offending flag/field so CLI messages stay usable.
    EXPECT_NE(status.message().find("interval"), std::string::npos) << bad;
  }
}

TEST(ParseSizeTest, AcceptsBinaryScaleSuffixes) {
  const struct {
    const char* input;
    size_t bytes;
  } cases[] = {
      {"0", 0},
      {"123", 123},
      {"64b", 64},
      {"64k", 64u << 10},
      {"64kb", 64u << 10},
      {"2m", 2u << 20},
      {"2mb", 2u << 20},
      {"1g", 1u << 30},
      {"1gb", 1u << 30},
  };
  for (const auto& c : cases) {
    size_t bytes = 1;
    ASSERT_TRUE(util::ParseSize(c.input, "cache", &bytes).ok()) << c.input;
    EXPECT_EQ(bytes, c.bytes) << c.input;
  }
}

TEST(ParseSizeTest, RejectsFractionsNegativesAndOverflow) {
  size_t bytes = 0;
  for (const char* bad :
       {"", "-1", "-64k", "1.5k", "0.5", "k", "64q", "1z",
        "99999999999999999999g", "18446744073709551616"}) {
    const util::Status status = util::ParseSize(bad, "cache", &bytes);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(status.message().find("cache"), std::string::npos) << bad;
  }
}

TEST(FlagParserTest, DurationAndSizeFlags) {
  double interval = 1.0;
  size_t cache = 0;
  FlagParser parser("typed_tool", "");
  parser.AddDuration("--checkpoint-interval", &interval,
                     "checkpoint cadence");
  parser.AddSize("--cache-bytes", &cache, "lookup cache budget");

  {
    Argv argv({"--checkpoint-interval", "500ms", "--cache-bytes=64k"});
    std::vector<std::string> positional;
    ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
    EXPECT_DOUBLE_EQ(interval, 0.5);
    EXPECT_EQ(cache, 64u * 1024u);
  }
  {
    // A malformed value is rejected with the flag's own name in the error.
    Argv argv({"--checkpoint-interval", "fast"});
    std::vector<std::string> positional;
    const util::Status status =
        parser.Parse(argv.argc(), argv.argv(), &positional);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("--checkpoint-interval"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace paris
