#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "paris/util/flags.h"
#include "paris/util/status.h"

namespace paris {
namespace {

using util::FlagParser;
using util::StatusCode;

// Builds an argv the parser can consume; `args` excludes the program name.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("test_program"));
    for (const auto& s : strings_) {
      pointers_.push_back(const_cast<char*>(s.c_str()));
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char* const* argv() const { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

struct TestFlags {
  std::string output;
  int iterations = 10;
  double theta = 0.1;
  size_t threads = 0;
  bool verbose = false;
  std::string mode = "auto";

  FlagParser MakeParser() {
    FlagParser parser("test_program", "INPUT");
    parser.AddString("--output", &output, "output prefix", "PREFIX");
    parser.AddInt("--iterations", &iterations, "iteration cap");
    parser.AddDouble("--theta", &theta, "bootstrap probability");
    parser.AddSizeT("--threads", &threads, "worker threads");
    parser.AddBool("--verbose", &verbose, "chatty output");
    parser.AddChoice("--mode", &mode, {"auto", "mmap", "stream"},
                     "load mode");
    return parser;
  }
};

TEST(FlagParserTest, ParsesTypedFlagsAndPositionals) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"input.nt", "--output", "out", "--iterations", "3", "--theta",
             "0.25", "--threads=4", "--verbose", "--mode", "mmap", "extra"});
  std::vector<std::string> positional;
  ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
  EXPECT_EQ(flags.output, "out");
  EXPECT_EQ(flags.iterations, 3);
  EXPECT_DOUBLE_EQ(flags.theta, 0.25);
  EXPECT_EQ(flags.threads, 4u);
  EXPECT_TRUE(flags.verbose);
  EXPECT_EQ(flags.mode, "mmap");
  EXPECT_EQ(positional, (std::vector<std::string>{"input.nt", "extra"}));
}

TEST(FlagParserTest, DefaultsSurviveWhenUnset) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"input.nt"});
  std::vector<std::string> positional;
  ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
  EXPECT_EQ(flags.iterations, 10);
  EXPECT_DOUBLE_EQ(flags.theta, 0.1);
  EXPECT_FALSE(flags.verbose);
  EXPECT_EQ(flags.mode, "auto");
}

TEST(FlagParserTest, UnknownFlagNamesTheFlag) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--nope", "x"});
  std::vector<std::string> positional;
  auto status = parser.Parse(argv.argc(), argv.argv(), &positional);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--nope"), std::string::npos);
}

TEST(FlagParserTest, MissingValueNamesTheFlag) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--output"});
  std::vector<std::string> positional;
  auto status = parser.Parse(argv.argc(), argv.argv(), &positional);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--output"), std::string::npos);
}

TEST(FlagParserTest, MalformedNumbersAreRejected) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"--iterations", "3abc"},
           {"--iterations", ""},
           {"--theta", "fast"},
           {"--threads", "-2"}}) {
    TestFlags flags;
    FlagParser parser = flags.MakeParser();
    Argv argv(args);
    std::vector<std::string> positional;
    auto status = parser.Parse(argv.argc(), argv.argv(), &positional);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << args[1];
    EXPECT_NE(status.message().find(args[0]), std::string::npos) << args[1];
  }
}

TEST(FlagParserTest, ChoiceRejectsUnknownValueListingChoices) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--mode", "turbo"});
  std::vector<std::string> positional;
  auto status = parser.Parse(argv.argc(), argv.argv(), &positional);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("turbo"), std::string::npos);
  EXPECT_NE(status.message().find("auto|mmap|stream"), std::string::npos);
}

TEST(FlagParserTest, BoolFlagRejectsInlineValue) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--verbose=1"});
  std::vector<std::string> positional;
  EXPECT_EQ(parser.Parse(argv.argc(), argv.argv(), &positional).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, HelpStopsParsingAndRendersEveryFlag) {
  TestFlags flags;
  FlagParser parser = flags.MakeParser();
  Argv argv({"--help", "--nope"});
  std::vector<std::string> positional;
  ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
  EXPECT_TRUE(parser.help_requested());

  const std::string help = parser.Help();
  EXPECT_NE(help.find("usage: test_program INPUT [options]"),
            std::string::npos);
  for (const char* name : {"--output", "--iterations", "--theta", "--threads",
                           "--verbose", "--mode", "--help"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
  EXPECT_NE(help.find("auto|mmap|stream"), std::string::npos);
}

TEST(FlagParserTest, HelpWithNoRegisteredFlags) {
  // A positional-only tool still gets a sane --help block.
  FlagParser parser("bare_tool", "INPUT");
  Argv argv({"--help"});
  std::vector<std::string> positional;
  ASSERT_TRUE(parser.Parse(argv.argc(), argv.argv(), &positional).ok());
  EXPECT_TRUE(parser.help_requested());
  const std::string help = parser.Help();
  EXPECT_NE(help.find("usage: bare_tool INPUT"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(FlagParserTest, StrictNumericHelpers) {
  long long i = 0;
  EXPECT_TRUE(util::ParseFullInt64("42", &i));
  EXPECT_EQ(i, 42);
  EXPECT_FALSE(util::ParseFullInt64("42x", &i));
  EXPECT_FALSE(util::ParseFullInt64("", &i));
  double d = 0.0;
  EXPECT_TRUE(util::ParseFullDouble("0.5", &d));
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_FALSE(util::ParseFullDouble("0.5s", &d));
}

}  // namespace
}  // namespace paris
