#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "paris/core/aligner.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"

namespace paris::core {
namespace {

using ontology::Ontology;
using ontology::OntologyBuilder;
using rdf::TermId;
using rdf::TermKind;

// Helper: finds the (positive) relation id of `name` in `onto`.
rdf::RelId RelOf(const Ontology& onto, const std::string& name) {
  auto term = onto.pool().Find(name, TermKind::kIri);
  EXPECT_TRUE(term.has_value()) << name;
  auto rel = onto.store().FindRelation(*term);
  EXPECT_TRUE(rel.has_value()) << name;
  return *rel;
}

TermId IriOf(const rdf::TermPool& pool, const std::string& name) {
  auto term = pool.Find(name, TermKind::kIri);
  EXPECT_TRUE(term.has_value()) << name;
  return term.has_value() ? *term : rdf::kNullTerm;
}

class AlignerTest : public ::testing::Test {
 protected:
  rdf::TermPool pool_;
  std::unique_ptr<Ontology> left_;
  std::unique_ptr<Ontology> right_;

  void BuildPair(const std::function<void(OntologyBuilder&)>& fill_left,
                 const std::function<void(OntologyBuilder&)>& fill_right) {
    OntologyBuilder bl(&pool_, "left");
    fill_left(bl);
    auto l = bl.Build();
    ASSERT_TRUE(l.ok()) << l.status().ToString();
    left_ = std::make_unique<Ontology>(std::move(l).value());
    OntologyBuilder br(&pool_, "right");
    fill_right(br);
    auto r = br.Build();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    right_ = std::make_unique<Ontology>(std::move(r).value());
  }
};

// The e-mail scenario of §4.1: a shared inverse-functional value drives the
// equivalence to 1 over two iterations, and the relations align.
TEST_F(AlignerTest, SharedInverseFunctionalValueUnifies) {
  BuildPair(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a1", "l:email", "x@example.org");
        b.AddLiteralFact("l:a2", "l:email", "other@example.org");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:b1", "r:mail", "x@example.org");
        b.AddLiteralFact("r:b2", "r:mail", "unrelated@example.org");
      });

  AlignmentConfig config;
  config.theta = 0.1;
  config.max_iterations = 4;
  Aligner aligner(*left_, *right_, config);
  AlignmentResult result = aligner.Run();

  const TermId a1 = IriOf(pool_, "l:a1");
  const TermId b1 = IriOf(pool_, "r:b1");

  // Iteration 1 (hand-computed): fun⁻¹ = 1 on both sides, sub-relation
  // scores bootstrap at θ → Pr = 1 - (1-θ)² = 0.19.
  ASSERT_FALSE(result.iterations.empty());
  const auto& first = result.iterations.front().max_left;
  ASSERT_TRUE(first.contains(a1));
  EXPECT_NEAR(first.at(a1).prob, 1.0 - 0.9 * 0.9, 1e-12);

  // After convergence the relations are mutually contained with score 1 and
  // the instances match with probability 1.
  const auto* final_match = result.instances.MaxOfLeft(a1);
  ASSERT_NE(final_match, nullptr);
  EXPECT_EQ(final_match->other, b1);
  EXPECT_DOUBLE_EQ(final_match->prob, 1.0);

  const rdf::RelId email = RelOf(*left_, "l:email");
  const rdf::RelId mail = RelOf(*right_, "r:mail");
  EXPECT_DOUBLE_EQ(result.relations.SubLeftRight(email, mail), 1.0);
  EXPECT_DOUBLE_EQ(result.relations.SubRightLeft(mail, email), 1.0);
  // And nothing aligns the two distinct e-mail owners.
  const TermId a2 = IriOf(pool_, "l:a2");
  EXPECT_EQ(result.instances.MaxOfLeft(a2), nullptr);
}

// A value shared by many entities (low inverse functionality) provides much
// weaker evidence than a unique one — the core claim of §3.
TEST_F(AlignerTest, LowInverseFunctionalityGivesWeakEvidence) {
  BuildPair(
      [](OntologyBuilder& b) {
        // Ten left people live in "Springfield"; one has a unique ssn.
        for (int i = 0; i < 10; ++i) {
          b.AddLiteralFact("l:p" + std::to_string(i), "l:city",
                           "Springfield");
        }
        b.AddLiteralFact("l:p0", "l:ssn", "123456789");
      },
      [](OntologyBuilder& b) {
        for (int i = 0; i < 10; ++i) {
          b.AddLiteralFact("r:q" + std::to_string(i), "r:town",
                           "Springfield");
        }
        b.AddLiteralFact("r:q0", "r:id", "123456789");
      });

  AlignmentConfig config;
  config.instance_threshold = 0.001;  // keep weak candidates visible
  config.max_iterations = 3;
  Aligner aligner(*left_, *right_, config);
  AlignmentResult result = aligner.Run();

  const TermId p0 = IriOf(pool_, "l:p0");
  const TermId p1 = IriOf(pool_, "l:p1");
  const TermId q0 = IriOf(pool_, "r:q0");

  const auto* strong = result.instances.MaxOfLeft(p0);
  ASSERT_NE(strong, nullptr);
  EXPECT_EQ(strong->other, q0);

  // p1 only shares the city → its best candidate is much weaker than p0's.
  const auto* weak = result.instances.MaxOfLeft(p1);
  if (weak != nullptr) {
    EXPECT_LT(weak->prob, strong->prob);
  }
}

// Structural inversion: left says actedIn(person, movie), right says
// starring(movie, person). PARIS must discover actedIn ⊆ starring⁻¹.
TEST_F(AlignerTest, AlignsInverseRelations) {
  BuildPair(
      [](OntologyBuilder& b) {
        for (int i = 0; i < 6; ++i) {
          const std::string p = "l:actor" + std::to_string(i);
          const std::string m = "l:movie" + std::to_string(i);
          b.AddLiteralFact(p, "l:name", "Actor " + std::to_string(i));
          b.AddLiteralFact(m, "l:title", "Movie " + std::to_string(i));
          b.AddFact(p, "l:actedIn", m);
        }
      },
      [](OntologyBuilder& b) {
        for (int i = 0; i < 6; ++i) {
          const std::string p = "r:person" + std::to_string(i);
          const std::string m = "r:film" + std::to_string(i);
          b.AddLiteralFact(p, "r:label", "Actor " + std::to_string(i));
          b.AddLiteralFact(m, "r:caption", "Movie " + std::to_string(i));
          b.AddFact(m, "r:starring", p);  // inverted direction
        }
      });

  AlignmentConfig config;
  config.max_iterations = 5;
  Aligner aligner(*left_, *right_, config);
  AlignmentResult result = aligner.Run();

  const rdf::RelId acted_in = RelOf(*left_, "l:actedIn");
  const rdf::RelId starring = RelOf(*right_, "r:starring");
  // actedIn ⊆ starring⁻¹ with a high score; the forward direction is 0.
  EXPECT_GT(result.relations.SubLeftRight(acted_in, rdf::Inverse(starring)),
            0.9);
  EXPECT_DOUBLE_EQ(result.relations.SubLeftRight(acted_in, starring), 0.0);

  // Every actor and movie matches.
  for (int i = 0; i < 6; ++i) {
    const TermId a = IriOf(pool_, "l:actor" + std::to_string(i));
    const auto* m = result.instances.MaxOfLeft(a);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->other, IriOf(pool_, "r:person" + std::to_string(i)));
  }
}

// Pr(r ⊆ r') = Pr(r⁻¹ ⊆ r'⁻¹) — the canonicalization identity.
TEST_F(AlignerTest, RelationScoreInversionIdentity) {
  BuildPair(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:x", "l:k", "v1");
        b.AddFact("l:x", "l:r", "l:y");
        b.AddLiteralFact("l:y", "l:k", "v2");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:x", "r:k", "v1");
        b.AddFact("r:x", "r:r", "r:y");
        b.AddLiteralFact("r:y", "r:k", "v2");
      });
  AlignmentConfig config;
  config.max_iterations = 3;
  Aligner aligner(*left_, *right_, config);
  AlignmentResult result = aligner.Run();
  const rdf::RelId lr = RelOf(*left_, "l:r");
  const rdf::RelId rr = RelOf(*right_, "r:r");
  EXPECT_DOUBLE_EQ(result.relations.SubLeftRight(lr, rr),
                   result.relations.SubLeftRight(rdf::Inverse(lr),
                                                 rdf::Inverse(rr)));
}

// Negative evidence (Eq. 14): a conflicting functional value lowers the
// probability compared with the positive-only estimate (Eq. 13).
TEST_F(AlignerTest, NegativeEvidenceLowersConflictingMatch) {
  auto fill_left = [](OntologyBuilder& b) {
    // Background population whose names AND birth dates agree, so the
    // born ↔ birth relation alignment has support.
    for (int i = 0; i < 6; ++i) {
      const std::string e = "l:p" + std::to_string(i);
      b.AddLiteralFact(e, "l:name", "Person " + std::to_string(i));
      b.AddLiteralFact(e, "l:born", "19" + std::to_string(50 + i) + "-01-01");
    }
    // The conflicting entity: same name, different birth date.
    b.AddLiteralFact("l:a", "l:name", "John Smith");
    b.AddLiteralFact("l:a", "l:born", "1950-06-06");
  };
  auto fill_right = [](OntologyBuilder& b) {
    for (int i = 0; i < 6; ++i) {
      const std::string e = "r:q" + std::to_string(i);
      b.AddLiteralFact(e, "r:label", "Person " + std::to_string(i));
      b.AddLiteralFact(e, "r:birth", "19" + std::to_string(50 + i) + "-01-01");
    }
    b.AddLiteralFact("r:b", "r:label", "John Smith");
    b.AddLiteralFact("r:b", "r:birth", "1971-07-07");  // conflicts
  };
  BuildPair(fill_left, fill_right);

  AlignmentConfig base;
  base.max_iterations = 3;
  base.instance_threshold = 0.0001;
  AlignmentResult positive = Aligner(*left_, *right_, base).Run();

  AlignmentConfig with_negative = base;
  with_negative.use_negative_evidence = true;
  AlignmentResult negative = Aligner(*left_, *right_, with_negative).Run();

  const TermId a = IriOf(pool_, "l:a");
  const auto* p_pos = positive.instances.MaxOfLeft(a);
  ASSERT_NE(p_pos, nullptr);
  const auto* p_neg = negative.instances.MaxOfLeft(a);
  if (p_neg != nullptr) {
    EXPECT_LT(p_neg->prob, p_pos->prob);
  }
  // (p_neg may legitimately be dropped entirely; both outcomes mean the
  // negative evidence acted.)
}

// θ must not affect the converged scores (§6.3, first design experiment).
TEST_F(AlignerTest, ThetaInvarianceAtConvergence) {
  auto fill_left = [](OntologyBuilder& b) {
    for (int i = 0; i < 5; ++i) {
      const std::string e = "l:e" + std::to_string(i);
      b.AddLiteralFact(e, "l:name", "Entity " + std::to_string(i));
      b.AddLiteralFact(e, "l:code", "C" + std::to_string(i));
    }
  };
  auto fill_right = [](OntologyBuilder& b) {
    for (int i = 0; i < 5; ++i) {
      const std::string e = "r:f" + std::to_string(i);
      b.AddLiteralFact(e, "r:label", "Entity " + std::to_string(i));
      b.AddLiteralFact(e, "r:key", "C" + std::to_string(i));
    }
  };
  BuildPair(fill_left, fill_right);

  std::vector<double> final_probs;
  for (double theta : {0.01, 0.05, 0.1, 0.2}) {
    AlignmentConfig config;
    config.theta = theta;
    config.max_iterations = 6;
    AlignmentResult result = Aligner(*left_, *right_, config).Run();
    const auto* m = result.instances.MaxOfLeft(IriOf(pool_, "l:e0"));
    ASSERT_NE(m, nullptr) << "theta=" << theta;
    final_probs.push_back(m->prob);
  }
  for (size_t i = 1; i < final_probs.size(); ++i) {
    EXPECT_NEAR(final_probs[i], final_probs[0], 1e-9);
  }
}

// Class alignment (Eq. 17): with every instance of left class c matched to
// an instance of right class d at probability 1, Pr(c ⊆ d) = 1.
TEST_F(AlignerTest, ClassAlignmentFollowsInstances) {
  BuildPair(
      [](OntologyBuilder& b) {
        for (int i = 0; i < 4; ++i) {
          const std::string e = "l:s" + std::to_string(i);
          b.AddLiteralFact(e, "l:name", "Singer " + std::to_string(i));
          b.AddType(e, "l:Singer");
        }
        b.AddSubClassOf("l:Singer", "l:Person");
      },
      [](OntologyBuilder& b) {
        for (int i = 0; i < 4; ++i) {
          const std::string e = "r:v" + std::to_string(i);
          b.AddLiteralFact(e, "r:label", "Singer " + std::to_string(i));
          b.AddType(e, "r:Vocalist");
        }
        // Plus two extra vocalists with no counterpart.
        for (int i = 4; i < 6; ++i) {
          const std::string e = "r:v" + std::to_string(i);
          b.AddLiteralFact(e, "r:label", "Other " + std::to_string(i));
          b.AddType(e, "r:Vocalist");
        }
      });

  AlignmentConfig config;
  config.max_iterations = 4;
  AlignmentResult result = Aligner(*left_, *right_, config).Run();

  const TermId singer = IriOf(pool_, "l:Singer");
  const TermId person = IriOf(pool_, "l:Person");
  const TermId vocalist = IriOf(pool_, "r:Vocalist");

  double singer_in_vocalist = 0.0;
  double vocalist_in_singer = 0.0;
  double vocalist_in_person = 0.0;
  for (const auto& e : result.classes.entries()) {
    if (e.sub_is_left && e.sub == singer && e.super == vocalist) {
      singer_in_vocalist = e.score;
    }
    if (!e.sub_is_left && e.sub == vocalist && e.super == singer) {
      vocalist_in_singer = e.score;
    }
    if (!e.sub_is_left && e.sub == vocalist && e.super == person) {
      vocalist_in_person = e.score;
    }
  }
  // All matched singers are vocalists → score 1.
  EXPECT_DOUBLE_EQ(singer_in_vocalist, 1.0);
  // Only 4 of 6 vocalists are singers → score 4/6.
  EXPECT_NEAR(vocalist_in_singer, 4.0 / 6.0, 1e-9);
  // Vocalist ⊆ Person inherits through the type closure.
  EXPECT_NEAR(vocalist_in_person, 4.0 / 6.0, 1e-9);
}

// The convergence criterion fires and is recorded.
TEST_F(AlignerTest, ConvergenceRecorded) {
  BuildPair(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a", "l:k", "shared-key");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:b", "r:k", "shared-key");
      });
  AlignmentConfig config;
  config.max_iterations = 10;
  AlignmentResult result = Aligner(*left_, *right_, config).Run();
  EXPECT_GT(result.converged_at, 1);
  EXPECT_LE(result.converged_at, 10);
  EXPECT_LT(result.iterations.back().change_fraction,
            config.convergence_threshold);
  EXPECT_EQ(result.iterations.size(),
            static_cast<size_t>(result.converged_at));
}

// Determinism: two runs with identical inputs produce identical outputs.
TEST_F(AlignerTest, RunsAreDeterministic) {
  BuildPair(
      [](OntologyBuilder& b) {
        for (int i = 0; i < 8; ++i) {
          b.AddLiteralFact("l:x" + std::to_string(i), "l:name",
                           "N" + std::to_string(i % 5));  // ambiguity
        }
      },
      [](OntologyBuilder& b) {
        for (int i = 0; i < 8; ++i) {
          b.AddLiteralFact("r:y" + std::to_string(i), "r:name",
                           "N" + std::to_string(i % 5));
        }
      });
  AlignmentConfig config;
  config.max_iterations = 3;
  AlignmentResult r1 = Aligner(*left_, *right_, config).Run();
  AlignmentResult r2 = Aligner(*left_, *right_, config).Run();
  ASSERT_EQ(r1.instances.max_left().size(), r2.instances.max_left().size());
  for (const auto& [l, c] : r1.instances.max_left()) {
    const auto* other = r2.instances.MaxOfLeft(l);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->other, c.other);
    EXPECT_DOUBLE_EQ(other->prob, c.prob);
  }
}

// The full fixpoint — instance pass, relation pass, and class pass — must
// be byte-identical across thread counts, including the relation table's
// iteration order (the negative-evidence pass is sensitive to it).
TEST_F(AlignerTest, ByteIdenticalAcrossThreadCounts) {
  BuildPair(
      [](OntologyBuilder& b) {
        for (int i = 0; i < 24; ++i) {
          const std::string e = "l:e" + std::to_string(i);
          b.AddLiteralFact(e, "l:name", "Name " + std::to_string(i));
          b.AddLiteralFact(e, "l:city", "City " + std::to_string(i % 4));
          b.AddFact(e, "l:knows", "l:e" + std::to_string((i + 1) % 24));
          b.AddFact(e, "l:worksAt", "l:e" + std::to_string((i + 7) % 24));
        }
      },
      [](OntologyBuilder& b) {
        for (int i = 0; i < 24; ++i) {
          const std::string e = "r:f" + std::to_string(i);
          b.AddLiteralFact(e, "r:label", "Name " + std::to_string(i));
          b.AddLiteralFact(e, "r:town", "City " + std::to_string(i % 4));
          b.AddFact(e, "r:contact", "r:f" + std::to_string((i + 1) % 24));
          b.AddFact(e, "r:employer", "r:f" + std::to_string((i + 7) % 24));
        }
      });

  AlignmentConfig base;
  base.max_iterations = 4;
  base.use_negative_evidence = true;

  std::optional<AlignmentResult> reference;
  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    AlignmentConfig config = base;
    config.num_threads = threads;
    AlignmentResult result = Aligner(*left_, *right_, config).Run();
    if (!reference.has_value()) {
      reference.emplace(std::move(result));
      continue;
    }
    // Instance assignments: identical keys, counterparts, and exact probs.
    ASSERT_EQ(result.instances.max_left().size(),
              reference->instances.max_left().size())
        << "threads=" << threads;
    for (const auto& [l, c] : reference->instances.max_left()) {
      const auto* other = result.instances.MaxOfLeft(l);
      ASSERT_NE(other, nullptr) << "threads=" << threads;
      EXPECT_EQ(other->other, c.other);
      EXPECT_EQ(other->prob, c.prob) << "threads=" << threads;
    }
    // Relation tables: identical entries in identical iteration order.
    const auto& expect_entries = reference->relations.Entries();
    const auto& got_entries = result.relations.Entries();
    ASSERT_EQ(got_entries.size(), expect_entries.size())
        << "threads=" << threads;
    for (size_t i = 0; i < expect_entries.size(); ++i) {
      EXPECT_EQ(got_entries[i].sub, expect_entries[i].sub);
      EXPECT_EQ(got_entries[i].super, expect_entries[i].super);
      EXPECT_EQ(got_entries[i].score, expect_entries[i].score);
      EXPECT_EQ(got_entries[i].sub_is_left, expect_entries[i].sub_is_left);
    }
    // Class scores.
    ASSERT_EQ(result.classes.entries().size(),
              reference->classes.entries().size());
    for (size_t i = 0; i < reference->classes.entries().size(); ++i) {
      EXPECT_EQ(result.classes.entries()[i].score,
                reference->classes.entries()[i].score);
    }
  }
}

// Threading must not change results.
TEST_F(AlignerTest, ThreadedRunMatchesSerial) {
  BuildPair(
      [](OntologyBuilder& b) {
        for (int i = 0; i < 20; ++i) {
          const std::string e = "l:e" + std::to_string(i);
          b.AddLiteralFact(e, "l:name", "Name " + std::to_string(i));
          b.AddFact(e, "l:knows", "l:e" + std::to_string((i + 1) % 20));
        }
      },
      [](OntologyBuilder& b) {
        for (int i = 0; i < 20; ++i) {
          const std::string e = "r:f" + std::to_string(i);
          b.AddLiteralFact(e, "r:label", "Name " + std::to_string(i));
          b.AddFact(e, "r:contact", "r:f" + std::to_string((i + 1) % 20));
        }
      });
  AlignmentConfig serial;
  serial.max_iterations = 4;
  AlignmentConfig threaded = serial;
  threaded.num_threads = 4;
  AlignmentResult r1 = Aligner(*left_, *right_, serial).Run();
  AlignmentResult r2 = Aligner(*left_, *right_, threaded).Run();
  ASSERT_EQ(r1.instances.max_left().size(), r2.instances.max_left().size());
  for (const auto& [l, c] : r1.instances.max_left()) {
    const auto* other = r2.instances.MaxOfLeft(l);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->other, c.other);
    EXPECT_DOUBLE_EQ(other->prob, c.prob);
  }
}

}  // namespace
}  // namespace paris::core
