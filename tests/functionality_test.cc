#include <gtest/gtest.h>

#include "paris/ontology/functionality.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"

namespace paris::ontology {
namespace {

using rdf::RelId;
using rdf::TermId;

// Builds a store with statements r(si, oi) given as index pairs.
class FunctionalityTest : public ::testing::Test {
 protected:
  FunctionalityTest() : store_(&pool_) {
    rel_ = store_.InternRelation(pool_.InternIri("ex:r"));
  }

  void AddPairs(const std::vector<std::pair<int, int>>& pairs) {
    for (auto [s, o] : pairs) {
      store_.Add(pool_.InternIri("s" + std::to_string(s)), rel_,
                 pool_.InternIri("o" + std::to_string(o)));
    }
    store_.Finalize();
  }

  rdf::TermPool pool_;
  rdf::TripleStore store_;
  RelId rel_;
};

TEST_F(FunctionalityTest, PerfectFunctionIsOne) {
  // Three subjects, one object each: fun = 3/3 = 1.
  AddPairs({{1, 1}, {2, 2}, {3, 3}});
  FunctionalityTable table(store_);
  EXPECT_DOUBLE_EQ(table.Global(rel_), 1.0);
  EXPECT_DOUBLE_EQ(table.GlobalInverse(rel_), 1.0);
}

TEST_F(FunctionalityTest, HarmonicMeanDefinition) {
  // s1 → {o1, o2}, s2 → {o3}: fun = #subjects / #pairs = 2/3 (Eq. 2).
  AddPairs({{1, 1}, {1, 2}, {2, 3}});
  FunctionalityTable table(store_);
  EXPECT_DOUBLE_EQ(table.Global(rel_), 2.0 / 3.0);
  // Inverse: every object has exactly one subject → 1.
  EXPECT_DOUBLE_EQ(table.GlobalInverse(rel_), 1.0);
}

TEST_F(FunctionalityTest, InverseFunctionality) {
  // Two subjects point at the same object: fun⁻¹ = 1/2, fun = 1.
  AddPairs({{1, 1}, {2, 1}});
  FunctionalityTable table(store_);
  EXPECT_DOUBLE_EQ(table.Global(rel_), 1.0);
  EXPECT_DOUBLE_EQ(table.GlobalInverse(rel_), 0.5);
  // fun⁻¹(r) == fun(r⁻¹).
  EXPECT_DOUBLE_EQ(table.Global(rdf::Inverse(rel_)),
                   table.GlobalInverse(rel_));
}

TEST_F(FunctionalityTest, EmptyRelationIsZero) {
  store_.Finalize();
  FunctionalityTable table(store_);
  EXPECT_DOUBLE_EQ(table.Global(rel_), 0.0);
}

TEST_F(FunctionalityTest, LocalFunctionality) {
  AddPairs({{1, 1}, {1, 2}, {2, 3}});
  const TermId s1 = *pool_.Find("s1", rdf::TermKind::kIri);
  const TermId s2 = *pool_.Find("s2", rdf::TermKind::kIri);
  EXPECT_DOUBLE_EQ(FunctionalityTable::Local(store_, rel_, s1), 0.5);
  EXPECT_DOUBLE_EQ(FunctionalityTable::Local(store_, rel_, s2), 1.0);
  // No facts → 0 by convention.
  EXPECT_DOUBLE_EQ(
      FunctionalityTable::Local(store_, rel_, pool_.InternIri("sX")), 0.0);
}

// ---------------------------------------------------------------------------
// Appendix A variants
// ---------------------------------------------------------------------------

TEST(FunctionalityVariantsTest, LikesDishCounterexample) {
  // Appendix A alternative 2's flaw: n people all like the same n dishes.
  // The argument-ratio definition reports 1 (treacherous); the harmonic
  // mean reports 1/n.
  const int n = 5;
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  const RelId likes = store.InternRelation(pool.InternIri("likesDish"));
  for (int p = 0; p < n; ++p) {
    for (int d = 0; d < n; ++d) {
      store.Add(pool.InternIri("person" + std::to_string(p)), likes,
                pool.InternIri("dish" + std::to_string(d)));
    }
  }
  store.Finalize();
  FunctionalityTable table(store);
  EXPECT_DOUBLE_EQ(table.Global(likes, FunctionalityVariant::kArgumentRatio),
                   1.0);
  EXPECT_DOUBLE_EQ(table.Global(likes, FunctionalityVariant::kHarmonicMean),
                   1.0 / n);
}

TEST(FunctionalityVariantsTest, StatementPairRatioVolatileToHubs) {
  // One source with many targets dominates alternative 1.
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  const RelId r = store.InternRelation(pool.InternIri("r"));
  // 9 perfect sources and 1 hub with 10 targets.
  for (int i = 0; i < 9; ++i) {
    store.Add(pool.InternIri("s" + std::to_string(i)), r,
              pool.InternIri("o" + std::to_string(i)));
  }
  for (int j = 0; j < 10; ++j) {
    store.Add(pool.InternIri("hub"), r,
              pool.InternIri("h" + std::to_string(j)));
  }
  store.Finalize();
  FunctionalityTable table(store);
  const double v1 =
      table.Global(r, FunctionalityVariant::kStatementPairRatio);
  const double harmonic =
      table.Global(r, FunctionalityVariant::kHarmonicMean);
  // pairs = 19, Σ deg² = 9 + 100 = 109 → v1 ≈ 0.17; harmonic = 10/19 ≈ 0.53.
  EXPECT_NEAR(v1, 19.0 / 109.0, 1e-12);
  EXPECT_NEAR(harmonic, 10.0 / 19.0, 1e-12);
  EXPECT_LT(v1, harmonic);
}

TEST(FunctionalityVariantsTest, ArithmeticVsHarmonicMean) {
  // s1 has 1 object (local fun 1), s2 has 4 (local fun 1/4).
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  const RelId r = store.InternRelation(pool.InternIri("r"));
  store.Add(pool.InternIri("s1"), r, pool.InternIri("o0"));
  for (int j = 1; j <= 4; ++j) {
    store.Add(pool.InternIri("s2"), r,
              pool.InternIri("o" + std::to_string(j)));
  }
  store.Finalize();
  FunctionalityTable table(store);
  // Arithmetic mean: (1 + 1/4) / 2 = 0.625.
  EXPECT_NEAR(table.Global(r, FunctionalityVariant::kArithmeticMean), 0.625,
              1e-12);
  // Harmonic mean: 2 / 5 = 0.4 — always ≤ arithmetic.
  EXPECT_NEAR(table.Global(r, FunctionalityVariant::kHarmonicMean), 0.4,
              1e-12);
}

TEST(FunctionalityVariantsTest, AllVariantsInUnitInterval) {
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  const RelId r = store.InternRelation(pool.InternIri("r"));
  // Mixed degrees, more subjects than objects (argument ratio would be > 1
  // without clamping).
  store.Add(pool.InternIri("a"), r, pool.InternIri("x"));
  store.Add(pool.InternIri("b"), r, pool.InternIri("x"));
  store.Add(pool.InternIri("c"), r, pool.InternIri("y"));
  store.Finalize();
  FunctionalityTable table(store);
  for (auto variant :
       {FunctionalityVariant::kHarmonicMean,
        FunctionalityVariant::kStatementPairRatio,
        FunctionalityVariant::kArgumentRatio,
        FunctionalityVariant::kArithmeticMean}) {
    for (RelId rel : {r, rdf::Inverse(r)}) {
      const double f = table.Global(rel, variant);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
}

TEST(FunctionalityVariantsTest, StatsExposed) {
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  const RelId r = store.InternRelation(pool.InternIri("r"));
  store.Add(pool.InternIri("a"), r, pool.InternIri("x"));
  store.Add(pool.InternIri("a"), r, pool.InternIri("y"));
  store.Finalize();
  FunctionalityTable table(store);
  const DirectionStats& fwd = table.Stats(r);
  EXPECT_EQ(fwd.num_pairs, 2u);
  EXPECT_EQ(fwd.num_distinct_firsts, 1u);
  EXPECT_EQ(fwd.num_distinct_seconds, 2u);
  EXPECT_DOUBLE_EQ(fwd.sum_squared_degree, 4.0);
  const DirectionStats& inv = table.Stats(rdf::Inverse(r));
  EXPECT_EQ(inv.num_distinct_firsts, 2u);
}

}  // namespace
}  // namespace paris::ontology
