#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "paris/core/aligner.h"
#include "paris/core/result_io.h"
#include "paris/core/result_snapshot.h"
#include "paris/ontology/ontology.h"
#include "paris/storage/snapshot.h"
#include "paris/synth/profiles.h"

namespace paris {
namespace {

using core::AlignmentConfig;
using core::AlignmentResult;
using storage::SnapshotLoadMode;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// The three TSV tables as one string: "byte-identical output" in the sense
// of `paris_align --output`.
std::string Tables(const AlignmentResult& result,
                   const ontology::Ontology& left,
                   const ontology::Ontology& right) {
  std::ostringstream out;
  core::WriteInstanceAlignment(result.instances, left, right, out);
  core::WriteRelationAlignment(result.relations, left, right, out);
  core::WriteClassAlignment(result.classes, left, right, out);
  return out.str();
}

// A small but non-trivial alignment workload (noisy restaurant pair): a few
// hundred instances, several relations, classes, and multiple fixpoint
// iterations of real work.
class ResultSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::ProfileOptions options;
    options.scale = 0.5;
    auto pair = synth::MakeOaeiRestaurantPair(options);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    pair_ = std::move(pair).value();
  }

  // Forces a fixed number of full-work iterations so a checkpoint at k < max
  // genuinely resumes mid-run.
  static AlignmentConfig FixedWorkConfig(int max_iterations, size_t threads) {
    AlignmentConfig config;
    config.max_iterations = max_iterations;
    config.convergence_threshold = 0.0;
    config.record_history = false;
    config.num_threads = threads;
    return config;
  }

  AlignmentResult Run(const AlignmentConfig& config) {
    return core::Aligner(*pair_.left, *pair_.right, config).Run();
  }

  const ontology::Ontology& left() const { return *pair_.left; }
  const ontology::Ontology& right() const { return *pair_.right; }

  synth::OntologyPair pair_;
};

TEST_F(ResultSnapshotTest, RoundTripReproducesResult) {
  const AlignmentConfig config = FixedWorkConfig(2, 0);
  const AlignmentResult result = Run(config);
  ASSERT_GT(result.instances.num_left_aligned(), 0u);
  ASSERT_GT(result.relations.size(), 0u);
  ASSERT_GT(result.classes.entries().size(), 0u);

  const std::string path = TempPath("round_trip.result");
  ASSERT_TRUE(core::SaveAlignmentResult(path, result, left(), right(), config,
                                        "identity")
                  .ok());
  for (const auto mode : {SnapshotLoadMode::kStream, SnapshotLoadMode::kMmap}) {
    auto loaded = core::LoadAlignmentResult(path, left(), right(), config,
                                            "identity", mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->iterations.size(), result.iterations.size());
    EXPECT_EQ(loaded->converged_at, result.converged_at);
    EXPECT_EQ(loaded->instances.max_left(), result.instances.max_left());
    EXPECT_EQ(loaded->instances.max_right(), result.instances.max_right());
    EXPECT_EQ(Tables(*loaded, left(), right()),
              Tables(result, left(), right()));
  }
  std::remove(path.c_str());
}

TEST_F(ResultSnapshotTest, SavingIsDeterministic) {
  const AlignmentConfig config = FixedWorkConfig(2, 0);
  const AlignmentResult result = Run(config);
  const std::string p1 = TempPath("det1.result");
  const std::string p2 = TempPath("det2.result");
  ASSERT_TRUE(core::SaveAlignmentResult(p1, result, left(), right(), config,
                                        "identity")
                  .ok());
  ASSERT_TRUE(core::SaveAlignmentResult(p2, result, left(), right(), config,
                                        "identity")
                  .ok());
  EXPECT_EQ(ReadFile(p1), ReadFile(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

// The acceptance criterion of the resumable-runs feature: restarting at
// iteration k yields byte-identical final tables to an uninterrupted run,
// across worker-thread counts and both snapshot load modes.
TEST_F(ResultSnapshotTest, ResumeMatchesColdAcrossThreadsAndModes) {
  constexpr int kMaxIterations = 4;
  constexpr int kCheckpointAt = 2;
  const AlignmentResult cold = Run(FixedWorkConfig(kMaxIterations, 0));
  ASSERT_EQ(cold.iterations.size(), static_cast<size_t>(kMaxIterations));
  const std::string reference = Tables(cold, left(), right());

  const AlignmentConfig partial = FixedWorkConfig(kCheckpointAt, 0);
  const AlignmentResult checkpoint = Run(partial);
  const std::string path = TempPath("resume.result");
  ASSERT_TRUE(core::SaveAlignmentResult(path, checkpoint, left(), right(),
                                        partial, "identity")
                  .ok());

  for (const auto mode : {SnapshotLoadMode::kStream, SnapshotLoadMode::kMmap}) {
    for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
      const AlignmentConfig config = FixedWorkConfig(kMaxIterations, threads);
      auto loaded = core::LoadAlignmentResult(path, left(), right(), config,
                                              "identity", mode);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      core::Aligner aligner(left(), right(), config);
      const AlignmentResult resumed =
          aligner.Resume(std::move(loaded).value());
      EXPECT_EQ(resumed.iterations.size(),
                static_cast<size_t>(kMaxIterations));
      EXPECT_EQ(resumed.converged_at, cold.converged_at);
      EXPECT_EQ(Tables(resumed, left(), right()), reference)
          << "mode=" << (mode == SnapshotLoadMode::kMmap ? "mmap" : "stream")
          << " threads=" << threads;
    }
  }
  std::remove(path.c_str());
}

TEST_F(ResultSnapshotTest, ResumeFromConvergedCheckpointSkipsLoop) {
  AlignmentConfig config;
  config.max_iterations = 10;
  config.record_history = false;
  const AlignmentResult cold = Run(config);
  ASSERT_GT(cold.converged_at, 0);

  const std::string path = TempPath("converged.result");
  ASSERT_TRUE(core::SaveAlignmentResult(path, cold, left(), right(), config,
                                        "identity")
                  .ok());
  auto loaded =
      core::LoadAlignmentResult(path, left(), right(), config, "identity");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  core::Aligner aligner(left(), right(), config);
  const AlignmentResult resumed = aligner.Resume(std::move(loaded).value());
  EXPECT_EQ(resumed.iterations.size(), cold.iterations.size());
  EXPECT_EQ(resumed.converged_at, cold.converged_at);
  EXPECT_EQ(Tables(resumed, left(), right()), Tables(cold, left(), right()));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Failure modes: corruption, truncation, version and key mismatches
// ---------------------------------------------------------------------------

class ResultSnapshotCorruptionTest : public ResultSnapshotTest {
 protected:
  void SetUp() override {
    ResultSnapshotTest::SetUp();
    config_ = FixedWorkConfig(2, 0);
    const AlignmentResult result = Run(config_);
    path_ = TempPath("corruption_base.result");
    ASSERT_TRUE(core::SaveAlignmentResult(path_, result, left(), right(),
                                          config_, "identity")
                    .ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Rewrites the FNV-1a trailer so a deliberate mutation is *not* caught by
  // the checksum — for testing the checks that must fire before/after it.
  static std::string WithFixedTrailer(std::string bytes) {
    const size_t body = bytes.size() - sizeof(storage::kSnapshotMagic) -
                        sizeof(uint64_t);
    const uint64_t checksum =
        storage::FnvHash(bytes.data() + sizeof(storage::kSnapshotMagic), body);
    for (int i = 0; i < 8; ++i) {
      bytes[bytes.size() - 8 + static_cast<size_t>(i)] =
          static_cast<char>(checksum >> (8 * i));
    }
    return bytes;
  }

  // Damage must be classified, not just rejected: kInvalidArgument means
  // "wrong kind of file" (magic/version region), kDataLoss means "right
  // file, corrupt bytes" — the code crash recovery is allowed to fall back
  // to recomputation on. The modes differ inside the 12-byte header: the
  // mmap path verifies the whole-file checksum before reading anything
  // past the magic, the streaming path reads magic and version first.
  void ExpectLoadFails(const std::string& path, const std::string& label,
                       util::StatusCode want_stream,
                       util::StatusCode want_mmap) {
    for (const auto mode :
         {SnapshotLoadMode::kStream, SnapshotLoadMode::kMmap}) {
      auto loaded = core::LoadAlignmentResult(path, left(), right(), config_,
                                              "identity", mode);
      const char* mode_name =
          mode == SnapshotLoadMode::kMmap ? "mmap" : "stream";
      ASSERT_FALSE(loaded.ok())
          << label << " was not rejected by " << mode_name;
      // Damaged bytes are corruption, never a run-setup verdict — even when
      // the flipped byte lives in the run-key section (the streaming loader
      // verifies the trailer before trusting a key mismatch).
      EXPECT_EQ(loaded.status().code(),
                mode == SnapshotLoadMode::kMmap ? want_mmap : want_stream)
          << label << " via " << mode_name << ": "
          << loaded.status().ToString();
    }
  }

  AlignmentConfig config_;
  std::string path_;
  std::string bytes_;
};

TEST_F(ResultSnapshotCorruptionTest, RejectsByteFlipsEverywhere) {
  const std::string bad_path = TempPath("flip.result");
  for (size_t offset = 0; offset < bytes_.size();
       offset += 1 + bytes_.size() / 23) {
    std::string mutated = bytes_;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x5a);
    WriteFile(bad_path, mutated);
    ExpectLoadFails(bad_path, "byte flip at offset " + std::to_string(offset),
                    offset < 12 ? util::StatusCode::kInvalidArgument
                                : util::StatusCode::kDataLoss,
                    offset < 8 ? util::StatusCode::kInvalidArgument
                               : util::StatusCode::kDataLoss);
  }
  std::remove(bad_path.c_str());
}

TEST_F(ResultSnapshotCorruptionTest, RejectsTruncation) {
  const std::string bad_path = TempPath("trunc.result");
  for (size_t keep : {size_t{0}, size_t{4}, size_t{12}, bytes_.size() / 3,
                      bytes_.size() / 2, bytes_.size() - 1}) {
    WriteFile(bad_path, bytes_.substr(0, keep));
    // A file cut inside the magic is "not a result snapshot"; cut anywhere
    // after the header it is a torn write — data loss.
    const util::StatusCode want = keep < 12
                                      ? util::StatusCode::kInvalidArgument
                                      : util::StatusCode::kDataLoss;
    ExpectLoadFails(bad_path, "truncation to " + std::to_string(keep), want,
                    want);
  }
  std::remove(bad_path.c_str());
}

TEST_F(ResultSnapshotCorruptionTest, RejectsVersionMismatch) {
  // Bump the version field and re-seal the checksum, so the version check
  // itself (not the corruption detection) must reject the file.
  std::string mutated = bytes_;
  mutated[sizeof(storage::kSnapshotMagic)] =
      static_cast<char>(core::kResultSnapshotVersion + 1);
  const std::string bad_path = TempPath("version.result");
  WriteFile(bad_path, WithFixedTrailer(std::move(mutated)));
  for (const auto mode : {SnapshotLoadMode::kStream, SnapshotLoadMode::kMmap}) {
    auto loaded = core::LoadAlignmentResult(bad_path, left(), right(),
                                            config_, "identity", mode);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("unsupported result snapshot "
                                             "version"),
              std::string::npos)
        << loaded.status().ToString();
  }
  std::remove(bad_path.c_str());
}

TEST_F(ResultSnapshotCorruptionTest, RejectsOntologySnapshotFile) {
  // An *ontology* snapshot (different magic) must be rejected up front.
  std::string mutated = bytes_;
  std::memcpy(mutated.data(), storage::kSnapshotMagic,
              sizeof(storage::kSnapshotMagic));
  const std::string bad_path = TempPath("wrong_magic.result");
  WriteFile(bad_path, mutated);
  ExpectLoadFails(bad_path, "wrong magic", util::StatusCode::kInvalidArgument,
                  util::StatusCode::kInvalidArgument);

  EXPECT_FALSE(core::LoadAlignmentResult(TempPath("does_not_exist.result"),
                                         left(), right(), config_, "identity")
                   .ok());
}

TEST_F(ResultSnapshotCorruptionTest, RejectsDifferentRunSetup) {
  const auto expect_key_rejected = [&](const AlignmentConfig& config,
                                       const std::string& matcher,
                                       const std::string& label) {
    auto loaded =
        core::LoadAlignmentResult(path_, left(), right(), config, matcher);
    ASSERT_FALSE(loaded.ok()) << label;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kFailedPrecondition)
        << label << ": " << loaded.status().ToString();
  };

  AlignmentConfig theta = config_;
  theta.theta = 0.25;
  expect_key_rejected(theta, "identity", "different theta");

  AlignmentConfig negative = config_;
  negative.use_negative_evidence = true;
  expect_key_rejected(negative, "identity", "negative evidence toggled");

  AlignmentConfig sample = config_;
  sample.class_instance_sample = 7;
  expect_key_rejected(sample, "identity", "different class sample");

  expect_key_rejected(config_, "fuzzy", "different matcher");

  // A cap below the checkpoint's completed iterations cannot be honored.
  AlignmentConfig fewer = config_;
  fewer.max_iterations = 1;
  expect_key_rejected(fewer, "identity", "lowered iteration cap");

  // A raised iteration cap or different thread count is NOT a different run.
  AlignmentConfig more = config_;
  more.max_iterations = 9;
  more.num_threads = 4;
  more.record_history = true;
  EXPECT_TRUE(core::LoadAlignmentResult(path_, left(), right(), more,
                                        "identity")
                  .ok());

  // A different ontology pair must be rejected via the fingerprint.
  synth::ProfileOptions options;
  options.scale = 0.5;
  options.seed = 43;
  auto other = synth::MakeOaeiRestaurantPair(options);
  ASSERT_TRUE(other.ok());
  auto loaded = core::LoadAlignmentResult(path_, *other->left, *other->right,
                                          config_, "identity");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace paris
