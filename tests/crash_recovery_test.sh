#!/usr/bin/env bash
# Crash-recovery test for paris_align's checkpoint/auto-resume machinery.
#
#   crash_recovery_test.sh PARIS_GENERATE PARIS_ALIGN
#
# SIGKILLs checkpointing alignment runs at deterministic pseudo-random
# points (plus a few simulated crashes injected *inside* the durable-write
# sequence via PARIS_FAULT_INJECT=...:abort), resumes each time with
# --auto-resume, and asserts that the final completed run produces output
# byte-identical to an uninterrupted run — across worker-thread counts.
# Timings and the "resumed after iteration" notice are masked; everything
# else must match to the byte.
set -u

GENERATE=$(realpath "$1")
ALIGN=$(realpath "$2")

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

# Scale 16 stretches one run to ~0.5-1s so the kill schedule below actually
# lands mid-run instead of after a sub-100ms run has already finished.
"$GENERATE" restaurant rest 16 > /dev/null \
  || { echo "FAIL: generate" >&2; exit 1; }

# Deterministic kill schedule: same seed, same delays, every run.
RANDOM=20260807

fail() { echo "FAIL: $*" >&2; exit 1; }

# Masks wall-clock, the resume notice, and the output prefix (the reference
# and final runs write to different prefixes) so stdout compares
# byte-for-byte between a cold run and a recovered one.
mask() {
  sed -E -e 's/ in [0-9]+\.[0-9]{2}s / in X.XXs /' \
         -e '/^resumed after iteration /d' \
         -e 's/^wrote [A-Za-z0-9_]+_\{/wrote OUT_{/'
}

align() {
  "$ALIGN" rest_left.nt rest_right.nt --max-iterations 3 --threads "$1" \
    "${@:2}"
}

total_kills=0
for threads in 0 4; do
  # --- uninterrupted reference ---------------------------------------------
  align "$threads" --output ref > ref_stdout_raw.txt 2> /dev/null \
    || fail "reference run (threads=$threads)"
  mask < ref_stdout_raw.txt > ref_stdout.txt

  ckpt="ckpt_$threads"

  # --- SIGKILL at randomized points, resuming each time --------------------
  for i in 1 2 3 4 5; do
    delay=$(awk -v r=$RANDOM 'BEGIN { printf "%.3f", 0.05 + (r % 1000) / 1700 }')
    align "$threads" --checkpoint-dir "$ckpt" --checkpoint-interval 0.001 \
      --auto-resume --output crash > /dev/null 2> /dev/null &
    pid=$!
    sleep "$delay"
    if kill -KILL "$pid" 2> /dev/null; then
      total_kills=$((total_kills + 1))
    fi
    wait "$pid" 2> /dev/null
  done

  # --- simulated crashes inside the durable-write sequence itself ----------
  for spec in atomic_write.fsync_file:rand:abort \
              atomic_write.rename:rand:abort \
              checkpoint.manifest:rand:abort; do
    PARIS_FAULT_INJECT="$spec" PARIS_FAULT_SEED=$RANDOM \
      align "$threads" --checkpoint-dir "$ckpt" --checkpoint-interval 0.001 \
      --auto-resume --output crash > /dev/null 2> /dev/null
    # Aborted mid-write or survived to completion: both are valid starting
    # states for the next resume.
  done

  # --- the final undisturbed run must be byte-identical --------------------
  align "$threads" --checkpoint-dir "$ckpt" --checkpoint-interval 0.001 \
    --auto-resume --output final > final_stdout_raw.txt 2> /dev/null \
    || fail "final resume run (threads=$threads)"
  mask < final_stdout_raw.txt > final_stdout.txt

  for table in instances relations classes; do
    cmp -s "ref_${table}.tsv" "final_${table}.tsv" \
      || fail "${table}.tsv differs after crash recovery (threads=$threads)"
  done
  cmp -s ref_stdout.txt final_stdout.txt \
    || fail "stdout differs after crash recovery (threads=$threads)"
  echo "threads=$threads: recovered to byte-identical output" >&2
done

# A kill that consistently arrives after the run already finished would turn
# this test into a no-op; require that a fair share of the schedule landed.
[ "$total_kills" -ge 3 ] \
  || fail "only $total_kills/10 kills landed mid-run; raise the dataset scale"

echo "crash recovery byte-identical across runs ($total_kills mid-flight kills)"
