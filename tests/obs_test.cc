// Tests for paris::obs (trace recorder, metrics registry) and the
// observability instrumentation of the pass pipeline: alignment output must
// be byte-identical with observability on vs off across thread counts,
// metrics must be deterministic across thread AND shard counts, the
// exported trace JSON must be structurally sound with full shard coverage,
// and the convergence telemetry must satisfy its counting invariants.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "paris/api/session.h"
#include "paris/core/aligner.h"
#include "paris/core/pass.h"
#include "paris/core/result_io.h"
#include "paris/core/telemetry.h"
#include "paris/obs/hooks.h"
#include "paris/obs/metrics.h"
#include "paris/obs/trace.h"
#include "paris/ontology/snapshot.h"
#include "paris/rdf/store.h"
#include "paris/rdf/term.h"
#include "paris/synth/profiles.h"
#include "paris/util/logging.h"

namespace paris {
namespace {

using core::AlignmentConfig;
using core::AlignmentResult;

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// TraceRecorder / Span
// ---------------------------------------------------------------------------

TEST(TraceTest, RecordsSpansAndExportsChromeJson) {
  obs::TraceRecorder recorder(2);  // workers 0,1 + main slot 2
  EXPECT_EQ(recorder.num_slots(), 3u);
  EXPECT_EQ(recorder.main_slot(), 2u);
  {
    obs::Span run(&recorder, recorder.main_slot(), "run", "align");
    obs::Span shard(&recorder, 0, "shard", "instance", /*iteration=*/1,
                    /*shard=*/5);
  }
  EXPECT_EQ(recorder.num_events(), 2u);

  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  // One thread_name metadata event per slot.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"M\""), 3u);
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-0\""), std::string::npos);
  // Both spans as complete events; the shard span carries its scope args.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"iteration\":1"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":5"), std::string::npos);
  EXPECT_EQ(json[json.size() - 2], '}');  // closes, newline-terminated
}

// The storage build chain (TripleStore::Finalize → ColumnarIndex::Build)
// reports its sub-phases as "io" spans.
TEST(TraceTest, IndexBuildEmitsIoSpans) {
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  const rdf::RelId rel = store.InternRelation(pool.InternIri("r"));
  store.Add(pool.InternIri("a"), rel, pool.InternIri("b"));
  obs::TraceRecorder recorder(1);
  store.Finalize(nullptr, {&recorder, nullptr});
  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  for (const char* name :
       {"index.build", "index.bucket_by_owner", "index.sort_dedup",
        "index.pack_columns", "index.pack_pairs"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << name;
  }
}

TEST(TraceTest, NullRecorderSpanStillTimes) {
  obs::Span span(nullptr, 0, "bench", "timer");
  const double first = span.End();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.End(), first);  // idempotent
  EXPECT_EQ(span.elapsed_seconds(), first);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersMergeAcrossSlots) {
  obs::MetricsRegistry registry(2);
  const obs::MetricId id = registry.Counter("pass.items");
  EXPECT_EQ(registry.Counter("pass.items"), id);  // idempotent by name
  registry.Add(id, 0, 3);
  registry.Add(id, 1, 4);
  registry.Add(id, registry.main_slot(), 5);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "pass.items");
  EXPECT_EQ(snapshot.counters[0].value, 12u);
}

TEST(MetricsTest, HistogramBucketsAndMergeCounts) {
  obs::MetricsRegistry registry(1);
  const obs::MetricId id = registry.Histogram("h", {1.0, 2.0});
  registry.Observe(id, 0, 0.5);   // <= 1.0
  registry.Observe(id, 0, 1.5);   // <= 2.0
  registry.Observe(id, 0, 99.0);  // overflow
  registry.MergeCounts(id, registry.main_slot(), {10, 0, 1});
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(snapshot.histograms[0].counts,
            (std::vector<uint64_t>{11, 1, 2}));
}

TEST(MetricsTest, GaugesAndSortedJson) {
  obs::MetricsRegistry registry(1);
  registry.SetGauge(registry.Gauge("z.last"), -7);
  registry.Add(registry.Counter("b"), 0, 2);
  registry.Add(registry.Counter("a"), 0, 1);
  std::ostringstream out;
  registry.WriteJson(out);
  EXPECT_EQ(out.str(),
            "{\"counters\":{\"a\":1,\"b\":2},\"gauges\":{\"z.last\":-7},"
            "\"histograms\":{}}");
  // Equal registries snapshot equal.
  EXPECT_EQ(registry.Snapshot(), registry.Snapshot());
}

// ---------------------------------------------------------------------------
// Instrumented pipeline
// ---------------------------------------------------------------------------

std::string Tables(const AlignmentResult& result,
                   const ontology::Ontology& left,
                   const ontology::Ontology& right) {
  std::ostringstream out;
  core::WriteInstanceAlignment(result.instances, left, right, out);
  core::WriteRelationAlignment(result.relations, left, right, out);
  core::WriteClassAlignment(result.classes, left, right, out);
  return out.str();
}

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::ProfileOptions options;
    options.scale = 0.5;
    auto pair = synth::MakeOaeiRestaurantPair(options);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    pair_ = std::move(pair).value();
  }

  static AlignmentConfig FixedWorkConfig(size_t threads, size_t shards = 0) {
    AlignmentConfig config;
    config.max_iterations = 3;
    config.convergence_threshold = 0.0;
    config.record_history = false;
    config.num_threads = threads;
    config.num_shards = shards;
    return config;
  }

  AlignmentResult Run(const AlignmentConfig& config, obs::Hooks hooks = {}) {
    core::Aligner aligner(*pair_.left, *pair_.right, config);
    aligner.set_observability(hooks);
    return aligner.Run();
  }

  const ontology::Ontology& left() const { return *pair_.left; }
  const ontology::Ontology& right() const { return *pair_.right; }

  synth::OntologyPair pair_;
};

// The subsystem's prime directive: observability never changes the output.
TEST_F(ObsPipelineTest, OutputByteIdenticalWithObservabilityOnAcrossThreads) {
  const std::string reference =
      Tables(Run(FixedWorkConfig(0)), left(), right());
  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    obs::TraceRecorder trace(threads == 0 ? 1 : threads);
    obs::MetricsRegistry metrics(threads == 0 ? 1 : threads);
    const AlignmentResult result =
        Run(FixedWorkConfig(threads), {&trace, &metrics});
    EXPECT_EQ(Tables(result, left(), right()), reference)
        << "threads=" << threads;
    EXPECT_GT(trace.num_events(), 0u) << "threads=" << threads;
  }
}

// Metrics restrict themselves to integer counts merged in slot order, so
// the snapshot is identical across thread AND shard counts.
TEST_F(ObsPipelineTest, MetricsDeterministicAcrossThreadAndShardCounts) {
  std::string reference;
  for (size_t shards : {size_t{7}, size_t{64}}) {
    for (size_t threads : {size_t{0}, size_t{4}}) {
      obs::MetricsRegistry metrics(threads == 0 ? 1 : threads);
      Run(FixedWorkConfig(threads, shards), {nullptr, &metrics});
      std::ostringstream out;
      metrics.WriteJson(out);
      if (reference.empty()) {
        reference = out.str();
        EXPECT_NE(reference.find("\"instance.entities_scored\":"),
                  std::string::npos);
        EXPECT_NE(reference.find("\"convergence.score_delta\""),
                  std::string::npos);
        EXPECT_NE(reference.find("\"run.iterations\":3"), std::string::npos);
      } else {
        EXPECT_EQ(out.str(), reference)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

// Structural trace checks: every (iteration, pass) gets a span per shard,
// every iteration gets an iteration span, the run gets a run span.
TEST_F(ObsPipelineTest, TraceCoversEveryIterationPassAndShard) {
  const size_t threads = 2;
  AlignmentConfig config = FixedWorkConfig(threads, 4);
  obs::TraceRecorder trace(threads);
  core::Aligner aligner(left(), right(), config);
  aligner.set_observability({&trace, nullptr});
  // Probe the folded shard counts the layout actually produced.
  size_t instance_shards = 0, relation_shards = 0, class_shards = 0;
  aligner.set_shard_observer([&](const core::ShardProgress& progress) {
    if (std::string(progress.pass) == "instance") {
      instance_shards = progress.num_shards;
    } else if (std::string(progress.pass) == "relation") {
      relation_shards = progress.num_shards;
    } else {
      class_shards = progress.num_shards;
    }
    return true;
  });
  const AlignmentResult result = aligner.Run();
  ASSERT_EQ(result.iterations.size(), 3u);
  ASSERT_GT(instance_shards, 0u);
  ASSERT_GT(relation_shards, 0u);
  ASSERT_GT(class_shards, 0u);

  std::ostringstream out;
  trace.WriteJson(out);
  const std::string json = out.str();
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"run\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"iteration\""), 3u);
  // Pass spans: (instance + relation) per iteration + one class pass.
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"pass\""), 7u);
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"shard\",\"name\":\"instance\""),
            3 * instance_shards);
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"shard\",\"name\":\"relation\""),
            3 * relation_shards);
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"shard\",\"name\":\"class\""),
            class_shards);
  // Serial bookends are traced per pass phase.
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"instance.prepare\""), 3u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"class.merge\""), 1u);
}

// The per-iteration convergence telemetry counts every left instance
// exactly once, and its per-shard / per-delta breakdowns tie out.
TEST_F(ObsPipelineTest, ConvergenceTelemetryInvariants) {
  AlignmentConfig config = FixedWorkConfig(4, 8);
  const AlignmentResult result = Run(config);
  ASSERT_EQ(result.iterations.size(), 3u);
  bool any_changed = false;
  for (const core::IterationRecord& record : result.iterations) {
    const core::ConvergenceTelemetry& t = record.telemetry;
    EXPECT_EQ(t.num_changed(), t.changed + t.gained + t.dropped);
    EXPECT_EQ(std::accumulate(t.shard_changed.begin(), t.shard_changed.end(),
                              uint64_t{0}),
              t.num_changed())
        << "iteration " << record.index;
    ASSERT_EQ(t.score_delta_counts.size(), core::kScoreDeltaBuckets);
    EXPECT_EQ(std::accumulate(t.score_delta_counts.begin(),
                              t.score_delta_counts.end(), uint64_t{0}),
              t.stable + t.changed)
        << "iteration " << record.index;
    any_changed = any_changed || t.num_changed() > 0;
  }
  // Iteration 1 starts from an empty assignment: everything it aligns is a
  // gain.
  EXPECT_TRUE(any_changed);
  EXPECT_EQ(result.iterations[0].telemetry.gained,
            result.iterations[0].num_left_aligned);
}

// ---------------------------------------------------------------------------
// Session facade
// ---------------------------------------------------------------------------

TEST_F(ObsPipelineTest, SessionExportsTraceAndMetrics) {
  const std::string snapshot_path =
      ::testing::TempDir() + "/obs_session.snap";
  ASSERT_TRUE(
      ontology::SaveAlignmentSnapshot(snapshot_path, left(), right()).ok());

  api::Session::Options options;
  options.config = FixedWorkConfig(2, 8);
  options.trace = true;
  options.metrics = true;
  api::Session session(options);
  ASSERT_TRUE(session.LoadFromSnapshot(snapshot_path).ok());
  size_t last_num_changed = 0;
  api::RunCallbacks callbacks;
  callbacks.on_iteration = [&](const api::IterationProgress& progress) {
    last_num_changed = progress.num_changed;
  };
  ASSERT_TRUE(session.Align(callbacks).ok());

  std::ostringstream trace_out;
  ASSERT_TRUE(session.WriteTrace(trace_out).ok());
  const std::string trace_json = trace_out.str();
  EXPECT_EQ(trace_json.find("{\"displayTimeUnit\""), 0u);
  // Loading went through the facade, so the IO span is on the timeline
  // alongside the run.
  EXPECT_NE(trace_json.find("\"name\":\"snapshot.load\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"cat\":\"shard\""), std::string::npos);

  auto metrics = session.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_FALSE(metrics->counters.empty());

  std::ostringstream metrics_out;
  ASSERT_TRUE(session.WriteMetricsJson(metrics_out).ok());
  const std::string metrics_json = metrics_out.str();
  EXPECT_NE(metrics_json.find("\"iterations\":[{\"iteration\":1"),
            std::string::npos);
  EXPECT_NE(metrics_json.find("\"shard_changed\":["), std::string::npos);
  // The last iteration's telemetry reached the progress callback too.
  const auto& last = session.result().iterations.back();
  EXPECT_EQ(last_num_changed, last.telemetry.num_changed());

  std::remove(snapshot_path.c_str());
}

TEST(ObsSessionTest, ObservabilityAccessorsRequireOptIn) {
  api::Session session;  // defaults: trace/metrics off
  std::ostringstream out;
  EXPECT_EQ(session.WriteTrace(out).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Metrics().status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.WriteMetricsJson(out).code(),
            util::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(LoggingTest, SinkCapturesPrefixedLines) {
  std::vector<std::string> lines;
  util::SetLogSink([&](util::LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  const util::LogLevel saved = util::GetLogLevel();
  util::SetLogLevel(util::LogLevel::kInfo);
  PARIS_LOG(kDebug) << "filtered out";
  PARIS_LOG(kWarning) << "kept " << 42;
  util::SetLogLevel(saved);
  util::SetLogSink(nullptr);  // restore stderr
  PARIS_LOG(kDebug) << "after restore";  // must not reach `lines`

  ASSERT_EQ(lines.size(), 1u);
  // Prefix: [<level> <monotonic seconds> t<dense thread id>] <message>
  EXPECT_EQ(lines[0].find("[W "), 0u);
  EXPECT_NE(lines[0].find(" t"), std::string::npos);
  EXPECT_NE(lines[0].find("] kept 42"), std::string::npos);
}

TEST(LoggingTest, LogLevelFromName) {
  EXPECT_EQ(util::LogLevelFromName("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::LogLevelFromName("warning"), util::LogLevel::kWarning);
  EXPECT_EQ(util::LogLevelFromName("none"), util::LogLevel::kNone);
  EXPECT_EQ(util::LogLevelFromName("verbose"), std::nullopt);
}

}  // namespace
}  // namespace paris
