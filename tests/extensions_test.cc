// Tests for the future-work extensions the paper sketches: the dampening
// factor (§5.1), the relation-name prior (§7), multi-ontology alignment
// (§7), and alignment-result serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "paris/core/aligner.h"
#include "paris/core/multi_align.h"
#include "paris/core/result_io.h"
#include "paris/ontology/ontology.h"
#include "paris/synth/profiles.h"
#include "paris/util/logging.h"

namespace paris::core {
namespace {

using ontology::Ontology;
using ontology::OntologyBuilder;
using rdf::TermKind;

class ExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SetLogLevel(util::LogLevel::kWarning);
  }

  Ontology BuildSmall(const std::string& ns, const std::string& name_rel,
                      const std::string& link_rel, int count) {
    OntologyBuilder b(&pool_, ns);
    for (int i = 0; i < count; ++i) {
      const std::string e = ns + ":e" + std::to_string(i);
      b.AddLiteralFact(e, ns + ":" + name_rel, "Entity " + std::to_string(i));
      b.AddFact(e, ns + ":" + link_rel,
                ns + ":e" + std::to_string((i + 1) % count));
    }
    auto onto = b.Build();
    EXPECT_TRUE(onto.ok());
    return std::move(onto).value();
  }

  rdf::TermId Iri(const std::string& s) {
    return *pool_.Find(s, TermKind::kIri);
  }

  rdf::TermPool pool_;
};

// ---------------------------------------------------------------------------
// Dampening
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, DampeningPreservesConvergedMatches) {
  Ontology a = BuildSmall("a", "name", "next", 12);
  Ontology b = BuildSmall("b", "label", "succ", 12);
  AlignmentConfig plain;
  plain.max_iterations = 6;
  AlignmentConfig damped = plain;
  damped.dampening = 0.5;
  AlignmentResult r1 = Aligner(a, b, plain).Run();
  AlignmentResult r2 = Aligner(a, b, damped).Run();
  ASSERT_EQ(r1.instances.max_left().size(), r2.instances.max_left().size());
  for (const auto& [l, c] : r1.instances.max_left()) {
    const auto* other = r2.instances.MaxOfLeft(l);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->other, c.other);  // same assignment, possibly damped p
  }
}

TEST(BlendEquivalencesTest, BlendsProbabilities) {
  InstanceEquivalences old_store;
  old_store.Set(1, {{10, 0.8}});
  old_store.Set(2, {{11, 0.6}});
  old_store.Finalize();
  InstanceEquivalences fresh;
  fresh.Set(1, {{10, 0.4}});   // overlapping candidate
  fresh.Set(3, {{12, 0.9}});   // new instance
  fresh.Finalize();
  InstanceEquivalences blended =
      BlendEquivalences(old_store, fresh, /*lambda=*/0.5, /*threshold=*/0.1,
                        /*max_candidates=*/8);
  // 0.5·0.8 + 0.5·0.4 = 0.6.
  ASSERT_NE(blended.MaxOfLeft(1), nullptr);
  EXPECT_NEAR(blended.MaxOfLeft(1)->prob, 0.6, 1e-12);
  // Instance 2 only in the old store: 0.5·0.6 = 0.3 survives.
  ASSERT_NE(blended.MaxOfLeft(2), nullptr);
  EXPECT_NEAR(blended.MaxOfLeft(2)->prob, 0.3, 1e-12);
  // Instance 3 only fresh: 0.5·0.9 = 0.45.
  ASSERT_NE(blended.MaxOfLeft(3), nullptr);
  EXPECT_NEAR(blended.MaxOfLeft(3)->prob, 0.45, 1e-12);
}

TEST(BlendEquivalencesTest, ThresholdDropsWeakBlends) {
  InstanceEquivalences old_store;
  old_store.Set(1, {{10, 0.15}});
  old_store.Finalize();
  InstanceEquivalences fresh;
  fresh.Finalize();
  InstanceEquivalences blended =
      BlendEquivalences(old_store, fresh, 0.5, 0.1, 8);
  EXPECT_EQ(blended.MaxOfLeft(1), nullptr);  // 0.075 < 0.1
}

// ---------------------------------------------------------------------------
// Relation-name prior
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, NamePriorBoostsBootstrapButNotConvergence) {
  // Similar relation names across the two ontologies.
  Ontology a = BuildSmall("a", "phoneNumber", "knows", 10);
  Ontology b = BuildSmall("b", "phone_number", "friendOf", 10);

  AlignmentConfig plain;
  plain.max_iterations = 6;
  AlignmentConfig prior = plain;
  prior.use_relation_name_prior = true;

  AlignmentResult r_plain = Aligner(a, b, plain).Run();
  AlignmentResult r_prior = Aligner(a, b, prior).Run();

  // Iteration-1 probabilities are higher with the prior (the bootstrap
  // score exceeds θ for the similarly-named relation pair)...
  const rdf::TermId e0 = Iri("a:e0");
  ASSERT_TRUE(r_plain.iterations.front().max_left.contains(e0));
  ASSERT_TRUE(r_prior.iterations.front().max_left.contains(e0));
  EXPECT_GT(r_prior.iterations.front().max_left.at(e0).prob,
            r_plain.iterations.front().max_left.at(e0).prob);

  // ... but the converged assignments coincide.
  ASSERT_EQ(r_plain.instances.max_left().size(),
            r_prior.instances.max_left().size());
  for (const auto& [l, c] : r_plain.instances.max_left()) {
    const auto* other = r_prior.instances.MaxOfLeft(l);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->other, c.other);
    EXPECT_NEAR(other->prob, c.prob, 1e-9);
  }
}

TEST(RelationScoresTest, BootstrapPriorLookup) {
  RelationScores scores = RelationScores::Bootstrap(0.1);
  EXPECT_DOUBLE_EQ(scores.SubLeftRight(1, 2), 0.1);
  scores.SetBootstrapPrior(1, 2, 0.4);
  EXPECT_DOUBLE_EQ(scores.SubLeftRight(1, 2), 0.4);
  EXPECT_DOUBLE_EQ(scores.SubRightLeft(2, 1), 0.4);
  // The inverted twin inherits the prior via canonicalization.
  EXPECT_DOUBLE_EQ(scores.SubLeftRight(-1, -2), 0.4);
  // Unrelated pairs keep θ.
  EXPECT_DOUBLE_EQ(scores.SubLeftRight(1, 3), 0.1);
  // An inverse pairing gets no name prior.
  EXPECT_DOUBLE_EQ(scores.SubLeftRight(1, -2), 0.1);
}

// ---------------------------------------------------------------------------
// Multi-ontology alignment
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, MultiAlignerClustersThreeOntologies) {
  Ontology a = BuildSmall("a", "name", "next", 8);
  Ontology b = BuildSmall("b", "label", "succ", 8);
  Ontology c = BuildSmall("c", "title", "after", 8);

  AlignmentConfig config;
  config.max_iterations = 4;
  MultiAligner aligner({&a, &b, &c}, config);
  MultiAlignmentResult result = aligner.Run();

  ASSERT_EQ(result.pairs.size(), 3u);  // (0,1), (0,2), (1,2)
  ASSERT_EQ(result.pairwise.size(), 3u);
  // Every entity i forms one cluster of size 3.
  ASSERT_EQ(result.clusters.size(), 8u);
  for (const EntityCluster& cluster : result.clusters) {
    EXPECT_EQ(cluster.members.size(), 3u);
    EXPECT_GT(cluster.min_edge_prob, 0.5);
    // One member per ontology, and all three share the entity index.
    EXPECT_EQ(cluster.members[0].ontology, 0u);
    EXPECT_EQ(cluster.members[1].ontology, 1u);
    EXPECT_EQ(cluster.members[2].ontology, 2u);
    const std::string a_name(pool_.lexical(cluster.members[0].term));
    const std::string b_name(pool_.lexical(cluster.members[1].term));
    EXPECT_EQ(a_name.substr(1), b_name.substr(1));  // ":eN" suffix matches
  }
}

TEST_F(ExtensionsTest, MultiAlignerRequiresReciprocalMatches) {
  // Two ontologies with an ambiguity: two left entities share one label, so
  // neither is reciprocal-best for the right entity... actually the right
  // entity's best is deterministic; only that one pair clusters.
  OntologyBuilder ba(&pool_, "a");
  ba.AddLiteralFact("a:x1", "a:name", "Twin");
  ba.AddLiteralFact("a:x2", "a:name", "Twin");
  auto a = ba.Build();
  ASSERT_TRUE(a.ok());
  OntologyBuilder bb(&pool_, "b");
  bb.AddLiteralFact("b:y", "b:label", "Twin");
  auto b = bb.Build();
  ASSERT_TRUE(b.ok());

  AlignmentConfig config;
  config.max_iterations = 3;
  MultiAligner aligner({&*a, &*b}, config);
  MultiAlignmentResult result = aligner.Run();
  // At most one cluster: b:y can be reciprocal with only one of the twins.
  ASSERT_LE(result.clusters.size(), 1u);
  if (!result.clusters.empty()) {
    EXPECT_EQ(result.clusters[0].members.size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Result serialization
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, InstanceAlignmentRoundTrip) {
  Ontology a = BuildSmall("a", "name", "next", 6);
  Ontology b = BuildSmall("b", "label", "succ", 6);
  AlignmentConfig config;
  config.max_iterations = 4;
  AlignmentResult result = Aligner(a, b, config).Run();
  ASSERT_GT(result.instances.num_left_aligned(), 0u);

  std::ostringstream out;
  WriteInstanceAlignment(result.instances, a, b, out);

  std::istringstream in(out.str());
  auto restored = ReadInstanceAlignment(in, pool_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->max_left().size(), result.instances.max_left().size());
  for (const auto& [l, c] : result.instances.max_left()) {
    const auto* other = restored->MaxOfLeft(l);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->other, c.other);
    EXPECT_NEAR(other->prob, c.prob, 1e-9);
  }
}

TEST_F(ExtensionsTest, ReadRejectsMalformedLines) {
  std::istringstream bad1("a\tb\n");  // two fields
  EXPECT_FALSE(ReadInstanceAlignment(bad1, pool_).ok());
  std::istringstream bad2("a:unknown\tb:unknown\t0.5\n");
  EXPECT_FALSE(ReadInstanceAlignment(bad2, pool_).ok());
  pool_.InternIri("k:a");
  pool_.InternIri("k:b");
  std::istringstream bad3("k:a\tk:b\t1.5\n");  // probability out of range
  EXPECT_FALSE(ReadInstanceAlignment(bad3, pool_).ok());
  std::istringstream good("# comment\n\nk:a\tk:b\t0.75\n");
  auto restored = ReadInstanceAlignment(good, pool_);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_left_aligned(), 1u);
}

TEST_F(ExtensionsTest, OaeiAlignmentFormatWellFormed) {
  Ontology a = BuildSmall("oa", "name", "next", 4);
  Ontology b = BuildSmall("ob", "label", "succ", 4);
  AlignmentConfig config;
  config.max_iterations = 3;
  AlignmentResult result = Aligner(a, b, config).Run();
  std::ostringstream out;
  WriteOaeiAlignment(result.instances, a, b, out);
  const std::string xml = out.str();
  EXPECT_NE(xml.find("<Alignment>"), std::string::npos);
  EXPECT_NE(xml.find("</Alignment>"), std::string::npos);
  EXPECT_NE(xml.find("<Cell>"), std::string::npos);
  EXPECT_NE(xml.find("entity1 rdf:resource=\"oa:e0\""), std::string::npos);
  EXPECT_NE(xml.find("<relation>=</relation>"), std::string::npos);
  // One cell per aligned instance.
  size_t cells = 0;
  for (size_t pos = xml.find("<Cell>"); pos != std::string::npos;
       pos = xml.find("<Cell>", pos + 1)) {
    ++cells;
  }
  EXPECT_EQ(cells, result.instances.max_left().size());
}

TEST_F(ExtensionsTest, RelationAndClassSectionsWritten) {
  OntologyBuilder ba(&pool_, "a");
  ba.AddType("a:e", "a:C");
  ba.AddLiteralFact("a:e", "a:name", "E");
  auto a = ba.Build();
  ASSERT_TRUE(a.ok());
  OntologyBuilder bb(&pool_, "b");
  bb.AddType("b:f", "b:D");
  bb.AddLiteralFact("b:f", "b:label", "E");
  auto b = bb.Build();
  ASSERT_TRUE(b.ok());
  AlignmentConfig config;
  config.max_iterations = 3;
  AlignmentResult result = Aligner(*a, *b, config).Run();

  std::ostringstream rel_out;
  WriteRelationAlignment(result.relations, *a, *b, rel_out);
  EXPECT_NE(rel_out.str().find("a:name\tb:label"), std::string::npos);

  std::ostringstream cls_out;
  WriteClassAlignment(result.classes, *a, *b, cls_out);
  EXPECT_NE(cls_out.str().find("a:C\tb:D"), std::string::npos);
}

}  // namespace
}  // namespace paris::core
