#include <gtest/gtest.h>

#include "paris/baseline/label_match.h"
#include "paris/baseline/self_training.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"

namespace paris::baseline {
namespace {

using ontology::Ontology;
using ontology::OntologyBuilder;
using rdf::TermKind;

class BaselineTest : public ::testing::Test {
 protected:
  void Build(const std::function<void(OntologyBuilder&)>& fill_left,
             const std::function<void(OntologyBuilder&)>& fill_right) {
    OntologyBuilder bl(&pool_, "left");
    fill_left(bl);
    auto l = bl.Build();
    ASSERT_TRUE(l.ok());
    left_ = std::make_unique<Ontology>(std::move(l).value());
    OntologyBuilder br(&pool_, "right");
    fill_right(br);
    auto r = br.Build();
    ASSERT_TRUE(r.ok());
    right_ = std::make_unique<Ontology>(std::move(r).value());
  }

  rdf::TermId Iri(const std::string& s) {
    return *pool_.Find(s, TermKind::kIri);
  }

  rdf::TermPool pool_;
  std::unique_ptr<Ontology> left_;
  std::unique_ptr<Ontology> right_;
};

TEST_F(BaselineTest, MatchesUniqueLabels) {
  Build(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a", "rdfs:label", "Alpha");
        b.AddLiteralFact("l:b", "rdfs:label", "Beta");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:a", "rdfs:label", "Alpha");
        b.AddLiteralFact("r:c", "rdfs:label", "Gamma");
      });
  auto result = AlignByLabel(*left_, *right_);
  EXPECT_EQ(result.num_left_aligned(), 1u);
  const auto* m = result.MaxOfLeft(Iri("l:a"));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->other, Iri("r:a"));
  EXPECT_DOUBLE_EQ(m->prob, 1.0);
  EXPECT_EQ(result.MaxOfLeft(Iri("l:b")), nullptr);
}

TEST_F(BaselineTest, AmbiguousLabelsSkippedWhenUniqueRequired) {
  Build(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a1", "rdfs:label", "John Smith");
        b.AddLiteralFact("l:a2", "rdfs:label", "John Smith");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:b", "rdfs:label", "John Smith");
      });
  auto strict = AlignByLabel(*left_, *right_);
  EXPECT_EQ(strict.num_left_aligned(), 0u);

  LabelMatchConfig lax;
  lax.require_unique = false;
  auto result = AlignByLabel(*left_, *right_, lax);
  EXPECT_EQ(result.num_left_aligned(), 2u);  // both map to r:b
}

TEST_F(BaselineTest, NormalizationOption) {
  Build(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a", "rdfs:label", "The Golden-Lantern");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:a", "rdfs:label", "the golden lantern");
      });
  EXPECT_EQ(AlignByLabel(*left_, *right_).num_left_aligned(), 0u);
  LabelMatchConfig config;
  config.normalize = true;
  EXPECT_EQ(AlignByLabel(*left_, *right_, config).num_left_aligned(), 1u);
}

TEST_F(BaselineTest, PerSideLabelRelations) {
  Build(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:p", "rdfs:label", "Greta Zeller");
        b.AddLiteralFact("l:m", "rdfs:label", "The Lost Echo");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:p", "imdb:name", "Greta Zeller");
        b.AddLiteralFact("r:m", "imdb:title", "The Lost Echo");
      });
  // Default config looks for rdfs:label on both sides → nothing on right.
  EXPECT_EQ(AlignByLabel(*left_, *right_).num_left_aligned(), 0u);
  LabelMatchConfig config;
  config.right_label_relations = {"imdb:name", "imdb:title"};
  auto result = AlignByLabel(*left_, *right_, config);
  EXPECT_EQ(result.num_left_aligned(), 2u);
  EXPECT_EQ(result.MaxOfLeft(Iri("l:p"))->other, Iri("r:p"));
  EXPECT_EQ(result.MaxOfLeft(Iri("l:m"))->other, Iri("r:m"));
}

TEST_F(BaselineTest, MissingLabelRelationYieldsEmpty) {
  Build(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a", "l:other", "Alpha");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:a", "rdfs:label", "Alpha");
      });
  EXPECT_EQ(AlignByLabel(*left_, *right_).num_left_aligned(), 0u);
}

TEST_F(BaselineTest, ResultIsFinalizedStore) {
  Build(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a", "rdfs:label", "Alpha");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:a", "rdfs:label", "Alpha");
      });
  auto result = AlignByLabel(*left_, *right_);
  EXPECT_TRUE(result.finalized());
  // Transpose works too.
  const auto* back = result.MaxOfRight(Iri("r:a"));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->other, Iri("l:a"));
}

// ---------------------------------------------------------------------------
// Self-training baseline (ObjectCoref-style)
// ---------------------------------------------------------------------------

class SelfTrainingTest : public BaselineTest {};

TEST_F(SelfTrainingTest, KernelFromDiscriminatingValues) {
  Build(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a", "l:ssn", "111-22-3333");   // unique key
        b.AddLiteralFact("l:b", "l:city", "Springfield");  // ambiguous
        b.AddLiteralFact("l:c", "l:city", "Springfield");
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:a", "r:id", "111-22-3333");
        b.AddLiteralFact("r:b", "r:town", "Springfield");
        b.AddLiteralFact("r:c", "r:town", "Springfield");
      });
  auto result = AlignBySelfTraining(*left_, *right_);
  // Only the unique key pair is matched; the shared-city entities are not.
  EXPECT_EQ(result.num_left_aligned(), 1u);
  const auto* m = result.MaxOfLeft(Iri("l:a"));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->other, Iri("r:a"));
}

TEST_F(SelfTrainingTest, ExpandsViaLearnedProperties) {
  // Kernel forms from the unique names; the phone property pair is then
  // learned as discriminative and matches the last entity, whose name on
  // the right side differs (it would never match by name alone).
  Build(
      [](OntologyBuilder& b) {
        for (int i = 0; i < 5; ++i) {
          const std::string e = "l:p" + std::to_string(i);
          b.AddLiteralFact(e, "l:name", "Person " + std::to_string(i));
          b.AddLiteralFact(e, "l:phone", "555-000" + std::to_string(i));
        }
        b.AddLiteralFact("l:x", "l:name", "Mononymous");
        b.AddLiteralFact("l:x", "l:phone", "555-9999");
      },
      [](OntologyBuilder& b) {
        for (int i = 0; i < 5; ++i) {
          const std::string e = "r:q" + std::to_string(i);
          b.AddLiteralFact(e, "r:label", "Person " + std::to_string(i));
          b.AddLiteralFact(e, "r:tel", "555-000" + std::to_string(i));
        }
        b.AddLiteralFact("r:y", "r:label", "Totally Different");
        b.AddLiteralFact("r:y", "r:tel", "555-9999");
      });
  SelfTrainingConfig config;
  auto result = AlignBySelfTraining(*left_, *right_, config);
  // Everything including the name-mismatched pair is matched... note the
  // kernel already catches l:x ↔ r:y through the unique shared phone. The
  // property-learning path is exercised by the agreement statistics.
  EXPECT_EQ(result.num_left_aligned(), 6u);
  const auto* m = result.MaxOfLeft(Iri("l:x"));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->other, Iri("r:y"));
}

TEST_F(SelfTrainingTest, EmptyOntologiesProduceNothing) {
  Build([](OntologyBuilder&) {}, [](OntologyBuilder&) {});
  auto result = AlignBySelfTraining(*left_, *right_);
  EXPECT_EQ(result.num_left_aligned(), 0u);
}

TEST_F(SelfTrainingTest, OneToOneMatching) {
  // A right instance is never assigned to two left instances.
  Build(
      [](OntologyBuilder& b) {
        b.AddLiteralFact("l:a", "l:k", "key1");
        b.AddLiteralFact("l:b", "l:k", "key1");  // same key → ambiguous
      },
      [](OntologyBuilder& b) {
        b.AddLiteralFact("r:x", "r:k", "key1");
      });
  auto result = AlignBySelfTraining(*left_, *right_);
  EXPECT_EQ(result.num_left_aligned(), 0u);  // ambiguous kernel rejected
}

}  // namespace
}  // namespace paris::baseline
