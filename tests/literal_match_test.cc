#include <gtest/gtest.h>

#include "paris/core/literal_match.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"

namespace paris::core {
namespace {

using rdf::TermKind;

class LiteralMatchTest : public ::testing::Test {
 protected:
  // Builds a target ontology carrying the given literals as object values.
  void BuildTarget(const std::vector<std::string>& literals) {
    ontology::OntologyBuilder b(&pool_, "target");
    int i = 0;
    for (const auto& lit : literals) {
      b.AddLiteralFact("t:e" + std::to_string(i++), "t:value", lit);
    }
    auto onto = b.Build();
    ASSERT_TRUE(onto.ok());
    target_ = std::make_unique<ontology::Ontology>(std::move(onto).value());
  }

  rdf::TermId Lit(const std::string& s) { return pool_.InternLiteral(s); }

  rdf::TermPool pool_;
  std::unique_ptr<ontology::Ontology> target_;
};

TEST_F(LiteralMatchTest, IdentityMatchesExactOnly) {
  BuildTarget({"alpha", "beta"});
  IdentityLiteralMatcher matcher;
  matcher.IndexTarget(*target_);

  std::vector<Candidate> out;
  matcher.Match(Lit("alpha"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].prob, 1.0);
  EXPECT_EQ(out[0].other, *pool_.Find("alpha", TermKind::kLiteral));

  out.clear();
  matcher.Match(Lit("Alpha"), &out);  // case differs → no match
  EXPECT_TRUE(out.empty());
  out.clear();
  matcher.Match(Lit("gamma"), &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(LiteralMatchTest, NormalizingMatcherIgnoresPunctuation) {
  BuildTarget({"213/467-1108", "The Golden Lantern"});
  NormalizingLiteralMatcher matcher;
  matcher.IndexTarget(*target_);

  std::vector<Candidate> out;
  matcher.Match(Lit("213-467-1108"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].prob, 1.0);

  out.clear();
  matcher.Match(Lit("the golden lantern."), &out);
  ASSERT_EQ(out.size(), 1u);

  out.clear();
  matcher.Match(Lit("golden lantern"), &out);  // missing token → no match
  EXPECT_TRUE(out.empty());
}

TEST_F(LiteralMatchTest, NormalizingMatcherReturnsAllBucketMembers) {
  BuildTarget({"A-B", "a b", "ab"});
  NormalizingLiteralMatcher matcher;
  matcher.IndexTarget(*target_);
  std::vector<Candidate> out;
  matcher.Match(Lit("AB"), &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(LiteralMatchTest, FuzzyMatcherFindsTypos) {
  BuildTarget({"Sanshiro Sugata", "Completely Different Title"});
  FuzzyLiteralMatcher matcher(/*min_similarity=*/0.8, /*max_candidates=*/4);
  matcher.IndexTarget(*target_);

  std::vector<Candidate> out;
  matcher.Match(Lit("Sanshiro Sugataa"), &out);  // one typo
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].prob, 0.8);
  EXPECT_LT(out[0].prob, 1.0);
}

TEST_F(LiteralMatchTest, FuzzyMatcherExactIsOne) {
  BuildTarget({"Sanshiro Sugata"});
  FuzzyLiteralMatcher matcher(0.8, 4);
  matcher.IndexTarget(*target_);
  std::vector<Candidate> out;
  matcher.Match(Lit("Sanshiro Sugata"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].prob, 1.0);
}

TEST_F(LiteralMatchTest, FuzzyMatcherRespectsThreshold) {
  BuildTarget({"abcdefghij"});
  FuzzyLiteralMatcher matcher(0.9, 4);
  matcher.IndexTarget(*target_);
  std::vector<Candidate> out;
  matcher.Match(Lit("abcdeXghiY"), &out);  // 2 edits on 10 chars: sim 0.8
  EXPECT_TRUE(out.empty());
}

TEST_F(LiteralMatchTest, FuzzyMatcherCapsCandidates) {
  std::vector<std::string> lits;
  for (int i = 0; i < 10; ++i) {
    lits.push_back("prefix value " + std::to_string(i));
  }
  BuildTarget(lits);
  FuzzyLiteralMatcher matcher(0.5, 3);
  matcher.IndexTarget(*target_);
  std::vector<Candidate> out;
  matcher.Match(Lit("prefix value X"), &out);
  EXPECT_LE(out.size(), 3u);
  // Best-first ordering.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].prob, out[i].prob);
  }
}

TEST_F(LiteralMatchTest, FactoriesProduceWorkingMatchers) {
  BuildTarget({"x"});
  for (const auto& factory :
       {IdentityMatcherFactory(), NormalizingMatcherFactory(),
        FuzzyMatcherFactory()}) {
    auto matcher = factory();
    matcher->IndexTarget(*target_);
    std::vector<Candidate> out;
    matcher->Match(Lit("x"), &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0].prob, 1.0);
  }
}

}  // namespace
}  // namespace paris::core
