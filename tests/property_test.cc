// Property-based test suites (parameterized gtest): invariants that must
// hold for every input — probability ranges, symmetry of the equivalence
// computation, edit-distance metric properties, parser round-trips, and
// world-generation consistency, swept over seeds and dataset profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "paris/core/aligner.h"
#include "paris/rdf/ntriples.h"
#include "paris/synth/profiles.h"
#include "paris/util/logging.h"
#include "paris/util/random.h"
#include "paris/util/string_util.h"

namespace paris {
namespace {

// ---------------------------------------------------------------------------
// String metric properties, swept over random strings.
// ---------------------------------------------------------------------------

class EditDistanceProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  static std::string RandomString(util::Rng& rng, size_t max_len) {
    const size_t len = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(max_len)));
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.UniformInt(0, 5)));
    }
    return s;
  }
};

TEST_P(EditDistanceProperty, MetricAxioms) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::string a = RandomString(rng, 20);
    const std::string b = RandomString(rng, 20);
    const std::string c = RandomString(rng, 20);
    const size_t ab = util::EditDistance(a, b);
    const size_t ba = util::EditDistance(b, a);
    EXPECT_EQ(ab, ba);                                // symmetry
    EXPECT_EQ(util::EditDistance(a, a), 0u);          // identity
    const size_t diff =
        a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(ab, diff);                              // length lower bound
    EXPECT_LE(ab, std::max(a.size(), b.size()));      // upper bound
    const size_t ac = util::EditDistance(a, c);
    const size_t cb = util::EditDistance(c, b);
    EXPECT_LE(ab, ac + cb);                           // triangle inequality
  }
}

TEST_P(EditDistanceProperty, BoundedAgreesWithExact) {
  util::Rng rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 50; ++i) {
    const std::string a = RandomString(rng, 16);
    const std::string b = RandomString(rng, 16);
    const size_t exact = util::EditDistance(a, b);
    for (size_t bound : {size_t{0}, size_t{2}, size_t{5}, size_t{100}}) {
      const size_t bounded = util::BoundedEditDistance(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(bounded, exact) << a << " / " << b;
      } else {
        EXPECT_EQ(bounded, bound + 1) << a << " / " << b;
      }
    }
  }
}

TEST_P(EditDistanceProperty, SimilarityInUnitRange) {
  util::Rng rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 50; ++i) {
    const std::string a = RandomString(rng, 20);
    const std::string b = RandomString(rng, 20);
    const double sim = util::EditSimilarity(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
    EXPECT_DOUBLE_EQ(util::EditSimilarity(a, a), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ---------------------------------------------------------------------------
// N-Triples round trip over escaped content.
// ---------------------------------------------------------------------------

class NTriplesRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NTriplesRoundTrip, FormatParseIdentity) {
  util::Rng rng(GetParam());
  const std::string special = "\"\\\n\r\t aé#<>.";
  for (int i = 0; i < 40; ++i) {
    rdf::ParsedTriple t;
    t.subject = "ex:s" + std::to_string(rng.UniformInt(0, 100));
    t.predicate = "ex:p" + std::to_string(rng.UniformInt(0, 10));
    t.object_is_literal = rng.Bernoulli(0.7);
    if (t.object_is_literal) {
      std::string lit;
      const int len = static_cast<int>(rng.UniformInt(0, 12));
      for (int k = 0; k < len; ++k) {
        lit.push_back(special[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(special.size()) - 1))]);
      }
      t.object = lit;
      if (rng.Bernoulli(0.3)) t.datatype = "xsd:string";
    } else {
      t.object = "ex:o" + std::to_string(rng.UniformInt(0, 100));
    }
    const std::string line = rdf::NTriplesWriter::FormatTriple(t);
    rdf::ParsedTriple back;
    bool is_triple = false;
    const auto status = rdf::NTriplesParser::ParseLine(line, &back,
                                                       &is_triple);
    ASSERT_TRUE(status.ok()) << line << " -> " << status.ToString();
    ASSERT_TRUE(is_triple);
    EXPECT_EQ(back.subject, t.subject);
    EXPECT_EQ(back.predicate, t.predicate);
    EXPECT_EQ(back.object, t.object);
    EXPECT_EQ(back.object_is_literal, t.object_is_literal);
    EXPECT_EQ(back.datatype, t.datatype);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NTriplesRoundTrip,
                         ::testing::Values(3, 17, 256));

// ---------------------------------------------------------------------------
// Alignment invariants over dataset profiles.
// ---------------------------------------------------------------------------

struct ProfileCase {
  const char* name;
  util::StatusOr<synth::OntologyPair> (*make)(const synth::ProfileOptions&);
  double scale;
};

class AlignmentInvariants : public ::testing::TestWithParam<ProfileCase> {
 protected:
  static void SetUpTestSuite() {
    util::SetLogLevel(util::LogLevel::kWarning);
  }
};

TEST_P(AlignmentInvariants, ProbabilitiesWellFormed) {
  const ProfileCase& param = GetParam();
  synth::ProfileOptions options;
  options.scale = param.scale;
  auto pair = param.make(options);
  ASSERT_TRUE(pair.ok());
  core::AlignmentConfig config;
  config.max_iterations = 3;
  core::AlignmentResult result =
      core::Aligner(*pair->left, *pair->right, config).Run();

  // Every stored instance probability lies in [threshold, 1]; candidate
  // lists are sorted best-first; every candidate is an instance of the
  // right ontology.
  for (rdf::TermId left : pair->left->instances()) {
    const auto span = result.instances.LeftToRight(left);
    double previous = 2.0;
    for (const core::Candidate& c : span) {
      EXPECT_GE(c.prob, config.theta);
      EXPECT_LE(c.prob, 1.0);
      EXPECT_LE(c.prob, previous);
      previous = c.prob;
      EXPECT_TRUE(pair->right->IsInstanceTerm(c.other));
    }
  }
  // Relation and class scores in (0, 1].
  for (const auto& e : result.relations.Entries()) {
    EXPECT_GT(e.score, 0.0);
    EXPECT_LE(e.score, 1.0);
    EXPECT_NE(e.sub, rdf::kNullRel);
    EXPECT_NE(e.super, rdf::kNullRel);
  }
  for (const auto& e : result.classes.entries()) {
    EXPECT_GT(e.score, 0.0);
    EXPECT_LE(e.score, 1.0);
    const auto& sub_onto = e.sub_is_left ? *pair->left : *pair->right;
    const auto& super_onto = e.sub_is_left ? *pair->right : *pair->left;
    EXPECT_TRUE(sub_onto.IsClassTerm(e.sub));
    EXPECT_TRUE(super_onto.IsClassTerm(e.super));
  }
}

TEST_P(AlignmentInvariants, TransposeConsistent) {
  const ProfileCase& param = GetParam();
  synth::ProfileOptions options;
  options.scale = param.scale;
  auto pair = param.make(options);
  ASSERT_TRUE(pair.ok());
  core::AlignmentConfig config;
  config.max_iterations = 2;
  core::AlignmentResult result =
      core::Aligner(*pair->left, *pair->right, config).Run();
  // Every (left → right, p) appears as (right → left, p) in the transpose.
  for (rdf::TermId left : pair->left->instances()) {
    for (const core::Candidate& c : result.instances.LeftToRight(left)) {
      const auto back = result.instances.RightToLeft(c.other);
      const bool found =
          std::any_of(back.begin(), back.end(), [&](const core::Candidate& b) {
            return b.other == left && b.prob == c.prob;
          });
      EXPECT_TRUE(found);
    }
  }
}

TEST_P(AlignmentInvariants, SwappingOntologiesTransposesScores) {
  const ProfileCase& param = GetParam();
  synth::ProfileOptions options;
  options.scale = param.scale;
  auto pair = param.make(options);
  ASSERT_TRUE(pair.ok());
  // One iteration: Eq. (13) is symmetric in the two ontologies, so the
  // first pass must produce the exact transposed probability table. (From
  // iteration 2 on, the §5.2 maximal-assignment gating is direction-
  // dependent, so exact symmetry is no longer guaranteed.)
  core::AlignmentConfig config;
  config.max_iterations = 1;
  core::AlignmentResult forward =
      core::Aligner(*pair->left, *pair->right, config).Run();
  core::AlignmentResult backward =
      core::Aligner(*pair->right, *pair->left, config).Run();
  size_t checked = 0;
  for (rdf::TermId left : pair->left->instances()) {
    for (const core::Candidate& c : forward.instances.LeftToRight(left)) {
      const auto mirrored = backward.instances.LeftToRight(c.other);
      const bool found = std::any_of(
          mirrored.begin(), mirrored.end(), [&](const core::Candidate& b) {
            return b.other == left && std::abs(b.prob - c.prob) < 1e-9;
          });
      EXPECT_TRUE(found) << pair->left->TermName(left) << " vs "
                         << pair->right->TermName(c.other);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, AlignmentInvariants,
    ::testing::Values(
        ProfileCase{"person", &synth::MakeOaeiPersonPair, 0.5},
        ProfileCase{"restaurant", &synth::MakeOaeiRestaurantPair, 1.0},
        ProfileCase{"yago_dbpedia", &synth::MakeYagoDbpediaPair, 0.08},
        ProfileCase{"yago_imdb", &synth::MakeYagoImdbPair, 0.08}),
    [](const ::testing::TestParamInfo<ProfileCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// World-generation invariants over seeds.
// ---------------------------------------------------------------------------

class WorldInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorldInvariants, EdgesRespectDomainAndRange) {
  synth::WorldSpec spec;
  spec.seed = GetParam();
  spec.classes = {{"root", -1}, {"a", 0}, {"b", 0}, {"a1", 1}};
  spec.groups = {{3, 40, "x"}, {2, 25, "y"}};
  spec.attributes = {
      {"name", 1, synth::ValueKind::kPersonName, 0.8, 0.2, 2, false}};
  spec.relations = {{"r", 1, 2, 0.7, 0.3, 3, 0.9}};
  const synth::World world = synth::World::Generate(spec);
  for (const synth::WorldEdge& e : world.edges()) {
    EXPECT_TRUE(world.ClassInSubtree(
        world.entities()[static_cast<size_t>(e.source)].cls, 1));
    EXPECT_TRUE(world.ClassInSubtree(
        world.entities()[static_cast<size_t>(e.target)].cls, 2));
    EXPECT_NE(e.source, e.target);
  }
  // Attribute values only on the domain subtree; multiplicity respected.
  for (const auto& entity : world.entities()) {
    int values = 0;
    for (const auto& [attr, value] : entity.attributes) {
      EXPECT_EQ(attr, 0);
      EXPECT_FALSE(value.empty());
      ++values;
    }
    if (!world.ClassInSubtree(entity.cls, 1)) {
      EXPECT_EQ(values, 0);
    } else {
      EXPECT_LE(values, 2);
    }
    EXPECT_GE(entity.prominence, 0.0);
    EXPECT_LE(entity.prominence, 1.0);
  }
}

TEST_P(WorldInvariants, InclusionRateTracksCoverage) {
  synth::WorldSpec spec;
  spec.seed = GetParam();
  spec.classes = {{"root", -1}};
  spec.groups = {{0, 4000, "e"}};
  const synth::World world = synth::World::Generate(spec);
  for (double coverage : {0.2, 0.5, 0.8}) {
    for (double correlation : {0.0, 0.5, 0.9}) {
      synth::DeriveSpec s;
      s.seed = GetParam() + 17;
      s.entity_coverage = coverage;
      s.prominence_correlation = correlation;
      size_t included = 0;
      for (int e = 0; e < 4000; ++e) {
        if (synth::PairDeriver::Includes(s, world, e)) ++included;
      }
      const double rate = static_cast<double>(included) / 4000.0;
      EXPECT_NEAR(rate, coverage, 0.05)
          << "coverage=" << coverage << " corr=" << correlation;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldInvariants,
                         ::testing::Values(5, 11, 2024));

}  // namespace
}  // namespace paris
