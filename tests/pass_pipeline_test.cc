// Tests for the shard-granular pass pipeline (core/pass.h): shard-count
// invariance of the results, shard-level progress reporting, mid-iteration
// cancellation checkpoints, and byte-identical resumption from them across
// thread counts and snapshot load modes.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "paris/api/dataset.h"
#include "paris/api/session.h"
#include "paris/core/aligner.h"
#include "paris/core/pass.h"
#include "paris/core/result_io.h"
#include "paris/core/result_snapshot.h"
#include "paris/obs/metrics.h"
#include "paris/obs/trace.h"
#include "paris/ontology/ontology.h"
#include "paris/synth/profiles.h"

namespace paris {
namespace {

using core::AlignmentConfig;
using core::AlignmentResult;
using storage::SnapshotLoadMode;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The three TSV tables as one string: "byte-identical output" in the sense
// of `paris_align --output`.
std::string Tables(const AlignmentResult& result,
                   const ontology::Ontology& left,
                   const ontology::Ontology& right) {
  std::ostringstream out;
  core::WriteInstanceAlignment(result.instances, left, right, out);
  core::WriteRelationAlignment(result.relations, left, right, out);
  core::WriteClassAlignment(result.classes, left, right, out);
  return out.str();
}

class PassPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::ProfileOptions options;
    options.scale = 0.5;
    auto pair = synth::MakeOaeiRestaurantPair(options);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    pair_ = std::move(pair).value();
  }

  // Fixed-work config: disabled convergence so every run does exactly
  // `max_iterations` iterations of real work.
  static AlignmentConfig FixedWorkConfig(int max_iterations, size_t threads,
                                         size_t shards = 0) {
    AlignmentConfig config;
    config.max_iterations = max_iterations;
    config.convergence_threshold = 0.0;
    config.record_history = false;
    config.num_threads = threads;
    config.num_shards = shards;
    return config;
  }

  AlignmentResult Run(const AlignmentConfig& config) {
    return core::Aligner(*pair_.left, *pair_.right, config).Run();
  }

  const ontology::Ontology& left() const { return *pair_.left; }
  const ontology::Ontology& right() const { return *pair_.right; }

  synth::OntologyPair pair_;
};

// The pipeline's headline invariant: results are byte-identical across
// shard counts (1 shard = the old monolithic sweep) and thread counts,
// including the relation table's canonical entry order.
TEST_F(PassPipelineTest, ResultsInvariantAcrossShardAndThreadCounts) {
  const AlignmentResult reference = Run(FixedWorkConfig(3, 0, 0));
  const std::string reference_tables = Tables(reference, left(), right());
  ASSERT_GT(reference.instances.num_left_aligned(), 0u);

  for (size_t shards : {size_t{1}, size_t{3}, size_t{17}, size_t{1000}}) {
    for (size_t threads : {size_t{0}, size_t{4}}) {
      const AlignmentResult result = Run(FixedWorkConfig(3, threads, shards));
      EXPECT_EQ(Tables(result, left(), right()), reference_tables)
          << "shards=" << shards << " threads=" << threads;
      const auto& expect_entries = reference.relations.Entries();
      const auto& got_entries = result.relations.Entries();
      ASSERT_EQ(got_entries.size(), expect_entries.size());
      for (size_t i = 0; i < expect_entries.size(); ++i) {
        EXPECT_EQ(got_entries[i].sub, expect_entries[i].sub);
        EXPECT_EQ(got_entries[i].super, expect_entries[i].super);
        EXPECT_EQ(got_entries[i].score, expect_entries[i].score);
      }
    }
  }
}

// Attaching the observability hooks (src/obs/) must not perturb the
// pipeline: same tables as the unobserved reference run, at any thread
// count, while the recorders actually collect.
TEST_F(PassPipelineTest, ResultsUnchangedWithObservabilityAttached) {
  const std::string reference =
      Tables(Run(FixedWorkConfig(3, 0, 8)), left(), right());
  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    const size_t worker_slots = threads == 0 ? 1 : threads;
    obs::TraceRecorder trace(worker_slots);
    obs::MetricsRegistry metrics(worker_slots);
    core::Aligner aligner(left(), right(), FixedWorkConfig(3, threads, 8));
    aligner.set_observability({&trace, &metrics});
    EXPECT_EQ(Tables(aligner.Run(), left(), right()), reference)
        << "threads=" << threads;
    EXPECT_GT(trace.num_events(), 0u);
  }
}

// The shard observer sees every pass: per iteration one full instance and
// one full relation pass, plus the final class pass, each counting up to
// its shard total.
TEST_F(PassPipelineTest, ShardObserverReportsEveryPass) {
  AlignmentConfig config = FixedWorkConfig(2, 0, 8);
  core::Aligner aligner(left(), right(), config);
  struct Event {
    std::string pass;
    int iteration;
    size_t num_shards;
    size_t num_completed;
  };
  std::vector<Event> events;
  aligner.set_shard_observer([&](const core::ShardProgress& progress) {
    events.push_back(Event{progress.pass, progress.iteration,
                           progress.num_shards, progress.num_completed});
    return true;
  });
  const AlignmentResult result = aligner.Run();
  ASSERT_EQ(result.iterations.size(), 2u);

  size_t instance_full = 0;
  size_t relation_full = 0;
  size_t class_full = 0;
  for (const Event& e : events) {
    ASSERT_GT(e.num_shards, 0u);
    ASSERT_LE(e.num_completed, e.num_shards);
    if (e.num_completed == e.num_shards) {
      if (e.pass == "instance") ++instance_full;
      if (e.pass == "relation") ++relation_full;
      if (e.pass == "class") ++class_full;
    }
  }
  EXPECT_EQ(instance_full, 2u);  // one per iteration
  EXPECT_EQ(relation_full, 2u);
  EXPECT_EQ(class_full, 1u);  // the final pass

  // Pass phase timings are accumulated for the bench harness.
  ASSERT_EQ(result.pass_timings.size(), 3u);
  EXPECT_EQ(result.pass_timings[0].pass, "instance");
  EXPECT_GT(result.pass_timings[0].shards_run, 0u);
  EXPECT_EQ(result.pass_timings[2].pass, "class");
  EXPECT_GT(result.pass_timings[2].shards_run, 0u);
}

// Cancelling after K completed shards of a pass must yield a checkpoint
// that resumes byte-identically to the uninterrupted run, for any K, across
// worker-thread counts and both snapshot load modes — the acceptance
// criterion of the mid-iteration-checkpoint feature.
TEST_F(PassPipelineTest, CancelAtInstanceShardBoundariesResumesByteIdentical) {
  constexpr int kMaxIterations = 4;
  const AlignmentConfig base = FixedWorkConfig(kMaxIterations, 0, 8);

  // Reference run; its observer also probes the instance pass's actual
  // shard count (the ceil-based layout may fold 8 requested shards into
  // fewer).
  size_t kShards = 0;
  core::Aligner cold_aligner(left(), right(), base);
  cold_aligner.set_shard_observer([&](const core::ShardProgress& progress) {
    if (std::string_view(progress.pass) == "instance") {
      kShards = progress.num_shards;
    }
    return true;
  });
  const AlignmentResult cold = cold_aligner.Run();
  ASSERT_EQ(cold.iterations.size(), static_cast<size_t>(kMaxIterations));
  ASSERT_GT(kShards, 2u);
  const std::string reference = Tables(cold, left(), right());

  struct Cut {
    int iteration;
    size_t cancel_at;  // cancel once this many instance shards completed
  };
  for (const Cut cut :
       {Cut{1, 1}, Cut{2, 1}, Cut{2, kShards / 2}, Cut{2, kShards}}) {
    core::Aligner aligner(left(), right(), base);
    aligner.set_shard_observer([&](const core::ShardProgress& progress) {
      return !(std::string_view(progress.pass) == "instance" &&
               progress.iteration == cut.iteration &&
               progress.num_completed >= cut.cancel_at);
    });
    const AlignmentResult cancelled = aligner.Run();
    const std::string label = "iteration " + std::to_string(cut.iteration) +
                              " cancel_at " + std::to_string(cut.cancel_at);

    // The run stopped before the interrupted iteration completed, with the
    // finished work checkpointed on the side.
    ASSERT_EQ(cancelled.iterations.size(),
              static_cast<size_t>(cut.iteration - 1))
        << label;
    ASSERT_TRUE(cancelled.partial.has_value()) << label;
    if (cut.cancel_at < kShards) {
      EXPECT_EQ(cancelled.partial->pass, core::kInstancePass) << label;
      EXPECT_EQ(cancelled.partial->num_shards, kShards) << label;
      EXPECT_EQ(cancelled.partial->shards.size(), cut.cancel_at) << label;
    } else {
      // The cancel landed on the pass's last shard: the instance pass is
      // complete and the checkpoint records its merged output instead.
      EXPECT_EQ(cancelled.partial->pass, core::kRelationPass) << label;
      EXPECT_GT(cancelled.partial->instances.num_left_aligned(), 0u) << label;
    }
    EXPECT_EQ(cancelled.partial->iteration, cut.iteration) << label;

    const std::string path = TempPath("cancel_instance.result");
    ASSERT_TRUE(core::SaveAlignmentResult(path, cancelled, left(), right(),
                                          base, "identity")
                    .ok())
        << label;
    for (const auto mode :
         {SnapshotLoadMode::kStream, SnapshotLoadMode::kMmap}) {
      for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
        AlignmentConfig config = base;
        config.num_threads = threads;
        auto loaded = core::LoadAlignmentResult(path, left(), right(), config,
                                                "identity", mode);
        ASSERT_TRUE(loaded.ok()) << label << ": " << loaded.status().ToString();
        ASSERT_TRUE(loaded->partial.has_value()) << label;
        core::Aligner resume_aligner(left(), right(), config);
        const AlignmentResult resumed =
            resume_aligner.Resume(std::move(loaded).value());
        EXPECT_EQ(resumed.iterations.size(),
                  static_cast<size_t>(kMaxIterations))
            << label;
        EXPECT_EQ(Tables(resumed, left(), right()), reference)
            << label << " mode="
            << (mode == SnapshotLoadMode::kMmap ? "mmap" : "stream")
            << " threads=" << threads;
      }
    }
    std::remove(path.c_str());
  }
}

// Same for a cancel inside the relation pass: the checkpoint additionally
// carries the iteration's completed instance equivalences, and resume skips
// the instance pass entirely.
TEST_F(PassPipelineTest, CancelAtRelationShardBoundariesResumesByteIdentical) {
  constexpr int kMaxIterations = 3;
  const AlignmentConfig base = FixedWorkConfig(kMaxIterations, 0, 4);
  const AlignmentResult cold = Run(base);
  const std::string reference = Tables(cold, left(), right());

  core::Aligner aligner(left(), right(), base);
  size_t relation_shards_seen = 0;
  aligner.set_shard_observer([&](const core::ShardProgress& progress) {
    if (std::string_view(progress.pass) == "relation" &&
        progress.iteration == 2) {
      relation_shards_seen = progress.num_shards;
      return progress.num_completed < 1;
    }
    return true;
  });
  const AlignmentResult cancelled = aligner.Run();
  ASSERT_EQ(cancelled.iterations.size(), 1u);
  ASSERT_TRUE(cancelled.partial.has_value());
  EXPECT_EQ(cancelled.partial->pass, core::kRelationPass);
  EXPECT_EQ(cancelled.partial->iteration, 2);
  EXPECT_EQ(cancelled.partial->shards.size(), 1u);
  EXPECT_GT(cancelled.partial->instances.num_left_aligned(), 0u);
  ASSERT_GT(relation_shards_seen, 1u);

  const std::string path = TempPath("cancel_relation.result");
  ASSERT_TRUE(core::SaveAlignmentResult(path, cancelled, left(), right(),
                                        base, "identity")
                  .ok());
  for (const auto mode : {SnapshotLoadMode::kStream, SnapshotLoadMode::kMmap}) {
    for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
      AlignmentConfig config = base;
      config.num_threads = threads;
      auto loaded = core::LoadAlignmentResult(path, left(), right(), config,
                                              "identity", mode);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      core::Aligner resume_aligner(left(), right(), config);

      // The resumed run must not re-run the instance pass of the
      // interrupted iteration, and must recompute only the relation shards
      // that were not checkpointed.
      size_t resumed_instance_events = 0;
      size_t resumed_relation_events = 0;
      resume_aligner.set_shard_observer(
          [&](const core::ShardProgress& progress) {
            if (progress.iteration == 2) {
              if (std::string_view(progress.pass) == "instance") {
                ++resumed_instance_events;
              }
              if (std::string_view(progress.pass) == "relation") {
                ++resumed_relation_events;
              }
            }
            return true;
          });
      const AlignmentResult resumed =
          resume_aligner.Resume(std::move(loaded).value());
      EXPECT_EQ(resumed_instance_events, 0u) << "threads=" << threads;
      EXPECT_EQ(resumed_relation_events, relation_shards_seen - 1)
          << "threads=" << threads;
      EXPECT_EQ(Tables(resumed, left(), right()), reference)
          << "mode=" << (mode == SnapshotLoadMode::kMmap ? "mmap" : "stream")
          << " threads=" << threads;
    }
  }
  std::remove(path.c_str());
}

// A checkpoint saved under one shard count still resumes byte-identically
// under another: the cached shards are discarded (layout mismatch) and the
// pass recomputes.
TEST_F(PassPipelineTest, ResumeUnderDifferentShardCountRecomputes) {
  const AlignmentConfig base = FixedWorkConfig(3, 0, 8);
  const std::string reference = Tables(Run(base), left(), right());

  core::Aligner aligner(left(), right(), base);
  aligner.set_shard_observer([&](const core::ShardProgress& progress) {
    return !(std::string_view(progress.pass) == "instance" &&
             progress.iteration == 2 && progress.num_completed >= 3);
  });
  const AlignmentResult cancelled = aligner.Run();
  ASSERT_TRUE(cancelled.partial.has_value());
  const std::string path = TempPath("cancel_reshard.result");
  ASSERT_TRUE(core::SaveAlignmentResult(path, cancelled, left(), right(),
                                        base, "identity")
                  .ok());

  AlignmentConfig resharded = base;
  resharded.num_shards = 5;  // different layout: cached shards unusable
  auto loaded = core::LoadAlignmentResult(path, left(), right(), resharded,
                                          "identity");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  core::Aligner resume_aligner(left(), right(), resharded);
  const AlignmentResult resumed =
      resume_aligner.Resume(std::move(loaded).value());
  EXPECT_EQ(Tables(resumed, left(), right()), reference);
  std::remove(path.c_str());
}

// The partial section is covered by the snapshot checksum and its own
// structural validation.
TEST_F(PassPipelineTest, PartialCheckpointRoundTripsAndRejectsCorruption) {
  const AlignmentConfig base = FixedWorkConfig(3, 0, 8);
  core::Aligner aligner(left(), right(), base);
  aligner.set_shard_observer([&](const core::ShardProgress& progress) {
    return !(std::string_view(progress.pass) == "instance" &&
             progress.iteration == 2 && progress.num_completed >= 3);
  });
  const AlignmentResult cancelled = aligner.Run();
  ASSERT_TRUE(cancelled.partial.has_value());

  const std::string path = TempPath("partial_roundtrip.result");
  ASSERT_TRUE(core::SaveAlignmentResult(path, cancelled, left(), right(),
                                        base, "identity")
                  .ok());
  for (const auto mode : {SnapshotLoadMode::kStream, SnapshotLoadMode::kMmap}) {
    auto loaded = core::LoadAlignmentResult(path, left(), right(), base,
                                            "identity", mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_TRUE(loaded->partial.has_value());
    EXPECT_EQ(loaded->partial->iteration, cancelled.partial->iteration);
    EXPECT_EQ(loaded->partial->pass, cancelled.partial->pass);
    EXPECT_EQ(loaded->partial->num_shards, cancelled.partial->num_shards);
    EXPECT_EQ(loaded->partial->shards, cancelled.partial->shards);
    EXPECT_EQ(loaded->partial->payloads, cancelled.partial->payloads);
  }

  // Corruption anywhere in the partial section (here: the tail, where the
  // shard payloads live) is caught by the checksum in both modes.
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 20] = static_cast<char>(bytes[bytes.size() - 20] ^ 0x5a);
  const std::string bad_path = TempPath("partial_corrupt.result");
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  for (const auto mode : {SnapshotLoadMode::kStream, SnapshotLoadMode::kMmap}) {
    auto loaded = core::LoadAlignmentResult(bad_path, left(), right(), base,
                                            "identity", mode);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss);
  }
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

// ---------------------------------------------------------------------------
// API-level: cross-thread cancellation at shard granularity (TSan target)
// ---------------------------------------------------------------------------

class PassPipelineApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    api::DatasetSpec spec;
    spec.profile = "restaurant";
    spec.output_prefix = TempPath("pipeline_rest");
    spec.scale = 0.5;
    auto summary = api::GenerateDataset(spec);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    left_path_ = new std::string(summary->left_path);
    right_path_ = new std::string(summary->right_path);
  }

  static api::Session::Options FixedWorkOptions(int max_iterations,
                                                size_t threads) {
    api::Session::Options options;
    options.config.max_iterations = max_iterations;
    options.config.convergence_threshold = 0.0;
    options.config.num_threads = threads;
    options.config.num_shards = 8;
    return options;
  }

  static const std::string& left_path() { return *left_path_; }
  static const std::string& right_path() { return *right_path_; }

 private:
  static std::string* left_path_;
  static std::string* right_path_;
};

std::string* PassPipelineApiTest::left_path_ = nullptr;
std::string* PassPipelineApiTest::right_path_ = nullptr;

// Cancels from another thread while worker threads are deep inside the
// instance pass of iteration 2: the run stops at a shard boundary with a
// consistent mid-iteration checkpoint, and resuming reproduces the
// uninterrupted run byte-for-byte. Runs under TSan in CI.
TEST_F(PassPipelineApiTest, CrossThreadShardCancelResumesByteIdentical) {
  const std::string cold_prefix = TempPath("pipeline_cold");
  {
    api::Session cold(FixedWorkOptions(3, 4));
    ASSERT_TRUE(cold.LoadFromFiles(left_path(), right_path()).ok());
    ASSERT_TRUE(cold.Align().ok());
    ASSERT_TRUE(cold.Export(cold_prefix).ok());
  }

  api::Session session(FixedWorkOptions(3, 4));
  ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());

  auto token = std::make_shared<api::CancellationToken>();
  std::mutex mutex;
  std::condition_variable cv;
  bool cancel_point_reached = false;
  std::thread canceller([&] {
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return cancel_point_reached; });
    }
    token->Cancel();
    {
      std::lock_guard<std::mutex> lock(mutex);
      cv.notify_all();
    }
  });

  std::atomic<size_t> shard_events{0};
  api::RunCallbacks callbacks;
  callbacks.cancellation = token;
  callbacks.on_shard = [&](const api::ShardProgress& progress) {
    shard_events.fetch_add(1, std::memory_order_relaxed);
    if (std::string_view(progress.pass) == "instance" &&
        progress.iteration == 2 && progress.num_completed == 2) {
      // Hand off to the canceller and block until the token is flipped, so
      // the cancel deterministically lands inside iteration 2's instance
      // pass (in-flight shards on other workers may still finish — the
      // checkpoint records whatever completed).
      std::unique_lock<std::mutex> lock(mutex);
      cancel_point_reached = true;
      cv.notify_all();
      cv.wait(lock, [&] { return token->cancelled(); });
    }
  };
  const util::Status status = session.Align(callbacks);
  canceller.join();
  ASSERT_EQ(status.code(), util::StatusCode::kCancelled);
  ASSERT_TRUE(session.has_result());
  EXPECT_TRUE(session.summary().cancelled);
  EXPECT_GT(shard_events.load(), 0u);
  // The cancel landed mid-run: fewer than the full 3 iterations completed.
  EXPECT_LT(session.summary().iterations, 3u);

  const std::string checkpoint = TempPath("pipeline_cancel.result");
  ASSERT_TRUE(session.SaveResult(checkpoint).ok());

  api::Session warm(FixedWorkOptions(3, 4));
  ASSERT_TRUE(warm.LoadFromFiles(left_path(), right_path()).ok());
  ASSERT_TRUE(warm.Resume(checkpoint).ok());
  const std::string warm_prefix = TempPath("pipeline_warm");
  ASSERT_TRUE(warm.Export(warm_prefix).ok());

  for (const char* table : {"_instances.tsv", "_relations.tsv",
                            "_classes.tsv"}) {
    EXPECT_EQ(ReadFile(cold_prefix + table), ReadFile(warm_prefix + table))
        << table;
  }
}

}  // namespace
}  // namespace paris
