// Crash-safety and fault-injection coverage: AtomicFileWriter's
// all-or-nothing contract, the transient-errno retry policy, the fault
// matrix over every registered injection point, and the background
// checkpoint write → journal → auto-resume cycle.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "paris/api/dataset.h"
#include "paris/api/session.h"
#include "paris/core/aligner.h"
#include "paris/core/checkpoint.h"
#include "paris/core/result_io.h"
#include "paris/core/result_snapshot.h"
#include "paris/ontology/ontology.h"
#include "paris/storage/snapshot.h"
#include "paris/synth/profiles.h"
#include "paris/util/fault_injection.h"
#include "paris/util/fs.h"
#include "paris/util/status.h"

namespace paris {
namespace {

using core::AlignmentConfig;
using core::AlignmentResult;
using storage::SnapshotLoadMode;
using util::FaultInjector;
using util::StatusCode;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Checkpoint directories must start empty: TempDir() is stable across runs
// of this binary, and a MANIFEST journal left by a previous run would shift
// sequence numbers and supply stale-but-loadable checkpoints.
std::string FreshDir(const std::string& name) {
  const std::string path = TempPath(name);
  std::filesystem::remove_all(path);
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileExists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).is_open();
}

// Disarms the global injector on every exit path so a failing assertion in
// one cell of the fault matrix cannot poison later tests.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    FaultInjector::Global().Reset();
    const util::Status status = FaultInjector::Global().Arm(spec);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  ~FaultGuard() { FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// AtomicFileWriter: all-or-nothing replacement under injected failures
// ---------------------------------------------------------------------------

TEST(AtomicWriteTest, CommitReplacesFileAndRemovesTmp) {
  const std::string path = TempPath("atomic_basic.txt");
  ASSERT_TRUE(util::WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(ReadFile(path), "first");
  ASSERT_TRUE(util::WriteFileAtomic(path, "second").ok());
  EXPECT_EQ(ReadFile(path), "second");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

// The satellite regression for the old truncate-in-place writers: a save
// that dies mid-write (any failure before the rename) must leave the
// previous file byte-identical and loadable, with no tmp debris.
TEST(AtomicWriteTest, FailedCommitPreservesPreviousContents) {
  const std::string path = TempPath("atomic_preserve.txt");
  const std::string old_bytes(100000, 'x');
  ASSERT_TRUE(util::WriteFileAtomic(path, old_bytes).ok());
  for (const char* spec :
       {"atomic_write.open:1:enospc", "atomic_write.write:1:enospc",
        "atomic_write.write:1:short", "atomic_write.fsync_file:1:enospc",
        "atomic_write.rename:1:enospc"}) {
    SCOPED_TRACE(spec);
    FaultGuard guard(spec);
    EXPECT_FALSE(util::WriteFileAtomic(path, "replacement").ok());
    EXPECT_EQ(ReadFile(path), old_bytes);
    EXPECT_FALSE(FileExists(path + ".tmp"));
  }
  std::remove(path.c_str());
}

// A directory-fsync failure happens after the rename: the new file is
// complete and in place (never torn), the caller just cannot count on the
// rename having reached the disk — so Commit still reports the error.
TEST(AtomicWriteTest, FsyncDirFailureReportsButFileIsComplete) {
  const std::string path = TempPath("atomic_fsync_dir.txt");
  ASSERT_TRUE(util::WriteFileAtomic(path, "old").ok());
  FaultGuard guard("atomic_write.fsync_dir:1:enospc");
  EXPECT_FALSE(util::WriteFileAtomic(path, "new").ok());
  EXPECT_EQ(ReadFile(path), "new");
  std::remove(path.c_str());
}

// Injected EINTR at every atomic-write stage is absorbed by the bounded
// retry policy: the write succeeds and the retry is counted.
TEST(AtomicWriteTest, TransientFaultsAreRetriedNotFatal) {
  const std::string path = TempPath("atomic_transient.txt");
  for (const char* point :
       {"atomic_write.open", "atomic_write.write", "atomic_write.fsync_file",
        "atomic_write.rename", "atomic_write.fsync_dir"}) {
    SCOPED_TRACE(point);
    FaultGuard guard(std::string(point) + ":1:eintr");
    const uint64_t retries_before = util::IoRetryCount();
    EXPECT_TRUE(util::WriteFileAtomic(path, "payload").ok());
    EXPECT_EQ(ReadFile(path), "payload");
    EXPECT_GT(util::IoRetryCount(), retries_before);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fault matrix and checkpointing over a real alignment workload
// ---------------------------------------------------------------------------

class DurabilityWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::ProfileOptions options;
    options.scale = 0.5;
    auto pair = synth::MakeOaeiRestaurantPair(options);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    pair_ = std::move(pair).value();
    config_ = FixedWorkConfig(2, 0);
    result_ = Run(config_);
    ref_path_ = TempPath("durability_ref.result");
    ASSERT_TRUE(core::SaveAlignmentResult(ref_path_, result_, left(), right(),
                                          config_, "identity")
                    .ok());
  }

  void TearDown() override {
    FaultInjector::Global().Reset();
    std::remove(ref_path_.c_str());
  }

  static AlignmentConfig FixedWorkConfig(int max_iterations, size_t threads) {
    AlignmentConfig config;
    config.max_iterations = max_iterations;
    config.convergence_threshold = 0.0;
    config.record_history = false;
    config.num_threads = threads;
    return config;
  }

  AlignmentResult Run(const AlignmentConfig& config) {
    return core::Aligner(*pair_.left, *pair_.right, config).Run();
  }

  std::string Tables(const AlignmentResult& result) const {
    std::ostringstream out;
    core::WriteInstanceAlignment(result.instances, left(), right(), out);
    core::WriteRelationAlignment(result.relations, left(), right(), out);
    core::WriteClassAlignment(result.classes, left(), right(), out);
    return out.str();
  }

  // A complete-result view, as the checkpointer would capture between
  // passes.
  static core::ResultSnapshotView ViewOf(const AlignmentResult& result) {
    core::ResultSnapshotView view;
    view.iterations = result.iterations;
    view.converged_at = result.converged_at;
    view.seconds_classes = result.seconds_classes;
    view.seconds_total = result.seconds_total;
    view.instances = &result.instances;
    view.relations = &result.relations;
    view.classes = &result.classes;
    return view;
  }

  util::StatusOr<AlignmentResult> LoadRef(SnapshotLoadMode mode) const {
    return core::LoadAlignmentResult(ref_path_, left(), right(), config_,
                                     "identity", mode);
  }

  const ontology::Ontology& left() const { return *pair_.left; }
  const ontology::Ontology& right() const { return *pair_.right; }

  synth::OntologyPair pair_;
  AlignmentConfig config_;
  AlignmentResult result_;
  std::string ref_path_;
};

// The satellite fault matrix: every registered fault point crossed with
// every non-aborting fault kind, driven through one full checkpoint-write /
// journal / snapshot-load cycle. Nothing may crash, the writer must settle
// into a coherent state, transient faults must be absorbed by the retry
// policy, and after the fault clears the world must still be intact: the
// reference snapshot loads and the checkpoint directory either resumes to
// the exact result or reports kNotFound — never a corrupt adoption.
// ("abort" is exercised process-externally by tests/crash_recovery_test.sh.)
TEST_F(DurabilityWorkloadTest, EveryFaultPointSurvivesEveryFaultKind) {
  int cell = 0;
  for (std::string_view point : util::RegisteredFaultPoints()) {
    // net.* points never fire under this file-IO workload; their matrix
    // lives in service_test.cc (NetFaultMatrixCoversRegisteredPoints).
    if (point.rfind("net.", 0) == 0) continue;
    for (const char* kind : {"enospc", "eintr", "short", "bitflip"}) {
      SCOPED_TRACE(std::string(point) + ":1:" + kind);
      FaultGuard guard(std::string(point) + ":1:" + std::string(kind));
      const uint64_t retries_before = util::IoRetryCount();
      const bool transient = std::string_view(kind) == "eintr";
      const std::string dir =
          FreshDir("fault_matrix_" + std::to_string(cell++));
      {
        core::CheckpointWriter writer({dir, 0.0}, left(), right(), config_,
                                      "identity");
        writer.Submit(ViewOf(result_));
        writer.Drain();
        // Either the checkpoint was durably journaled or the failure
        // disabled checkpointing — never a half-state.
        EXPECT_EQ(writer.checkpoints_written() == 1, !writer.disabled());
        if (transient) EXPECT_FALSE(writer.disabled());
      }
      const auto stream_load = LoadRef(SnapshotLoadMode::kStream);
      const auto mmap_load = LoadRef(SnapshotLoadMode::kMmap);
      if (transient) {
        EXPECT_TRUE(stream_load.ok()) << stream_load.status().ToString();
        EXPECT_TRUE(mmap_load.ok()) << mmap_load.status().ToString();
        EXPECT_GT(util::IoRetryCount(), retries_before);
      }

      FaultInjector::Global().Reset();
      EXPECT_TRUE(LoadRef(SnapshotLoadMode::kAuto).ok());
      auto latest = core::LoadLatestCheckpoint(dir, left(), right(), config_,
                                               "identity");
      if (latest.ok()) {
        EXPECT_EQ(Tables(*latest), Tables(result_));
      } else {
        EXPECT_EQ(latest.status().code(), StatusCode::kNotFound)
            << latest.status().ToString();
      }
    }
  }
}

// Satellite regression: a result save that fails partway through must leave
// the previously saved snapshot byte-identical and loadable.
TEST_F(DurabilityWorkloadTest, FailedResultSaveLeavesPreviousSnapshotUsable) {
  const std::string before = ReadFile(ref_path_);
  const AlignmentResult other = Run(FixedWorkConfig(1, 0));
  for (const char* spec :
       {"atomic_write.write:1:short", "atomic_write.write:1:bitflip",
        "atomic_write.fsync_file:1:enospc", "atomic_write.rename:1:enospc"}) {
    SCOPED_TRACE(spec);
    FaultGuard guard(spec);
    const util::Status status = core::SaveAlignmentResult(
        ref_path_, other, left(), right(), config_, "identity");
    if (status.ok()) {
      // bitflip is silent at write time; the damage must surface at load.
      FaultInjector::Global().Reset();
      auto loaded = LoadRef(SnapshotLoadMode::kAuto);
      ASSERT_FALSE(loaded.ok());
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
      // Restore the reference file for the next spec.
      ASSERT_TRUE(util::WriteFileAtomic(ref_path_, before).ok());
    } else {
      EXPECT_EQ(ReadFile(ref_path_), before);
      EXPECT_FALSE(FileExists(ref_path_ + ".tmp"));
      FaultInjector::Global().Reset();
      EXPECT_TRUE(LoadRef(SnapshotLoadMode::kAuto).ok());
    }
  }
}

TEST_F(DurabilityWorkloadTest, CheckpointWriterJournalsAndGarbageCollects) {
  const std::string dir = FreshDir("ckpt_journal");
  core::CheckpointWriter writer({dir, 0.0}, left(), right(), config_,
                                "identity");
  // A fresh writer with interval 0 is immediately due; subsequent captures
  // are throttled by the self-limiting cadence, so the loop below submits
  // directly (Submit itself only requires not-busy, which Drain ensures).
  EXPECT_TRUE(writer.Due());
  for (int i = 0; i < 3; ++i) {
    writer.Submit(ViewOf(result_));
    writer.Drain();
  }
  EXPECT_EQ(writer.checkpoints_written(), 3u);
  EXPECT_FALSE(writer.disabled());
  EXPECT_TRUE(FileExists(dir + "/MANIFEST"));
  // Only the last two checkpoint files are kept; the journal remembers all.
  EXPECT_FALSE(FileExists(dir + "/ckpt-000001.result"));
  EXPECT_TRUE(FileExists(dir + "/ckpt-000002.result"));
  EXPECT_TRUE(FileExists(dir + "/ckpt-000003.result"));

  auto latest =
      core::LoadLatestCheckpoint(dir, left(), right(), config_, "identity");
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(Tables(*latest), Tables(result_));

  // A new writer in the same directory continues the sequence instead of
  // reusing (and clobbering) journaled numbers.
  core::CheckpointWriter successor({dir, 0.0}, left(), right(), config_,
                                   "identity");
  successor.Submit(ViewOf(result_));
  successor.Drain();
  EXPECT_TRUE(FileExists(dir + "/ckpt-000004.result"));
}

TEST_F(DurabilityWorkloadTest, LoadLatestCheckpointSkipsCorruptEntries) {
  const std::string dir = FreshDir("ckpt_corrupt");
  core::CheckpointWriter writer({dir, 0.0}, left(), right(), config_,
                                "identity");
  writer.Submit(ViewOf(result_));
  writer.Drain();
  writer.Submit(ViewOf(result_));
  writer.Drain();
  ASSERT_EQ(writer.checkpoints_written(), 2u);

  // A torn final append (crash mid-journal-write) and a malformed line must
  // not take the journal down.
  {
    std::ofstream manifest(dir + "/MANIFEST",
                           std::ios::binary | std::ios::app);
    manifest << "not a manifest line\n999\ttorn-entr";
  }
  // Corrupt the newest checkpoint: the loader must fall back to its
  // predecessor, not fail and not adopt damaged state.
  const std::string newest = dir + "/ckpt-000002.result";
  std::string bytes = ReadFile(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  auto latest =
      core::LoadLatestCheckpoint(dir, left(), right(), config_, "identity");
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(Tables(*latest), Tables(result_));

  // With every entry corrupt there is nothing to adopt: kNotFound, so the
  // caller recomputes from scratch.
  const std::string older = dir + "/ckpt-000001.result";
  {
    std::ofstream out(older, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  auto none =
      core::LoadLatestCheckpoint(dir, left(), right(), config_, "identity");
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
}

TEST_F(DurabilityWorkloadTest, PermanentWriteFailureDisablesCheckpointing) {
  const std::string dir = FreshDir("ckpt_disabled");
  FaultGuard guard("atomic_write.open:1:enospc");  // sticky: disk stays full
  core::CheckpointWriter writer({dir, 0.0}, left(), right(), config_,
                                "identity");
  writer.Submit(ViewOf(result_));
  writer.Drain();
  EXPECT_TRUE(writer.disabled());
  EXPECT_EQ(writer.checkpoints_written(), 0u);
  EXPECT_FALSE(writer.Due());
  // Further submits are dropped silently; the run itself never fails.
  writer.Submit(ViewOf(result_));
  writer.Drain();
  EXPECT_EQ(writer.checkpoints_written(), 0u);
}

// The tentpole acceptance at library level: a run that checkpoints on a
// tight cadence produces the same tables as an undisturbed run, and
// resuming from its newest mid-run checkpoint — across thread counts —
// reconverges to byte-identical tables.
TEST_F(DurabilityWorkloadTest, CheckpointedRunAndResumeAreByteIdentical) {
  const AlignmentResult cold = Run(FixedWorkConfig(3, 0));
  const std::string reference = Tables(cold);

  AlignmentConfig ckpt_config = FixedWorkConfig(3, 0);
  ckpt_config.checkpoint_dir = FreshDir("ckpt_run");
  ckpt_config.checkpoint_interval = 1e-9;  // capture at every eligible shard
  core::Aligner aligner(left(), right(), ckpt_config);
  const AlignmentResult checkpointed = aligner.Run();
  EXPECT_EQ(Tables(checkpointed), reference);
  EXPECT_TRUE(FileExists(ckpt_config.checkpoint_dir + "/MANIFEST"));

  for (size_t threads : {size_t{0}, size_t{4}}) {
    SCOPED_TRACE(threads);
    core::Aligner resumer(left(), right(), FixedWorkConfig(3, threads));
    // Checkpoints carry the *resolved* config (what the run actually used),
    // so the load-time key check takes Aligner::config(), as Session does.
    auto latest = core::LoadLatestCheckpoint(ckpt_config.checkpoint_dir,
                                             left(), right(), resumer.config(),
                                             "identity");
    ASSERT_TRUE(latest.ok()) << latest.status().ToString();
    const AlignmentResult resumed = resumer.Resume(std::move(latest).value());
    EXPECT_EQ(Tables(resumed), reference);
  }
}

// ---------------------------------------------------------------------------
// Session-level auto-resume
// ---------------------------------------------------------------------------

TEST(DurabilitySessionTest, AutoResumeMatchesColdRunAndDegradesGracefully) {
  api::DatasetSpec spec;
  spec.profile = "restaurant";
  spec.output_prefix = TempPath("durability_sess");
  spec.scale = 0.5;
  auto dataset = api::GenerateDataset(spec);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  api::Session::Options base;
  base.config.max_iterations = 3;
  base.config.convergence_threshold = 0.0;

  const auto run = [&](const api::Session::Options& options) -> std::string {
    api::Session session(options);
    EXPECT_TRUE(
        session.LoadFromFiles(dataset->left_path, dataset->right_path).ok());
    const util::Status status = session.Align();
    EXPECT_TRUE(status.ok()) << status.ToString();
    std::ostringstream out;
    EXPECT_TRUE(session.WriteInstanceAlignment(out).ok());
    return out.str();
  };

  const std::string reference = run(base);
  ASSERT_FALSE(reference.empty());

  // First run writes checkpoints; it must not perturb the result.
  const std::string dir = FreshDir("sess_ckpts");
  api::Session::Options checkpointed = base;
  checkpointed.set_checkpointing(dir, 1e-9);
  EXPECT_EQ(run(checkpointed), reference);

  // Second run adopts the newest checkpoint and reconverges identically.
  api::Session::Options resuming = base;
  resuming.set_checkpointing(dir, 1e-9);
  resuming.set_auto_resume(true);
  EXPECT_EQ(run(resuming), reference);

  // No usable checkpoint: auto-resume degrades to a cold start, never an
  // error.
  api::Session::Options degraded = base;
  degraded.set_checkpointing(FreshDir("sess_ckpts_empty"), 0.0);
  degraded.set_auto_resume(true);
  EXPECT_EQ(run(degraded), reference);
}

}  // namespace
}  // namespace paris
