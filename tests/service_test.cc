#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "paris/api/dataset.h"
#include "paris/api/session.h"
#include "paris/core/result_reader.h"
#include "paris/service/daemon.h"
#include "paris/service/protocol.h"
#include "paris/service/read_path.h"
#include "paris/util/fault_injection.h"
#include "paris/util/flags.h"
#include "paris/util/fs.h"
#include "paris/util/net.h"
#include "paris/util/status.h"

namespace paris {
namespace {

using core::ResultReader;
using service::ErrorReply;
using service::kDefaultMaxFrameBytes;
using service::LookupCache;
using service::ReadFrame;
using service::SplitTokens;
using service::StatusFromReply;
using service::WriteFrame;
using util::SocketConn;
using util::SocketListener;
using util::StatusCode;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// A connected loopback socket pair: `client` dialed `server`'s listener.
struct LoopbackPair {
  SocketConn client;
  SocketConn server;
};

LoopbackPair MakeLoopbackPair() {
  auto listener = SocketListener::Listen("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  auto client = SocketConn::Connect("127.0.0.1", listener->port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  auto server = listener->Accept();
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return {std::move(*client), std::move(*server)};
}

// Disarms the global fault injector on scope exit, so a failing assertion
// can't leak an armed fault into later tests.
struct FaultGuard {
  FaultGuard() { util::FaultInjector::Global().Reset(); }
  ~FaultGuard() { util::FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(ProtocolFrameTest, RoundTripsPayloadsOfVariedSizes) {
  LoopbackPair pair = MakeLoopbackPair();
  // The large payload spans many TCP segments but stays well under the
  // loopback send buffer — both ends run on this one thread, so a blocking
  // SendAll would deadlock the test.
  const std::vector<std::string> payloads = {
      "", "PING", std::string(1, '\0'), std::string(48 * 1024, 'x')};
  for (const std::string& sent : payloads) {
    ASSERT_TRUE(WriteFrame(pair.client, sent, kDefaultMaxFrameBytes).ok());
    std::string got;
    auto more = ReadFrame(pair.server, &got, kDefaultMaxFrameBytes);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    EXPECT_TRUE(*more);
    EXPECT_EQ(got, sent);
  }
}

TEST(ProtocolFrameTest, CleanCloseBetweenFramesIsEof) {
  LoopbackPair pair = MakeLoopbackPair();
  ASSERT_TRUE(WriteFrame(pair.client, "last", kDefaultMaxFrameBytes).ok());
  pair.client.Close();
  std::string got;
  auto more = ReadFrame(pair.server, &got, kDefaultMaxFrameBytes);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  EXPECT_EQ(got, "last");
  more = ReadFrame(pair.server, &got, kDefaultMaxFrameBytes);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_FALSE(*more);  // clean EOF, not an error
}

TEST(ProtocolFrameTest, WriterRefusesOversizedPayload) {
  LoopbackPair pair = MakeLoopbackPair();
  const std::string big(65, 'x');
  EXPECT_EQ(WriteFrame(pair.client, big, /*max_frame_bytes=*/64).code(),
            StatusCode::kInvalidArgument);
  // Nothing was sent: the reader still sees a clean EOF after close.
  pair.client.Close();
  std::string got;
  auto more = ReadFrame(pair.server, &got, 64);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(ProtocolFrameTest, ReaderRejectsOversizedLengthPrefix) {
  LoopbackPair pair = MakeLoopbackPair();
  // A hand-built header claiming a frame far over the reader's cap. The
  // reader must reject it from the prefix alone, before buffering a body.
  const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_TRUE(pair.client.SendAll(header, sizeof(header)).ok());
  std::string got;
  auto more = ReadFrame(pair.server, &got, kDefaultMaxFrameBytes);
  EXPECT_EQ(more.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolFrameTest, TruncatedPayloadIsDataLoss) {
  LoopbackPair pair = MakeLoopbackPair();
  const unsigned char header[4] = {10, 0, 0, 0};  // promises 10 bytes
  ASSERT_TRUE(pair.client.SendAll(header, sizeof(header)).ok());
  ASSERT_TRUE(pair.client.SendAll("abc", 3).ok());
  pair.client.Close();
  std::string got;
  auto more = ReadFrame(pair.server, &got, kDefaultMaxFrameBytes);
  EXPECT_EQ(more.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolFrameTest, TruncatedHeaderIsDataLoss) {
  LoopbackPair pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.client.SendAll("\x05\x00", 2).ok());  // half a header
  pair.client.Close();
  std::string got;
  auto more = ReadFrame(pair.server, &got, kDefaultMaxFrameBytes);
  EXPECT_EQ(more.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Token + error-reply helpers
// ---------------------------------------------------------------------------

TEST(ProtocolTokenTest, SplitCollapsesWhitespace) {
  EXPECT_EQ(SplitTokens("  LOOKUP   entity\tleft  "),
            (std::vector<std::string>{"LOOKUP", "entity", "left"}));
  EXPECT_TRUE(SplitTokens("").empty());
  EXPECT_TRUE(SplitTokens("   \t  ").empty());
}

TEST(ProtocolTokenTest, MaxTokensKeepsTrimmedRemainder) {
  // The remainder token preserves interior spaces (lookup keys may hold
  // them) but is right-trimmed.
  EXPECT_EQ(SplitTokens("LOOKUP entity left  a key  with spaces  ", 4),
            (std::vector<std::string>{"LOOKUP", "entity", "left",
                                      "a key  with spaces"}));
  EXPECT_EQ(SplitTokens("A B", 4), (std::vector<std::string>{"A", "B"}));
}

TEST(ProtocolErrorTest, ErrorReplyRoundTripsCodeAndMessage) {
  for (const StatusCode code :
       {StatusCode::kNotFound, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kDataLoss}) {
    const util::Status status(code, "the message, with punctuation");
    const util::Status back = StatusFromReply(ErrorReply(status));
    EXPECT_EQ(back.code(), code);
    EXPECT_EQ(back.message(), status.message());
  }
  EXPECT_TRUE(StatusFromReply("OK 3").ok());
  EXPECT_TRUE(StatusFromReply("").ok());
  // An unparseable code name must still surface as an error.
  EXPECT_EQ(StatusFromReply("ERR BOGUS what").code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Lookup cache
// ---------------------------------------------------------------------------

TEST(LookupCacheTest, HitsMissesAndLruEviction) {
  // Budget fits two 21-byte entries (key + value), not three.
  LookupCache cache(/*max_bytes=*/44);
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
  EXPECT_EQ(cache.misses(), 1u);

  cache.Put("a", std::string(20, 'A'));  // 21 bytes with its key
  cache.Put("b", std::string(20, 'B'));
  ASSERT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, std::string(20, 'A'));
  EXPECT_EQ(cache.hits(), 1u);

  // "a" was just touched, so inserting a third entry evicts "b".
  cache.Put("c", std::string(20, 'C'));
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("c", &value));
  EXPECT_LE(cache.bytes(), 44u);
}

TEST(LookupCacheTest, OversizedValueAndZeroBudget) {
  LookupCache small(/*max_bytes=*/16);
  small.Put("k", std::string(100, 'v'));  // larger than the whole budget
  std::string value;
  EXPECT_FALSE(small.Get("k", &value));
  EXPECT_EQ(small.bytes(), 0u);

  LookupCache disabled(/*max_bytes=*/0);
  disabled.Put("k", "v");
  EXPECT_FALSE(disabled.Get("k", &value));

  LookupCache cleared(/*max_bytes=*/1024);
  cleared.Put("k", "v");
  cleared.Clear();
  EXPECT_FALSE(cleared.Get("k", &value));
  EXPECT_EQ(cleared.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Network fault matrix
// ---------------------------------------------------------------------------

// Companion of durability_test.cc's fault matrix: that one drives every
// file-IO point and skips net.*; this one covers the network points with
// the same kinds. Each armed round trip must end in either success (the
// fault was transient or inapplicable to the point) or a clean Status —
// never a hang, crash, or silent corruption — and a disarmed retry must
// succeed, proving no fault leaks past Reset().
TEST(NetFaultTest, NetFaultMatrixCoversRegisteredPoints) {
  std::vector<std::string> net_points;
  for (const std::string_view point : util::RegisteredFaultPoints()) {
    if (point.rfind("net.", 0) == 0) net_points.emplace_back(point);
  }
  for (const char* required : {"net.accept", "net.recv", "net.send"}) {
    EXPECT_NE(std::find(net_points.begin(), net_points.end(), required),
              net_points.end())
        << required << " missing from RegisteredFaultPoints()";
  }

  // Fixed-size raw exchanges, not length-prefixed frames: a bit-flipped
  // length prefix would leave the (single-threaded) reader blocked on
  // bytes that never arrive, while a fixed-size read always completes —
  // faults here either fail the call or corrupt bytes in place.
  const auto round_trip = []() -> util::Status {
    const std::string request = "ping-request-pad!";  // 17 bytes
    const std::string reply = "pong-reply-paddin";
    auto listener = SocketListener::Listen("127.0.0.1", 0);
    if (!listener.ok()) return listener.status();
    auto client = SocketConn::Connect("127.0.0.1", listener->port());
    if (!client.ok()) return client.status();
    auto server = listener->Accept();
    if (!server.ok()) return server.status();
    util::Status status = client->SendAll(request.data(), request.size());
    if (!status.ok()) return status;
    std::string got(request.size(), '\0');
    auto full = server->RecvAll(got.data(), got.size());
    if (!full.ok()) return full.status();
    if (!*full || got != request) {
      return util::DataLossError("round trip corrupted the request");
    }
    status = server->SendAll(reply.data(), reply.size());
    if (!status.ok()) return status;
    got.assign(reply.size(), '\0');
    full = client->RecvAll(got.data(), got.size());
    if (!full.ok()) return full.status();
    if (!*full || got != reply) {
      return util::DataLossError("round trip corrupted the reply");
    }
    return util::OkStatus();
  };

  for (const std::string& point : net_points) {
    for (const char* kind : {"enospc", "eintr", "eagain", "short", "bitflip"}) {
      SCOPED_TRACE(point + ":" + kind);
      FaultGuard guard;
      auto& injector = util::FaultInjector::Global();
      ASSERT_TRUE(injector.Arm(point + ":1:" + kind).ok());

      const uint64_t retries_before = util::IoRetryCount();
      const util::Status status = round_trip();
      if (strcmp(kind, "eintr") == 0 || strcmp(kind, "eagain") == 0) {
        // Transient errnos are absorbed by the shared retry policy.
        EXPECT_TRUE(status.ok()) << status.ToString();
        EXPECT_GT(util::IoRetryCount(), retries_before);
      } else if (strcmp(kind, "bitflip") == 0 && point == "net.send") {
        // A corrupted byte still round-trips; catching it is the job of a
        // payload checksum, not the transport. It must not pass silently
        // as the original bytes, which the comparison above enforces.
        EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
      }
      // Every other combination: success (the kind is a no-op at this
      // point) or a clean error — reaching here at all is the assertion.

      injector.Reset();
      const util::Status clean = round_trip();
      EXPECT_TRUE(clean.ok()) << clean.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// ResultReader against the in-memory result
// ---------------------------------------------------------------------------

// Aligns the generated restaurant pair once per process and saves the
// result snapshot; the reader tests compare point lookups against the
// authoritative in-memory AlignmentResult of the same run.
class ServiceResultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    api::DatasetSpec spec;
    spec.profile = "restaurant";
    spec.output_prefix = TempPath("service_rest");
    spec.scale = 0.5;
    auto summary = api::GenerateDataset(spec);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    left_path_ = new std::string(summary->left_path);
    right_path_ = new std::string(summary->right_path);

    api::Session::Options options;
    options.config.max_iterations = 2;
    options.config.convergence_threshold = 0.0;
    session_ = new api::Session(options);
    ASSERT_TRUE(session_->LoadFromFiles(*left_path_, *right_path_).ok());
    ASSERT_TRUE(session_->Align().ok());
    snapshot_path_ = new std::string(TempPath("service_rest.snapshot"));
    ASSERT_TRUE(session_->SaveResult(*snapshot_path_).ok());
  }

  static const core::AlignmentResult& result() { return session_->result(); }
  static const std::string& snapshot_path() { return *snapshot_path_; }
  static const std::string& left_path() { return *left_path_; }
  static const std::string& right_path() { return *right_path_; }

 private:
  static std::string* left_path_;
  static std::string* right_path_;
  static std::string* snapshot_path_;
  static api::Session* session_;
};

std::string* ServiceResultTest::left_path_ = nullptr;
std::string* ServiceResultTest::right_path_ = nullptr;
std::string* ServiceResultTest::snapshot_path_ = nullptr;
api::Session* ServiceResultTest::session_ = nullptr;

TEST_F(ServiceResultTest, StatsMatchRun) {
  auto reader = ResultReader::Open(snapshot_path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const ResultReader::Stats& stats = reader->stats();
  EXPECT_EQ(stats.num_iterations, 2u);
  EXPECT_FALSE(stats.has_partial);
  EXPECT_EQ(stats.num_instance_keys, result().instances.num_left_aligned());
  EXPECT_EQ(stats.num_relation_entries, result().relations.size());
  EXPECT_EQ(stats.num_class_entries, result().classes.entries().size());
  EXPECT_GT(stats.num_instance_keys, 0u);
  EXPECT_GT(stats.num_relation_entries, 0u);
}

TEST_F(ServiceResultTest, EntityLookupsMatchEquivalenceStore) {
  auto reader = ResultReader::Open(snapshot_path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  ASSERT_FALSE(result().instances.max_left().empty());
  for (const auto& [left, best] : result().instances.max_left()) {
    const auto stored = result().instances.LeftToRight(left);
    const auto candidates = reader->LeftEntity(left);
    ASSERT_EQ(candidates.size(), stored.size());
    for (size_t i = 0; i < stored.size(); ++i) {
      EXPECT_EQ(candidates.others[i], stored[i].other);
      EXPECT_EQ(candidates.probs[i], stored[i].prob);
    }
    // Best-first order: the head is the maximal assignment.
    ASSERT_FALSE(candidates.empty());
    EXPECT_EQ(candidates.others[0], best.other);
    EXPECT_EQ(candidates.probs[0], best.prob);
  }

  for (const auto& [right, best] : result().instances.max_right()) {
    const auto matches = reader->RightEntity(right);
    ASSERT_FALSE(matches.empty());
    EXPECT_EQ(matches[0].other, best.other);
    EXPECT_EQ(matches[0].prob, best.prob);
    const auto stored = result().instances.RightToLeft(right);
    ASSERT_EQ(matches.size(), stored.size());
    for (size_t i = 0; i < stored.size(); ++i) {
      EXPECT_EQ(matches[i].other, stored[i].other);
      EXPECT_EQ(matches[i].prob, stored[i].prob);
    }
  }
}

TEST_F(ServiceResultTest, RelationLookupsMatchScoreTable) {
  auto reader = ResultReader::Open(snapshot_path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  const auto& entries = result().relations.Entries();
  ASSERT_FALSE(entries.empty());
  size_t positive_subs = 0;
  for (const auto& entry : entries) {
    SCOPED_TRACE("sub=" + std::to_string(entry.sub) +
                 " super=" + std::to_string(entry.super) +
                 (entry.sub_is_left ? " left" : " right"));
    if (entry.sub > 0) ++positive_subs;
    const auto supers = reader->RelationSupers(entry.sub, entry.sub_is_left);
    const auto find = [&](rdf::RelId super, double score) {
      for (const auto& match : supers) {
        if (match.super == super && match.score == score) return true;
      }
      return false;
    };
    EXPECT_TRUE(find(entry.super, entry.score));
    // Pr(r ⊆ r') = Pr(r⁻¹ ⊆ r'⁻¹): the inverted pair answers identically.
    const auto inverted =
        reader->RelationSupers(-entry.sub, entry.sub_is_left);
    bool found_inverted = false;
    for (const auto& match : inverted) {
      if (match.super == -entry.super && match.score == entry.score) {
        found_inverted = true;
        break;
      }
    }
    EXPECT_TRUE(found_inverted);
    // Descending-score order, as served to clients.
    for (size_t i = 1; i < supers.size(); ++i) {
      EXPECT_GE(supers[i - 1].score, supers[i].score);
    }
  }
  // The canonical table stores positive subs, so this loop is the
  // regression test for positive-id range scans returning empty.
  EXPECT_GT(positive_subs, 0u);
}

TEST_F(ServiceResultTest, ClassLookupsMatchScoreTable) {
  auto reader = ResultReader::Open(snapshot_path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  const auto& entries = result().classes.entries();
  ASSERT_FALSE(entries.empty());
  for (const auto& entry : entries) {
    const auto supers = reader->ClassSupers(entry.sub, entry.sub_is_left);
    bool found = false;
    for (const auto& match : supers) {
      if (match.super == entry.super && match.score == entry.score) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "class sub " << entry.sub << " lost its super";
    for (size_t i = 1; i < supers.size(); ++i) {
      EXPECT_GE(supers[i - 1].score, supers[i].score);
    }
  }
}

TEST_F(ServiceResultTest, StreamModeAgreesWithMmap) {
  auto mapped = ResultReader::Open(snapshot_path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto streamed = ResultReader::Open(snapshot_path(),
                                     storage::SnapshotLoadMode::kStream);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  EXPECT_EQ(mapped->stats().num_instance_pairs,
            streamed->stats().num_instance_pairs);
  for (const auto& [left, best] : result().instances.max_left()) {
    const auto a = mapped->LeftEntity(left);
    const auto b = streamed->LeftEntity(left);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.others[i], b.others[i]);
      EXPECT_EQ(a.probs[i], b.probs[i]);
    }
  }
}

TEST_F(ServiceResultTest, MissingSnapshotIsNotFound) {
  auto reader = ResultReader::Open(TempPath("service_no_such.snapshot"));
  EXPECT_FALSE(reader.ok());
}

TEST_F(ServiceResultTest, CorruptSnapshotIsRejected) {
  const std::string bytes = ReadFileBytes(snapshot_path());
  ASSERT_GT(bytes.size(), 64u);

  // One flipped byte in the middle of the columns: the checksum pass at
  // open must catch it.
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  const std::string corrupt_path = TempPath("service_corrupt.snapshot");
  WriteFileBytes(corrupt_path, corrupt);
  auto reader = ResultReader::Open(corrupt_path);
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);

  // A truncated file must be rejected too, not read past its end.
  const std::string truncated_path = TempPath("service_truncated.snapshot");
  WriteFileBytes(truncated_path, bytes.substr(0, bytes.size() / 2));
  auto truncated = ResultReader::Open(truncated_path);
  EXPECT_FALSE(truncated.ok());
}

TEST_F(ServiceResultTest, SnapshotServerSwapsGenerations) {
  service::SnapshotServer server(/*cache_bytes=*/1 << 16);
  EXPECT_EQ(server.reader(), nullptr);
  EXPECT_EQ(server.generation(), 0u);

  ASSERT_TRUE(server.Refresh(snapshot_path()).ok());
  auto first = server.reader();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.path(), snapshot_path());

  server.cache().Put("k", "v");
  ASSERT_TRUE(server.Refresh(snapshot_path()).ok());
  EXPECT_EQ(server.generation(), 2u);
  std::string value;
  EXPECT_FALSE(server.cache().Get("k", &value))
      << "refresh must clear stale cache entries";

  // A failed refresh keeps serving the old snapshot.
  EXPECT_FALSE(server.Refresh(TempPath("service_no_such.snapshot")).ok());
  EXPECT_EQ(server.generation(), 2u);
  EXPECT_NE(server.reader(), nullptr);
}

// ---------------------------------------------------------------------------
// In-process daemon
// ---------------------------------------------------------------------------

// Drives a Daemon through raw protocol frames — no CLI in between — so
// malformed requests and abrupt disconnects can be aimed precisely.
class ServiceDaemonTest : public ServiceResultTest {
 protected:
  service::Daemon::Config BaseConfig(const std::string& data_dir) {
    service::Daemon::Config config;
    config.num_handlers = 2;
    config.queue.data_dir = TempPath(data_dir);
    // A previous (aborted) run's job state would be auto-resumed and
    // pollute LIST; every test starts from an empty data dir.
    std::filesystem::remove_all(config.queue.data_dir);
    config.queue.left_path = left_path();
    config.queue.right_path = right_path();
    config.queue.base_options.config.max_iterations = 2;
    config.queue.base_options.config.convergence_threshold = 0.0;
    config.queue.checkpoint_interval_seconds = 0.001;
    return config;
  }

  // A much larger restaurant pair for the tests that must catch a job
  // mid-run: at this scale one iteration takes ~100ms+, so a single-core
  // machine (where the busy worker starves the client threads) still
  // schedules the client well before the job finishes. Generated on first
  // use and shared by the suite.
  static const std::pair<std::string, std::string>& SlowPair() {
    static const auto* pair = [] {
      api::DatasetSpec spec;
      spec.profile = "restaurant";
      spec.output_prefix = TempPath("service_rest_slow");
      spec.scale = 16.0;
      auto summary = api::GenerateDataset(spec);
      if (!summary.ok()) {
        ADD_FAILURE() << summary.status().ToString();
        return new std::pair<std::string, std::string>();
      }
      return new std::pair<std::string, std::string>(summary->left_path,
                                                     summary->right_path);
    }();
    return *pair;
  }

  service::Daemon::Config SlowConfig(const std::string& data_dir) {
    service::Daemon::Config config = BaseConfig(data_dir);
    config.queue.left_path = SlowPair().first;
    config.queue.right_path = SlowPair().second;
    return config;
  }

  static SocketConn Dial(const service::Daemon& daemon) {
    auto conn =
        SocketConn::Connect("127.0.0.1", static_cast<uint16_t>(daemon.port()));
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return std::move(*conn);
  }

  // One request, one reply.
  static std::string Call(SocketConn& conn, const std::string& request) {
    EXPECT_TRUE(WriteFrame(conn, request, kDefaultMaxFrameBytes).ok());
    std::string reply;
    auto more = ReadFrame(conn, &reply, kDefaultMaxFrameBytes);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    EXPECT_TRUE(!more.ok() || *more) << "daemon closed instead of replying";
    return reply;
  }

  static std::string Submit(SocketConn& conn, const std::string& overrides) {
    const std::string reply =
        Call(conn, overrides.empty() ? "SUBMIT" : "SUBMIT " + overrides);
    EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
    return reply.substr(3);
  }

  // Polls STATUS until the job's state matches. ~10s ceiling.
  static void AwaitState(SocketConn& conn, const std::string& id,
                         const std::string& state) {
    for (int i = 0; i < 1000; ++i) {
      const std::string reply = Call(conn, "STATUS " + id);
      if (reply.find(" state=" + state + " ") != std::string::npos ||
          reply.find(" state=" + state + "\n") != std::string::npos) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "job " << id << " never reached state " << state;
  }
};

TEST_F(ServiceDaemonTest, PingMalformedVerbsAndShutdown) {
  service::Daemon daemon(BaseConfig("svc_ping"));
  ASSERT_TRUE(daemon.Start().ok());
  SocketConn conn = Dial(daemon);

  EXPECT_EQ(Call(conn, "PING"), "OK pong");

  // Malformed requests get an ERR reply on a connection that stays usable.
  EXPECT_EQ(StatusFromReply(Call(conn, "")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "FROBNICATE now")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "STATUS")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "STATUS job-999")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(StatusFromReply(Call(conn, "CANCEL job-999")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(StatusFromReply(Call(conn, "LOOKUP entity left x y")).code(),
            StatusCode::kFailedPrecondition)
      << "lookup before any result must be FAILED_PRECONDITION";
  EXPECT_EQ(StatusFromReply(Call(conn, "LOOKUP entity nowhere x")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Call(conn, "PING"), "OK pong");

  EXPECT_EQ(Call(conn, "SHUTDOWN"), "OK shutting down");
  daemon.Wait();  // returns because SHUTDOWN requested it
  daemon.Stop();
}

TEST_F(ServiceDaemonTest, QueryPatternsAndMalformedFrames) {
  service::Daemon daemon(BaseConfig("svc_query"));
  ASSERT_TRUE(daemon.Start().ok());
  SocketConn conn = Dial(daemon);

  // "OK <n>" followed by n tab-separated rows; returns n.
  const auto match_count = [](const std::string& reply) -> long long {
    EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
    const size_t eol = reply.find('\n');
    long long n = 0;
    EXPECT_TRUE(util::ParseFullInt64(
        reply.substr(3, eol == std::string::npos ? std::string::npos : eol - 3),
        &n))
        << reply;
    long long lines = 0;
    for (char c : reply) lines += c == '\n';
    EXPECT_EQ(lines, n) << reply;
    return n;
  };

  // QUERY answers before any job has produced a result snapshot: it scans
  // the ontology pair itself. Default limit is 100.
  const std::string all = Call(conn, "QUERY left ? ? ?");
  EXPECT_EQ(match_count(all), 100);

  // An explicit 0 lifts the limit; an explicit cap truncates.
  const long long total = match_count(Call(conn, "QUERY left ? ? ? 0"));
  EXPECT_GT(total, 100);
  EXPECT_EQ(match_count(Call(conn, "QUERY left ? ? ? 5")), 5);

  // A bound relation, its inverse spelling, and the ignored-position form
  // all agree on the underlying statement set.
  const long long bound =
      match_count(Call(conn, "QUERY left ? r1:category ? 0"));
  EXPECT_GT(bound, 0);
  EXPECT_EQ(match_count(Call(conn, "QUERY left ? -r1:category ? 0")), bound);
  const long long collapsed =
      match_count(Call(conn, "QUERY left _ r1:category ? 0"));
  EXPECT_GT(collapsed, 0);
  EXPECT_LE(collapsed, bound);

  // A fully-bound subject probe returns that entity's statements only.
  const std::string about = Call(conn, "QUERY left r1:address_0 ? ? 0");
  const long long about_n = match_count(about);
  EXPECT_GT(about_n, 0);
  EXPECT_NE(about.find("r1:address_0\t"), std::string::npos) << about;

  // Replays are served from the generation-keyed cache byte-identically.
  EXPECT_EQ(Call(conn, "QUERY left r1:address_0 ? ? 0"), about);

  // The right side resolves its own relation namespace.
  EXPECT_GT(match_count(Call(conn, "QUERY right ? ? ?")), 0);

  // Malformed frames: each gets an ERR reply and the connection survives.
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY left ? ?")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY left ? ? ? 7 extra")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY middle ? ? ?")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY left ? ? ? -3")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY left ? ? ? many")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY left no:such_term ? ?")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY left ? no:such_rel ?")).code(),
            StatusCode::kNotFound);
  // r1:category names a *left* relation; the right side must not see it.
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY right ? r1:category ?")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY left #999999999 ? ?")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromReply(Call(conn, "QUERY left ? #0 ?")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Call(conn, "PING"), "OK pong");

  daemon.Stop();
}

TEST_F(ServiceDaemonTest, SubmitWatchLookupLifecycle) {
  service::Daemon daemon(BaseConfig("svc_lifecycle"));
  ASSERT_TRUE(daemon.Start().ok());
  SocketConn conn = Dial(daemon);

  const std::string id = Submit(conn, "");

  // WATCH from a second connection streams EVT frames until END.
  SocketConn watcher = Dial(daemon);
  ASSERT_TRUE(WriteFrame(watcher, "WATCH " + id, kDefaultMaxFrameBytes).ok());
  bool saw_state = false, saw_iteration = false, saw_shard = false;
  std::string terminal;
  for (;;) {
    std::string frame;
    auto more = ReadFrame(watcher, &frame, kDefaultMaxFrameBytes);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(*more) << "stream closed without an END frame";
    if (frame.rfind("END ", 0) == 0) {
      terminal = frame.substr(4);
      break;
    }
    ASSERT_EQ(frame.rfind("EVT " + id + " ", 0), 0u) << frame;
    const std::string event = frame.substr(5 + id.size());
    saw_state |= event.rfind("state ", 0) == 0;
    saw_iteration |= event.rfind("iteration ", 0) == 0;
    saw_shard |= event.rfind("shard ", 0) == 0;
  }
  EXPECT_EQ(terminal, "done");
  EXPECT_TRUE(saw_state);
  EXPECT_TRUE(saw_iteration);
  EXPECT_TRUE(saw_shard);

  const std::string status = Call(conn, "STATUS " + id);
  EXPECT_NE(status.find(" state=done "), std::string::npos) << status;

  // The finished job's snapshot is served: lookups answer and agree with
  // the in-memory result of the identical config.
  const std::string lookup = Call(conn, "LOOKUP entity left r1:address_0");
  EXPECT_EQ(lookup.rfind("OK ", 0), 0u) << lookup;
  EXPECT_NE(lookup.find('\t'), std::string::npos)
      << "expected at least one scored candidate line: " << lookup;
  const std::string relation = Call(conn, "LOOKUP relation left r1:category");
  EXPECT_EQ(relation.rfind("OK ", 0), 0u) << relation;
  EXPECT_NE(relation, "OK 0") << "positive relation id served no supers";
  // Cached replies must be byte-identical to computed ones.
  EXPECT_EQ(Call(conn, "LOOKUP relation left r1:category"), relation);

  const std::string result_line = Call(conn, "RESULT");
  EXPECT_EQ(result_line.rfind("OK generation=1 ", 0), 0u) << result_line;
  EXPECT_NE(result_line.find("partial=0"), std::string::npos) << result_line;

  const std::string list = Call(conn, "LIST");
  EXPECT_EQ(list.rfind("OK 1\n", 0), 0u) << list;
  EXPECT_NE(list.find(id + " done"), std::string::npos) << list;

  daemon.Stop();
}

TEST_F(ServiceDaemonTest, CancelQueuedAndRunningJobs) {
  service::Daemon daemon(SlowConfig("svc_cancel"));
  ASSERT_TRUE(daemon.Start().ok());
  SocketConn conn = Dial(daemon);

  // The single worker runs jobs in order: the second stays queued and
  // must cancel instantly; the first cancels cooperatively mid-run. The
  // iteration cap bounds the test if a cancel were dropped.
  const std::string running = Submit(conn, "max-iterations=50");
  const std::string queued = Submit(conn, "max-iterations=50");

  const std::string cancel_queued = Call(conn, "CANCEL " + queued);
  EXPECT_EQ(cancel_queued.rfind("OK cancelling", 0), 0u) << cancel_queued;
  AwaitState(conn, queued, "cancelled");

  AwaitState(conn, running, "running");
  EXPECT_EQ(Call(conn, "CANCEL " + running).rfind("OK cancelling", 0), 0u);
  AwaitState(conn, running, "cancelled");

  // Cancelling a terminal job is refused.
  EXPECT_EQ(StatusFromReply(Call(conn, "CANCEL " + queued)).code(),
            StatusCode::kFailedPrecondition);

  daemon.Stop();
}

TEST_F(ServiceDaemonTest, SurvivesClientDisconnectMidWatch) {
  service::Daemon daemon(SlowConfig("svc_disconnect"));
  ASSERT_TRUE(daemon.Start().ok());
  SocketConn conn = Dial(daemon);

  const std::string id = Submit(conn, "max-iterations=50");
  {
    // Start a WATCH stream, read a single frame, vanish without goodbye.
    SocketConn watcher = Dial(daemon);
    ASSERT_TRUE(
        WriteFrame(watcher, "WATCH " + id, kDefaultMaxFrameBytes).ok());
    std::string frame;
    auto more = ReadFrame(watcher, &frame, kDefaultMaxFrameBytes);
    ASSERT_TRUE(more.ok() && *more) << more.status().ToString();
    watcher.Close();
  }

  // The daemon keeps serving other connections and the job keeps running.
  EXPECT_EQ(Call(conn, "PING"), "OK pong");
  EXPECT_EQ(Call(conn, "CANCEL " + id).rfind("OK cancelling", 0), 0u);
  AwaitState(conn, id, "cancelled");

  daemon.Stop();
}

TEST_F(ServiceDaemonTest, ServesPreexistingResultAtStartup) {
  service::Daemon::Config config = BaseConfig("svc_preloaded");
  config.serve_result = snapshot_path();
  service::Daemon daemon(config);
  ASSERT_TRUE(daemon.Start().ok());
  SocketConn conn = Dial(daemon);

  // No job has run, yet lookups answer from the preloaded snapshot.
  const std::string lookup = Call(conn, "LOOKUP entity left r1:address_0");
  EXPECT_EQ(lookup.rfind("OK ", 0), 0u) << lookup;
  const std::string result_line = Call(conn, "RESULT");
  EXPECT_EQ(result_line.rfind("OK generation=1 ", 0), 0u) << result_line;

  EXPECT_EQ(StatusFromReply(Call(conn, "LOOKUP entity left no:such_name"))
                .code(),
            StatusCode::kNotFound);

  daemon.Stop();
}

}  // namespace
}  // namespace paris
