#include <gtest/gtest.h>

#include <sstream>

#include "paris/rdf/ntriples.h"
#include "paris/rdf/store.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"

namespace paris::rdf {
namespace {

// ---------------------------------------------------------------------------
// TermPool
// ---------------------------------------------------------------------------

TEST(TermPoolTest, InternReturnsStableIds) {
  TermPool pool;
  const TermId a = pool.InternIri("ex:a");
  const TermId b = pool.InternIri("ex:b");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.InternIri("ex:a"), a);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(TermPoolTest, IriAndLiteralAreDistinct) {
  TermPool pool;
  const TermId iri = pool.InternIri("London");
  const TermId lit = pool.InternLiteral("London");
  EXPECT_NE(iri, lit);
  EXPECT_FALSE(pool.IsLiteral(iri));
  EXPECT_TRUE(pool.IsLiteral(lit));
  EXPECT_EQ(pool.lexical(iri), "London");
  EXPECT_EQ(pool.lexical(lit), "London");
}

TEST(TermPoolTest, FindWithoutInterning) {
  TermPool pool;
  EXPECT_FALSE(pool.Find("ex:a", TermKind::kIri).has_value());
  const TermId a = pool.InternIri("ex:a");
  auto found = pool.Find("ex:a", TermKind::kIri);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, a);
  EXPECT_FALSE(pool.Find("ex:a", TermKind::kLiteral).has_value());
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TermPoolTest, ManyTermsKeepLexicalStable) {
  TermPool pool;
  std::vector<TermId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(pool.InternIri("term" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.lexical(ids[static_cast<size_t>(i)]),
              "term" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Signed relations
// ---------------------------------------------------------------------------

TEST(RelIdTest, InverseEncoding) {
  EXPECT_EQ(Inverse(3), -3);
  EXPECT_EQ(Inverse(-3), 3);
  EXPECT_TRUE(IsInverse(-1));
  EXPECT_FALSE(IsInverse(1));
  EXPECT_EQ(BaseRel(-7), 7);
  EXPECT_EQ(BaseRel(7), 7);
}

// ---------------------------------------------------------------------------
// TripleStore
// ---------------------------------------------------------------------------

class TripleStoreTest : public ::testing::Test {
 protected:
  TripleStoreTest() : store_(&pool_) {
    alice_ = pool_.InternIri("ex:alice");
    bob_ = pool_.InternIri("ex:bob");
    carol_ = pool_.InternIri("ex:carol");
    knows_ = store_.InternRelation(pool_.InternIri("ex:knows"));
    likes_ = store_.InternRelation(pool_.InternIri("ex:likes"));
  }

  TermPool pool_;
  TripleStore store_;
  TermId alice_, bob_, carol_;
  RelId knows_, likes_;
};

TEST_F(TripleStoreTest, AddAndFactsAbout) {
  store_.Add(alice_, knows_, bob_);
  store_.Finalize();
  auto facts = store_.FactsAbout(alice_);
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].rel, knows_);
  EXPECT_EQ(facts[0].other, bob_);
  // The inverse statement is materialized on bob.
  auto bob_facts = store_.FactsAbout(bob_);
  ASSERT_EQ(bob_facts.size(), 1u);
  EXPECT_EQ(bob_facts[0].rel, Inverse(knows_));
  EXPECT_EQ(bob_facts[0].other, alice_);
}

TEST_F(TripleStoreTest, AddWithInverseRelNormalizes) {
  // Add(bob, knows⁻¹, alice) must equal Add(alice, knows, bob).
  store_.Add(bob_, Inverse(knows_), alice_);
  store_.Finalize();
  EXPECT_TRUE(store_.Contains(alice_, knows_, bob_));
  EXPECT_TRUE(store_.Contains(bob_, Inverse(knows_), alice_));
  EXPECT_EQ(store_.num_triples(), 1u);
}

TEST_F(TripleStoreTest, FinalizeDeduplicates) {
  store_.Add(alice_, knows_, bob_);
  store_.Add(alice_, knows_, bob_);
  store_.Add(alice_, knows_, bob_);
  store_.Finalize();
  EXPECT_EQ(store_.num_triples(), 1u);
  EXPECT_EQ(store_.FactsAbout(alice_).size(), 1u);
}

TEST_F(TripleStoreTest, FactsSortedByRelationThenOther) {
  store_.Add(alice_, likes_, carol_);
  store_.Add(alice_, knows_, carol_);
  store_.Add(alice_, knows_, bob_);
  store_.Finalize();
  auto facts = store_.FactsAbout(alice_);
  ASSERT_EQ(facts.size(), 3u);
  EXPECT_TRUE(facts[0].rel <= facts[1].rel && facts[1].rel <= facts[2].rel);
  EXPECT_EQ(facts[0].rel, knows_);
  EXPECT_EQ(facts[0].other, bob_);
}

TEST_F(TripleStoreTest, PairsOfAndForEachPair) {
  store_.Add(alice_, knows_, bob_);
  store_.Add(alice_, knows_, carol_);
  store_.Finalize();
  EXPECT_EQ(store_.PairCount(knows_), 2u);
  EXPECT_EQ(store_.PairCount(Inverse(knows_)), 2u);

  // Inverse iteration swaps the pair.
  std::vector<std::pair<TermId, TermId>> inv_pairs;
  store_.ForEachPair(Inverse(knows_), 0, [&](TermId x, TermId y) {
    inv_pairs.emplace_back(x, y);
  });
  ASSERT_EQ(inv_pairs.size(), 2u);
  for (const auto& [x, y] : inv_pairs) {
    EXPECT_EQ(y, alice_);
  }
}

TEST_F(TripleStoreTest, ForEachPairHonorsLimit) {
  for (int i = 0; i < 10; ++i) {
    store_.Add(alice_, knows_, pool_.InternIri("ex:p" + std::to_string(i)));
  }
  store_.Finalize();
  size_t count = 0;
  store_.ForEachPair(knows_, 3, [&](TermId, TermId) { ++count; });
  EXPECT_EQ(count, 3u);
}

TEST_F(TripleStoreTest, ObjectsOfFiltersByRelation) {
  store_.Add(alice_, knows_, bob_);
  store_.Add(alice_, likes_, carol_);
  store_.Finalize();
  auto objs = store_.ObjectsOf(alice_, knows_);
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0], bob_);
}

TEST_F(TripleStoreTest, UnknownTermHasNoFacts) {
  store_.Finalize();
  const TermId stranger = pool_.InternIri("ex:stranger");
  EXPECT_TRUE(store_.FactsAbout(stranger).empty());
  EXPECT_FALSE(store_.ContainsTerm(stranger));
}

TEST_F(TripleStoreTest, RelationDebugName) {
  store_.Finalize();
  EXPECT_EQ(store_.RelationDebugName(knows_), "ex:knows");
  EXPECT_EQ(store_.RelationDebugName(Inverse(knows_)), "ex:knows^-1");
}

TEST_F(TripleStoreTest, LiteralObjects) {
  const TermId name = pool_.InternLiteral("Alice");
  store_.Add(alice_, likes_, name);
  store_.Finalize();
  // The literal's adjacency points back at the subject.
  auto facts = store_.FactsAbout(name);
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].rel, Inverse(likes_));
  EXPECT_EQ(facts[0].other, alice_);
}

// ---------------------------------------------------------------------------
// N-Triples parser
// ---------------------------------------------------------------------------

TEST(NTriplesTest, ParsesResourceTriple) {
  ParsedTriple t;
  bool is_triple = false;
  auto s = NTriplesParser::ParseLine("<ex:a> <ex:knows> <ex:b> .", &t,
                                     &is_triple);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(is_triple);
  EXPECT_EQ(t.subject, "ex:a");
  EXPECT_EQ(t.predicate, "ex:knows");
  EXPECT_EQ(t.object, "ex:b");
  EXPECT_FALSE(t.object_is_literal);
}

TEST(NTriplesTest, ParsesLiteralWithEscapes) {
  ParsedTriple t;
  bool is_triple = false;
  auto s = NTriplesParser::ParseLine(
      R"(<ex:a> <ex:label> "say \"hi\"\n" .)", &t, &is_triple);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(is_triple);
  EXPECT_TRUE(t.object_is_literal);
  EXPECT_EQ(t.object, "say \"hi\"\n");
}

TEST(NTriplesTest, ParsesTypedLiteral) {
  ParsedTriple t;
  bool is_triple = false;
  auto s = NTriplesParser::ParseLine(
      "<ex:a> <ex:age> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .", &t,
      &is_triple);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(t.object, "42");
  EXPECT_EQ(t.datatype, "http://www.w3.org/2001/XMLSchema#int");
}

TEST(NTriplesTest, ParsesLanguageTag) {
  ParsedTriple t;
  bool is_triple = false;
  auto s = NTriplesParser::ParseLine("<ex:a> <ex:label> \"Londres\"@fr .",
                                     &t, &is_triple);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(t.language, "fr");
  EXPECT_EQ(t.object, "Londres");
}

TEST(NTriplesTest, ParsesUnicodeEscape) {
  ParsedTriple t;
  bool is_triple = false;
  auto s = NTriplesParser::ParseLine(
      R"(<ex:a> <ex:label> "café" .)", &t, &is_triple);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(t.object, "caf\xc3\xa9");
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  ParsedTriple t;
  bool is_triple = true;
  ASSERT_TRUE(NTriplesParser::ParseLine("", &t, &is_triple).ok());
  EXPECT_FALSE(is_triple);
  ASSERT_TRUE(NTriplesParser::ParseLine("# comment", &t, &is_triple).ok());
  EXPECT_FALSE(is_triple);
  ASSERT_TRUE(NTriplesParser::ParseLine("   ", &t, &is_triple).ok());
  EXPECT_FALSE(is_triple);
}

TEST(NTriplesTest, RejectsBlankNodes) {
  ParsedTriple t;
  bool is_triple = false;
  EXPECT_FALSE(
      NTriplesParser::ParseLine("_:b1 <ex:p> <ex:o> .", &t, &is_triple).ok());
  EXPECT_FALSE(
      NTriplesParser::ParseLine("<ex:s> <ex:p> _:b1 .", &t, &is_triple).ok());
}

TEST(NTriplesTest, RejectsMalformedLines) {
  ParsedTriple t;
  bool is_triple = false;
  EXPECT_FALSE(NTriplesParser::ParseLine("<ex:a> <ex:b>", &t, &is_triple).ok());
  EXPECT_FALSE(
      NTriplesParser::ParseLine("<ex:a> <ex:b> <ex:c>", &t, &is_triple).ok());
  EXPECT_FALSE(NTriplesParser::ParseLine("<ex:a> <ex:b> \"unterminated .",
                                         &t, &is_triple)
                   .ok());
  EXPECT_FALSE(NTriplesParser::ParseLine(
                   "<ex:a> <ex:b> <ex:c> . trailing", &t, &is_triple)
                   .ok());
}

TEST(NTriplesTest, DocumentReportsLineNumber) {
  VectorTripleSink sink;
  const std::string doc =
      "<ex:a> <ex:p> <ex:b> .\n"
      "garbage line\n";
  auto s = NTriplesParser::ParseDocument(doc, &sink);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
  EXPECT_EQ(sink.triples().size(), 1u);
}

TEST(NTriplesTest, DocumentParsesAll) {
  VectorTripleSink sink;
  const std::string doc =
      "# header\n"
      "<ex:a> <ex:p> <ex:b> .\n"
      "\n"
      "<ex:b> <ex:label> \"B\" .\n";
  auto s = NTriplesParser::ParseDocument(doc, &sink);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(sink.triples().size(), 2u);
}

TEST(NTriplesTest, WriterRoundTrip) {
  const std::string doc =
      "<ex:a> <ex:p> <ex:b> .\n"
      "<ex:a> <ex:label> \"line\\nbreak \\\"q\\\"\" .\n"
      "<ex:a> <ex:age> \"42\"^^<xsd:int> .\n"
      "<ex:a> <ex:name> \"Bob\"@en .\n";
  VectorTripleSink sink;
  ASSERT_TRUE(NTriplesParser::ParseDocument(doc, &sink).ok());
  std::ostringstream out;
  NTriplesWriter::WriteTriples(sink.triples(), out);
  VectorTripleSink sink2;
  ASSERT_TRUE(NTriplesParser::ParseDocument(out.str(), &sink2).ok());
  ASSERT_EQ(sink.triples().size(), sink2.triples().size());
  for (size_t i = 0; i < sink.triples().size(); ++i) {
    EXPECT_EQ(sink.triples()[i].subject, sink2.triples()[i].subject);
    EXPECT_EQ(sink.triples()[i].predicate, sink2.triples()[i].predicate);
    EXPECT_EQ(sink.triples()[i].object, sink2.triples()[i].object);
    EXPECT_EQ(sink.triples()[i].object_is_literal,
              sink2.triples()[i].object_is_literal);
    EXPECT_EQ(sink.triples()[i].datatype, sink2.triples()[i].datatype);
    EXPECT_EQ(sink.triples()[i].language, sink2.triples()[i].language);
  }
}

}  // namespace
}  // namespace paris::rdf
