#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <ranges>
#include <sstream>
#include <string>
#include <vector>

#include "paris/core/aligner.h"
#include "paris/ontology/ontology.h"
#include "paris/ontology/snapshot.h"
#include "paris/rdf/store.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"
#include "paris/storage/columnar_index.h"
#include "paris/storage/snapshot.h"
#include "paris/util/status.h"
#include "paris/util/thread_pool.h"

namespace paris {
namespace {

using rdf::Fact;
using rdf::Inverse;
using rdf::RelId;
using rdf::TermId;
using rdf::TermPair;
using storage::ColumnarIndex;

// ---------------------------------------------------------------------------
// ColumnarIndex
// ---------------------------------------------------------------------------

TEST(ColumnarIndexTest, BuildPacksSortedCsr) {
  // Local terms 0..2, relations 1..2; entries deliberately unsorted and with
  // a duplicate.
  const std::vector<TermId> terms = {100, 200, 300};
  std::vector<ColumnarIndex::Entry> entries = {
      {0, 2, 300}, {0, 1, 200}, {0, 1, 200}, {0, -1, 300},
      {1, -1, 100}, {2, 1, 100}, {2, 2, 100},
  };
  ColumnarIndex index =
      ColumnarIndex::Build(terms, /*num_relations=*/2, std::move(entries));

  EXPECT_EQ(index.num_terms(), 3u);
  EXPECT_EQ(index.num_relations(), 2u);
  EXPECT_EQ(index.num_facts(), 6u);

  auto facts0 = index.FactsAbout(0);
  ASSERT_EQ(facts0.size(), 3u);
  EXPECT_EQ(facts0[0], (Fact{-1, 300}));
  EXPECT_EQ(facts0[1], (Fact{1, 200}));
  EXPECT_EQ(facts0[2], (Fact{2, 300}));

  EXPECT_EQ(index.FactsAbout(1).size(), 1u);
  EXPECT_EQ(index.FactsAbout(2).size(), 2u);
}

TEST(ColumnarIndexTest, FactsWithBinarySearchesRelRange) {
  const std::vector<TermId> terms = {10};
  std::vector<ColumnarIndex::Entry> entries;
  for (TermId o = 0; o < 5; ++o) entries.push_back({0, 1, 100 + o});
  for (TermId o = 0; o < 3; ++o) entries.push_back({0, 2, 200 + o});
  ColumnarIndex index = ColumnarIndex::Build(terms, 2, std::move(entries));

  EXPECT_EQ(index.FactsWith(0, 1).size(), 5u);
  EXPECT_EQ(index.FactsWith(0, 2).size(), 3u);
  EXPECT_TRUE(index.FactsWith(0, -1).empty());
  for (const Fact& f : index.FactsWith(0, 2)) EXPECT_EQ(f.rel, 2);
}

TEST(ColumnarIndexTest, ObjectsOfReturnsSortedColumnSpan) {
  const std::vector<TermId> terms = {10};
  std::vector<ColumnarIndex::Entry> entries = {
      {0, 1, 9}, {0, 1, 3}, {0, 1, 7}, {0, 2, 1}};
  ColumnarIndex index = ColumnarIndex::Build(terms, 2, std::move(entries));

  auto objects = index.ObjectsOf(0, 1);
  ASSERT_EQ(objects.size(), 3u);
  EXPECT_EQ(objects[0], 3u);
  EXPECT_EQ(objects[1], 7u);
  EXPECT_EQ(objects[2], 9u);
  // The span aliases the packed object column — no copy.
  EXPECT_EQ(objects.data() + 3, index.ObjectsOf(0, 2).data());
  EXPECT_TRUE(index.ObjectsOf(0, 3).empty());
}

TEST(ColumnarIndexTest, ContainsAndPairs) {
  const std::vector<TermId> terms = {50, 40};
  std::vector<ColumnarIndex::Entry> entries = {
      {0, 1, 40}, {1, -1, 50}, {1, 1, 50}, {0, -1, 40}};
  ColumnarIndex index = ColumnarIndex::Build(terms, 1, std::move(entries));

  EXPECT_TRUE(index.Contains(0, 1, 40));
  EXPECT_TRUE(index.Contains(1, -1, 50));
  EXPECT_FALSE(index.Contains(0, 1, 50));
  EXPECT_EQ(index.num_triples(), 2u);

  // POS pairs sorted by (first, second): (40,50) before (50,40).
  auto pairs = index.PairsOf(1);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (TermPair{40, 50}));
  EXPECT_EQ(pairs[1], (TermPair{50, 40}));
}

TEST(ColumnarIndexTest, FromColumnsRejectsInconsistentColumns) {
  ColumnarIndex out;
  // Offsets not ending at facts.size().
  EXPECT_FALSE(ColumnarIndex::FromColumns({0, 2}, {Fact{1, 5}}, {0, 0}, {},
                                          &out));
  // Non-monotone offsets.
  EXPECT_FALSE(ColumnarIndex::FromColumns(
      {0, 2, 1}, {Fact{1, 5}, Fact{1, 6}}, {0, 0}, {}, &out));
  // Unsorted adjacency slice.
  EXPECT_FALSE(ColumnarIndex::FromColumns(
      {0, 2}, {Fact{2, 5}, Fact{1, 6}}, {0, 0, 0}, {}, &out));
  // Null relation id in a fact.
  EXPECT_FALSE(
      ColumnarIndex::FromColumns({0, 1}, {Fact{0, 5}}, {0, 0}, {}, &out));
  // Relation id beyond the registry.
  EXPECT_FALSE(
      ColumnarIndex::FromColumns({0, 1}, {Fact{7, 5}}, {0, 0}, {}, &out));
  // Unsorted pair range.
  EXPECT_FALSE(ColumnarIndex::FromColumns(
      {0, 0}, {}, {0, 2}, {TermPair{2, 2}, TermPair{1, 1}}, &out));
  // A consistent empty index is fine.
  EXPECT_TRUE(ColumnarIndex::FromColumns({0}, {}, {0}, {}, &out));
}

// A pool-sharded Finalize must pack the exact same index as a serial one.
TEST(ColumnarIndexTest, ParallelFinalizeMatchesSerial) {
  auto populate = [](rdf::TermPool* pool, rdf::TripleStore* store) {
    const RelId knows = store->InternRelation(pool->InternIri("ex:knows"));
    const RelId likes = store->InternRelation(pool->InternIri("ex:likes"));
    // Skewed: term 0 is a hub with most of the statements.
    std::vector<TermId> ids;
    for (int i = 0; i < 50; ++i) {
      ids.push_back(pool->InternIri("ex:t" + std::to_string(i)));
    }
    for (int i = 1; i < 50; ++i) {
      store->Add(ids[0], knows, ids[static_cast<size_t>(i)]);
      store->Add(ids[0], likes, ids[static_cast<size_t>((i * 7) % 50)]);
      store->Add(ids[static_cast<size_t>(i)], knows,
                 ids[static_cast<size_t>((i * 3) % 50)]);
      store->Add(ids[0], knows, ids[static_cast<size_t>(i)]);  // duplicate
    }
  };

  rdf::TermPool pool_serial;
  rdf::TripleStore serial(&pool_serial);
  populate(&pool_serial, &serial);
  serial.Finalize();

  rdf::TermPool pool_parallel;
  rdf::TripleStore parallel(&pool_parallel);
  populate(&pool_parallel, &parallel);
  paris::util::ThreadPool workers(4);
  parallel.Finalize(&workers);

  const auto& a = serial.index();
  const auto& b = parallel.index();
  ASSERT_TRUE(std::ranges::equal(a.offsets(), b.offsets()));
  ASSERT_TRUE(std::ranges::equal(a.facts(), b.facts()));
  ASSERT_TRUE(std::ranges::equal(a.objects(), b.objects()));
  ASSERT_TRUE(std::ranges::equal(a.pair_offsets(), b.pair_offsets()));
  ASSERT_TRUE(std::ranges::equal(a.pairs(), b.pairs()));
}

// ---------------------------------------------------------------------------
// Store snapshot round-trip
// ---------------------------------------------------------------------------

class StoreSnapshotTest : public ::testing::Test {
 protected:
  // A store with two relations, literals, inverse-added facts, duplicates.
  static void Populate(rdf::TermPool* pool, rdf::TripleStore* store) {
    const TermId alice = pool->InternIri("ex:alice");
    const TermId bob = pool->InternIri("ex:bob");
    const TermId carol = pool->InternIri("ex:carol");
    const TermId name = pool->InternLiteral("Alice");
    const RelId knows = store->InternRelation(pool->InternIri("ex:knows"));
    const RelId label = store->InternRelation(pool->InternIri("ex:label"));
    store->Add(alice, knows, bob);
    store->Add(alice, knows, carol);
    store->Add(alice, knows, bob);  // duplicate
    store->Add(bob, Inverse(knows), carol);
    store->Add(alice, label, name);
    store->Finalize();
  }

  static void ExpectDeepEqual(const rdf::TripleStore& a,
                              const rdf::TripleStore& b) {
    ASSERT_EQ(a.num_relations(), b.num_relations());
    for (RelId r = 1; r <= static_cast<RelId>(a.num_relations()); ++r) {
      EXPECT_EQ(a.relation_name(r), b.relation_name(r));
      auto pa = a.PairsOf(r);
      auto pb = b.PairsOf(r);
      ASSERT_EQ(pa.size(), pb.size());
      for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
    }
    ASSERT_EQ(a.terms().size(), b.terms().size());
    EXPECT_EQ(a.terms(), b.terms());
    EXPECT_EQ(a.num_triples(), b.num_triples());
    for (TermId t : a.terms()) {
      auto fa = a.FactsAbout(t);
      auto fb = b.FactsAbout(t);
      ASSERT_EQ(fa.size(), fb.size());
      for (size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
    }
  }
};

TEST_F(StoreSnapshotTest, RoundTripReproducesEverything) {
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  Populate(&pool, &store);

  std::stringstream buffer;
  storage::SnapshotWriter writer(buffer);
  storage::SaveTermPool(pool, writer);
  store.SaveTo(writer);
  ASSERT_TRUE(writer.ok());

  storage::SnapshotReader reader(buffer);
  rdf::TermPool pool2;
  ASSERT_TRUE(storage::LoadTermPool(reader, &pool2).ok());
  auto loaded = rdf::TripleStore::LoadFrom(reader, &pool2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(reader.ok());

  // Term pool deep equality.
  ASSERT_EQ(pool.size(), pool2.size());
  for (TermId id = 0; id < pool.size(); ++id) {
    EXPECT_EQ(pool.lexical(id), pool2.lexical(id));
    EXPECT_EQ(pool.kind(id), pool2.kind(id));
  }
  ExpectDeepEqual(store, *loaded);
  EXPECT_TRUE(loaded->finalized());

  // Semantics survive: lookups behave identically.
  const TermId alice = *pool2.Find("ex:alice", rdf::TermKind::kIri);
  const TermId bob = *pool2.Find("ex:bob", rdf::TermKind::kIri);
  const RelId knows = *loaded->FindRelation(
      *pool2.Find("ex:knows", rdf::TermKind::kIri));
  EXPECT_TRUE(loaded->Contains(alice, knows, bob));
  EXPECT_EQ(loaded->ObjectsOf(alice, knows).size(), 2u);
}

TEST_F(StoreSnapshotTest, LoadRejectsOutOfRangeTermIds) {
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  Populate(&pool, &store);

  std::stringstream buffer;
  storage::SnapshotWriter writer(buffer);
  store.SaveTo(writer);

  // Load against a pool that lacks the referenced terms.
  rdf::TermPool tiny;
  tiny.InternIri("only");
  storage::SnapshotReader reader(buffer);
  auto loaded = rdf::TripleStore::LoadFrom(reader, &tiny);
  EXPECT_FALSE(loaded.ok());
}

TEST(TermPoolSnapshotTest, RequiresEmptyPool) {
  rdf::TermPool pool;
  pool.InternIri("ex:x");
  std::stringstream buffer;
  storage::SnapshotWriter writer(buffer);
  storage::SaveTermPool(pool, writer);

  storage::SnapshotReader reader(buffer);
  rdf::TermPool non_empty;
  non_empty.InternIri("occupied");
  EXPECT_FALSE(storage::LoadTermPool(reader, &non_empty).ok());
}

// ---------------------------------------------------------------------------
// Alignment snapshot files
// ---------------------------------------------------------------------------

class AlignmentSnapshotTest : public ::testing::Test {
 protected:
  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  // Two small ontologies over one pool, exercising facts, literals, types,
  // subclass and subproperty closure.
  static void Build(rdf::TermPool* pool,
                    std::optional<ontology::Ontology>* left,
                    std::optional<ontology::Ontology>* right) {
    ontology::OntologyBuilder lb(pool, "left");
    lb.AddSubClassOf("l:Singer", "l:Person");
    lb.AddType("l:elvis", "l:Singer");
    lb.AddSubPropertyOf("l:bornIn", "l:locatedIn");
    lb.AddFact("l:elvis", "l:bornIn", "l:tupelo");
    lb.AddLiteralFact("l:elvis", "l:name", "Elvis Presley");
    auto built_left = lb.Build();
    ASSERT_TRUE(built_left.ok()) << built_left.status().ToString();
    left->emplace(std::move(built_left).value());

    ontology::OntologyBuilder rb(pool, "right");
    rb.AddType("r:elvis", "r:Artist");
    rb.AddFact("r:elvis", "r:birthPlace", "r:tupelo");
    rb.AddLiteralFact("r:elvis", "r:label", "Elvis Presley");
    auto built_right = rb.Build();
    ASSERT_TRUE(built_right.ok()) << built_right.status().ToString();
    right->emplace(std::move(built_right).value());
  }

  static void ExpectOntologyEqual(const ontology::Ontology& a,
                                  const ontology::Ontology& b) {
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.instances(), b.instances());
    EXPECT_EQ(a.classes(), b.classes());
    EXPECT_EQ(a.num_triples(), b.num_triples());
    ASSERT_EQ(a.num_relations(), b.num_relations());
    for (rdf::TermId cls : a.classes()) {
      auto sa = a.SuperClassesOf(cls);
      auto sb = b.SuperClassesOf(cls);
      EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
      auto ia = a.InstancesOf(cls);
      auto ib = b.InstancesOf(cls);
      EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin(), ib.end()));
    }
    for (rdf::TermId inst : a.instances()) {
      auto ca = a.ClassesOf(inst);
      auto cb = b.ClassesOf(inst);
      EXPECT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()));
      auto fa = a.FactsAbout(inst);
      auto fb = b.FactsAbout(inst);
      ASSERT_EQ(fa.size(), fb.size());
      for (size_t i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
    }
    for (RelId r = 1; r <= static_cast<RelId>(a.num_relations()); ++r) {
      for (RelId signed_rel : {r, Inverse(r)}) {
        EXPECT_DOUBLE_EQ(a.Fun(signed_rel), b.Fun(signed_rel));
        EXPECT_DOUBLE_EQ(a.FunInverse(signed_rel), b.FunInverse(signed_rel));
      }
    }
  }
};

TEST_F(AlignmentSnapshotTest, FileRoundTrip) {
  rdf::TermPool pool;
  std::optional<ontology::Ontology> left;
  std::optional<ontology::Ontology> right;
  Build(&pool, &left, &right);
  const std::string path = TempPath("pair.snap");

  auto status = ontology::SaveAlignmentSnapshot(path, *left, *right);
  ASSERT_TRUE(status.ok()) << status.ToString();

  rdf::TermPool pool2;
  auto loaded = ontology::LoadAlignmentSnapshot(path, &pool2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(pool.size(), pool2.size());
  for (TermId id = 0; id < pool.size(); ++id) {
    EXPECT_EQ(pool.lexical(id), pool2.lexical(id));
    EXPECT_EQ(pool.kind(id), pool2.kind(id));
  }
  ExpectOntologyEqual(*left, loaded->left);
  ExpectOntologyEqual(*right, loaded->right);
  std::remove(path.c_str());
}

TEST_F(AlignmentSnapshotTest, SavingIsDeterministic) {
  rdf::TermPool pool;
  std::optional<ontology::Ontology> left;
  std::optional<ontology::Ontology> right;
  Build(&pool, &left, &right);
  const std::string p1 = TempPath("det1.snap");
  const std::string p2 = TempPath("det2.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(p1, *left, *right).ok());
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(p2, *left, *right).ok());
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  std::stringstream b1, b2;
  b1 << f1.rdbuf();
  b2 << f2.rdbuf();
  EXPECT_EQ(b1.str(), b2.str());
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST_F(AlignmentSnapshotTest, RejectsCorruptionEverywhere) {
  rdf::TermPool pool;
  std::optional<ontology::Ontology> left;
  std::optional<ontology::Ontology> right;
  Build(&pool, &left, &right);
  const std::string path = TempPath("corrupt_base.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *left, *right).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_GT(bytes.size(), 64u);

  // Flip one byte at a spread of offsets; every variant must be rejected
  // (structural validation or the checksum trailer).
  const std::string corrupt_path = TempPath("corrupt.snap");
  for (size_t offset = 0; offset < bytes.size();
       offset += 1 + bytes.size() / 23) {
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x5a);
    {
      std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    rdf::TermPool scratch;
    auto loaded = ontology::LoadAlignmentSnapshot(corrupt_path, &scratch);
    EXPECT_FALSE(loaded.ok()) << "byte flip at offset " << offset
                              << " was not rejected";
    // Classified, not just rejected: a damaged magic is "wrong kind of
    // file", anything past it is kDataLoss — the one code crash recovery
    // may answer with recomputation.
    EXPECT_EQ(loaded.status().code(),
              offset < 8 ? util::StatusCode::kInvalidArgument
                         : util::StatusCode::kDataLoss)
        << "byte flip at offset " << offset << ": "
        << loaded.status().ToString();
  }
  std::remove(corrupt_path.c_str());
  std::remove(path.c_str());
}

TEST_F(AlignmentSnapshotTest, RejectsTruncation) {
  rdf::TermPool pool;
  std::optional<ontology::Ontology> left;
  std::optional<ontology::Ontology> right;
  Build(&pool, &left, &right);
  const std::string path = TempPath("trunc_base.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *left, *right).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  const std::string trunc_path = TempPath("trunc.snap");
  for (size_t keep : {size_t{0}, size_t{4}, size_t{12}, bytes.size() / 3,
                      bytes.size() / 2, bytes.size() - 1}) {
    {
      std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
      out << bytes.substr(0, keep);
    }
    rdf::TermPool scratch;
    auto loaded = ontology::LoadAlignmentSnapshot(trunc_path, &scratch);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << keep
                              << " bytes was not rejected";
    EXPECT_EQ(loaded.status().code(),
              keep < 8 ? util::StatusCode::kInvalidArgument
                       : util::StatusCode::kDataLoss)
        << "truncation to " << keep << ": " << loaded.status().ToString();
  }
  std::remove(trunc_path.c_str());
  std::remove(path.c_str());
}

TEST_F(AlignmentSnapshotTest, RejectsTrailingGarbageAndMissingFile) {
  rdf::TermPool pool;
  std::optional<ontology::Ontology> left;
  std::optional<ontology::Ontology> right;
  Build(&pool, &left, &right);
  const std::string path = TempPath("tail.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *left, *right).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  rdf::TermPool scratch;
  EXPECT_FALSE(ontology::LoadAlignmentSnapshot(path, &scratch).ok());
  std::remove(path.c_str());

  rdf::TermPool scratch2;
  EXPECT_FALSE(
      ontology::LoadAlignmentSnapshot(TempPath("does_not_exist.snap"),
                                      &scratch2)
          .ok());
}

// ---------------------------------------------------------------------------
// mmap zero-copy load path
// ---------------------------------------------------------------------------

TEST_F(AlignmentSnapshotTest, MmapLoadMatchesStreamLoad) {
  rdf::TermPool pool;
  std::optional<ontology::Ontology> left;
  std::optional<ontology::Ontology> right;
  Build(&pool, &left, &right);
  const std::string path = TempPath("mmap.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *left, *right).ok());

  rdf::TermPool stream_pool;
  auto streamed = ontology::LoadAlignmentSnapshot(
      path, &stream_pool, ontology::SnapshotLoadMode::kStream);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_FALSE(streamed->left.store().index().zero_copy());

  rdf::TermPool mmap_pool;
  auto mapped = ontology::LoadAlignmentSnapshot(
      path, &mmap_pool, ontology::SnapshotLoadMode::kMmap);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // The packed columns must alias the mapping, not heap copies.
  EXPECT_TRUE(mapped->left.store().index().zero_copy());
  EXPECT_TRUE(mapped->right.store().index().zero_copy());

  ExpectOntologyEqual(streamed->left, mapped->left);
  ExpectOntologyEqual(streamed->right, mapped->right);
  ExpectOntologyEqual(*left, mapped->left);
  ExpectOntologyEqual(*right, mapped->right);

  // The file may be deleted while the mapping is alive (POSIX semantics);
  // reads must keep working.
  std::remove(path.c_str());
  EXPECT_GT(mapped->left.num_triples(), 0u);
  ExpectOntologyEqual(streamed->left, mapped->left);
}

TEST_F(AlignmentSnapshotTest, MmapRejectsCorruptionAndTruncation) {
  rdf::TermPool pool;
  std::optional<ontology::Ontology> left;
  std::optional<ontology::Ontology> right;
  Build(&pool, &left, &right);
  const std::string path = TempPath("mmap_corrupt_base.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *left, *right).ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  const std::string bad_path = TempPath("mmap_corrupt.snap");
  for (size_t offset = 0; offset < bytes.size();
       offset += 1 + bytes.size() / 23) {
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x5a);
    {
      std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    rdf::TermPool scratch;
    EXPECT_FALSE(ontology::LoadAlignmentSnapshot(
                     bad_path, &scratch, ontology::SnapshotLoadMode::kMmap)
                     .ok())
        << "byte flip at offset " << offset << " was not rejected by mmap";
  }
  for (size_t keep : {size_t{0}, size_t{4}, size_t{12}, bytes.size() / 2,
                      bytes.size() - 1}) {
    {
      std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
      out << bytes.substr(0, keep);
    }
    rdf::TermPool scratch;
    EXPECT_FALSE(ontology::LoadAlignmentSnapshot(
                     bad_path, &scratch, ontology::SnapshotLoadMode::kMmap)
                     .ok())
        << "truncation to " << keep << " bytes was not rejected by mmap";
  }
  std::remove(bad_path.c_str());
  std::remove(path.c_str());
}

// End to end: the aligner must produce identical equivalence tables whether
// the ontologies were freshly built, streamed, or mmap'ed — at any thread
// count.
TEST_F(AlignmentSnapshotTest, AlignmentIdenticalAcrossLoadPathsAndThreads) {
  rdf::TermPool pool;
  std::optional<ontology::Ontology> left;
  std::optional<ontology::Ontology> right;
  Build(&pool, &left, &right);
  const std::string path = TempPath("align_paths.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *left, *right).ok());

  core::AlignmentConfig config;
  config.max_iterations = 4;
  auto run = [&config](const ontology::Ontology& l,
                       const ontology::Ontology& r, size_t threads) {
    core::AlignmentConfig c = config;
    c.num_threads = threads;
    return core::Aligner(l, r, c).Run();
  };
  const core::AlignmentResult reference = run(*left, *right, 0);
  ASSERT_GT(reference.instances.max_left().size(), 0u);

  for (const auto mode : {ontology::SnapshotLoadMode::kStream,
                          ontology::SnapshotLoadMode::kMmap}) {
    for (size_t threads : {size_t{0}, size_t{4}}) {
      rdf::TermPool fresh;
      auto loaded = ontology::LoadAlignmentSnapshot(path, &fresh, mode);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      const core::AlignmentResult result =
          run(loaded->left, loaded->right, threads);
      ASSERT_EQ(result.instances.max_left().size(),
                reference.instances.max_left().size());
      for (const auto& [l_term, candidate] : reference.instances.max_left()) {
        const auto* other = result.instances.MaxOfLeft(l_term);
        ASSERT_NE(other, nullptr);
        EXPECT_EQ(other->other, candidate.other);
        EXPECT_EQ(other->prob, candidate.prob);
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paris
