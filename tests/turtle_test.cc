#include <gtest/gtest.h>

#include "paris/ontology/ontology.h"
#include "paris/rdf/turtle.h"

namespace paris::rdf {
namespace {

std::vector<ParsedTriple> Parse(std::string_view doc) {
  VectorTripleSink sink;
  util::Status s = TurtleParser::ParseDocument(doc, &sink);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return sink.triples();
}

TEST(TurtleTest, BasicTripleWithPrefix) {
  auto triples = Parse(
      "@prefix ex: <http://example.org/> .\n"
      "ex:alice ex:knows ex:bob .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject, "http://example.org/alice");
  EXPECT_EQ(triples[0].predicate, "http://example.org/knows");
  EXPECT_EQ(triples[0].object, "http://example.org/bob");
  EXPECT_FALSE(triples[0].object_is_literal);
}

TEST(TurtleTest, SparqlStylePrefix) {
  auto triples = Parse(
      "PREFIX ex: <http://e.org/>\n"
      "ex:a ex:p ex:b .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject, "http://e.org/a");
}

TEST(TurtleTest, AKeywordIsRdfType) {
  auto triples = Parse(
      "@prefix ex: <http://e.org/> .\n"
      "ex:elvis a ex:Singer .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].predicate, "rdf:type");
}

TEST(TurtleTest, PredicateAndObjectLists) {
  auto triples = Parse(
      "@prefix ex: <http://e.org/> .\n"
      "ex:elvis a ex:Singer ;\n"
      "    ex:name \"Elvis\" , \"The King\"@en ;\n"
      "    ex:born \"1935\"^^<http://www.w3.org/2001/XMLSchema#int> .\n");
  ASSERT_EQ(triples.size(), 4u);
  EXPECT_EQ(triples[0].predicate, "rdf:type");
  EXPECT_EQ(triples[1].object, "Elvis");
  EXPECT_TRUE(triples[1].object_is_literal);
  EXPECT_EQ(triples[2].object, "The King");
  EXPECT_EQ(triples[2].language, "en");
  EXPECT_EQ(triples[3].object, "1935");
  EXPECT_EQ(triples[3].datatype, "http://www.w3.org/2001/XMLSchema#int");
}

TEST(TurtleTest, TrailingSemicolonBeforeDot) {
  auto triples = Parse(
      "@prefix ex: <http://e.org/> .\n"
      "ex:a ex:p ex:b ;\n"
      "     ex:q ex:c ;\n"
      ".\n");
  EXPECT_EQ(triples.size(), 2u);
}

TEST(TurtleTest, NumericAndBooleanAbbreviations) {
  auto triples = Parse(
      "@prefix ex: <http://e.org/> .\n"
      "ex:x ex:age 42 ; ex:height 1.82 ; ex:active true .\n");
  ASSERT_EQ(triples.size(), 3u);
  EXPECT_EQ(triples[0].object, "42");
  EXPECT_NE(triples[0].datatype.find("integer"), std::string::npos);
  EXPECT_EQ(triples[1].object, "1.82");
  EXPECT_NE(triples[1].datatype.find("decimal"), std::string::npos);
  EXPECT_EQ(triples[2].object, "true");
  EXPECT_NE(triples[2].datatype.find("boolean"), std::string::npos);
}

TEST(TurtleTest, LongStrings) {
  auto triples = Parse(
      "@prefix ex: <http://e.org/> .\n"
      "ex:x ex:bio \"\"\"line one\nline \"two\" end\"\"\" .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].object, "line one\nline \"two\" end");
}

TEST(TurtleTest, EscapesAndComments) {
  auto triples = Parse(
      "@prefix ex: <http://e.org/> . # a comment\n"
      "# full-line comment\n"
      "ex:x ex:label \"tab\\there \\u00e9\" .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].object, "tab\there \xc3\xa9");
}

TEST(TurtleTest, PrefixedDatatype) {
  auto triples = Parse(
      "@prefix ex: <http://e.org/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:x ex:born \"1935\"^^xsd:date .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].datatype, "http://www.w3.org/2001/XMLSchema#date");
}

TEST(TurtleTest, DotInsideLocalName) {
  auto triples = Parse(
      "@prefix ex: <http://e.org/> .\n"
      "ex:v1.2 ex:p ex:b .\n");
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].subject, "http://e.org/v1.2");
}

TEST(TurtleTest, ErrorsCarryLineNumbers) {
  VectorTripleSink sink;
  auto s = TurtleParser::ParseDocument(
      "@prefix ex: <http://e.org/> .\n"
      "ex:a ex:p [ ] .\n",
      &sink);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
}

TEST(TurtleTest, RejectsUndeclaredPrefix) {
  VectorTripleSink sink;
  auto s = TurtleParser::ParseDocument("foo:a foo:b foo:c .\n", &sink);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("undeclared prefix"), std::string::npos);
}

TEST(TurtleTest, RejectsBlankNodesAndCollections) {
  VectorTripleSink sink;
  EXPECT_FALSE(
      TurtleParser::ParseDocument("_:b <p:x> <p:y> .\n", &sink).ok());
  EXPECT_FALSE(TurtleParser::ParseDocument(
                   "@prefix e: <u:> . e:a e:p ( e:b e:c ) .\n", &sink)
                   .ok());
  EXPECT_FALSE(
      TurtleParser::ParseDocument("@base <http://x/> .\n", &sink).ok());
}

TEST(TurtleTest, RejectsUnterminatedConstructs) {
  VectorTripleSink sink;
  EXPECT_FALSE(TurtleParser::ParseDocument("<u:a> <u:b> \"open .\n", &sink)
                   .ok());
  EXPECT_FALSE(TurtleParser::ParseDocument("<u:a <u:b> <u:c> .\n", &sink)
                   .ok());
  EXPECT_FALSE(
      TurtleParser::ParseDocument("<u:a> <u:b> <u:c>\n", &sink).ok());
}

TEST(TurtleTest, FeedsOntologyBuilder) {
  rdf::TermPool pool;
  ontology::OntologyBuilder builder(&pool, "turtle");
  const char* doc =
      "@prefix ex: <http://e.org/> .\n"
      "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
      "ex:elvis a ex:Singer ;\n"
      "    rdfs:label \"Elvis Presley\" ;\n"
      "    ex:bornIn ex:tupelo .\n"
      "ex:Singer rdfs:subClassOf ex:Person .\n";
  ASSERT_TRUE(TurtleParser::ParseDocument(doc, &builder).ok());
  auto onto = builder.Build();
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  EXPECT_EQ(onto->classes().size(), 2u);
  EXPECT_EQ(onto->num_triples(), 2u);  // label + bornIn
  const auto elvis = pool.Find("http://e.org/elvis", TermKind::kIri);
  ASSERT_TRUE(elvis.has_value());
  EXPECT_EQ(onto->ClassesOf(*elvis).size(), 2u);  // Singer + Person (closure)
}

}  // namespace
}  // namespace paris::rdf
