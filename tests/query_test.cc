// Tests for the hexastore-style triple-pattern engine (storage::TriIndex),
// its persistence (snapshot v3 columns + v2 rebuild), the Session::Query
// facade, and the aligner's byte-identity guarantee over the new fast
// access paths (per-term relation directory, packed type index).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "paris/api/session.h"
#include "paris/core/aligner.h"
#include "paris/ontology/ontology.h"
#include "paris/ontology/snapshot.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/store.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"
#include "paris/storage/snapshot.h"
#include "paris/storage/tri_index.h"
#include "paris/util/status.h"

namespace paris {
namespace {

using rdf::RelId;
using rdf::TermId;
using rdf::Triple;
using storage::TriIndex;
using storage::TriplePattern;
using storage::TriPos;
using storage::TriRow;

using Slot = TriplePattern::Slot;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Canonical comparable form of an emitted match.
using Key = std::tuple<TermId, RelId, TermId>;

Key KeyOf(const Triple& t) { return {t.subject, t.rel, t.object}; }

std::set<Key> KeySet(const std::vector<Triple>& triples) {
  std::set<Key> keys;
  for (const Triple& t : triples) keys.insert(KeyOf(t));
  return keys;
}

// Every actual statement of a store, as positive-relation triples, by
// walking the per-term adjacency directly (independent of TriIndex).
std::vector<Triple> AllTriples(const rdf::TripleStore& store) {
  std::vector<Triple> out;
  for (TermId t : store.terms()) {
    for (const rdf::Fact& f : store.FactsAbout(t)) {
      if (f.rel > 0) out.push_back(Triple{t, f.rel, f.other});
    }
  }
  return out;
}

// Reference semantics for a (positive-relation) pattern: filter by the
// bound positions, null out ignored positions, deduplicate.
std::set<Key> BruteForce(const std::vector<Triple>& all,
                         const TriplePattern& p) {
  std::set<Key> expect;
  for (const Triple& t : all) {
    if (p.bound(TriPos::kSubject) && t.subject != p.values[0]) continue;
    if (p.bound(TriPos::kRel) && t.rel != p.rel()) continue;
    if (p.bound(TriPos::kObject) && t.object != p.values[2]) continue;
    Triple emitted = t;
    if (p.slot(TriPos::kSubject) == Slot::kIgnored) {
      emitted.subject = rdf::kNullTerm;
    }
    if (p.slot(TriPos::kRel) == Slot::kIgnored) emitted.rel = rdf::kNullRel;
    if (p.slot(TriPos::kObject) == Slot::kIgnored) {
      emitted.object = rdf::kNullTerm;
    }
    expect.insert(KeyOf(emitted));
  }
  return expect;
}

// Applies one slot state to one pattern position, binding from `bind`.
void ApplySlot(TriplePattern* p, TriPos pos, Slot state, const Triple& bind) {
  switch (pos) {
    case TriPos::kSubject:
      if (state == Slot::kBound) p->BindSubject(bind.subject);
      if (state == Slot::kIgnored) p->IgnoreSubject();
      break;
    case TriPos::kRel:
      if (state == Slot::kBound) p->BindRel(bind.rel);
      if (state == Slot::kIgnored) p->IgnoreRel();
      break;
    case TriPos::kObject:
      if (state == Slot::kBound) p->BindObject(bind.object);
      if (state == Slot::kIgnored) p->IgnoreObject();
      break;
  }
}

void ExpectSameRows(const TriIndex& a, const TriIndex& b) {
  auto rows_equal = [](std::span<const TriRow> x, std::span<const TriRow> y) {
    return x.size() == y.size() && std::equal(x.begin(), x.end(), y.begin());
  };
  EXPECT_TRUE(rows_equal(a.spo_rows(), b.spo_rows()));
  EXPECT_TRUE(rows_equal(a.pos_rows(), b.pos_rows()));
  EXPECT_TRUE(rows_equal(a.osp_rows(), b.osp_rows()));
}

// ---------------------------------------------------------------------------
// Pattern engine vs brute force
// ---------------------------------------------------------------------------

class TriIndexQueryTest : public ::testing::Test {
 protected:
  // One ontology with enough shape diversity to make every mask
  // interesting: shared objects across relations, repeated (s, o) pairs
  // under different relations, high- and low-degree subjects.
  void Build() {
    ontology::OntologyBuilder b(&pool_, "left");
    for (int i = 0; i < 12; ++i) {
      const std::string e = "l:e" + std::to_string(i);
      b.AddType(e, i % 2 ? "l:Person" : "l:Artist");
      b.AddLiteralFact(e, "l:name", "Name " + std::to_string(i));
      b.AddLiteralFact(e, "l:city", "City " + std::to_string(i % 3));
      b.AddFact(e, "l:knows", "l:e" + std::to_string((i + 1) % 12));
      b.AddFact(e, "l:knows", "l:e" + std::to_string((i + 5) % 12));
      b.AddFact(e, "l:worksAt", "l:e" + std::to_string((i + 1) % 12));
    }
    auto built = b.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    onto_.emplace(std::move(built).value());
    all_ = AllTriples(onto_->store());
    ASSERT_GT(all_.size(), 40u);
  }

  const TriIndex& tri() const { return onto_->store().tri(); }

  rdf::TermPool pool_;
  std::optional<ontology::Ontology> onto_;
  std::vector<Triple> all_;
};

TEST_F(TriIndexQueryTest, DispatchUsesFullBoundPrefixForAllMasks) {
  // Every bound-position subset must be a prefix of its chosen ordering —
  // i.e. one range scan, never scan-and-filter. Mask bit i = position i
  // bound (subject, rel, object).
  for (int mask = 0; mask < 8; ++mask) {
    TriplePattern p;
    if (mask & 1) p.BindSubject(3);
    if (mask & 2) p.BindRel(1);
    if (mask & 4) p.BindObject(4);
    const storage::TriDispatch d = TriIndex::DispatchFor(p);
    EXPECT_EQ(d.bound_prefix, std::popcount(static_cast<unsigned>(mask)))
        << "mask=" << mask;
  }
}

TEST_F(TriIndexQueryTest, AllSlotCombinationsMatchBruteForce) {
  Build();
  // All 27 variable/bound/ignored combinations, with bound values drawn
  // from several real triples (spread across the store) plus one absent
  // binding. Covers the 8 bound masks, every ignored-dedup shape —
  // including the non-adjacent ones like (bound s, ignored p, variable o)
  // — and empty results.
  std::vector<Triple> seeds = {all_.front(), all_[all_.size() / 3],
                               all_[2 * all_.size() / 3], all_.back()};
  seeds.push_back(Triple{all_.front().subject, all_.back().rel,
                         static_cast<TermId>(pool_.size() + 5)});
  const Slot kStates[] = {Slot::kVariable, Slot::kBound, Slot::kIgnored};
  for (const Triple& seed : seeds) {
    for (Slot s_state : kStates) {
      for (Slot p_state : kStates) {
        for (Slot o_state : kStates) {
          TriplePattern p;
          ApplySlot(&p, TriPos::kSubject, s_state, seed);
          ApplySlot(&p, TriPos::kRel, p_state, seed);
          ApplySlot(&p, TriPos::kObject, o_state, seed);
          const std::vector<Triple> got = tri().Collect(p);
          const std::set<Key> expect = BruteForce(all_, p);
          EXPECT_EQ(KeySet(got), expect)
              << "slots=" << static_cast<int>(s_state)
              << static_cast<int>(p_state) << static_cast<int>(o_state)
              << " seed=(" << seed.subject << "," << seed.rel << ","
              << seed.object << ")";
          // Matches are emitted exactly once each.
          EXPECT_EQ(got.size(), expect.size());
          // Count agrees with the scan for every shape.
          EXPECT_EQ(tri().Count(p), expect.size());
        }
      }
    }
  }
}

TEST_F(TriIndexQueryTest, InversePatternNormalizesToForwardScan) {
  Build();
  const Triple seed = all_[all_.size() / 2];
  // -r with subject/object swapped is the same statement set.
  const auto forward = tri().Collect(
      TriplePattern().BindSubject(seed.subject).BindRel(seed.rel));
  const auto inverse = tri().Collect(
      TriplePattern().BindRel(rdf::Inverse(seed.rel)).BindObject(seed.subject));
  EXPECT_EQ(KeySet(forward), KeySet(inverse));
  ASSERT_FALSE(forward.empty());
  // Emitted triples are actual positive-relation statements either way.
  for (const Triple& t : inverse) {
    EXPECT_GT(t.rel, 0);
    EXPECT_TRUE(onto_->store().Contains(t.subject, t.rel, t.object));
  }
  // Fully-bound inverse probe.
  EXPECT_EQ(tri().Count(TriplePattern()
                            .BindSubject(seed.object)
                            .BindRel(rdf::Inverse(seed.rel))
                            .BindObject(seed.subject)),
            1u);
}

TEST_F(TriIndexQueryTest, LimitTruncatesDeterministically) {
  Build();
  const TriplePattern all;
  const std::vector<Triple> full = tri().Collect(all);
  ASSERT_EQ(full.size(), all_.size());
  for (size_t limit : {size_t{1}, size_t{7}, full.size(), full.size() + 10}) {
    const std::vector<Triple> part = tri().Collect(all, limit);
    ASSERT_EQ(part.size(), std::min(limit, full.size()));
    for (size_t i = 0; i < part.size(); ++i) EXPECT_EQ(part[i], full[i]);
  }
}

TEST_F(TriIndexQueryTest, DistinctBindingsMatchesBruteForce) {
  Build();
  // Relation inventory of the whole store.
  std::set<uint32_t> rels;
  for (const Triple& t : all_) rels.insert(static_cast<uint32_t>(t.rel));
  const auto got_rels = tri().DistinctBindings(TriplePattern(), TriPos::kRel);
  EXPECT_TRUE(std::is_sorted(got_rels.begin(), got_rels.end()));
  EXPECT_EQ(std::set<uint32_t>(got_rels.begin(), got_rels.end()), rels);

  // Distinct objects of one relation.
  const RelId rel = all_.front().rel;
  std::set<uint32_t> objects;
  for (const Triple& t : all_) {
    if (t.rel == rel) objects.insert(t.object);
  }
  const auto got_objects =
      tri().DistinctBindings(TriplePattern().BindRel(rel), TriPos::kObject);
  EXPECT_EQ(std::set<uint32_t>(got_objects.begin(), got_objects.end()),
            objects);
  // Limit keeps the sorted prefix.
  const auto capped = tri().DistinctBindings(TriplePattern().BindRel(rel),
                                             TriPos::kObject, 2);
  ASSERT_LE(capped.size(), 2u);
  EXPECT_TRUE(std::equal(capped.begin(), capped.end(), got_objects.begin()));
}

TEST_F(TriIndexQueryTest, MergeJoinMatchesSetIntersection) {
  Build();
  // Self-join: entities that appear as a `knows` object AND a `worksAt`
  // object.
  const auto name_id = pool_.Find("l:knows", rdf::TermKind::kIri);
  ASSERT_TRUE(name_id.has_value());
  const RelId knows = onto_->store().FindRelation(*name_id).value();
  const auto works_id = pool_.Find("l:worksAt", rdf::TermKind::kIri);
  ASSERT_TRUE(works_id.has_value());
  const RelId works = onto_->store().FindRelation(*works_id).value();

  auto distinct = [&](RelId r) {
    const auto v =
        tri().DistinctBindings(TriplePattern().BindRel(r), TriPos::kObject);
    return std::set<uint32_t>(v.begin(), v.end());
  };
  std::set<uint32_t> expect;
  std::ranges::set_intersection(distinct(knows), distinct(works),
                                std::inserter(expect, expect.begin()));

  const std::vector<uint32_t> got = storage::MergeJoin(
      tri(), TriplePattern().BindRel(knows), TriPos::kObject, tri(),
      TriplePattern().BindRel(works), TriPos::kObject);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(std::set<uint32_t>(got.begin(), got.end()), expect);
  ASSERT_FALSE(got.empty());

  // Limit returns the sorted prefix.
  const std::vector<uint32_t> capped = storage::MergeJoin(
      tri(), TriplePattern().BindRel(knows), TriPos::kObject, tri(),
      TriplePattern().BindRel(works), TriPos::kObject, 1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0], got[0]);
}

// ---------------------------------------------------------------------------
// Delta maintenance
// ---------------------------------------------------------------------------

TEST_F(TriIndexQueryTest, MergeDeltaMatchesColdRebuild) {
  Build();
  std::vector<rdf::ParsedTriple> delta;
  auto fact = [](const std::string& s, const std::string& p,
                 const std::string& o, bool literal = false) {
    rdf::ParsedTriple t;
    t.subject = s;
    t.predicate = p;
    t.object = o;
    t.object_is_literal = literal;
    return t;
  };
  delta.push_back(fact("l:e0", "l:knows", "l:e9"));
  delta.push_back(fact("l:e99", "l:knows", "l:e0"));  // new instance
  delta.push_back(fact("l:e99", "l:name", "Name 99", /*literal=*/true));
  delta.push_back(fact("l:e0", "l:knows", "l:e1"));  // duplicate: dropped
  auto summary = onto_->ApplyDelta(delta);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->num_new_statements, 3u);

  // The incrementally merged orderings must be indistinguishable from a
  // from-scratch build over the merged index.
  const TriIndex rebuilt = TriIndex::Build(onto_->store().index());
  EXPECT_EQ(onto_->store().tri().num_triples(), onto_->num_triples());
  ExpectSameRows(onto_->store().tri(), rebuilt);

  // And queries see the new statements.
  all_ = AllTriples(onto_->store());
  const TriplePattern p = TriplePattern().BindSubject(
      *pool_.Find("l:e99", rdf::TermKind::kIri));
  EXPECT_EQ(KeySet(onto_->store().tri().Collect(p)), BruteForce(all_, p));
}

// ---------------------------------------------------------------------------
// Persistence: v3 round trip, v2 compatibility, corruption
// ---------------------------------------------------------------------------

class QuerySnapshotTest : public TriIndexQueryTest {
 protected:
  // Second ontology so the pair snapshot has distinct sides.
  void BuildPair() {
    Build();
    ontology::OntologyBuilder rb(&pool_, "right");
    for (int i = 0; i < 8; ++i) {
      const std::string e = "r:f" + std::to_string(i);
      rb.AddType(e, "r:Entity");
      rb.AddLiteralFact(e, "r:label", "Name " + std::to_string(i));
      rb.AddFact(e, "r:contact", "r:f" + std::to_string((i + 3) % 8));
    }
    auto built = rb.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    right_.emplace(std::move(built).value());
  }

  void ExpectQueriesEqual(const ontology::Ontology& got,
                          const ontology::Ontology& want) {
    const std::vector<Triple> all = AllTriples(want.store());
    ASSERT_EQ(got.num_triples(), want.num_triples());
    const TriplePattern probes[] = {
        TriplePattern(),
        TriplePattern().BindRel(all.front().rel),
        TriplePattern().BindSubject(all.back().subject),
        TriplePattern().BindObject(all.front().object).IgnoreRel(),
    };
    for (const TriplePattern& p : probes) {
      EXPECT_EQ(KeySet(got.store().tri().Collect(p)), BruteForce(all, p));
    }
  }

  std::optional<ontology::Ontology> right_;
};

TEST_F(QuerySnapshotTest, V3RoundTripsStreamAndMmap) {
  BuildPair();
  const std::string path = TempPath("query_v3.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *onto_, *right_).ok());

  rdf::TermPool stream_pool;
  auto streamed = ontology::LoadAlignmentSnapshot(
      path, &stream_pool, ontology::SnapshotLoadMode::kStream);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_FALSE(streamed->left.store().tri().zero_copy());
  ExpectSameRows(streamed->left.store().tri(), onto_->store().tri());
  ExpectSameRows(streamed->right.store().tri(), right_->store().tri());
  ExpectQueriesEqual(streamed->left, *onto_);
  ExpectQueriesEqual(streamed->right, *right_);

  rdf::TermPool mmap_pool;
  auto mapped = ontology::LoadAlignmentSnapshot(
      path, &mmap_pool, ontology::SnapshotLoadMode::kMmap);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  // The tri rows alias the mapping: no heap copies on the mmap path.
  EXPECT_TRUE(mapped->left.store().tri().zero_copy());
  EXPECT_TRUE(mapped->right.store().tri().zero_copy());
  ExpectSameRows(mapped->left.store().tri(), onto_->store().tri());
  ExpectQueriesEqual(mapped->left, *onto_);
  ExpectQueriesEqual(mapped->right, *right_);

  // Delta ingestion must detach the zero-copy views and keep the merged
  // orderings equal to a cold rebuild.
  std::vector<rdf::ParsedTriple> delta(1);
  delta[0].subject = "l:e0";
  delta[0].predicate = "l:knows";
  delta[0].object = "l:e7";
  ASSERT_TRUE(mapped->left.ApplyDelta(delta).ok());
  EXPECT_FALSE(mapped->left.store().tri().zero_copy());
  ExpectSameRows(mapped->left.store().tri(),
                 TriIndex::Build(mapped->left.store().index()));
  std::remove(path.c_str());
}

TEST_F(QuerySnapshotTest, V2SnapshotLoadsWithRebuiltTriIndex) {
  BuildPair();
  const std::string path = TempPath("query_v2.snap");
  // Write the previous on-disk format: no directory, no tri-row columns.
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *onto_, *right_,
                                              storage::kMinSnapshotVersion)
                  .ok());
  // A v2 file is strictly smaller than the same pair at v3.
  const std::string v3_path = TempPath("query_v2_as_v3.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(v3_path, *onto_, *right_).ok());
  std::ifstream v2_in(path, std::ios::binary | std::ios::ate);
  std::ifstream v3_in(v3_path, std::ios::binary | std::ios::ate);
  EXPECT_LT(v2_in.tellg(), v3_in.tellg());

  for (const auto mode : {ontology::SnapshotLoadMode::kStream,
                          ontology::SnapshotLoadMode::kMmap}) {
    rdf::TermPool fresh;
    auto loaded = ontology::LoadAlignmentSnapshot(path, &fresh, mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    // The tri index is rebuilt in memory and answers identically.
    ExpectSameRows(loaded->left.store().tri(), onto_->store().tri());
    ExpectSameRows(loaded->right.store().tri(), right_->store().tri());
    ExpectQueriesEqual(loaded->left, *onto_);
    ExpectQueriesEqual(loaded->right, *right_);
  }
  std::remove(path.c_str());
  std::remove(v3_path.c_str());
}

TEST_F(QuerySnapshotTest, UnsupportedWriteVersionRejected) {
  BuildPair();
  const std::string path = TempPath("query_bad_version.snap");
  for (uint32_t version : {uint32_t{0}, uint32_t{1},
                           storage::kSnapshotVersion + 1}) {
    const auto status =
        ontology::SaveAlignmentSnapshot(path, *onto_, *right_, version);
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
        << "version=" << version;
  }
}

TEST_F(QuerySnapshotTest, CorruptTriColumnsRejected) {
  BuildPair();
  const std::string path = TempPath("query_corrupt_base.snap");
  ASSERT_TRUE(ontology::SaveAlignmentSnapshot(path, *onto_, *right_).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  // Flip bytes across the second half of the file — where the appended v3
  // columns (directory + tri rows) of the left section live — and require
  // every flip to be caught (section checksum or FromColumns validation).
  const std::string bad_path = TempPath("query_corrupt.snap");
  for (size_t offset = bytes.size() / 2; offset < bytes.size();
       offset += 1 + bytes.size() / 31) {
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x3c);
    {
      std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    for (const auto mode : {ontology::SnapshotLoadMode::kStream,
                            ontology::SnapshotLoadMode::kMmap}) {
      rdf::TermPool scratch;
      EXPECT_FALSE(
          ontology::LoadAlignmentSnapshot(bad_path, &scratch, mode).ok())
          << "byte flip at offset " << offset << " was not rejected";
    }
  }
  std::remove(bad_path.c_str());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Session facade
// ---------------------------------------------------------------------------

TEST(SessionQueryTest, RequiresLoadedOntologies) {
  api::Session session;
  const auto result =
      session.Query(api::Session::DeltaSide::kLeft, TriplePattern());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(SessionQueryTest, QueriesBothSidesThroughFacade) {
  rdf::TermPool pool;  // unused; Session owns its pool internally
  const std::string left_path = TempPath("session_query_left.nt");
  const std::string right_path = TempPath("session_query_right.nt");
  {
    std::ofstream out(left_path);
    out << "<l:a> <l:knows> <l:b> .\n<l:b> <l:knows> <l:c> .\n";
  }
  {
    std::ofstream out(right_path);
    out << "<r:x> <r:contact> <r:y> .\n";
  }
  api::Session session;
  ASSERT_TRUE(session.LoadFromFiles(left_path, right_path).ok());

  auto left = session.Query(api::Session::DeltaSide::kLeft, TriplePattern());
  ASSERT_TRUE(left.ok()) << left.status().ToString();
  EXPECT_EQ(left->size(), 2u);
  EXPECT_EQ(KeySet(*left), KeySet(session.left().store().tri().Collect({})));

  auto right =
      session.Query(api::Session::DeltaSide::kRight, TriplePattern(), 1);
  ASSERT_TRUE(right.ok()) << right.status().ToString();
  EXPECT_EQ(right->size(), 1u);
  std::remove(left_path.c_str());
  std::remove(right_path.c_str());
}

// ---------------------------------------------------------------------------
// Aligner byte-identity over the new access paths
// ---------------------------------------------------------------------------

// The per-term relation directory (negative evidence) and the packed type
// index (class pass) are pure access-path swaps: with negative evidence on,
// results must be bit-identical across thread counts and shard layouts.
TEST(QueryFastPathTest, AlignerByteIdenticalAcrossThreadsAndShards) {
  rdf::TermPool pool;
  auto build = [&pool](const std::string& ns, const std::string& label_rel,
                       const std::string& link_rel) {
    ontology::OntologyBuilder b(&pool, ns);
    for (int i = 0; i < 24; ++i) {
      const std::string e = ns + ":e" + std::to_string(i);
      b.AddType(e, ns + (i % 2 ? ":Person" : ":Artist"));
      b.AddLiteralFact(e, ns + ":" + label_rel, "Name " + std::to_string(i));
      b.AddLiteralFact(e, ns + ":city", "City " + std::to_string(i % 4));
      b.AddFact(e, ns + ":" + link_rel, ns + ":e" + std::to_string((i + 1) % 24));
      b.AddFact(e, ns + ":emp", ns + ":e" + std::to_string((i + 7) % 24));
    }
    return b.Build();
  };
  auto left = build("l", "name", "knows");
  ASSERT_TRUE(left.ok()) << left.status().ToString();
  auto right = build("r", "label", "contact");
  ASSERT_TRUE(right.ok()) << right.status().ToString();

  core::AlignmentConfig base;
  base.max_iterations = 4;
  base.use_negative_evidence = true;

  std::optional<core::AlignmentResult> reference;
  for (size_t shards : {size_t{7}, size_t{64}}) {
    for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
      core::AlignmentConfig config = base;
      config.num_threads = threads;
      config.num_shards = shards;
      core::AlignmentResult result = core::Aligner(*left, *right, config).Run();
      if (!reference.has_value()) {
        reference.emplace(std::move(result));
        continue;
      }
      ASSERT_EQ(result.instances.max_left().size(),
                reference->instances.max_left().size())
          << "threads=" << threads << " shards=" << shards;
      for (const auto& [l, c] : reference->instances.max_left()) {
        const auto* other = result.instances.MaxOfLeft(l);
        ASSERT_NE(other, nullptr) << "threads=" << threads;
        EXPECT_EQ(other->other, c.other);
        EXPECT_EQ(other->prob, c.prob)
            << "threads=" << threads << " shards=" << shards;
      }
      const auto& expect_entries = reference->relations.Entries();
      const auto& got_entries = result.relations.Entries();
      ASSERT_EQ(got_entries.size(), expect_entries.size());
      for (size_t i = 0; i < expect_entries.size(); ++i) {
        EXPECT_EQ(got_entries[i].score, expect_entries[i].score)
            << "threads=" << threads << " shards=" << shards;
      }
      ASSERT_EQ(result.classes.entries().size(),
                reference->classes.entries().size());
      for (size_t i = 0; i < reference->classes.entries().size(); ++i) {
        EXPECT_EQ(result.classes.entries()[i].score,
                  reference->classes.entries()[i].score);
      }
    }
  }
}

}  // namespace
}  // namespace paris
