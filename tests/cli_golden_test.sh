#!/usr/bin/env bash
# Golden-output test for the paris_generate / paris_align CLIs.
#
#   cli_golden_test.sh PARIS_GENERATE PARIS_ALIGN GOLDEN_DIR [--update]
#
# Drives the full CLI lifecycle on the deterministic `restaurant` synthetic
# profile and compares every stdout byte and every output TSV against the
# files committed under GOLDEN_DIR. The goldens were captured from the
# pre-facade tools, so this test pins the rebuilt CLIs to byte-identical
# behavior. Wall-clock timings in the run summary are masked before
# comparison; PARIS_LOG lines go to stderr and are not captured.
#
# With --update, the goldens are rewritten instead of compared.
set -u

GENERATE=$(realpath "$1")
ALIGN=$(realpath "$2")
GOLDEN=$(realpath "$3")
UPDATE=${4:-}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

failures=0

# Masks run wall-clock so the summary line compares deterministically.
mask() { sed -E 's/ in [0-9]+\.[0-9]{2}s / in X.XXs /'; }

check() {
  local name=$1 actual=$2
  if [ "$UPDATE" = "--update" ]; then
    cp "$actual" "$GOLDEN/$name"
    return
  fi
  if ! cmp -s "$GOLDEN/$name" "$actual"; then
    echo "FAIL: $name differs from golden" >&2
    diff -u "$GOLDEN/$name" "$actual" | head -30 >&2
    failures=$((failures + 1))
  fi
}

run() {
  # Runs a command, asserting exit status 0; stdout goes to the named file.
  local out=$1
  shift
  if ! "$@" > "$out" 2> stderr.txt; then
    echo "FAIL: non-zero exit from: $*" >&2
    cat stderr.txt >&2
    exit 1
  fi
}

# --- generate: plain, and with a snapshot ---------------------------------
run generate_stdout.txt "$GENERATE" restaurant rest
check generate_stdout.txt generate_stdout.txt

run generate_snap_stdout.txt "$GENERATE" restaurant rest2 --save-snapshot rest.snap
check generate_snap_stdout.txt generate_snap_stdout.txt
check rest_gold.tsv rest_gold.tsv

# --- stats ----------------------------------------------------------------
run stats_stdout.txt "$ALIGN" rest_left.nt rest_right.nt --stats
check stats_stdout.txt stats_stdout.txt

# --- full run with output files -------------------------------------------
run align_stdout_raw.txt "$ALIGN" rest_left.nt rest_right.nt --output run
mask < align_stdout_raw.txt > align_stdout.txt
check align_stdout.txt align_stdout.txt
check run_instances.tsv run_instances.tsv
check run_relations.tsv run_relations.tsv
check run_classes.tsv run_classes.tsv

# --- default run: instance alignment on stdout ----------------------------
run default_stdout_raw.txt "$ALIGN" rest_left.nt rest_right.nt
mask < default_stdout_raw.txt > default_stdout.txt
check default_stdout.txt default_stdout.txt

# --- snapshot round trip --------------------------------------------------
run snap_stdout_raw.txt "$ALIGN" --load-snapshot rest.snap --output snaprun
mask < snap_stdout_raw.txt > snap_stdout.txt
check snap_stdout.txt snap_stdout.txt
check run_instances.tsv snaprun_instances.tsv
check run_relations.tsv snaprun_relations.tsv
check run_classes.tsv snaprun_classes.tsv

# --- save-result / resume-from round trip ---------------------------------
run save_stdout_raw.txt "$ALIGN" rest_left.nt rest_right.nt --max-iterations 2 --save-result k2.result
mask < save_stdout_raw.txt > save_stdout.txt
check save_stdout.txt save_stdout.txt

run resume_stdout_raw.txt "$ALIGN" rest_left.nt rest_right.nt --resume-from k2.result --output resumed
mask < resume_stdout_raw.txt > resume_stdout.txt
check resume_stdout.txt resume_stdout.txt
check run_instances.tsv resumed_instances.tsv
check run_relations.tsv resumed_relations.tsv
check run_classes.tsv resumed_classes.tsv

# --- checkpointing riding along must not perturb any output ---------------
# (no new goldens: the checkpointed run is compared against the same files
# as the plain run, so the default no-flag behavior stays pinned)
run ckpt_stdout_raw.txt "$ALIGN" rest_left.nt rest_right.nt --checkpoint-dir ckpts --checkpoint-interval 0.01 --output run
mask < ckpt_stdout_raw.txt > ckpt_stdout.txt
check align_stdout.txt ckpt_stdout.txt
check run_instances.tsv run_instances.tsv
check run_relations.tsv run_relations.tsv
check run_classes.tsv run_classes.tsv

if [ "$UPDATE" = "--update" ]; then
  echo "goldens updated in $GOLDEN"
  exit 0
fi
if [ "$failures" -ne 0 ]; then
  echo "$failures golden comparison(s) failed" >&2
  exit 1
fi
echo "all golden comparisons passed"
