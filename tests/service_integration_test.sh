#!/usr/bin/env bash
# End-to-end test for parisd + paris_client over a real TCP socket.
#
#   service_integration_test.sh PARIS_GENERATE PARIS_ALIGN PARISD PARIS_CLIENT
#
# Three phases against a synthetic restaurant pair:
#
#   1. Clean service flow: submit a job, stream its WATCH events to
#      completion, and require the exported TSVs to be byte-identical to a
#      plain paris_align run of the same config. Lookups against the served
#      snapshot must answer, and must FAILED_PRECONDITION before any result
#      exists.
#   2. Queue semantics: a second submitted job is cancellable while a
#      LOOKUP keeps answering from the previous generation mid-run.
#   3. Crash safety: SIGKILL the daemon mid-job (twice), restart it with
#      auto-resume each time, and require the recovered job's exports to be
#      byte-identical to the reference run.
set -u

GENERATE=$(realpath "$1")
ALIGN=$(realpath "$2")
PARISD=$(realpath "$3")
CLIENT=$(realpath "$4")

WORK=$(mktemp -d)
DAEMON_PID=
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

fail() { echo "FAIL: $*" >&2; exit 1; }

# Scale 16 stretches one alignment run to ~0.5-1s so the SIGKILL schedule
# in phase 3 lands mid-job instead of after the job already finished.
"$GENERATE" restaurant rest 16 > /dev/null || fail "generate"

# --- uninterrupted reference: what every service job must reproduce -------
"$ALIGN" rest_left.nt rest_right.nt --max-iterations 3 --output ref \
  > /dev/null 2>&1 || fail "reference paris_align run"

# start_daemon DATA_DIR [extra flags...]: launches parisd on an ephemeral
# port and waits for the port file. Sets DAEMON_PID and CLI.
start_daemon() {
  local data_dir=$1
  shift
  rm -f port.txt
  "$PARISD" rest_left.nt rest_right.nt --data-dir "$data_dir" \
    --port 0 --port-file port.txt --checkpoint-interval 1ms \
    --max-iterations 3 --log-level error "$@" 2> daemon_stderr.txt &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -s port.txt ] && break
    kill -0 "$DAEMON_PID" 2> /dev/null || fail "daemon died at startup:
$(cat daemon_stderr.txt)"
    sleep 0.1
  done
  [ -s port.txt ] || fail "daemon never wrote its port file"
  CLI="$CLIENT --port-file port.txt"
}

stop_daemon() {
  $CLI shutdown > /dev/null 2>&1
  wait "$DAEMON_PID" 2> /dev/null
  DAEMON_PID=
}

# wait_for_state JOB STATE [TRIES]: polls STATUS until the job reaches the
# state (10s default) — WATCH streams can't survive a daemon SIGKILL, so
# the crash phase polls instead.
wait_for_state() {
  local job=$1 state=$2 tries=${3:-100}
  for _ in $(seq 1 "$tries"); do
    if $CLI status "$job" 2> /dev/null | head -1 | grep -q " state=$state "; then
      return 0
    fi
    sleep 0.1
  done
  return 1
}

compare_exports() {
  local job_dir=$1 label=$2
  for table in instances relations classes; do
    cmp -s "ref_${table}.tsv" "$job_dir/export_${table}.tsv" \
      || fail "$label: export_${table}.tsv differs from the reference run"
  done
}

# =========================================================================
# Phase 1: clean service flow
# =========================================================================
start_daemon svc_clean

$CLI ping | grep -q '^OK pong' || fail "ping"

# No job has completed and --serve-result wasn't given: lookups must fail
# with FAILED_PRECONDITION, not crash or hang.
$CLI lookup entity left 'r1:address_0' 2> lookup_err.txt \
  && fail "lookup before any result unexpectedly succeeded"
grep -q 'FAILED_PRECONDITION' lookup_err.txt \
  || fail "lookup before any result: wrong error: $(cat lookup_err.txt)"

job=$($CLI submit | sed -n 's/^OK //p')
[ -n "$job" ] || fail "submit returned no job id"

$CLI watch "$job" > watch.txt || fail "watch $job did not end in END done:
$(tail -3 watch.txt)"
grep -q "^EVT $job state running" watch.txt || fail "watch missed state event"
grep -q "^EVT $job iteration " watch.txt || fail "watch missed iteration events"
grep -q "^EVT $job shard " watch.txt || fail "watch missed shard events"
grep -q '^END done$' watch.txt || fail "watch missing END done"

$CLI status "$job" | head -1 | grep -q ' state=done ' || fail "status not done"
compare_exports "svc_clean/jobs/$job" "phase 1"

# The completed job's snapshot is served automatically: lookups answer now.
$CLI lookup entity left 'r1:address_0' | head -1 | grep -q '^OK ' \
  || fail "entity lookup after job completed"
$CLI lookup relation left 'r1:category' | head -1 | grep -q '^OK ' \
  || fail "relation lookup after job completed"
$CLI result | grep -q '^OK generation=1 ' || fail "result generation"

# =========================================================================
# Phase 2: cancel a running job while lookups keep answering
# =========================================================================
job2=$($CLI submit max-iterations=8 | sed -n 's/^OK //p')
[ -n "$job2" ] || fail "second submit"
wait_for_state "$job2" running || fail "job2 never started running"

# Mid-run lookups still serve generation 1.
$CLI lookup entity left 'r1:address_0' | head -1 | grep -q '^OK ' \
  || fail "lookup during running job"

$CLI cancel "$job2" | grep -q '^OK cancelling' || fail "cancel"
wait_for_state "$job2" cancelled || fail "job2 never reached cancelled"
$CLI list | grep -q "^$job2 cancelled" || fail "list does not show cancelled"

stop_daemon

# =========================================================================
# Phase 3: SIGKILL mid-job, restart, auto-resume to byte-identical output
# =========================================================================
start_daemon svc_crash
job3=$($CLI submit | sed -n 's/^OK //p')
[ -n "$job3" ] || fail "crash-phase submit"

kills=0
for delay in 0.3 0.15; do
  sleep "$delay"
  if kill -KILL "$DAEMON_PID" 2> /dev/null; then kills=$((kills + 1)); fi
  wait "$DAEMON_PID" 2> /dev/null
  DAEMON_PID=
  # Restart over the same data dir: auto-resume (the default) requeues the
  # interrupted job, which resumes from its last checkpoint.
  start_daemon svc_crash
done

wait_for_state "$job3" done 300 || fail "job did not complete after restarts:
$($CLI status "$job3" 2>&1)"
compare_exports "svc_crash/jobs/$job3" "phase 3"

# The restarted daemon serves the recovered job's snapshot.
$CLI result | grep -q ' partial=0$' || fail "recovered result marked partial"
$CLI lookup entity left 'r1:address_0' | head -1 | grep -q '^OK ' \
  || fail "lookup after crash recovery"

stop_daemon

[ "$kills" -ge 1 ] || fail "no SIGKILL landed mid-job; raise the dataset scale"
echo "service integration: clean + cancel + $kills crash-resume cycles OK"
