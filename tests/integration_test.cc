// End-to-end tests: run the full PARIS pipeline on the synthetic dataset
// profiles and check that the paper's qualitative results hold (§6). These
// are the "shape" assertions of the reproduction: who wins and roughly by
// how much, not exact figures.
#include <gtest/gtest.h>

#include "paris/baseline/label_match.h"
#include "paris/core/aligner.h"
#include "paris/eval/metrics.h"
#include "paris/synth/profiles.h"
#include "paris/util/logging.h"

namespace paris {
namespace {

using core::Aligner;
using core::AlignmentConfig;
using core::AlignmentResult;
using eval::EvaluateInstances;
using eval::EvaluateRelations;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SetLogLevel(util::LogLevel::kWarning);
  }
};

TEST_F(IntegrationTest, OaeiPersonNearPerfect) {
  auto pair = synth::MakeOaeiPersonPair();
  ASSERT_TRUE(pair.ok());
  AlignmentConfig config;
  config.max_iterations = 6;
  AlignmentResult result = Aligner(*pair->left, *pair->right, config).Run();

  const auto pr = EvaluateInstances(result.instances, pair->gold);
  // Table 1: PARIS achieves 100 % / 100 % on the person dataset. Allow a
  // whisker of slack for the synthetic stand-in.
  EXPECT_GT(pr.precision(), 0.97) << "prec=" << pr.precision();
  EXPECT_GT(pr.recall(), 0.97) << "rec=" << pr.recall();

  // Relations align in both directions.
  const auto rel_lr = EvaluateRelations(result.relations, pair->gold,
                                        /*sub_is_left=*/true, 0.3);
  EXPECT_GT(rel_lr.assigned, 0u);
  EXPECT_GT(rel_lr.precision(), 0.9);

  // Converged quickly (paper: 2 iterations).
  EXPECT_GE(result.converged_at, 2);
  EXPECT_LE(result.converged_at, 5);
}

TEST_F(IntegrationTest, OaeiRestaurantGoodDespiteNoise) {
  auto pair = synth::MakeOaeiRestaurantPair();
  ASSERT_TRUE(pair.ok());
  AlignmentConfig config;
  config.max_iterations = 6;
  AlignmentResult result = Aligner(*pair->left, *pair->right, config).Run();
  const auto pr = EvaluateInstances(result.instances, pair->gold);
  // Table 1: 95 % precision / 88 % recall. Shape: high precision, recall
  // noticeably below precision because of the phone/typo noise.
  EXPECT_GT(pr.precision(), 0.85) << "prec=" << pr.precision();
  EXPECT_GT(pr.recall(), 0.6) << "rec=" << pr.recall();
  EXPECT_GT(pr.f1(), 0.75) << "f1=" << pr.f1();
}

TEST_F(IntegrationTest, RestaurantNormalizingMatcherRaisesRecall) {
  auto pair = synth::MakeOaeiRestaurantPair();
  ASSERT_TRUE(pair.ok());
  AlignmentConfig config;
  config.max_iterations = 5;

  Aligner identity(*pair->left, *pair->right, config);
  const auto pr_identity =
      EvaluateInstances(identity.Run().instances, pair->gold);

  Aligner normalizing(*pair->left, *pair->right, config);
  normalizing.set_literal_matcher_factory(core::NormalizingMatcherFactory());
  const auto pr_norm =
      EvaluateInstances(normalizing.Run().instances, pair->gold);

  // §6.3: normalizing away punctuation recovers the reformatted phone
  // numbers, so recall must rise.
  EXPECT_GT(pr_norm.recall(), pr_identity.recall());
}

TEST_F(IntegrationTest, YagoImdbParisBeatsLabelBaseline) {
  synth::ProfileOptions opts;
  opts.scale = 0.15;  // keep the test quick; the bench runs full scale
  auto pair = synth::MakeYagoImdbPair(opts);
  ASSERT_TRUE(pair.ok());

  AlignmentConfig config;
  config.max_iterations = 4;
  AlignmentResult result = Aligner(*pair->left, *pair->right, config).Run();
  const auto paris_pr = EvaluateInstances(result.instances, pair->gold);

  baseline::LabelMatchConfig label_config;
  label_config.right_label_relations = {"imdb:name", "imdb:title"};
  const auto baseline_pr = EvaluateInstances(
      baseline::AlignByLabel(*pair->left, *pair->right, label_config),
      pair->gold);

  // §6.4 Table 5 shape: PARIS's F-score beats the label baseline, whose
  // recall suffers from the noisy labels.
  EXPECT_GT(paris_pr.f1(), baseline_pr.f1())
      << "paris f1=" << paris_pr.f1() << " baseline f1=" << baseline_pr.f1();
  EXPECT_GT(paris_pr.recall(), baseline_pr.recall());
  EXPECT_GT(paris_pr.f1(), 0.75);
}

TEST_F(IntegrationTest, YagoDbpediaIterationsImprove) {
  synth::ProfileOptions opts;
  // Large enough that the fixed place/org hub pools keep their realistic
  // fan-in (they do not scale with `scale`).
  opts.scale = 0.4;
  auto pair = synth::MakeYagoDbpediaPair(opts);
  ASSERT_TRUE(pair.ok());

  AlignmentConfig config;
  config.max_iterations = 4;
  config.convergence_threshold = 0.0;  // force all 4 iterations
  AlignmentResult result = Aligner(*pair->left, *pair->right, config).Run();
  ASSERT_EQ(result.iterations.size(), 4u);

  // Table 3 shape: F-measure improves from iteration 1 to the last and the
  // change fraction shrinks monotonically (convergence).
  const auto first =
      eval::EvaluateInstanceMap(result.iterations.front().max_left,
                                pair->gold);
  const auto last = eval::EvaluateInstanceMap(
      result.iterations.back().max_left, pair->gold);
  EXPECT_GE(last.f1(), first.f1());
  EXPECT_LT(result.iterations.back().change_fraction,
            result.iterations[1].change_fraction);
  // Final quality: high precision (≈ 0.85 at full scale; slightly lower at
  // this reduced scale because the hub pools keep their absolute size),
  // recall bounded by the coverage overlap.
  EXPECT_GT(last.precision(), 0.75) << "prec=" << last.precision();
  EXPECT_GT(last.recall(), 0.5) << "rec=" << last.recall();
}

TEST_F(IntegrationTest, YagoDbpediaRelationAndClassAlignment) {
  synth::ProfileOptions opts;
  opts.scale = 0.12;
  auto pair = synth::MakeYagoDbpediaPair(opts);
  ASSERT_TRUE(pair.ok());
  AlignmentConfig config;
  config.max_iterations = 4;
  AlignmentResult result = Aligner(*pair->left, *pair->right, config).Run();

  const auto rel_lr = EvaluateRelations(result.relations, pair->gold,
                                        /*sub_is_left=*/true, 0.3);
  const auto rel_rl = EvaluateRelations(result.relations, pair->gold,
                                        /*sub_is_left=*/false, 0.3);
  EXPECT_GT(rel_lr.assigned, 5u);
  EXPECT_GT(rel_lr.precision(), 0.8);
  EXPECT_GT(rel_rl.precision(), 0.8);

  // Class alignment: precision rises with the threshold (Figure 1 shape).
  const auto classes_low = eval::EvaluateClassEntries(
      result.classes, pair->gold, /*sub_is_left=*/true, 0.2);
  const auto classes_high = eval::EvaluateClassEntries(
      result.classes, pair->gold, /*sub_is_left=*/true, 0.8);
  EXPECT_GT(classes_low.entries, 0u);
  EXPECT_GE(classes_high.precision(), classes_low.precision() - 0.05);
  // Figure 2 shape: fewer classes survive higher thresholds.
  EXPECT_LE(classes_high.aligned_subclasses, classes_low.aligned_subclasses);
}

}  // namespace
}  // namespace paris
