#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "paris/api/dataset.h"
#include "paris/api/session.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/ntriples.h"
#include "paris/util/status.h"

namespace paris {
namespace {

using api::Session;
using rdf::ParsedTriple;
using util::StatusCode;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

ParsedTriple Fact(const std::string& s, const std::string& p,
                  const std::string& o) {
  ParsedTriple t;
  t.subject = s;
  t.predicate = p;
  t.object = o;
  return t;
}

ParsedTriple LiteralFact(const std::string& s, const std::string& p,
                         const std::string& o) {
  ParsedTriple t = Fact(s, p, o);
  t.object_is_literal = true;
  return t;
}

// ---- Ontology::ApplyDelta unit coverage ----------------------------------

class OntologyDeltaTest : public ::testing::Test {
 protected:
  rdf::TermPool pool_;
  std::unique_ptr<ontology::Ontology> onto_;

  void Build() {
    ontology::OntologyBuilder b(&pool_, "left");
    b.AddType("l:a", "l:Person");
    b.AddLiteralFact("l:a", "l:email", "a@example.org");
    b.AddFact("l:a", "l:knows", "l:b");
    b.AddType("l:b", "l:Person");
    auto built = b.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    onto_ = std::make_unique<ontology::Ontology>(std::move(built).value());
  }
};

TEST_F(OntologyDeltaTest, MergesFactsAndReportsTouchedState) {
  Build();
  const size_t base_triples = onto_->num_triples();

  std::vector<ParsedTriple> delta = {
      Fact("l:b", "l:knows", "l:c"),  // new instance l:c
      LiteralFact("l:c", "l:email", "c@example.org"),
      Fact("l:a", "l:knows", "l:b"),  // duplicate: dropped
  };
  auto summary = onto_->ApplyDelta(delta);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->num_new_statements, 2u);
  EXPECT_EQ(summary->new_instances.size(), 1u);
  EXPECT_FALSE(summary->touched_terms.empty());
  EXPECT_FALSE(summary->touched_relations.empty());
  EXPECT_EQ(onto_->num_triples(), base_triples + 2);
  // Touched terms come out sorted (canonical worklist order).
  EXPECT_TRUE(std::is_sorted(summary->touched_terms.begin(),
                             summary->touched_terms.end()));
}

TEST_F(OntologyDeltaTest, SchemaDeltaRejectedAtomically) {
  Build();
  const size_t base_triples = onto_->num_triples();
  std::vector<ParsedTriple> delta = {
      Fact("l:b", "l:knows", "l:c"),
      Fact("l:Person", "rdfs:subClassOf", "l:Agent"),
  };
  auto summary = onto_->ApplyDelta(delta);
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
  // All-or-nothing: the acceptable first statement was not merged either.
  EXPECT_EQ(onto_->num_triples(), base_triples);
}

// ---- Session ApplyDelta + Realign ----------------------------------------

// One generated restaurant pair, split into base + delta, shared by every
// test: the base files are what sessions load, the delta file is what they
// stage, and the full files are the post-delta ground truth.
class DeltaRealignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    api::DatasetSpec spec;
    spec.profile = "restaurant";
    spec.output_prefix = TempPath("delta_rest");
    spec.scale = 0.5;
    spec.delta_fraction = 0.02;
    auto split = api::GenerateDataset(spec);
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    ASSERT_GT(split->delta_triples, 0u);
    split_ = new api::DatasetSummary(std::move(split).value());

    spec.output_prefix = TempPath("full_rest");
    spec.delta_fraction = 0.0;
    auto full = api::GenerateDataset(spec);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    full_ = new api::DatasetSummary(std::move(full).value());
  }

  static const api::DatasetSummary& split() { return *split_; }
  static const api::DatasetSummary& full() { return *full_; }

  static Session::Options FixedWorkOptions(int max_iterations) {
    Session::Options options;
    options.config.max_iterations = max_iterations;
    options.config.convergence_threshold = 0.0;
    return options;
  }

  // All three exported tables as one string — the byte-identity currency
  // of these tests. Each call exports to a fresh prefix.
  static std::string Tables(const Session& session) {
    static int counter = 0;
    const std::string prefix = TempPath("tables_" + std::to_string(counter++));
    EXPECT_TRUE(session.Export(prefix).ok());
    std::string all;
    for (const char* table : {"_instances.tsv", "_relations.tsv",
                              "_classes.tsv"}) {
      std::ifstream in(prefix + table, std::ios::binary);
      std::stringstream buffer;
      buffer << in.rdbuf();
      all += buffer.str();
    }
    return all;
  }

 private:
  static api::DatasetSummary* split_;
  static api::DatasetSummary* full_;
};

api::DatasetSummary* DeltaRealignTest::split_ = nullptr;
api::DatasetSummary* DeltaRealignTest::full_ = nullptr;

TEST_F(DeltaRealignTest, RealignFromOwnResult) {
  Session session(FixedWorkOptions(4));
  ASSERT_TRUE(session.LoadFromFiles(split().left_path, split().right_path)
                  .ok());
  ASSERT_TRUE(session.Align().ok());
  const std::string base_tables = Tables(session);

  ASSERT_TRUE(
      session.ApplyDelta(Session::DeltaSide::kLeft, split().delta_path).ok());
  EXPECT_EQ(session.num_staged_deltas(), 1u);
  ASSERT_TRUE(session.Realign().ok());
  EXPECT_EQ(session.num_staged_deltas(), 0u);
  EXPECT_TRUE(session.has_result());
  EXPECT_NE(Tables(session), base_tables);

  // The result was replaced: a second delta-free Realign must refuse.
  EXPECT_EQ(session.Realign().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DeltaRealignTest, RealignFromSavedResultMatchesInMemoryPath) {
  const std::string saved = TempPath("delta_base_result.bin");
  std::string via_memory;
  {
    Session session(FixedWorkOptions(4));
    ASSERT_TRUE(session.LoadFromFiles(split().left_path, split().right_path)
                    .ok());
    ASSERT_TRUE(session.Align().ok());
    ASSERT_TRUE(session.SaveResult(saved).ok());
    ASSERT_TRUE(session.ApplyDelta(Session::DeltaSide::kLeft,
                                   split().delta_path)
                    .ok());
    ASSERT_TRUE(session.Realign().ok());
    via_memory = Tables(session);
  }
  {
    Session session(FixedWorkOptions(4));
    ASSERT_TRUE(session.LoadFromFiles(split().left_path, split().right_path)
                    .ok());
    ASSERT_TRUE(session.ApplyDelta(Session::DeltaSide::kLeft,
                                   split().delta_path)
                    .ok());
    ASSERT_TRUE(session.Realign(saved).ok());
    EXPECT_EQ(Tables(session), via_memory);
  }
}

// The redesigned surface's determinism contract extends to the incremental
// path: realign output is byte-identical across thread and shard counts.
TEST_F(DeltaRealignTest, RealignByteIdenticalAcrossThreadsAndShards) {
  const std::string saved = TempPath("delta_det_result.bin");
  {
    Session session(FixedWorkOptions(3));
    ASSERT_TRUE(session.LoadFromFiles(split().left_path, split().right_path)
                    .ok());
    ASSERT_TRUE(session.Align().ok());
    ASSERT_TRUE(session.SaveResult(saved).ok());
  }
  std::string reference;
  for (size_t threads : {0, 1, 4}) {
    for (size_t shards : {7, 64}) {
      Session::Options options = FixedWorkOptions(3);
      options.config.num_threads = threads;
      options.config.num_shards = shards;
      Session session(options);
      ASSERT_TRUE(session.LoadFromFiles(split().left_path, split().right_path)
                      .ok());
      ASSERT_TRUE(session.ApplyDelta(Session::DeltaSide::kLeft,
                                     split().delta_path)
                      .ok());
      ASSERT_TRUE(session.Realign(saved).ok());
      const std::string tables = Tables(session);
      if (reference.empty()) {
        reference = tables;
      } else {
        EXPECT_EQ(tables, reference)
            << "threads " << threads << " shards " << shards;
      }
    }
  }
}

// Realign lands on a fixpoint of the post-delta pair. It is not a bit-replay
// of a cold run over base+delta (different trajectory), but the maximal
// instance assignment must agree on all but borderline-tie pairs.
TEST_F(DeltaRealignTest, RealignAgreesWithColdRunOnMergedOntology) {
  auto assignment = [](const std::string& tables) {
    std::vector<std::string> pairs;
    std::istringstream in(tables);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const size_t second_tab = line.find('\t', line.find('\t') + 1);
      if (second_tab == std::string::npos) break;  // end of instance table
      pairs.push_back(line.substr(0, second_tab));
    }
    return pairs;
  };

  Session cold(FixedWorkOptions(4));
  ASSERT_TRUE(cold.LoadFromFiles(full().left_path, full().right_path).ok());
  ASSERT_TRUE(cold.Align().ok());
  const std::vector<std::string> cold_pairs = assignment(Tables(cold));

  Session incremental(FixedWorkOptions(4));
  ASSERT_TRUE(
      incremental.LoadFromFiles(split().left_path, split().right_path).ok());
  ASSERT_TRUE(incremental.Align().ok());
  ASSERT_TRUE(incremental
                  .ApplyDelta(Session::DeltaSide::kLeft, split().delta_path)
                  .ok());
  ASSERT_TRUE(incremental.Realign().ok());
  const std::vector<std::string> inc_pairs = assignment(Tables(incremental));

  ASSERT_FALSE(cold_pairs.empty());
  size_t common = 0;
  {
    std::vector<std::string> a = cold_pairs, b = inc_pairs;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<std::string> both;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(both));
    common = both.size();
  }
  EXPECT_GE(common * 100, cold_pairs.size() * 95)
      << "agreement " << common << "/" << cold_pairs.size();
}

TEST_F(DeltaRealignTest, ErrorPaths) {
  Session session(FixedWorkOptions(2));
  // Staging before load refuses.
  EXPECT_EQ(session.ApplyDelta(Session::DeltaSide::kLeft, split().delta_path)
                .code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(session.LoadFromFiles(split().left_path, split().right_path)
                  .ok());
  // Realign with nothing staged refuses.
  ASSERT_TRUE(session.Align().ok());
  EXPECT_EQ(session.Realign().code(), StatusCode::kFailedPrecondition);

  // A missing delta file surfaces its path.
  auto missing =
      session.ApplyDelta(Session::DeltaSide::kLeft, TempPath("no_delta.nt"));
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.ToString().find("no_delta.nt"), std::string::npos);

  // A schema statement in a staged delta fails the Realign, drops the
  // staged batches, and keeps the base result usable.
  const std::string bad_path = TempPath("bad_delta.nt");
  {
    std::ofstream out(bad_path);
    out << "<d:X> <rdfs:subClassOf> <d:Y> .\n";
  }
  ASSERT_TRUE(session.ApplyDelta(Session::DeltaSide::kLeft, bad_path).ok());
  auto failed = session.Realign();
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session.num_staged_deltas(), 0u);
  EXPECT_TRUE(session.has_result());
  std::ostringstream still_usable;
  EXPECT_TRUE(session.WriteInstanceAlignment(still_usable).ok());
  EXPECT_FALSE(still_usable.str().empty());
}

// In-memory staging: both sides, several batches, merged in staging order.
TEST_F(DeltaRealignTest, StagesInMemoryTriplesOnBothSides) {
  Session session(FixedWorkOptions(3));
  ASSERT_TRUE(session.LoadFromFiles(split().left_path, split().right_path)
                  .ok());
  ASSERT_TRUE(session.Align().ok());

  std::vector<ParsedTriple> left_delta = {
      LiteralFact("r1:restaurant_new", "r1:name", "brand new place"),
  };
  std::vector<ParsedTriple> right_delta = {
      LiteralFact("r2:restaurant_new", "r2:title", "brand new place"),
  };
  ASSERT_TRUE(session
                  .ApplyDelta(Session::DeltaSide::kLeft,
                              std::move(left_delta))
                  .ok());
  ASSERT_TRUE(session
                  .ApplyDelta(Session::DeltaSide::kRight,
                              std::move(right_delta))
                  .ok());
  EXPECT_EQ(session.num_staged_deltas(), 2u);
  ASSERT_TRUE(session.Realign().ok());
  // Both new entities exist and carry the shared name, so the realigned
  // assignment pairs them up.
  std::ostringstream out;
  ASSERT_TRUE(session.WriteInstanceAlignment(out).ok());
  EXPECT_NE(out.str().find("r1:restaurant_new\tr2:restaurant_new"),
            std::string::npos);
}

}  // namespace
}  // namespace paris
