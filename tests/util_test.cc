#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "paris/util/hash.h"
#include "paris/util/random.h"
#include "paris/util/status.h"
#include "paris/util/string_util.h"
#include "paris/util/thread_pool.h"

namespace paris::util {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllErrorFactoriesSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC-12"), "abc-12");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, NormalizeAlnumStripsPunctuation) {
  // The §6.3 phone example: both formats normalize identically.
  EXPECT_EQ(NormalizeAlnum("213/467-1108"), NormalizeAlnum("213-467-1108"));
  EXPECT_EQ(NormalizeAlnum("The Golden Lantern."),
            NormalizeAlnum("the golden LANTERN"));
  EXPECT_EQ(NormalizeAlnum("!!!"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("sunday", "saturday"),
            EditDistance("saturday", "sunday"));
}

TEST(EditDistanceTest, BoundedEarlyExit) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 3), 3u);
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 2), 3u);  // bound + 1
  EXPECT_EQ(BoundedEditDistance("aaaaaaaaaa", "b", 2), 3u);
}

TEST(EditSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  const double sim = EditSimilarity("kitten", "sitting");
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
}

TEST(TrigramTest, ShortStringsGetOnePaddedKey) {
  EXPECT_EQ(TrigramKeys("").size(), 1u);
  EXPECT_EQ(TrigramKeys("a").size(), 1u);
  EXPECT_EQ(TrigramKeys("ab").size(), 1u);
}

TEST(TrigramTest, DedupedAndSorted) {
  auto keys = TrigramKeys("aaaa");  // "aaa" twice → one key
  EXPECT_EQ(keys.size(), 1u);
  auto keys2 = TrigramKeys("abcabc");
  EXPECT_TRUE(std::is_sorted(keys2.begin(), keys2.end()));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, CountWithTailBounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int c = rng.CountWithTail(0.5, 4);
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 4);
  }
  EXPECT_EQ(rng.CountWithTail(0.0, 10), 1);
}

TEST(RngTest, ZipfIndexInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.ZipfIndex(17, 1.0), 17u);
  }
  EXPECT_EQ(rng.ZipfIndex(1, 1.0), 0u);
}

TEST(RngTest, ZipfSkewsTowardSmallIndexes) {
  Rng rng(3);
  size_t low = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.ZipfIndex(100, 1.0) < 10) ++low;
  }
  // Uniform would give ~10%; the skewed sampler should clearly exceed that.
  EXPECT_GT(low, static_cast<size_t>(kTrials / 5));
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(7);
  Rng child = a.Fork();
  // Different streams (overwhelmingly likely to differ somewhere).
  bool differ = false;
  Rng b(7);
  Rng child_b = b.Fork();
  for (int i = 0; i < 10; ++i) {
    // Forks of identical parents are identical (determinism)...
    EXPECT_EQ(child.UniformInt(0, 1 << 30), child_b.UniformInt(0, 1 << 30));
  }
  Rng c(8);
  Rng child_c = c.Fork();
  Rng child2 = Rng(7).Fork();
  for (int i = 0; i < 10; ++i) {
    if (child2.UniformInt(0, 1 << 30) != child_c.UniformInt(0, 1 << 30)) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

// ---------------------------------------------------------------------------
// Hash
// ---------------------------------------------------------------------------

TEST(HashTest, PackUnpackRoundTrip) {
  const uint64_t key = PackPair(0xdeadbeef, 0x12345678);
  EXPECT_EQ(UnpackFirst(key), 0xdeadbeefu);
  EXPECT_EQ(UnpackSecond(key), 0x12345678u);
}

TEST(HashTest, Mix64Scrambles) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(0), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  int counter = 0;
  pool.Schedule([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter, 1);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

// Chunks are claimed dynamically, but their boundaries must be a pure
// function of (total, pool size): identical across runs, covering the range
// exactly once even under heavily skewed per-chunk cost.
TEST(ThreadPoolTest, ParallelForChunksAreDeterministicUnderSkew) {
  ThreadPool pool(4);
  auto run_once = [&pool] {
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    std::vector<std::atomic<int>> hits(997);
    pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
      // Skew: the first chunk burns far more work than the rest.
      volatile size_t sink = 0;
      const size_t spins = begin == 0 ? 2000000 : 100;
      for (size_t i = 0; i < spins; ++i) sink = sink + i;
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  // Contiguous partition of [0, 997).
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.front().first, 0u);
  EXPECT_EQ(first.back().second, 997u);
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, first[i - 1].second);
  }
}

}  // namespace
}  // namespace paris::util
