#include <gtest/gtest.h>

#include "paris/core/aligner.h"
#include "paris/core/explain.h"
#include "paris/ontology/ontology.h"
#include "paris/util/logging.h"

namespace paris::core {
namespace {

using ontology::Ontology;
using ontology::OntologyBuilder;

class ExplainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SetLogLevel(util::LogLevel::kWarning);
  }

  void Build() {
    OntologyBuilder bl(&pool_, "left");
    bl.AddLiteralFact("l:a", "l:email", "x@example.org");
    bl.AddLiteralFact("l:a", "l:city", "Springfield");
    bl.AddLiteralFact("l:b", "l:email", "other@example.org");
    bl.AddLiteralFact("l:b", "l:city", "Springfield");
    auto l = bl.Build();
    ASSERT_TRUE(l.ok());
    left_ = std::make_unique<Ontology>(std::move(l).value());
    OntologyBuilder br(&pool_, "right");
    br.AddLiteralFact("r:a", "r:mail", "x@example.org");
    br.AddLiteralFact("r:a", "r:town", "Springfield");
    br.AddLiteralFact("r:b", "r:mail", "unrelated@example.org");
    br.AddLiteralFact("r:b", "r:town", "Springfield");
    auto r = br.Build();
    ASSERT_TRUE(r.ok());
    right_ = std::make_unique<Ontology>(std::move(r).value());
  }

  rdf::TermId Iri(const std::string& s) {
    return *pool_.Find(s, rdf::TermKind::kIri);
  }

  rdf::TermPool pool_;
  std::unique_ptr<Ontology> left_;
  std::unique_ptr<Ontology> right_;
};

TEST_F(ExplainTest, ExplanationMatchesAlignerScore) {
  Build();
  AlignmentConfig config;
  config.max_iterations = 5;
  AlignmentResult result = Aligner(*left_, *right_, config).Run();

  IdentityLiteralMatcher matcher;
  matcher.IndexTarget(*right_);
  const MatchExplanation explanation = ExplainMatch(
      *left_, *right_, result, matcher, config, Iri("l:a"), Iri("r:a"));

  const auto* stored = result.instances.MaxOfLeft(Iri("l:a"));
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->other, Iri("r:a"));
  // At convergence the stored score and the recomputed explanation agree.
  EXPECT_NEAR(explanation.probability, stored->prob, 1e-9);

  // Two pieces of evidence: shared e-mail (strong) and shared city (weak).
  ASSERT_EQ(explanation.evidence.size(), 2u);
  const EvidenceItem& strongest = explanation.evidence.front();
  EXPECT_LT(strongest.factor, explanation.evidence.back().factor);
  // The strongest evidence is the e-mail (inverse-functional).
  EXPECT_EQ(left_->RelationName(strongest.left_rel), "l:email");
  EXPECT_EQ(right_->RelationName(strongest.right_rel), "r:mail");
  EXPECT_DOUBLE_EQ(strongest.value_prob, 1.0);
  EXPECT_DOUBLE_EQ(strongest.fun_inv_left, 1.0);

  // The weak city evidence has fun⁻¹ = 1/2 on both sides.
  const EvidenceItem& weak = explanation.evidence.back();
  EXPECT_EQ(left_->RelationName(weak.left_rel), "l:city");
  EXPECT_DOUBLE_EQ(weak.fun_inv_left, 0.5);

  // The rendering mentions the relations and the probability.
  const std::string text = explanation.ToString(*left_, *right_);
  EXPECT_NE(text.find("l:email"), std::string::npos);
  EXPECT_NE(text.find("r:mail"), std::string::npos);
}

TEST_F(ExplainTest, NoSharedEvidenceGivesZero) {
  Build();
  AlignmentConfig config;
  config.max_iterations = 3;
  AlignmentResult result = Aligner(*left_, *right_, config).Run();
  IdentityLiteralMatcher matcher;
  matcher.IndexTarget(*right_);
  // l:a and r:b share only the city... actually l:a has Springfield and
  // r:b has Springfield: weak evidence remains. Use a fresh entity pair
  // with nothing in common: l:b vs r:a share city only too — so check the
  // e-mail mismatch pair keeps a strictly weaker score than the true pair.
  const MatchExplanation wrong = ExplainMatch(
      *left_, *right_, result, matcher, config, Iri("l:a"), Iri("r:b"));
  const MatchExplanation good = ExplainMatch(
      *left_, *right_, result, matcher, config, Iri("l:a"), Iri("r:a"));
  EXPECT_LT(wrong.probability, good.probability);
  // Only the city statement supports the wrong pair.
  ASSERT_EQ(wrong.evidence.size(), 1u);
  EXPECT_EQ(left_->RelationName(wrong.evidence[0].left_rel), "l:city");
}

TEST_F(ExplainTest, UnrelatedEntitiesExplainAsZero) {
  rdf::TermPool pool;
  OntologyBuilder bl(&pool, "left");
  bl.AddLiteralFact("l:x", "l:k", "v1");
  auto l = bl.Build();
  ASSERT_TRUE(l.ok());
  OntologyBuilder br(&pool, "right");
  br.AddLiteralFact("r:y", "r:k", "v2");
  auto r = br.Build();
  ASSERT_TRUE(r.ok());
  AlignmentConfig config;
  config.max_iterations = 2;
  AlignmentResult result = Aligner(*l, *r, config).Run();
  IdentityLiteralMatcher matcher;
  matcher.IndexTarget(*r);
  const MatchExplanation explanation =
      ExplainMatch(*l, *r, result, matcher, config,
                   *pool.Find("l:x", rdf::TermKind::kIri),
                   *pool.Find("r:y", rdf::TermKind::kIri));
  EXPECT_TRUE(explanation.evidence.empty());
  EXPECT_DOUBLE_EQ(explanation.probability, 0.0);
}

}  // namespace
}  // namespace paris::core
