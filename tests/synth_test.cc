#include <gtest/gtest.h>

#include <unordered_set>

#include "paris/synth/derive.h"
#include "paris/synth/names.h"
#include "paris/synth/noise.h"
#include "paris/synth/profiles.h"
#include "paris/synth/world.h"
#include "paris/util/random.h"
#include "paris/util/string_util.h"

namespace paris::synth {
namespace {

// ---------------------------------------------------------------------------
// Names & noise
// ---------------------------------------------------------------------------

TEST(NamesTest, Deterministic) {
  util::Rng a(5), b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(PersonName(a), PersonName(b));
  }
}

TEST(NamesTest, PhoneFormat) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::string phone = PhoneNumber(rng);
    ASSERT_EQ(phone.size(), 12u) << phone;
    EXPECT_EQ(phone[3], '-');
    EXPECT_EQ(phone[7], '-');
  }
}

TEST(NamesTest, DateFormat) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::string date = DateString(rng);
    ASSERT_EQ(date.size(), 10u) << date;
    EXPECT_EQ(date[4], '-');
    EXPECT_EQ(date[7], '-');
  }
}

TEST(NamesTest, SsnNineDigits) {
  util::Rng rng(1);
  const std::string ssn = SsnLike(rng);
  EXPECT_EQ(ssn.size(), 9u);
}

TEST(NoiseTest, TypoChangesString) {
  util::Rng rng(1);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (ApplyTypo(rng, "hello world") != "hello world") ++changed;
  }
  // A transpose of identical characters can be a no-op, but most edits
  // change the string.
  EXPECT_GT(changed, 40);
}

TEST(NoiseTest, TypoIsSingleEdit) {
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::string out = ApplyTypo(rng, "restaurant");
    EXPECT_LE(util::EditDistance("restaurant", out), 2u);  // transpose = 2
  }
}

TEST(NoiseTest, PhoneReformatPreservesDigits) {
  util::Rng rng(3);
  const std::string original = "213-467-1108";
  for (int i = 0; i < 20; ++i) {
    const std::string out = ReformatPhone(rng, original);
    EXPECT_EQ(util::NormalizeAlnum(out), util::NormalizeAlnum(original));
  }
}

TEST(NoiseTest, PhoneReformatLeavesNonPhonesAlone) {
  util::Rng rng(3);
  EXPECT_EQ(ReformatPhone(rng, "not a phone"), "not a phone");
}

TEST(NoiseTest, SwapFirstTokens) {
  EXPECT_EQ(SwapFirstTokens("Sugata Sanshiro"), "Sanshiro Sugata");
  EXPECT_EQ(SwapFirstTokens("One Two Three"), "Two One Three");
  EXPECT_EQ(SwapFirstTokens("Single"), "Single");
}

// ---------------------------------------------------------------------------
// World generation
// ---------------------------------------------------------------------------

WorldSpec SmallWorldSpec() {
  WorldSpec spec;
  spec.seed = 7;
  spec.classes = {{"thing", -1}, {"person", 0}, {"city", 0}};
  spec.groups = {{1, 100, "person"}, {2, 10, "city"}};
  spec.attributes = {
      {"name", 1, ValueKind::kPersonName, 1.0, 0.0, 1, false},
      {"ssn", 1, ValueKind::kSsn, 0.9, 0.0, 1, true},
  };
  spec.relations = {
      {"born_in", 1, 2, 0.95, 0.0, 1, 0.8},
      {"lives_in", 1, 2, 0.6, 0.3, 3, 0.8},
  };
  return spec;
}

TEST(WorldTest, GeneratesEntitiesAndIds) {
  World world = World::Generate(SmallWorldSpec());
  ASSERT_EQ(world.entities().size(), 110u);
  EXPECT_EQ(world.entities()[0].id, "person_0");
  EXPECT_EQ(world.entities()[100].id, "city_0");
  EXPECT_EQ(world.entities()[0].cls, 1);
}

TEST(WorldTest, DeterministicForSeed) {
  World a = World::Generate(SmallWorldSpec());
  World b = World::Generate(SmallWorldSpec());
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].source, b.edges()[i].source);
    EXPECT_EQ(a.edges()[i].target, b.edges()[i].target);
  }
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entities()[i].attributes, b.entities()[i].attributes);
  }
}

TEST(WorldTest, SubtreeMembership) {
  World world = World::Generate(SmallWorldSpec());
  EXPECT_EQ(world.EntitiesInSubtree(0).size(), 110u);  // root
  EXPECT_EQ(world.EntitiesInSubtree(1).size(), 100u);  // persons
  EXPECT_TRUE(world.ClassInSubtree(1, 0));
  EXPECT_FALSE(world.ClassInSubtree(0, 1));
  EXPECT_TRUE(world.ClassInSubtree(2, 2));
}

TEST(WorldTest, AttributeCoverageRespected) {
  World world = World::Generate(SmallWorldSpec());
  size_t with_name = 0;
  for (int ei : world.EntitiesInSubtree(1)) {
    for (const auto& [attr, value] : world.entities()[ei].attributes) {
      if (attr == 0) {
        ++with_name;
        break;
      }
    }
  }
  EXPECT_EQ(with_name, 100u);  // coverage 1.0
}

TEST(WorldTest, UniqueAttributeValuesUnique) {
  World world = World::Generate(SmallWorldSpec());
  std::unordered_set<std::string> ssns;
  size_t total = 0;
  for (const auto& e : world.entities()) {
    for (const auto& [attr, value] : e.attributes) {
      if (attr == 1) {
        ssns.insert(value);
        ++total;
      }
    }
  }
  EXPECT_EQ(ssns.size(), total);
}

TEST(WorldTest, RelationDegreesWithinBounds) {
  World world = World::Generate(SmallWorldSpec());
  std::unordered_map<int, int> degree;  // source → lives_in degree
  for (const auto& e : world.edges()) {
    if (e.relation == 1) ++degree[e.source];
    // Range targets are cities.
    EXPECT_EQ(world.entities()[static_cast<size_t>(e.target)].cls, 2);
  }
  for (const auto& [src, deg] : degree) {
    EXPECT_LE(deg, 3);
  }
}

TEST(WorldTest, NoSelfLoops) {
  World world = World::Generate(SmallWorldSpec());
  for (const auto& e : world.edges()) {
    EXPECT_NE(e.source, e.target);
  }
}

// ---------------------------------------------------------------------------
// Derivation + gold
// ---------------------------------------------------------------------------

class DeriveTest : public ::testing::Test {
 protected:
  DeriveTest() : world_(World::Generate(SmallWorldSpec())) {}

  DeriveSpec LeftSpec() const {
    DeriveSpec s;
    s.onto_name = "a";
    s.seed = 11;
    s.relations = {
        {-1, 0, "a:name", false},
        {-1, 1, "a:ssn", false},
        {0, -1, "a:bornIn", false},
        {1, -1, "a:livesIn", false},
    };
    s.classes = {{0, "a:Thing"}, {1, "a:Person"}, {2, "a:City"}};
    return s;
  }

  DeriveSpec RightSpec() const {
    DeriveSpec s;
    s.onto_name = "b";
    s.seed = 22;
    s.relations = {
        {-1, 0, "b:label", false},
        {-1, 1, "b:socialId", false},
        {0, -1, "b:birthPlaceOf", true},  // inverted!
        {1, -1, "b:residentOf", false},
    };
    s.classes = {{0, "b:Entity"}, {1, "b:Human"}};
    return s;
  }

  World world_;
};

TEST_F(DeriveTest, FullCoverageGoldIsComplete) {
  auto pair = PairDeriver(&world_, LeftSpec(), RightSpec()).Derive("t");
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  // Every entity is on both sides.
  EXPECT_EQ(pair->gold.num_instance_pairs(), world_.entities().size());
  EXPECT_EQ(pair->left->instances().size(), world_.entities().size());
}

TEST_F(DeriveTest, PartialCoverageShrinksGold) {
  DeriveSpec l = LeftSpec();
  l.entity_coverage = 0.6;
  DeriveSpec r = RightSpec();
  r.entity_coverage = 0.6;
  auto pair = PairDeriver(&world_, l, r).Derive("t");
  ASSERT_TRUE(pair.ok());
  EXPECT_LT(pair->gold.num_instance_pairs(), world_.entities().size());
  EXPECT_GT(pair->gold.num_instance_pairs(), 0u);
  // Gold ⊆ both sides.
  for (const auto& [lt, rt] : pair->gold.left_to_right()) {
    EXPECT_TRUE(pair->left->IsInstanceTerm(lt));
    EXPECT_TRUE(pair->right->IsInstanceTerm(rt));
  }
}

TEST_F(DeriveTest, InclusionIsDeterministicHash) {
  DeriveSpec s = LeftSpec();
  s.entity_coverage = 0.5;
  for (int e = 0; e < 50; ++e) {
    EXPECT_EQ(PairDeriver::Includes(s, world_, e),
              PairDeriver::Includes(s, world_, e));
    EXPECT_EQ(PairDeriver::IncludedAt(s.seed, e, 0.5),
              PairDeriver::IncludedAt(s.seed, e, 0.5));
  }
  // Coverage 1 always includes; coverage 0 never does.
  EXPECT_TRUE(PairDeriver::IncludedAt(1, 3, 1.0));
  EXPECT_FALSE(PairDeriver::IncludedAt(1, 3, 0.0));
}

TEST_F(DeriveTest, ClassCoverageOverride) {
  DeriveSpec l = LeftSpec();
  l.entity_coverage = 0.0;
  l.class_coverage = {{2, 1.0}};  // cities always included
  DeriveSpec r = RightSpec();
  auto pair = PairDeriver(&world_, l, r).Derive("t");
  ASSERT_TRUE(pair.ok());
  // Only the 10 cities materialize on the left.
  EXPECT_EQ(pair->left->instances().size(), 10u);
}

TEST_F(DeriveTest, RelationGoldHandlesInversion) {
  auto pair = PairDeriver(&world_, LeftSpec(), RightSpec()).Derive("t");
  ASSERT_TRUE(pair.ok());
  const auto& pool = *pair->pool;
  auto rel_of = [&](const ontology::Ontology& o, const std::string& name) {
    return *o.store().FindRelation(*pool.Find(name, rdf::TermKind::kIri));
  };
  const rdf::RelId born = rel_of(*pair->left, "a:bornIn");
  const rdf::RelId birth_of = rel_of(*pair->right, "b:birthPlaceOf");
  // a:bornIn ⊆ b:birthPlaceOf⁻¹ (the right side stores it inverted).
  EXPECT_TRUE(pair->gold.RelationContained(true, born,
                                           rdf::Inverse(birth_of)));
  EXPECT_FALSE(pair->gold.RelationContained(true, born, birth_of));
  // Inverting both preserves containment.
  EXPECT_TRUE(
      pair->gold.RelationContained(true, rdf::Inverse(born), birth_of));
  // Attribute relations align too.
  const rdf::RelId name = rel_of(*pair->left, "a:name");
  const rdf::RelId label = rel_of(*pair->right, "b:label");
  EXPECT_TRUE(pair->gold.RelationContained(true, name, label));
  EXPECT_FALSE(pair->gold.RelationContained(true, name, label + 100));
}

TEST_F(DeriveTest, AlignableRelationsCountsBothSides) {
  auto pair = PairDeriver(&world_, LeftSpec(), RightSpec()).Derive("t");
  ASSERT_TRUE(pair.ok());
  // All 4 left relations have counterparts; all 4 right ones too.
  EXPECT_EQ(pair->gold.AlignableRelations(true).size(), 4u);
  EXPECT_EQ(pair->gold.AlignableRelations(false).size(), 4u);
}

TEST_F(DeriveTest, ClassGoldUsesTaxonomy) {
  auto pair = PairDeriver(&world_, LeftSpec(), RightSpec()).Derive("t");
  ASSERT_TRUE(pair.ok());
  const auto& pool = *pair->pool;
  const rdf::TermId a_person = *pool.Find("a:Person", rdf::TermKind::kIri);
  const rdf::TermId a_thing = *pool.Find("a:Thing", rdf::TermKind::kIri);
  const rdf::TermId b_human = *pool.Find("b:Human", rdf::TermKind::kIri);
  const rdf::TermId b_entity = *pool.Find("b:Entity", rdf::TermKind::kIri);
  EXPECT_TRUE(pair->gold.ClassContained(true, a_person, b_human));
  EXPECT_TRUE(pair->gold.ClassContained(true, a_person, b_entity));
  EXPECT_FALSE(pair->gold.ClassContained(true, a_thing, b_human));
  EXPECT_TRUE(pair->gold.ClassContained(false, b_human, a_person));
  // Right has no City counterpart: a:City only maps into b:Entity.
  const rdf::TermId a_city = *pool.Find("a:City", rdf::TermKind::kIri);
  EXPECT_TRUE(pair->gold.ClassContained(true, a_city, b_entity));
  EXPECT_FALSE(pair->gold.ClassContained(true, a_city, b_human));
}

TEST_F(DeriveTest, DropoutReducesFacts) {
  DeriveSpec l = LeftSpec();
  auto full = PairDeriver(&world_, l, RightSpec()).Derive("t");
  ASSERT_TRUE(full.ok());
  l.fact_dropout = 0.5;
  auto dropped = PairDeriver(&world_, l, RightSpec()).Derive("t");
  ASSERT_TRUE(dropped.ok());
  EXPECT_LT(dropped->left->num_triples(), full->left->num_triples());
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

TEST(ProfilesTest, OaeiPersonShape) {
  auto pair = MakeOaeiPersonPair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  // 500 persons + 500 addresses + 50 suburbs on each side.
  EXPECT_EQ(pair->gold.num_instance_pairs(), 1050u);
  EXPECT_EQ(pair->left->classes().size(), 4u);
  EXPECT_EQ(pair->right->classes().size(), 4u);
}

TEST(ProfilesTest, OaeiRestaurantShape) {
  auto pair = MakeOaeiRestaurantPair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  // Partial overlap: strictly between 0 and the world size.
  EXPECT_GT(pair->gold.num_instance_pairs(), 100u);
  EXPECT_LT(pair->gold.num_instance_pairs(), 584u);
}

TEST(ProfilesTest, YagoDbpediaShape) {
  ProfileOptions opts;
  opts.scale = 0.05;  // keep the unit test fast
  auto pair = MakeYagoDbpediaPair(opts);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  // The YAGO side has a much richer class structure.
  EXPECT_GT(pair->left->classes().size(),
            3 * pair->right->classes().size());
  EXPECT_GT(pair->gold.num_instance_pairs(), 100u);
}

TEST(ProfilesTest, YagoImdbShape) {
  ProfileOptions opts;
  opts.scale = 0.05;
  auto pair = MakeYagoImdbPair(opts);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  // The IMDb side is movies-only: fewer classes, fewer relations.
  EXPECT_LT(pair->right->classes().size(), pair->left->classes().size());
  EXPECT_LT(pair->right->num_relations(), pair->left->num_relations());
}

TEST(ProfilesTest, ProfilesAreDeterministic) {
  auto a = MakeOaeiRestaurantPair();
  auto b = MakeOaeiRestaurantPair();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->left->num_triples(), b->left->num_triples());
  EXPECT_EQ(a->gold.num_instance_pairs(), b->gold.num_instance_pairs());
}

}  // namespace
}  // namespace paris::synth
