#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "paris/core/aligner.h"
#include "paris/core/result_io.h"
#include "paris/obs/metrics.h"
#include "paris/synth/profiles.h"

namespace paris::core {
namespace {

// All three alignment tables as one string — the byte-identity currency of
// these tests (same serialization the CLI exports).
std::string Tables(const AlignmentResult& result,
                   const ontology::Ontology& left,
                   const ontology::Ontology& right) {
  std::ostringstream out;
  WriteInstanceAlignment(result.instances, left, right, out);
  WriteRelationAlignment(result.relations, left, right, out);
  WriteClassAlignment(result.classes, left, right, out);
  return out.str();
}

uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                      const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

class SemiNaiveTest : public ::testing::Test {
 protected:
  // The restaurant pair locks into its fixpoint attractor within ~20
  // iterations at scale 1, which makes it the cheapest profile that
  // exercises the full semi-naive lifecycle: exhaustive early iterations,
  // shrinking worklists, then a fully drained (all-reused) tail.
  static void SetUpTestSuite() {
    synth::ProfileOptions options;
    auto pair = synth::MakeOaeiRestaurantPair(options);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    pair_ = new synth::OntologyPair(std::move(pair).value());
  }

  static const synth::OntologyPair& pair() { return *pair_; }

  static AlignmentConfig FixedWork(int iterations, bool semi_naive) {
    AlignmentConfig config;
    config.max_iterations = iterations;
    config.convergence_threshold = 0.0;  // run exactly `iterations`
    config.record_history = false;
    config.semi_naive = semi_naive;
    return config;
  }

  static std::string RunTables(const AlignmentConfig& config) {
    Aligner aligner(*pair().left, *pair().right, config);
    AlignmentResult result = aligner.Run();
    return Tables(result, *pair().left, *pair().right);
  }

 private:
  static synth::OntologyPair* pair_;
};

synth::OntologyPair* SemiNaiveTest::pair_ = nullptr;

// Mid-convergence the semi-naive worklist is partially drained; the reused
// slots must reproduce the exhaustive trajectory bit for bit. Both parities
// of the iteration cap are checked because reuse spans two generations
// (iteration k reuses slots from k-2).
TEST_F(SemiNaiveTest, MatchesExhaustiveMidConvergence) {
  for (int cap : {5, 8, 9}) {
    EXPECT_EQ(RunTables(FixedWork(cap, true)),
              RunTables(FixedWork(cap, false)))
        << "cap " << cap;
  }
}

// Past the attractor lock the semi-naive run recomputes (almost) nothing;
// its output must still equal the exhaustive run's — at an even and an odd
// cap, since a period-2 attractor makes the final state cap-parity
// dependent.
TEST_F(SemiNaiveTest, MatchesExhaustiveAfterConvergence) {
  for (int cap : {40, 41}) {
    EXPECT_EQ(RunTables(FixedWork(cap, true)),
              RunTables(FixedWork(cap, false)))
        << "cap " << cap;
  }
}

// The determinism contract: thread count and shard count shape scheduling,
// never results. The semi-naive path must uphold it both mid-convergence
// and in the converged (fully reused) regime.
TEST_F(SemiNaiveTest, ByteIdenticalAcrossThreadsAndShards) {
  for (int cap : {8, 40}) {
    std::string reference;
    for (size_t threads : {0, 1, 4}) {
      for (size_t shards : {7, 64}) {
        AlignmentConfig config = FixedWork(cap, true);
        config.num_threads = threads;
        config.num_shards = shards;
        const std::string tables = RunTables(config);
        if (reference.empty()) {
          reference = tables;
        } else {
          EXPECT_EQ(tables, reference) << "cap " << cap << " threads "
                                       << threads << " shards " << shards;
        }
      }
    }
  }
}

// Reuse must actually engage (otherwise the pass silently degraded to
// exhaustive), and when the attractor is an exact period-1 fixpoint — which
// the scale-1 restaurant pair reaches around iteration 30 — the drain-stop
// must end the run early even with the change-fraction criterion disabled.
// MatchesExhaustiveAfterConvergence (above) is what proves the early stop
// loses nothing: the stopped run's tables equal exhaustive ones at cap 40.
TEST_F(SemiNaiveTest, ReuseEngagesAndExactFixpointStops) {
  AlignmentConfig config = FixedWork(60, true);
  obs::MetricsRegistry metrics(1);
  Aligner aligner(*pair().left, *pair().right, config);
  obs::Hooks hooks;
  hooks.metrics = &metrics;
  aligner.set_observability(hooks);
  const AlignmentResult result = aligner.Run();

  const auto snap = metrics.Snapshot();
  EXPECT_GT(CounterValue(snap, "instance.entities_reused"), 0u);
  EXPECT_GT(CounterValue(snap, "relation.relations_reused"), 0u);
  EXPECT_GT(result.converged_at, 1);
  EXPECT_LT(result.converged_at, 60);
  EXPECT_EQ(result.iterations.size(), size_t(result.converged_at));
}

// The scale-2 restaurant pair locks into a period-2 attractor instead: the
// exact-fixpoint stop must NOT fire (the final state depends on the cap's
// parity), but the worklist still drains completely — the locked tail
// recomputes nothing, which is where the converged-iteration speedup
// comes from — and total scoring work stays well under exhaustive.
TEST_F(SemiNaiveTest, PeriodTwoAttractorDrainsWithoutStopping) {
  synth::ProfileOptions options;
  options.scale = 2.0;
  auto pair2 = synth::MakeOaeiRestaurantPair(options);
  ASSERT_TRUE(pair2.ok()) << pair2.status().ToString();

  uint64_t scored[2];
  uint64_t last_iteration_scored = ~0ull;
  for (bool semi_naive : {false, true}) {
    obs::MetricsRegistry metrics(1);
    Aligner aligner(*pair2->left, *pair2->right, FixedWork(40, semi_naive));
    obs::Hooks hooks;
    hooks.metrics = &metrics;
    aligner.set_observability(hooks);
    uint64_t prev_scored = 0;
    aligner.set_iteration_observer([&](const IterationRecord&) {
      const uint64_t total =
          CounterValue(metrics.Snapshot(), "instance.entities_scored");
      if (semi_naive) last_iteration_scored = total - prev_scored;
      prev_scored = total;
      return true;
    });
    const AlignmentResult result = aligner.Run();
    scored[semi_naive] =
        CounterValue(metrics.Snapshot(), "instance.entities_scored");
    if (semi_naive) {
      EXPECT_EQ(result.converged_at, -1);  // period 2: no exact fixpoint
    }
  }
  EXPECT_EQ(last_iteration_scored, 0u);  // fully drained tail
  EXPECT_LT(scored[1], (scored[0] * 3) / 4);
}

}  // namespace
}  // namespace paris::core
