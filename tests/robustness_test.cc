// Robustness / failure-injection tests: malformed inputs must produce
// errors (never crashes or silent corruption), degenerate ontologies must
// align to sane empty-ish results, and resource guards must hold.
#include <gtest/gtest.h>

#include <sstream>

#include "paris/core/aligner.h"
#include "paris/core/literal_match.h"
#include "paris/ontology/export.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/turtle.h"
#include "paris/util/logging.h"
#include "paris/util/random.h"

namespace paris {
namespace {

using core::Aligner;
using core::AlignmentConfig;
using core::AlignmentResult;
using ontology::Ontology;
using ontology::OntologyBuilder;

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SetLogLevel(util::LogLevel::kNone);
  }
};

// ---------------------------------------------------------------------------
// Parser fuzzing: random garbage never crashes, always errors or parses.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, NTriplesParserSurvivesGarbage) {
  util::Rng rng(314);
  const std::string alphabet = "<>\"\\.@^#_:abc \t\n";
  for (int i = 0; i < 500; ++i) {
    std::string doc;
    const int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int k = 0; k < len; ++k) {
      doc.push_back(alphabet[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(alphabet.size()) - 1))]);
    }
    rdf::VectorTripleSink sink;
    // Must not crash; status may be anything.
    (void)rdf::NTriplesParser::ParseDocument(doc, &sink);
  }
}

TEST_F(RobustnessTest, TurtleParserSurvivesGarbage) {
  util::Rng rng(2718);
  const std::string alphabet = "<>\"'\\.;,@^#_:()[]abc 123\t\n";
  for (int i = 0; i < 500; ++i) {
    std::string doc = "@prefix ex: <http://e/> .\n";
    const int len = static_cast<int>(rng.UniformInt(0, 80));
    for (int k = 0; k < len; ++k) {
      doc.push_back(alphabet[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(alphabet.size()) - 1))]);
    }
    rdf::VectorTripleSink sink;
    (void)rdf::TurtleParser::ParseDocument(doc, &sink);
  }
}

TEST_F(RobustnessTest, ParserRejectsMissingFile) {
  rdf::VectorTripleSink sink;
  EXPECT_EQ(rdf::NTriplesParser::ParseFile("/nonexistent/x.nt", &sink).code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(rdf::TurtleParser::ParseFile("/nonexistent/x.ttl", &sink).code(),
            util::StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Degenerate ontologies.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, EmptyOntologiesAlign) {
  rdf::TermPool pool;
  auto left = OntologyBuilder(&pool, "l").Build();
  auto right = OntologyBuilder(&pool, "r").Build();
  ASSERT_TRUE(left.ok() && right.ok());
  AlignmentResult result = Aligner(*left, *right).Run();
  EXPECT_EQ(result.instances.num_left_aligned(), 0u);
  EXPECT_EQ(result.relations.size(), 0u);
  EXPECT_TRUE(result.classes.entries().empty());
  EXPECT_FALSE(result.iterations.empty());
}

TEST_F(RobustnessTest, OneEmptySideAligns) {
  rdf::TermPool pool;
  OntologyBuilder bl(&pool, "l");
  bl.AddLiteralFact("l:a", "l:k", "v");
  bl.AddType("l:a", "l:C");
  auto left = bl.Build();
  auto right = OntologyBuilder(&pool, "r").Build();
  ASSERT_TRUE(left.ok() && right.ok());
  AlignmentResult result = Aligner(*left, *right).Run();
  EXPECT_EQ(result.instances.num_left_aligned(), 0u);
}

TEST_F(RobustnessTest, NoLiteralsNoBootstrapEvidence) {
  // Pure graph structure without literals: iteration 1 has no anchor, so
  // nothing can ever align — and nothing crashes.
  rdf::TermPool pool;
  OntologyBuilder bl(&pool, "l");
  for (int i = 0; i < 10; ++i) {
    bl.AddFact("l:n" + std::to_string(i), "l:edge",
               "l:n" + std::to_string((i + 1) % 10));
  }
  auto left = bl.Build();
  OntologyBuilder br(&pool, "r");
  for (int i = 0; i < 10; ++i) {
    br.AddFact("r:n" + std::to_string(i), "r:edge",
               "r:n" + std::to_string((i + 1) % 10));
  }
  auto right = br.Build();
  ASSERT_TRUE(left.ok() && right.ok());
  AlignmentResult result = Aligner(*left, *right).Run();
  EXPECT_EQ(result.instances.num_left_aligned(), 0u);
}

TEST_F(RobustnessTest, SelfLoopsAndReflexiveRelations) {
  rdf::TermPool pool;
  OntologyBuilder bl(&pool, "l");
  bl.AddFact("l:a", "l:rel", "l:a");  // self-loop
  bl.AddLiteralFact("l:a", "l:k", "key");
  auto left = bl.Build();
  OntologyBuilder br(&pool, "r");
  br.AddFact("r:x", "r:rel", "r:x");
  br.AddLiteralFact("r:x", "r:k", "key");
  auto right = br.Build();
  ASSERT_TRUE(left.ok() && right.ok());
  AlignmentResult result = Aligner(*left, *right).Run();
  const auto l_a = *pool.Find("l:a", rdf::TermKind::kIri);
  const auto* m = result.instances.MaxOfLeft(l_a);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->other, *pool.Find("r:x", rdf::TermKind::kIri));
}

TEST_F(RobustnessTest, HubFanoutGuard) {
  // A literal shared by everyone: with max_neighbor_fanout smaller than the
  // hub degree, the hub is skipped and nothing aligns through it.
  rdf::TermPool pool;
  OntologyBuilder bl(&pool, "l");
  for (int i = 0; i < 50; ++i) {
    bl.AddLiteralFact("l:e" + std::to_string(i), "l:tag", "ubiquitous");
  }
  auto left = bl.Build();
  OntologyBuilder br(&pool, "r");
  for (int i = 0; i < 50; ++i) {
    br.AddLiteralFact("r:f" + std::to_string(i), "r:tag", "ubiquitous");
  }
  auto right = br.Build();
  ASSERT_TRUE(left.ok() && right.ok());

  AlignmentConfig guarded;
  guarded.max_neighbor_fanout = 10;
  AlignmentResult result = Aligner(*left, *right, guarded).Run();
  EXPECT_EQ(result.instances.num_left_aligned(), 0u);

  // Without the guard the hub is expanded (and the low inverse
  // functionality keeps the probabilities below θ anyway).
  AlignmentConfig unguarded;
  AlignmentResult result2 = Aligner(*left, *right, unguarded).Run();
  EXPECT_EQ(result2.instances.num_left_aligned(), 0u);
}

TEST_F(RobustnessTest, MaxIterationsZeroProducesEmptyResult) {
  rdf::TermPool pool;
  OntologyBuilder bl(&pool, "l");
  bl.AddLiteralFact("l:a", "l:k", "v");
  auto left = bl.Build();
  OntologyBuilder br(&pool, "r");
  br.AddLiteralFact("r:b", "r:k", "v");
  auto right = br.Build();
  ASSERT_TRUE(left.ok() && right.ok());
  AlignmentConfig config;
  config.max_iterations = 0;
  AlignmentResult result = Aligner(*left, *right, config).Run();
  EXPECT_TRUE(result.iterations.empty());
  EXPECT_EQ(result.instances.num_left_aligned(), 0u);
}

TEST_F(RobustnessTest, MatchersHandleEmptyAndUnicodeLiterals) {
  rdf::TermPool pool;
  OntologyBuilder br(&pool, "r");
  br.AddLiteralFact("r:a", "r:k", "");
  br.AddLiteralFact("r:b", "r:k", "日本語のテキスト");
  br.AddLiteralFact("r:c", "r:k", "   ");
  auto right = br.Build();
  ASSERT_TRUE(right.ok());
  const rdf::TermId empty = pool.InternLiteral("");
  const rdf::TermId unicode = pool.InternLiteral("日本語のテキスト");
  for (const auto& factory :
       {core::IdentityMatcherFactory(), core::NormalizingMatcherFactory(),
        core::FuzzyMatcherFactory()}) {
    auto matcher = factory();
    matcher->IndexTarget(*right);
    std::vector<core::Candidate> out;
    matcher->Match(empty, &out);    // must not crash
    matcher->Match(unicode, &out);  // must not crash
  }
  core::TokenJaccardMatcher token_matcher;
  token_matcher.IndexTarget(*right);
  std::vector<core::Candidate> out;
  token_matcher.Match(empty, &out);
  token_matcher.Match(unicode, &out);
}

TEST_F(RobustnessTest, TokenJaccardHandlesReorderedWords) {
  rdf::TermPool pool;
  OntologyBuilder br(&pool, "r");
  br.AddLiteralFact("r:m", "r:title", "Sanshiro Sugata");
  auto right = br.Build();
  ASSERT_TRUE(right.ok());
  core::TokenJaccardMatcher matcher(0.9, 4);
  matcher.IndexTarget(*right);
  std::vector<core::Candidate> out;
  matcher.Match(pool.InternLiteral("Sugata  Sanshiro"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].prob, 1.0);  // same token set
}

// ---------------------------------------------------------------------------
// Export round trip.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, ExportReloadRoundTrip) {
  rdf::TermPool pool;
  OntologyBuilder builder(&pool, "orig");
  builder.AddType("o:elvis", "o:Singer");
  builder.AddSubClassOf("o:Singer", "o:Person");
  builder.AddLiteralFact("o:elvis", "o:name", "Elvis \"The King\"\n");
  builder.AddFact("o:elvis", "o:bornIn", "o:tupelo");
  auto onto = builder.Build();
  ASSERT_TRUE(onto.ok());

  std::ostringstream out;
  ontology::ExportToNTriples(*onto, out);

  rdf::TermPool pool2;
  auto reloaded =
      ontology::LoadOntologyFromNTriples(&pool2, "reloaded", out.str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_triples(), onto->num_triples());
  EXPECT_EQ(reloaded->classes().size(), onto->classes().size());
  EXPECT_EQ(reloaded->instances().size(), onto->instances().size());
  const auto elvis = pool2.Find("o:elvis", rdf::TermKind::kIri);
  ASSERT_TRUE(elvis.has_value());
  EXPECT_EQ(reloaded->ClassesOf(*elvis).size(), 2u);
}

}  // namespace
}  // namespace paris
