#include <gtest/gtest.h>

#include "paris/eval/metrics.h"
#include "paris/eval/report.h"
#include "paris/synth/derive.h"
#include "paris/synth/world.h"

namespace paris::eval {
namespace {

// Builds a small derived pair with a known gold standard to exercise the
// metric functions.
class EvalTest : public ::testing::Test {
 protected:
  EvalTest() {
    synth::WorldSpec spec;
    spec.seed = 99;
    spec.classes = {{"thing", -1}, {"person", 0}};
    spec.groups = {{1, 20, "p"}};
    spec.attributes = {
        {"name", 1, synth::ValueKind::kPersonName, 1.0, 0.0, 1, false}};
    world_ = std::make_unique<synth::World>(synth::World::Generate(spec));
    synth::DeriveSpec l;
    l.onto_name = "a";
    l.relations = {{-1, 0, "a:name", false}};
    l.classes = {{1, "a:P"}};
    synth::DeriveSpec r;
    r.onto_name = "b";
    r.relations = {{-1, 0, "b:name", false}};
    r.classes = {{1, "b:P"}};
    auto pair = synth::PairDeriver(world_.get(), l, r).Derive("t");
    EXPECT_TRUE(pair.ok());
    pair_ = std::make_unique<synth::OntologyPair>(std::move(pair).value());
  }

  rdf::TermId LeftInstance(size_t i) const {
    return pair_->left->instances()[i];
  }
  rdf::TermId GoldOf(rdf::TermId left) const {
    return pair_->gold.left_to_right().at(left);
  }

  std::unique_ptr<synth::World> world_;
  std::unique_ptr<synth::OntologyPair> pair_;
};

TEST_F(EvalTest, PerfectAssignmentScoresPerfect) {
  core::InstanceEquivalences equiv;
  for (const auto& [l, r] : pair_->gold.left_to_right()) {
    equiv.Set(l, {{r, 1.0}});
  }
  equiv.Finalize();
  const auto pr = EvaluateInstances(equiv, pair_->gold);
  EXPECT_EQ(pr.predicted, 20u);
  EXPECT_EQ(pr.correct, 20u);
  EXPECT_EQ(pr.gold, 20u);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 1.0);
  EXPECT_DOUBLE_EQ(pr.f1(), 1.0);
}

TEST_F(EvalTest, WrongAssignmentIsFalsePositive) {
  core::InstanceEquivalences equiv;
  const rdf::TermId l0 = LeftInstance(0);
  const rdf::TermId l1 = LeftInstance(1);
  equiv.Set(l0, {{GoldOf(l1), 1.0}});  // wrong counterpart
  equiv.Set(l1, {{GoldOf(l1), 1.0}});  // right
  equiv.Finalize();
  const auto pr = EvaluateInstances(equiv, pair_->gold);
  EXPECT_EQ(pr.predicted, 2u);
  EXPECT_EQ(pr.correct, 1u);
  EXPECT_DOUBLE_EQ(pr.precision(), 0.5);
  EXPECT_DOUBLE_EQ(pr.recall(), 1.0 / 20.0);
}

TEST_F(EvalTest, EmptyAssignmentHasZeroRecall) {
  core::InstanceEquivalences equiv;
  equiv.Finalize();
  const auto pr = EvaluateInstances(equiv, pair_->gold);
  EXPECT_EQ(pr.predicted, 0u);
  EXPECT_DOUBLE_EQ(pr.precision(), 0.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.0);
  EXPECT_DOUBLE_EQ(pr.f1(), 0.0);
}

TEST_F(EvalTest, FilteredEvaluationRestrictsBothSides) {
  core::InstanceEquivalences equiv;
  for (const auto& [l, r] : pair_->gold.left_to_right()) {
    equiv.Set(l, {{r, 1.0}});
  }
  equiv.Finalize();
  const rdf::TermId only = LeftInstance(3);
  const auto pr = EvaluateInstancesFiltered(
      equiv, pair_->gold, [&](rdf::TermId t) { return t == only; });
  EXPECT_EQ(pr.gold, 1u);
  EXPECT_EQ(pr.predicted, 1u);
  EXPECT_EQ(pr.correct, 1u);
}

TEST_F(EvalTest, RelationEvalUsesMaximalAssignment) {
  // One relation on each side; gold says a:name ⊆ b:name.
  core::RelationScores scores;
  scores.SetSubLeftRight(1, 1, 0.9);   // correct
  scores.SetSubLeftRight(1, -1, 0.4);  // weaker wrong direction — ignored
  const auto eval = EvaluateRelations(scores, pair_->gold, true, 0.3);
  EXPECT_EQ(eval.assigned, 1u);
  EXPECT_EQ(eval.correct, 1u);
  EXPECT_EQ(eval.alignable, 1u);
  EXPECT_DOUBLE_EQ(eval.precision(), 1.0);
  EXPECT_DOUBLE_EQ(eval.recall(), 1.0);
}

TEST_F(EvalTest, RelationEvalThresholdSuppresses) {
  core::RelationScores scores;
  scores.SetSubLeftRight(1, 1, 0.2);
  const auto eval = EvaluateRelations(scores, pair_->gold, true, 0.3);
  EXPECT_EQ(eval.assigned, 0u);
  EXPECT_EQ(eval.alignable, 1u);
  EXPECT_DOUBLE_EQ(eval.recall(), 0.0);
}

TEST_F(EvalTest, RelationEvalNormalizesInverseSub) {
  // An entry stated on the inverse sub relation must count for its base:
  // a:name⁻¹ ⊆ b:name⁻¹ ⟺ a:name ⊆ b:name.
  core::RelationScores scores;
  scores.SetSubLeftRight(1, -1, 0.9);  // a:name ⊆ b:name⁻¹ — wrong
  const auto eval = EvaluateRelations(scores, pair_->gold, true, 0.3);
  EXPECT_EQ(eval.assigned, 1u);
  EXPECT_EQ(eval.correct, 0u);
}

TEST_F(EvalTest, ClassEntriesEvaluation) {
  const rdf::TermId a_p =
      *pair_->pool->Find("a:P", rdf::TermKind::kIri);
  const rdf::TermId b_p =
      *pair_->pool->Find("b:P", rdf::TermKind::kIri);
  core::ClassScores scores({{a_p, b_p, 0.9, true},
                            {a_p, a_p, 0.8, true}});  // second is nonsense
  const auto eval = EvaluateClassEntries(scores, pair_->gold, true, 0.5);
  EXPECT_EQ(eval.entries, 2u);
  EXPECT_EQ(eval.correct, 1u);
  EXPECT_EQ(eval.aligned_subclasses, 1u);
  EXPECT_DOUBLE_EQ(eval.precision(), 0.5);
}

TEST_F(EvalTest, ClassMaximalEvaluation) {
  const rdf::TermId a_p = *pair_->pool->Find("a:P", rdf::TermKind::kIri);
  const rdf::TermId b_p = *pair_->pool->Find("b:P", rdf::TermKind::kIri);
  core::ClassScores scores(
      {{a_p, b_p, 0.9, true}, {a_p, a_p, 0.95, true}});
  // The maximal assignment picks the higher-scoring (wrong) entry.
  const auto eval = EvaluateClassesMaximal(scores, pair_->gold, true, 0.5);
  EXPECT_EQ(eval.assigned, 1u);
  EXPECT_EQ(eval.correct, 0u);
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"A", "LongHeader"});
  t.AddRow({"aaaa", "b"});
  t.AddRow({"c", "dd"});
  const std::string out = t.ToString();
  // Every line has the same column start for the second field.
  const auto lines_start = out.find('\n');
  ASSERT_NE(lines_start, std::string::npos);
  EXPECT_NE(out.find("LongHeader"), std::string::npos);
  EXPECT_NE(out.find("aaaa"), std::string::npos);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::Pct(0.9), "90%");
  EXPECT_EQ(TablePrinter::Pct(1.0), "100%");
  EXPECT_EQ(TablePrinter::Pct1(0.123), "12.3%");
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
}

TEST(TablePrinterTest, ShortRowsTolerated) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"x"});
  EXPECT_NE(t.ToString().find("x"), std::string::npos);
}

}  // namespace
}  // namespace paris::eval
