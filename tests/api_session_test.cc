#include <gtest/gtest.h>

#include <condition_variable>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "paris/api/dataset.h"
#include "paris/api/matcher_registry.h"
#include "paris/api/session.h"
#include "paris/core/literal_match.h"
#include "paris/core/result_snapshot.h"
#include "paris/storage/snapshot.h"
#include "paris/util/status.h"

namespace paris {
namespace {

using api::CancellationToken;
using api::MatcherRegistry;
using api::RunCallbacks;
using api::Session;
using util::StatusCode;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// A structurally minimal snapshot file of the given family whose format
// version is wrong but whose checksum trailer is valid — so the version
// check (not the corruption check) is what rejects it.
std::string MakeWrongVersionSnapshot(const char (&magic)[8]) {
  const uint32_t bogus_version = 0xEE;  // little-endian on every target
  std::string bytes(magic, sizeof(magic));
  bytes.append(reinterpret_cast<const char*>(&bogus_version),
               sizeof(bogus_version));
  const uint64_t checksum =
      storage::FnvHash(bytes.data() + sizeof(magic), sizeof(bogus_version));
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

// Generates the restaurant pair once per process; every test loads from
// these files (or a snapshot of them).
class ApiSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    api::DatasetSpec spec;
    spec.profile = "restaurant";
    spec.output_prefix = TempPath("api_rest");
    spec.scale = 0.5;
    auto summary = api::GenerateDataset(spec);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    left_path_ = new std::string(summary->left_path);
    right_path_ = new std::string(summary->right_path);
  }

  static Session::Options FixedWorkOptions(int max_iterations) {
    Session::Options options;
    options.config.max_iterations = max_iterations;
    // Disable convergence so runs do a predictable number of iterations.
    options.config.convergence_threshold = 0.0;
    return options;
  }

  static const std::string& left_path() { return *left_path_; }
  static const std::string& right_path() { return *right_path_; }

 private:
  static std::string* left_path_;
  static std::string* right_path_;
};

std::string* ApiSessionTest::left_path_ = nullptr;
std::string* ApiSessionTest::right_path_ = nullptr;

TEST_F(ApiSessionTest, FullLifecycle) {
  Session session(FixedWorkOptions(3));
  EXPECT_FALSE(session.loaded());
  ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
  EXPECT_TRUE(session.loaded());
  EXPECT_FALSE(session.has_result());

  std::vector<int> iterations;
  RunCallbacks callbacks;
  callbacks.on_iteration = [&](const api::IterationProgress& progress) {
    iterations.push_back(progress.iteration);
    EXPECT_EQ(progress.max_iterations, 3);
    EXPECT_GT(progress.num_aligned, 0u);
  };
  ASSERT_TRUE(session.Align(callbacks).ok());
  EXPECT_TRUE(session.has_result());
  EXPECT_EQ(iterations, (std::vector<int>{1, 2, 3}));

  const api::RunSummary summary = session.summary();
  EXPECT_EQ(summary.iterations, 3u);
  EXPECT_GT(summary.instances_aligned, 0u);
  EXPECT_GT(summary.relation_scores, 0u);
  EXPECT_FALSE(summary.cancelled);

  const std::string prefix = TempPath("api_run");
  ASSERT_TRUE(session.Export(prefix).ok());
  EXPECT_FALSE(ReadFile(prefix + "_instances.tsv").empty());
  std::ostringstream instance_out;
  ASSERT_TRUE(session.WriteInstanceAlignment(instance_out).ok());
  EXPECT_FALSE(instance_out.str().empty());
  std::ostringstream stats_out;
  ASSERT_TRUE(session.PrintStats(stats_out).ok());
  EXPECT_NE(stats_out.str().find("relation functionalities"),
            std::string::npos);
}

TEST_F(ApiSessionTest, LoadFromFilesNonexistentReportsPath) {
  Session session;
  auto status = session.LoadFromFiles(TempPath("no_such_file.nt"),
                                      right_path());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("no_such_file.nt"), std::string::npos);
  EXPECT_FALSE(session.loaded());
  // The session stays usable after a failed load.
  EXPECT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
}

TEST_F(ApiSessionTest, MethodsBeforeLoadFailCleanly) {
  Session session;
  EXPECT_EQ(session.Align().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.SaveSnapshot(TempPath("x.snap")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.SaveResult(TempPath("x.result")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Export(TempPath("x")).code(),
            StatusCode::kFailedPrecondition);
  std::ostringstream out;
  EXPECT_EQ(session.PrintStats(out).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ApiSessionTest, DoubleLoadAndDoubleAlignRejected) {
  Session session(FixedWorkOptions(1));
  ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
  EXPECT_EQ(session.LoadFromFiles(left_path(), right_path()).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Align().ok());
  auto again = session.Align();
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(again.message().find("new Session"), std::string::npos);
}

TEST_F(ApiSessionTest, SnapshotRoundTripMatchesFileLoad) {
  const std::string snap = TempPath("api_pair.snap");
  {
    Session session(FixedWorkOptions(2));
    ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
    ASSERT_TRUE(session.SaveSnapshot(snap).ok());
    ASSERT_TRUE(session.Align().ok());
    ASSERT_TRUE(session.Export(TempPath("api_files")).ok());
  }
  {
    Session session(FixedWorkOptions(2));
    ASSERT_TRUE(session.LoadFromSnapshot(snap).ok());
    ASSERT_TRUE(session.Align().ok());
    ASSERT_TRUE(session.Export(TempPath("api_snap")).ok());
  }
  EXPECT_EQ(ReadFile(TempPath("api_files_instances.tsv")),
            ReadFile(TempPath("api_snap_instances.tsv")));
  EXPECT_EQ(ReadFile(TempPath("api_files_relations.tsv")),
            ReadFile(TempPath("api_snap_relations.tsv")));
  EXPECT_EQ(ReadFile(TempPath("api_files_classes.tsv")),
            ReadFile(TempPath("api_snap_classes.tsv")));
}

TEST_F(ApiSessionTest, LoadFromSnapshotRejectsVersionMismatch) {
  const std::string bad = TempPath("api_version_bad.snap");
  WriteFile(bad, MakeWrongVersionSnapshot(storage::kSnapshotMagic));

  Session session;
  auto status = session.LoadFromSnapshot(bad);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(bad), std::string::npos);
  EXPECT_NE(status.message().find("version"), std::string::npos);
  EXPECT_FALSE(session.loaded());
}

TEST_F(ApiSessionTest, LoadFromSnapshotRejectsTruncation) {
  const std::string snap = TempPath("api_trunc.snap");
  {
    Session session;
    ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
    ASSERT_TRUE(session.SaveSnapshot(snap).ok());
  }
  std::string bytes = ReadFile(snap);
  const std::string bad = TempPath("api_trunc_bad.snap");
  WriteFile(bad, bytes.substr(0, bytes.size() / 2));

  Session session;
  auto status = session.LoadFromSnapshot(bad);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(bad), std::string::npos);
  EXPECT_FALSE(session.loaded());
}

TEST_F(ApiSessionTest, ResumeContinuesToIdenticalResult) {
  const std::string checkpoint = TempPath("api_k1.result");
  {
    Session session(FixedWorkOptions(1));
    ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
    ASSERT_TRUE(session.Align().ok());
    ASSERT_TRUE(session.SaveResult(checkpoint).ok());
  }
  {
    Session cold(FixedWorkOptions(3));
    ASSERT_TRUE(cold.LoadFromFiles(left_path(), right_path()).ok());
    ASSERT_TRUE(cold.Align().ok());
    ASSERT_TRUE(cold.Export(TempPath("api_cold")).ok());
  }
  {
    Session warm(FixedWorkOptions(3));
    ASSERT_TRUE(warm.LoadFromFiles(left_path(), right_path()).ok());
    std::vector<int> iterations;
    RunCallbacks callbacks;
    callbacks.on_iteration = [&](const api::IterationProgress& progress) {
      iterations.push_back(progress.iteration);
    };
    ASSERT_TRUE(warm.Resume(checkpoint, callbacks).ok());
    // The checkpoint covered iteration 1; the resumed run does 2 and 3.
    EXPECT_EQ(iterations, (std::vector<int>{2, 3}));
    EXPECT_EQ(warm.summary().resumed_iterations, 1u);
    EXPECT_EQ(warm.summary().iterations, 3u);
    ASSERT_TRUE(warm.Export(TempPath("api_warm")).ok());
  }
  EXPECT_EQ(ReadFile(TempPath("api_cold_instances.tsv")),
            ReadFile(TempPath("api_warm_instances.tsv")));
  EXPECT_EQ(ReadFile(TempPath("api_cold_relations.tsv")),
            ReadFile(TempPath("api_warm_relations.tsv")));
  EXPECT_EQ(ReadFile(TempPath("api_cold_classes.tsv")),
            ReadFile(TempPath("api_warm_classes.tsv")));
}

TEST_F(ApiSessionTest, ResumeWithMismatchedConfigFails) {
  const std::string checkpoint = TempPath("api_mismatch.result");
  {
    Session session(FixedWorkOptions(1));
    ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
    ASSERT_TRUE(session.Align().ok());
    ASSERT_TRUE(session.SaveResult(checkpoint).ok());
  }
  Session::Options options = FixedWorkOptions(3);
  options.config.theta = 0.3;
  Session session(options);
  ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
  auto status = session.Resume(checkpoint);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find(checkpoint), std::string::npos);
  EXPECT_NE(status.message().find("theta"), std::string::npos);
  EXPECT_FALSE(session.has_result());
  // A failed resume does not burn the session: a fresh Align still works.
  EXPECT_TRUE(session.Align().ok());
}

TEST_F(ApiSessionTest, ResumeRejectsResultSnapshotVersionMismatch) {
  const std::string bad = TempPath("api_rsver_bad.result");
  WriteFile(bad, MakeWrongVersionSnapshot(core::kResultSnapshotMagic));

  Session session(FixedWorkOptions(3));
  ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
  auto status = session.Resume(bad);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find(bad), std::string::npos);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

// Cancels from another thread while the run is between iterations: the
// callback signals the main thread, which flips the token; the run then
// stops at the iteration boundary with a consistent partial result. Runs
// under TSan in CI.
TEST_F(ApiSessionTest, CancellationMidRunKeepsPartialResult) {
  Session session(FixedWorkOptions(10));
  ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());

  auto token = std::make_shared<CancellationToken>();
  std::mutex mutex;
  std::condition_variable cv;
  bool first_iteration_done = false;
  bool cancel_requested = false;

  RunCallbacks callbacks;
  callbacks.cancellation = token;
  callbacks.on_iteration = [&](const api::IterationProgress&) {
    std::unique_lock<std::mutex> lock(mutex);
    first_iteration_done = true;
    cv.notify_all();
    cv.wait(lock, [&] { return cancel_requested; });
  };

  util::Status align_status;
  std::thread runner([&] { align_status = session.Align(callbacks); });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return first_iteration_done; });
    token->Cancel();
    cancel_requested = true;
    cv.notify_all();
  }
  runner.join();

  EXPECT_EQ(align_status.code(), StatusCode::kCancelled);
  // The partial result is consistent: one completed iteration, exportable,
  // and resumable to the same tables as an uninterrupted run.
  ASSERT_TRUE(session.has_result());
  EXPECT_TRUE(session.summary().cancelled);
  EXPECT_EQ(session.summary().iterations, 1u);
  const std::string checkpoint = TempPath("api_cancel.result");
  ASSERT_TRUE(session.SaveResult(checkpoint).ok());

  Session cold(FixedWorkOptions(3));
  ASSERT_TRUE(cold.LoadFromFiles(left_path(), right_path()).ok());
  ASSERT_TRUE(cold.Align().ok());
  ASSERT_TRUE(cold.Export(TempPath("api_cancel_cold")).ok());

  Session::Options warm_options = FixedWorkOptions(3);
  warm_options.config.max_iterations = 3;
  Session warm(warm_options);
  ASSERT_TRUE(warm.LoadFromFiles(left_path(), right_path()).ok());
  ASSERT_TRUE(warm.Resume(checkpoint).ok());
  ASSERT_TRUE(warm.Export(TempPath("api_cancel_warm")).ok());
  EXPECT_EQ(ReadFile(TempPath("api_cancel_cold_instances.tsv")),
            ReadFile(TempPath("api_cancel_warm_instances.tsv")));
}

// A cancel that lands on the converging iteration stopped nothing — the
// run must report success (converged, not cancelled), never the
// contradictory converged+cancelled state.
TEST_F(ApiSessionTest, CancelOnConvergingIterationReportsConverged) {
  Session::Options options;
  options.config.max_iterations = 10;  // default 1% convergence threshold
  Session session(options);
  ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());

  auto token = std::make_shared<CancellationToken>();
  RunCallbacks callbacks;
  callbacks.cancellation = token;
  callbacks.on_iteration = [&](const api::IterationProgress& progress) {
    // The restaurant pair converges (change fraction hits the threshold);
    // cancelling exactly then must not mark the complete run cancelled.
    if (progress.iteration > 1 && progress.change_fraction < 0.01) {
      token->Cancel();
    }
  };
  EXPECT_TRUE(session.Align(callbacks).ok());
  EXPECT_TRUE(session.summary().converged);
  EXPECT_FALSE(session.summary().cancelled);
}

TEST_F(ApiSessionTest, UnknownMatcherFailsAlign) {
  Session::Options options;
  options.matcher = "bogus";
  Session session(options);
  ASSERT_TRUE(session.LoadFromFiles(left_path(), right_path()).ok());
  auto status = session.Align();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
  EXPECT_NE(status.message().find("identity"), std::string::npos);
}

TEST(MatcherRegistryTest, BuiltInsAndCustomRegistration) {
  const MatcherRegistry& builtins = MatcherRegistry::Default();
  for (const char* name : {"identity", "normalized", "fuzzy"}) {
    EXPECT_TRUE(builtins.Contains(name)) << name;
    EXPECT_TRUE(builtins.Resolve(name).ok()) << name;
  }
  EXPECT_EQ(builtins.Resolve("nope").status().code(), StatusCode::kNotFound);

  // A private registry with a custom matcher plugs into a Session without
  // any call-site changes.
  MatcherRegistry registry;
  ASSERT_TRUE(
      registry.Register("custom", core::NormalizingMatcherFactory()).ok());
  EXPECT_EQ(registry.Register("custom", core::IdentityMatcherFactory()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"custom"}));

  api::DatasetSpec spec;
  spec.profile = "restaurant";
  spec.output_prefix = ::testing::TempDir() + "/registry_rest";
  spec.scale = 0.25;
  auto summary = api::GenerateDataset(spec);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  Session::Options options;
  options.matcher = "custom";
  options.registry = &registry;
  Session session(options);
  ASSERT_TRUE(
      session.LoadFromFiles(summary->left_path, summary->right_path).ok());
  EXPECT_TRUE(session.Align().ok());
  EXPECT_GT(session.summary().instances_aligned, 0u);
}

TEST(GenerateDatasetTest, UnknownProfileIsInvalidArgument) {
  api::DatasetSpec spec;
  spec.profile = "nope";
  spec.output_prefix = ::testing::TempDir() + "/nope";
  auto summary = api::GenerateDataset(spec);
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(summary.status().message().find("nope"), std::string::npos);
}

}  // namespace
}  // namespace paris
