#include <gtest/gtest.h>

#include "paris/core/equiv.h"

namespace paris::core {
namespace {

TEST(EquivTest, EmptyStoreFinalizes) {
  InstanceEquivalences eq;
  eq.Finalize();
  EXPECT_TRUE(eq.finalized());
  EXPECT_EQ(eq.num_left_aligned(), 0u);
  EXPECT_TRUE(eq.LeftToRight(1).empty());
  EXPECT_TRUE(eq.RightToLeft(1).empty());
  EXPECT_EQ(eq.MaxOfLeft(1), nullptr);
  EXPECT_EQ(eq.MaxOfRight(1), nullptr);
}

TEST(EquivTest, SetAndLookup) {
  InstanceEquivalences eq;
  eq.Set(1, {{10, 0.9}, {11, 0.5}});
  eq.Finalize();
  auto span = eq.LeftToRight(1);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].other, 10u);
  EXPECT_DOUBLE_EQ(span[0].prob, 0.9);
  ASSERT_NE(eq.MaxOfLeft(1), nullptr);
  EXPECT_EQ(eq.MaxOfLeft(1)->other, 10u);
}

TEST(EquivTest, EmptyCandidateListIgnored) {
  InstanceEquivalences eq;
  eq.Set(1, {});
  eq.Finalize();
  EXPECT_EQ(eq.num_left_aligned(), 0u);
}

TEST(EquivTest, TransposeBuilt) {
  InstanceEquivalences eq;
  eq.Set(1, {{10, 0.9}});
  eq.Set(2, {{10, 0.95}, {11, 0.2}});
  eq.Finalize();
  auto back = eq.RightToLeft(10);
  ASSERT_EQ(back.size(), 2u);
  // Sorted by descending probability.
  EXPECT_EQ(back[0].other, 2u);
  EXPECT_DOUBLE_EQ(back[0].prob, 0.95);
  EXPECT_EQ(back[1].other, 1u);
  // Maximal assignment of right entity 10 is left entity 2.
  ASSERT_NE(eq.MaxOfRight(10), nullptr);
  EXPECT_EQ(eq.MaxOfRight(10)->other, 2u);
  ASSERT_NE(eq.MaxOfRight(11), nullptr);
  EXPECT_EQ(eq.MaxOfRight(11)->other, 2u);
}

TEST(EquivTest, TieBreakDeterministic) {
  InstanceEquivalences eq;
  // Equal probabilities: smallest id wins (ties broken "arbitrarily" but
  // deterministically, §4.2).
  eq.Set(1, {{10, 0.7}, {12, 0.7}});
  eq.Finalize();
  EXPECT_EQ(eq.MaxOfLeft(1)->other, 10u);
}

TEST(EquivTest, ChangeFractionEmptyToEmpty) {
  InstanceEquivalences a, b;
  a.Finalize();
  b.Finalize();
  EXPECT_DOUBLE_EQ(b.MaxAssignmentChangeFraction(a), 0.0);
}

TEST(EquivTest, ChangeFractionFirstIterationIsOne) {
  InstanceEquivalences prev;
  prev.Finalize();
  InstanceEquivalences cur;
  cur.Set(1, {{10, 0.9}});
  cur.Set(2, {{11, 0.9}});
  cur.Finalize();
  EXPECT_DOUBLE_EQ(cur.MaxAssignmentChangeFraction(prev), 1.0);
}

TEST(EquivTest, ChangeFractionStable) {
  InstanceEquivalences prev;
  prev.Set(1, {{10, 0.5}});
  prev.Finalize();
  InstanceEquivalences cur;
  cur.Set(1, {{10, 0.99}});  // same target, different prob → unchanged
  cur.Finalize();
  EXPECT_DOUBLE_EQ(cur.MaxAssignmentChangeFraction(prev), 0.0);
}

TEST(EquivTest, ChangeFractionPartial) {
  InstanceEquivalences prev;
  prev.Set(1, {{10, 0.5}});
  prev.Set(2, {{11, 0.5}});
  prev.Finalize();
  InstanceEquivalences cur;
  cur.Set(1, {{10, 0.5}});  // unchanged
  cur.Set(2, {{12, 0.5}});  // changed target
  cur.Set(3, {{13, 0.5}});  // new
  cur.Finalize();
  // Universe = {1,2,3}; changed = {2,3} → 2/3.
  EXPECT_NEAR(cur.MaxAssignmentChangeFraction(prev), 2.0 / 3.0, 1e-12);
}

TEST(EquivTest, ChangeFractionCountsDisappeared) {
  InstanceEquivalences prev;
  prev.Set(1, {{10, 0.5}});
  prev.Set(2, {{11, 0.5}});
  prev.Finalize();
  InstanceEquivalences cur;
  cur.Set(1, {{10, 0.5}});
  cur.Finalize();
  // Universe = {1, 2}; entity 2 lost its assignment → 1/2.
  EXPECT_DOUBLE_EQ(cur.MaxAssignmentChangeFraction(prev), 0.5);
}

}  // namespace
}  // namespace paris::core
