#include <gtest/gtest.h>

#include <algorithm>

#include "paris/ontology/ontology.h"
#include "paris/ontology/vocab.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/term.h"

namespace paris::ontology {
namespace {

using rdf::TermId;
using rdf::TermKind;

class OntologyTest : public ::testing::Test {
 protected:
  rdf::TermPool pool_;
};

TEST_F(OntologyTest, BuildsPartition) {
  OntologyBuilder b(&pool_, "test");
  b.AddType("ex:elvis", "ex:singer");
  b.AddLiteralFact("ex:elvis", "ex:name", "Elvis");
  b.AddFact("ex:elvis", "ex:bornIn", "ex:tupelo");
  auto onto = b.Build();
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();

  const TermId elvis = *pool_.Find("ex:elvis", TermKind::kIri);
  const TermId singer = *pool_.Find("ex:singer", TermKind::kIri);
  const TermId tupelo = *pool_.Find("ex:tupelo", TermKind::kIri);
  EXPECT_TRUE(onto->IsInstanceTerm(elvis));
  EXPECT_TRUE(onto->IsClassTerm(singer));
  EXPECT_FALSE(onto->IsInstanceTerm(singer));
  EXPECT_TRUE(onto->IsInstanceTerm(tupelo));  // fact argument, not a class
  EXPECT_EQ(onto->instances().size(), 2u);
  EXPECT_EQ(onto->classes().size(), 1u);
}

TEST_F(OntologyTest, SubClassClosureIsTransitive) {
  OntologyBuilder b(&pool_, "test");
  b.AddSubClassOf("ex:singer", "ex:artist");
  b.AddSubClassOf("ex:artist", "ex:person");
  b.AddSubClassOf("ex:person", "ex:thing");
  b.AddType("ex:elvis", "ex:singer");
  auto onto = b.Build();
  ASSERT_TRUE(onto.ok());

  const TermId elvis = *pool_.Find("ex:elvis", TermKind::kIri);
  const TermId singer = *pool_.Find("ex:singer", TermKind::kIri);
  const TermId thing = *pool_.Find("ex:thing", TermKind::kIri);

  // Type closure: elvis is an instance of every ancestor.
  auto classes = onto->ClassesOf(elvis);
  EXPECT_EQ(classes.size(), 4u);
  EXPECT_TRUE(onto->IsSubClassOf(singer, thing));
  EXPECT_FALSE(onto->IsSubClassOf(thing, singer));
  EXPECT_TRUE(onto->IsSubClassOf(singer, singer));  // reflexive

  // Instance index closed too.
  auto members = onto->InstancesOf(thing);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], elvis);
}

TEST_F(OntologyTest, SubPropertyClosureCopiesFacts) {
  OntologyBuilder b(&pool_, "test");
  b.AddSubPropertyOf("ex:hasCapital", "ex:hasCity");
  b.AddFact("ex:uk", "ex:hasCapital", "ex:london");
  auto onto = b.Build();
  ASSERT_TRUE(onto.ok());

  const TermId uk = *pool_.Find("ex:uk", TermKind::kIri);
  // Both the direct and the implied statement exist.
  EXPECT_EQ(onto->FactsAbout(uk).size(), 2u);
  EXPECT_EQ(onto->num_relations(), 2u);
}

TEST_F(OntologyTest, SubPropertyClosureTransitive) {
  OntologyBuilder b(&pool_, "test");
  b.AddSubPropertyOf("ex:a", "ex:b");
  b.AddSubPropertyOf("ex:b", "ex:c");
  b.AddFact("ex:x", "ex:a", "ex:y");
  auto onto = b.Build();
  ASSERT_TRUE(onto.ok());
  const TermId x = *pool_.Find("ex:x", TermKind::kIri);
  EXPECT_EQ(onto->FactsAbout(x).size(), 3u);  // a, b, c
}

TEST_F(OntologyTest, ToleratesSubClassCycle) {
  OntologyBuilder b(&pool_, "test");
  b.AddSubClassOf("ex:a", "ex:b");
  b.AddSubClassOf("ex:b", "ex:a");
  b.AddType("ex:x", "ex:a");
  auto onto = b.Build();
  ASSERT_TRUE(onto.ok());
  const TermId a = *pool_.Find("ex:a", TermKind::kIri);
  const TermId b_cls = *pool_.Find("ex:b", TermKind::kIri);
  EXPECT_TRUE(onto->IsSubClassOf(a, b_cls));
  EXPECT_TRUE(onto->IsSubClassOf(b_cls, a));
}

TEST_F(OntologyTest, RejectsLiteralClass) {
  OntologyBuilder b(&pool_, "test");
  rdf::ParsedTriple t;
  t.subject = "ex:x";
  t.predicate = std::string(kRdfType);
  t.object = "notaclass";
  t.object_is_literal = true;
  b.OnTriple(t);
  auto onto = b.Build();
  EXPECT_FALSE(onto.ok());
}

TEST_F(OntologyTest, OnTripleDispatchesVocabulary) {
  OntologyBuilder b(&pool_, "test");
  rdf::ParsedTriple t1{"ex:elvis", std::string(kRdfTypeFull), "ex:singer",
                       false, "", ""};
  rdf::ParsedTriple t2{"ex:singer", std::string(kRdfsSubClassOfFull),
                       "ex:person", false, "", ""};
  rdf::ParsedTriple t3{"ex:elvis", "ex:name", "Elvis", true, "", ""};
  b.OnTriple(t1);
  b.OnTriple(t2);
  b.OnTriple(t3);
  auto onto = b.Build();
  ASSERT_TRUE(onto.ok());
  EXPECT_EQ(onto->classes().size(), 2u);
  EXPECT_EQ(onto->num_triples(), 1u);
  const TermId elvis = *pool_.Find("ex:elvis", TermKind::kIri);
  EXPECT_EQ(onto->ClassesOf(elvis).size(), 2u);
}

TEST_F(OntologyTest, LoadFromNTriples) {
  const std::string doc =
      "<ex:elvis> <rdf:type> <ex:singer> .\n"
      "<ex:singer> <rdfs:subClassOf> <ex:person> .\n"
      "<ex:elvis> <ex:bornIn> <ex:tupelo> .\n"
      "<ex:elvis> <rdfs:label> \"Elvis Presley\" .\n";
  auto onto = LoadOntologyFromNTriples(&pool_, "test", doc);
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  EXPECT_EQ(onto->name(), "test");
  EXPECT_EQ(onto->num_triples(), 2u);  // bornIn + label
  EXPECT_EQ(onto->classes().size(), 2u);
}

TEST_F(OntologyTest, LoadPropagatesParserError) {
  auto onto = LoadOntologyFromNTriples(&pool_, "bad", "not a triple\n");
  EXPECT_FALSE(onto.ok());
}

TEST_F(OntologyTest, ClassWithFactsStaysClass) {
  OntologyBuilder b(&pool_, "test");
  b.AddType("ex:elvis", "ex:singer");
  b.AddLiteralFact("ex:singer", "ex:label", "Singer");  // fact about a class
  auto onto = b.Build();
  ASSERT_TRUE(onto.ok());
  const TermId singer = *pool_.Find("ex:singer", TermKind::kIri);
  EXPECT_TRUE(onto->IsClassTerm(singer));
  EXPECT_FALSE(onto->IsInstanceTerm(singer));
}

TEST_F(OntologyTest, DeduplicatesFacts) {
  OntologyBuilder b(&pool_, "test");
  b.AddFact("ex:a", "ex:p", "ex:b");
  b.AddFact("ex:a", "ex:p", "ex:b");
  auto onto = b.Build();
  ASSERT_TRUE(onto.ok());
  EXPECT_EQ(onto->num_triples(), 1u);
}

}  // namespace
}  // namespace paris::ontology
