// Table 2: sizes of the large ontologies (#instances, #classes,
// #relations). The paper reports YAGO 2.8M/292k/67, DBpedia 2.4M/318/1109,
// IMDb 4.8M/15/24; our synthetic stand-ins are laptop-scale but preserve
// the *relative* shape (YAGO: many classes / few relations; DBpedia: few
// classes / more relations; IMDb: tiny schema).
#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void AddRow(eval::TablePrinter* table, const std::string& name,
            const ontology::Ontology& onto) {
  table->AddRow({name, std::to_string(onto.instances().size()),
                 std::to_string(onto.classes().size()),
                 std::to_string(onto.num_relations()),
                 std::to_string(onto.num_triples())});
}

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader("Table 2 — dataset statistics",
              "Suchanek et al., PVLDB 5(3), 2011, Table 2");
  std::printf(
      "Paper reference: yago 2,795,289/292,206/67; DBpedia 2,365,777/318/"
      "1,109; IMDb 4,842,323/15/24\n");

  eval::TablePrinter table(
      {"Ontology", "#Instances", "#Classes", "#Relations", "#Triples"});

  auto yd = synth::MakeYagoDbpediaPair();
  if (yd.ok()) {
    AddRow(&table, "yago (synthetic)", *yd->left);
    AddRow(&table, "DBpedia (synthetic)", *yd->right);
  }
  auto yi = synth::MakeYagoImdbPair();
  if (yi.ok()) {
    AddRow(&table, "yago-movies (synthetic)", *yi->left);
    AddRow(&table, "IMDb (synthetic)", *yi->right);
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
