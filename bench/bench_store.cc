// Benchmarks for the columnar storage engine (src/storage/): store
// construction, FactsAbout / ObjectsOf / Contains lookup throughput, and
// snapshot load vs. RDF parse+build, all on a synthetic world from
// src/synth/. A global operator-new override counts heap allocations so the
// lookup benchmarks can report allocs_per_op — expected to be exactly 0 on
// the packed engine (the seed layout allocated a vector per ObjectsOf call).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "paris/ontology/export.h"
#include "paris/ontology/ontology.h"
#include "paris/ontology/snapshot.h"
#include "paris/rdf/store.h"
#include "paris/synth/profiles.h"

static std::atomic<uint64_t> g_heap_allocations{0};

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace paris {
namespace {

struct RawTriple {
  rdf::TermId subject;
  rdf::RelId rel;
  rdf::TermId object;
};

// One shared synthetic dataset (built once; profile generation dominates
// otherwise). The YAGO↔DBpedia profile has the most realistic degree skew.
const synth::OntologyPair& Dataset() {
  static synth::OntologyPair* pair = [] {
    synth::ProfileOptions options;
    options.scale = 1.0;
    auto built = synth::MakeYagoDbpediaPair(options);
    if (!built.ok()) std::abort();
    return new synth::OntologyPair(std::move(built).value());
  }();
  return *pair;
}

std::vector<RawTriple> ExtractTriples(const rdf::TripleStore& store) {
  std::vector<RawTriple> out;
  const auto num_relations = static_cast<rdf::RelId>(store.num_relations());
  for (rdf::RelId r = 1; r <= num_relations; ++r) {
    store.ForEachPair(r, 0, [&](rdf::TermId x, rdf::TermId y) {
      out.push_back(RawTriple{x, r, y});
    });
  }
  return out;
}

// (term, rel) probes that actually hit data: one per adjacency slice.
std::vector<std::pair<rdf::TermId, rdf::RelId>> LookupProbes(
    const rdf::TripleStore& store) {
  std::vector<std::pair<rdf::TermId, rdf::RelId>> probes;
  for (rdf::TermId t : store.terms()) {
    const auto facts = store.FactsAbout(t);
    if (!facts.empty()) {
      probes.emplace_back(t, facts[facts.size() / 2].rel);
    }
  }
  return probes;
}

void ReportAllocs(benchmark::State& state, uint64_t allocs) {
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}

void BM_StoreBuild(benchmark::State& state) {
  const synth::OntologyPair& pair = Dataset();
  const rdf::TripleStore& source = pair.left->store();
  const std::vector<RawTriple> triples = ExtractTriples(source);
  for (auto _ : state) {
    rdf::TripleStore store(&pair.left->pool());
    const auto num_relations =
        static_cast<rdf::RelId>(source.num_relations());
    for (rdf::RelId r = 1; r <= num_relations; ++r) {
      store.InternRelation(source.relation_name(r));
    }
    for (const RawTriple& t : triples) {
      store.Add(t.subject, t.rel, t.object);
    }
    store.Finalize();
    benchmark::DoNotOptimize(store.num_triples());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(triples.size()));
}
BENCHMARK(BM_StoreBuild)->Unit(benchmark::kMillisecond);

void BM_StoreFactsAbout(benchmark::State& state) {
  const rdf::TripleStore& store = Dataset().left->store();
  const std::vector<rdf::TermId>& terms = store.terms();
  size_t i = 0;
  const uint64_t before = g_heap_allocations.load();
  for (auto _ : state) {
    const auto facts = store.FactsAbout(terms[i % terms.size()]);
    benchmark::DoNotOptimize(facts.data());
    benchmark::DoNotOptimize(facts.size());
    ++i;
  }
  ReportAllocs(state, g_heap_allocations.load() - before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreFactsAbout);

void BM_StoreObjectsOf(benchmark::State& state) {
  const rdf::TripleStore& store = Dataset().left->store();
  const auto probes = LookupProbes(store);
  size_t i = 0;
  const uint64_t before = g_heap_allocations.load();
  for (auto _ : state) {
    const auto& [term, rel] = probes[i % probes.size()];
    const auto objects = store.ObjectsOf(term, rel);
    benchmark::DoNotOptimize(objects.data());
    benchmark::DoNotOptimize(objects.size());
    ++i;
  }
  ReportAllocs(state, g_heap_allocations.load() - before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreObjectsOf);

void BM_StoreContains(benchmark::State& state) {
  const rdf::TripleStore& store = Dataset().left->store();
  const auto probes = LookupProbes(store);
  size_t i = 0;
  const uint64_t before = g_heap_allocations.load();
  for (auto _ : state) {
    const auto& [term, rel] = probes[i % probes.size()];
    const auto objects = store.ObjectsOf(term, rel);
    benchmark::DoNotOptimize(
        store.Contains(term, rel, objects.empty() ? term : objects[0]));
    ++i;
  }
  ReportAllocs(state, g_heap_allocations.load() - before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreContains);

// Loading both ontologies from RDF text (the seed's only option) ...
void BM_PairParseBuild(benchmark::State& state) {
  const synth::OntologyPair& pair = Dataset();
  std::ostringstream left_nt, right_nt;
  ontology::ExportToNTriples(*pair.left, left_nt);
  ontology::ExportToNTriples(*pair.right, right_nt);
  const std::string left_doc = left_nt.str();
  const std::string right_doc = right_nt.str();
  for (auto _ : state) {
    rdf::TermPool pool;
    auto left = ontology::LoadOntologyFromNTriples(&pool, "left", left_doc);
    auto right = ontology::LoadOntologyFromNTriples(&pool, "right", right_doc);
    if (!left.ok() || !right.ok()) {
      state.SkipWithError("parse failed");
      return;
    }
    benchmark::DoNotOptimize(left->num_triples());
    benchmark::DoNotOptimize(right->num_triples());
  }
}
BENCHMARK(BM_PairParseBuild)->Unit(benchmark::kMillisecond);

// ... versus restoring the packed indexes from a binary snapshot.
void BM_PairSnapshotLoad(benchmark::State& state) {
  const synth::OntologyPair& pair = Dataset();
  const std::string path = "/tmp/paris_bench_store.snap";
  auto status =
      ontology::SaveAlignmentSnapshot(path, *pair.left, *pair.right);
  if (!status.ok()) {
    state.SkipWithError("snapshot save failed");
    return;
  }
  for (auto _ : state) {
    rdf::TermPool pool;
    auto loaded = ontology::LoadAlignmentSnapshot(path, &pool);
    if (!loaded.ok()) {
      state.SkipWithError("snapshot load failed");
      return;
    }
    benchmark::DoNotOptimize(loaded->left.num_triples());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_PairSnapshotLoad)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace paris
