// Table 3: YAGO ↔ DBpedia over iterations 1-4 — change to previous
// iteration, wall time, instance precision/recall/F, and (at the final
// iteration) class and relation alignment in both directions. Also prints
// the §6.4 "entities with more than 10 facts" breakdown.
#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader("Table 3 — matching yago and DBpedia over iterations 1-4",
              "Suchanek et al., PVLDB 5(3), 2011, Table 3");
  std::printf(
      "Paper reference (instances): 86/69/77 → 89/73/80 → 90/73/81 → "
      "90/73/81; classes at iter 4: 137k@94%% / 149@84%%; relations: "
      "30@93%%/134@90%% → 33@100%%/151@92%%\n");

  auto pair = synth::MakeYagoDbpediaPair();
  if (!pair.ok()) {
    std::printf("profile failed: %s\n", pair.status().ToString().c_str());
    return;
  }
  const core::AlignmentResult result =
      RunParis(*pair, 4, /*force_all_iterations=*/true);

  eval::TablePrinter table({"Iter", "Change", "Time", "Prec", "Rec", "F",
                            "Rel y⊆dbp (num@prec)", "Rel dbp⊆y (num@prec)"});
  for (const auto& it : result.iterations) {
    const auto pr = eval::EvaluateInstanceMap(it.max_left, pair->gold);
    const auto rel_lr =
        eval::EvaluateRelations(it.relations, pair->gold, true, 0.3);
    const auto rel_rl =
        eval::EvaluateRelations(it.relations, pair->gold, false, 0.3);
    table.AddRow(
        {std::to_string(it.index),
         it.index == 1 ? "-" : eval::TablePrinter::Pct1(it.change_fraction),
         eval::TablePrinter::Fixed(it.seconds_instances + it.seconds_relations,
                                   2) +
             "s",
         eval::TablePrinter::Pct(pr.precision()),
         eval::TablePrinter::Pct(pr.recall()),
         eval::TablePrinter::Pct(pr.f1()),
         std::to_string(rel_lr.assigned) + "@" +
             eval::TablePrinter::Pct(rel_lr.precision()),
         std::to_string(rel_rl.assigned) + "@" +
             eval::TablePrinter::Pct(rel_rl.precision())});
  }
  std::printf("%s", table.ToString().c_str());

  // Classes at the final iteration (threshold 0.4 as in the paper).
  const auto cls_lr =
      eval::EvaluateClassEntries(result.classes, pair->gold, true, 0.4);
  const auto cls_rl =
      eval::EvaluateClassEntries(result.classes, pair->gold, false, 0.4);
  std::printf(
      "\nClasses (threshold 0.4): yago⊆DBp %zu assignments @ %s precision; "
      "DBp⊆yago %zu @ %s (class pass %.2fs)\n",
      cls_lr.entries, eval::TablePrinter::Pct(cls_lr.precision()).c_str(),
      cls_rl.entries, eval::TablePrinter::Pct(cls_rl.precision()).c_str(),
      result.seconds_classes);

  // §6.4: "If only entities with more than 10 facts in DBpedia are
  // considered, precision and recall jump to 97 % and 85 %."
  const auto& right = *pair->right;
  const auto& gold = pair->gold;
  const auto& equiv = result.instances;
  // Filter on the left entity's gold counterpart being fact-rich; for
  // predicted-but-not-gold entities use the prediction's fact count.
  auto rich = [&](rdf::TermId left) {
    auto it = gold.left_to_right().find(left);
    rdf::TermId right_term;
    if (it != gold.left_to_right().end()) {
      right_term = it->second;
    } else {
      const auto* best = equiv.MaxOfLeft(left);
      if (best == nullptr) return false;
      right_term = best->other;
    }
    return right.FactsAbout(right_term).size() > 10;
  };
  const auto rich_pr = eval::EvaluateInstancesFiltered(equiv, gold, rich);
  const auto all_pr = eval::EvaluateInstances(equiv, gold);
  std::printf(
      "\nAll entities:             prec %s rec %s F %s\n"
      "Entities with >10 facts:  prec %s rec %s F %s   (paper: 97%%/85%%)\n",
      eval::TablePrinter::Pct(all_pr.precision()).c_str(),
      eval::TablePrinter::Pct(all_pr.recall()).c_str(),
      eval::TablePrinter::Pct(all_pr.f1()).c_str(),
      eval::TablePrinter::Pct(rich_pr.precision()).c_str(),
      eval::TablePrinter::Pct(rich_pr.recall()).c_str(),
      eval::TablePrinter::Pct(rich_pr.f1()).c_str());
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
