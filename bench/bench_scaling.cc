// Scalability: wall time and quality of the full PARIS run as the dataset
// grows. §5.2 derives the per-iteration cost O(n·m²·e) (n instances, m
// statements per instance, e equivalents per instance): time should grow
// near-linearly in the number of statements. Also measures the effect of
// the relation-name prior extension on convergence speed.
#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader("Scaling — runtime vs dataset size (yago-dbpedia profile)",
              "Suchanek et al., PVLDB 5(3), 2011, §5.2 complexity analysis");

  eval::TablePrinter table({"Scale", "#Triples(L+R)", "AlignSec",
                            "Sec/MTriple", "Iters", "Prec", "Rec", "F"});
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    synth::ProfileOptions options;
    options.scale = scale;
    auto pair = synth::MakeYagoDbpediaPair(options);
    if (!pair.ok()) continue;
    const size_t triples =
        pair->left->num_triples() + pair->right->num_triples();
    const core::AlignmentResult result = RunParis(*pair, 6);
    const auto pr = eval::EvaluateInstances(result.instances, pair->gold);
    table.AddRow({eval::TablePrinter::Fixed(scale, 2),
                  std::to_string(triples),
                  eval::TablePrinter::Fixed(result.seconds_total, 2),
                  eval::TablePrinter::Fixed(
                      result.seconds_total / (static_cast<double>(triples) /
                                              1e6),
                      2),
                  std::to_string(result.iterations.size()),
                  eval::TablePrinter::Pct(pr.precision()),
                  eval::TablePrinter::Pct(pr.recall()),
                  eval::TablePrinter::Pct(pr.f1())});
  }
  std::printf("%s", table.ToString().c_str());

  // Relation-name prior (§7 extension): same converged quality, fewer or
  // equal iterations to convergence.
  std::printf(
      "\nRelation-name prior (extension; §7 'name heuristics could be "
      "factored into the model'):\n");
  eval::TablePrinter prior_table(
      {"Bootstrap", "ConvergedAt", "Prec", "Rec", "F"});
  auto pair = synth::MakeOaeiPersonPair();
  if (pair.ok()) {
    for (bool prior : {false, true}) {
      core::AlignmentConfig config;
      config.use_relation_name_prior = prior;
      const auto result = RunParis(*pair, 10, false, config);
      const auto pr = eval::EvaluateInstances(result.instances, pair->gold);
      prior_table.AddRow({prior ? "theta + name similarity" : "uniform theta",
                          std::to_string(result.converged_at),
                          eval::TablePrinter::Pct(pr.precision()),
                          eval::TablePrinter::Pct(pr.recall()),
                          eval::TablePrinter::Pct(pr.f1())});
    }
  }
  std::printf("%s", prior_table.ToString().c_str());
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
