// Parallel-phase benchmark: machine-readable JSON wall-times for every phase
// of a paris_align run — parse (store ingest), index finalize, the
// relation-score pass, the instance pass, the class pass (each additionally
// split into its sharded parallel section vs its serial Prepare+Merge
// bookends), snapshot loading (streamed vs mmap), and a cold run vs a run
// resumed from a result snapshot — at 1, 2, and 8 worker threads, plus the
// observability overhead (the same run with tracing + metrics on vs off,
// reported as a fraction) and the periodic-background-checkpointing
// overhead (run_checkpointed vs plain, reported the same way; the CI gate
// caps checkpoint_overhead_fraction at 5%). Gives future PRs a perf
// trajectory; the
// committed baselines live in BENCH_parallel.json (one entry per
// hardware_threads value), which the CI bench job compares fresh runs
// against (matching hardware_threads only; see
// scripts/check_bench_regression.py --add-baseline).
//
//   bench_parallel [OUTPUT.json]    (default: stdout)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <system_error>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "paris/core/aligner.h"
#include "paris/core/result_snapshot.h"
#include "paris/obs/metrics.h"
#include "paris/obs/trace.h"
#include "paris/ontology/snapshot.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/store.h"
#include "paris/rdf/term.h"
#include "paris/synth/profiles.h"
#include "paris/util/logging.h"
#include "paris/util/thread_pool.h"

namespace paris::bench {
namespace {

struct PhaseTime {
  std::string phase;
  size_t threads;
  double seconds;
};

// Deterministic 64-bit LCG so the synthetic store is identical across runs.
uint64_t Next(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 17;
}

// A store-ingest + finalize workload with skewed relation sizes and skewed
// term degrees (a few hub terms), the shape that punishes static chunking.
struct StoreWorkload {
  rdf::TermPool pool;
  std::unique_ptr<rdf::TripleStore> store;
  size_t num_triples = 0;
  double parse_seconds = 0;

  void Ingest(size_t triples, size_t terms, size_t relations) {
    // A null-recorder span is the bench's stopwatch — the same steady clock
    // every instrumented phase reports through.
    obs::Span timer(nullptr, 0, "bench", "parse");
    store = std::make_unique<rdf::TripleStore>(&pool);
    std::vector<rdf::TermId> term_ids;
    term_ids.reserve(terms);
    for (size_t i = 0; i < terms; ++i) {
      term_ids.push_back(pool.InternIri("e:" + std::to_string(i)));
    }
    std::vector<rdf::RelId> rel_ids;
    for (size_t r = 0; r < relations; ++r) {
      rel_ids.push_back(
          store->InternRelation(pool.InternIri("r:" + std::to_string(r))));
    }
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < triples; ++i) {
      // Squaring the draw skews both the subject and the relation choice,
      // concentrating facts on hub terms / hub relations.
      const uint64_t s = Next(&rng) % (terms * terms);
      const uint64_t r = Next(&rng) % (relations * relations);
      const uint64_t o = Next(&rng) % terms;
      store->Add(term_ids[(s * s / (terms * terms)) % terms],
                 rel_ids[(r * r / (relations * relations)) % relations],
                 term_ids[o]);
    }
    num_triples = triples;
    parse_seconds = timer.End();
  }
};

void Emit(std::FILE* out, const std::vector<PhaseTime>& phases,
          size_t triples_store, size_t triples_pair, size_t hardware) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_parallel\",\n");
  std::fprintf(out, "  \"hardware_threads\": %zu,\n", hardware);
  std::fprintf(out,
               "  \"workload\": {\"store_triples\": %zu, "
               "\"alignment_pair_triples\": %zu},\n",
               triples_store, triples_pair);
  std::fprintf(out, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    std::fprintf(out,
                 "    {\"phase\": \"%s\", \"threads\": %zu, "
                 "\"seconds\": %.6f}%s\n",
                 phases[i].phase.c_str(), phases[i].threads,
                 phases[i].seconds, i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  util::SetLogLevel(util::LogLevel::kWarning);
  const std::vector<size_t> thread_counts = {1, 2, 8};
  std::vector<PhaseTime> phases;

  // --- Store ingest + finalize ---------------------------------------------
  constexpr size_t kTriples = 400000;
  constexpr size_t kTerms = 60000;
  constexpr size_t kRelations = 24;
  size_t store_triples = 0;
  for (size_t threads : thread_counts) {
    StoreWorkload workload;
    workload.Ingest(kTriples, kTerms, kRelations);
    if (threads == thread_counts.front()) {
      phases.push_back({"parse", 1, workload.parse_seconds});
    }
    util::ThreadPool pool(threads);
    obs::Span timer(nullptr, 0, "bench", "finalize");
    workload.store->Finalize(&pool);
    phases.push_back({"finalize", threads, timer.End()});
    store_triples = workload.store->num_triples();
  }

  // --- Alignment passes ----------------------------------------------------
  synth::ProfileOptions options;
  options.scale = 2.0;
  auto pair = synth::MakeYagoDbpediaPair(options);
  if (!pair.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const size_t pair_triples =
      pair->left->num_triples() + pair->right->num_triples();
  for (size_t threads : thread_counts) {
    core::AlignmentConfig config;
    config.num_threads = threads;
    config.max_iterations = 3;
    config.convergence_threshold = 0.0;  // fixed work across thread counts
    config.record_history = false;
    core::Aligner aligner(*pair->left, *pair->right, config);
    const core::AlignmentResult result = aligner.Run();
    double instance_seconds = 0;
    double relation_seconds = 0;
    for (const auto& record : result.iterations) {
      instance_seconds += record.seconds_instances;
      relation_seconds += record.seconds_relations;
    }
    phases.push_back({"instance_pass", threads, instance_seconds});
    phases.push_back({"relation_pass", threads, relation_seconds});
    phases.push_back({"class_pass", threads, result.seconds_classes});
    // Pipeline phase split per pass: the sharded (parallel) section vs the
    // serial Prepare+Merge bookends — the pipeline's Amdahl fraction.
    for (const auto& timings : result.pass_timings) {
      phases.push_back(
          {timings.pass + "_pass_shards", threads, timings.shard_seconds});
      phases.push_back({timings.pass + "_pass_serial", threads,
                        timings.prepare_seconds + timings.merge_seconds});
    }
  }

  // --- Cold run vs resume from a result snapshot ---------------------------
  {
    core::AlignmentConfig config;
    config.num_threads = 1;
    config.max_iterations = 3;
    config.convergence_threshold = 0.0;
    config.record_history = false;

    obs::Span cold_timer(nullptr, 0, "bench", "run_cold");
    core::Aligner cold(*pair->left, *pair->right, config);
    const core::AlignmentResult cold_result = cold.Run();
    phases.push_back({"run_cold", 1, cold_timer.End()});

    // Checkpoint after 2 of the 3 iterations, then resume: load + the last
    // iteration + the class pass.
    core::AlignmentConfig partial = config;
    partial.max_iterations = 2;
    const core::AlignmentResult checkpoint =
        core::Aligner(*pair->left, *pair->right, partial).Run();
    const std::string result_path = "/tmp/bench_parallel.result";
    auto saved = core::SaveAlignmentResult(result_path, checkpoint,
                                           *pair->left, *pair->right,
                                           partial, "identity");
    if (!saved.ok()) {
      std::fprintf(stderr, "result snapshot save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    obs::Span resume_timer(nullptr, 0, "bench", "run_resume");
    auto loaded = core::LoadAlignmentResult(result_path, *pair->left,
                                            *pair->right, config, "identity");
    if (!loaded.ok()) {
      std::fprintf(stderr, "result snapshot load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    core::Aligner warm(*pair->left, *pair->right, config);
    const core::AlignmentResult warm_result =
        warm.Resume(std::move(loaded).value());
    phases.push_back({"run_resume", 1, resume_timer.End()});
    std::remove(result_path.c_str());
    if (warm_result.instances.num_left_aligned() !=
        cold_result.instances.num_left_aligned()) {
      std::fprintf(stderr, "resume diverged from cold run\n");
      return 1;
    }
  }

  // --- Snapshot load (not threaded: stream copies, mmap maps) --------------
  const std::string snap_path = "/tmp/bench_parallel.snap";
  auto saved =
      ontology::SaveAlignmentSnapshot(snap_path, *pair->left, *pair->right);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  for (const auto& [name, mode] :
       {std::pair{"snapshot_load_stream", ontology::SnapshotLoadMode::kStream},
        std::pair{"snapshot_load_mmap", ontology::SnapshotLoadMode::kMmap}}) {
    obs::Span timer(nullptr, 0, "bench", name);
    rdf::TermPool fresh;
    auto loaded = ontology::LoadAlignmentSnapshot(snap_path, &fresh, mode);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   loaded.status().ToString().c_str());
      return 1;
    }
    phases.push_back({name, 1, timer.End()});
  }
  std::remove(snap_path.c_str());

  // --- Observability overhead ----------------------------------------------
  // The same fixed-work run with tracing + metrics off vs on, interleaved
  // to share thermal/cache conditions, best-of-3 each. The acceptance bar
  // for the obs subsystem is under 1% overhead; "obs_overhead_fraction"
  // reports the measured fraction (as the phase's "seconds" value).
  {
    core::AlignmentConfig config;
    config.num_threads = 1;
    config.max_iterations = 3;
    config.convergence_threshold = 0.0;
    config.record_history = false;
    double best_off = 0, best_on = 0;
    size_t aligned_off = 0, aligned_on = 0;
    for (int rep = 0; rep < 3; ++rep) {
      {
        obs::Span timer(nullptr, 0, "bench", "run_obs_off");
        core::Aligner aligner(*pair->left, *pair->right, config);
        aligned_off = aligner.Run().instances.num_left_aligned();
        const double seconds = timer.End();
        best_off = rep == 0 ? seconds : std::min(best_off, seconds);
      }
      {
        obs::TraceRecorder trace(config.num_threads);
        obs::MetricsRegistry metrics(config.num_threads);
        obs::Span timer(nullptr, 0, "bench", "run_obs_on");
        core::Aligner aligner(*pair->left, *pair->right, config);
        aligner.set_observability({&trace, &metrics});
        aligned_on = aligner.Run().instances.num_left_aligned();
        const double seconds = timer.End();
        best_on = rep == 0 ? seconds : std::min(best_on, seconds);
      }
    }
    if (aligned_on != aligned_off) {
      std::fprintf(stderr, "observability changed the alignment result\n");
      return 1;
    }
    phases.push_back({"run_obs_off", 1, best_off});
    phases.push_back({"run_obs_on", 1, best_on});
    phases.push_back({"obs_overhead_fraction", 1,
                      std::max(0.0, (best_on - best_off) / best_off)});
  }

  // --- Checkpoint overhead -------------------------------------------------
  // The same fixed-work run with periodic background checkpointing off vs
  // on, interleaved best-of-3 like the obs measurement. Serialization
  // happens on the gate thread but the fsync'd writes run on a background
  // thread, so the bar is under 5% overhead; the CI regression gate caps
  // "checkpoint_overhead_fraction" at that value. The aggressive interval
  // leans on the writer's self-limiting cadence (captures spaced >= 100x
  // the measured serialization cost) — exactly the mechanism that keeps
  // overhead bounded in production, so that is what gets measured.
  {
    core::AlignmentConfig config;
    config.num_threads = 1;
    config.max_iterations = 3;
    config.convergence_threshold = 0.0;
    config.record_history = false;
    core::AlignmentConfig ckpt_config = config;
    ckpt_config.checkpoint_dir = "/tmp/bench_parallel_ckpt";
    ckpt_config.checkpoint_interval = 0.05;
    double best_off = 0, best_on = 0;
    size_t aligned_off = 0, aligned_on = 0;
    for (int rep = 0; rep < 3; ++rep) {
      {
        obs::Span timer(nullptr, 0, "bench", "run_plain");
        core::Aligner aligner(*pair->left, *pair->right, config);
        aligned_off = aligner.Run().instances.num_left_aligned();
        const double seconds = timer.End();
        best_off = rep == 0 ? seconds : std::min(best_off, seconds);
      }
      {
        obs::Span timer(nullptr, 0, "bench", "run_checkpointed");
        core::Aligner aligner(*pair->left, *pair->right, ckpt_config);
        aligned_on = aligner.Run().instances.num_left_aligned();
        const double seconds = timer.End();
        best_on = rep == 0 ? seconds : std::min(best_on, seconds);
      }
    }
    std::error_code ec;
    std::filesystem::remove_all(ckpt_config.checkpoint_dir, ec);
    if (aligned_on != aligned_off) {
      std::fprintf(stderr, "checkpointing changed the alignment result\n");
      return 1;
    }
    phases.push_back({"run_checkpointed", 1, best_on});
    phases.push_back({"checkpoint_overhead_fraction", 1,
                      std::max(0.0, (best_on - best_off) / best_off)});
  }

  // --- Semi-naive converged-iteration cost ---------------------------------
  // The incremental fixpoint's payoff: once the restaurant pair locks into
  // its attractor (~iteration 26 at this scale), the semi-naive worklist is
  // empty and an iteration is just the serial bookends plus state diffs.
  // "converged_iteration" is the cheapest semi-naive iteration of a run
  // through the lock; "exhaustive_iteration" the cheapest iteration of the
  // same run with reuse disabled. The acceptance bar is a 5x gap, gated as
  // "converged_iteration_fraction" (converged / exhaustive, capped at 0.2).
  // The scale matters: per-entity scoring grows superlinearly with the
  // neighborhood/candidate sizes while the drained iteration's serial floor
  // (Prepare/Merge + state diffs) stays linear, so the gap widens with the
  // workload — scale 16 measures the regime the optimization targets.
  synth::ProfileOptions rest_options;
  rest_options.scale = 16.0;
  auto rest = synth::MakeOaeiRestaurantPair(rest_options);
  if (!rest.ok()) {
    std::fprintf(stderr, "restaurant workload generation failed: %s\n",
                 rest.status().ToString().c_str());
    return 1;
  }
  {
    core::AlignmentConfig config;
    config.num_threads = 1;
    config.max_iterations = 40;
    config.convergence_threshold = 0.0;
    config.record_history = false;

    core::Aligner semi(*rest->left, *rest->right, config);
    const core::AlignmentResult semi_result = semi.Run();

    core::AlignmentConfig exh_config = config;
    exh_config.semi_naive = false;
    core::Aligner exhaustive(*rest->left, *rest->right, exh_config);
    const core::AlignmentResult exh_result = exhaustive.Run();

    if (semi_result.instances.num_left_aligned() !=
        exh_result.instances.num_left_aligned()) {
      std::fprintf(stderr, "semi-naive diverged from exhaustive\n");
      return 1;
    }
    auto cheapest = [](const core::AlignmentResult& result) {
      double best = -1;
      for (const auto& record : result.iterations) {
        const double seconds =
            record.seconds_instances + record.seconds_relations;
        if (best < 0 || seconds < best) best = seconds;
      }
      return best;
    };
    const double converged = cheapest(semi_result);
    const double full = cheapest(exh_result);
    phases.push_back({"converged_iteration", 1, converged});
    phases.push_back({"exhaustive_iteration", 1, full});
    phases.push_back({"converged_iteration_fraction", 1,
                      full > 0 ? converged / full : 0.0});
  }

  // --- Delta ingest + incremental re-alignment -----------------------------
  // A ~1% delta (one new literal fact on every 100th left instance) merged
  // into the restaurant pair after a *converged* base run, then the
  // alignment recomputed two ways over identical post-delta ontologies,
  // both to the default convergence threshold: cold ("delta_run_cold", the
  // full transient from scratch) vs warm-started from the pre-delta result
  // with only the delta's cone recomputed ("delta_realign", which also
  // includes the merge itself — typically one cheap iteration). The base
  // must be converged: re-aligning from a mid-transient seed re-dirties
  // everything the seed was still about to move and saves nothing. The
  // acceptance bar is a 3x gap, gated as "delta_realign_fraction"
  // (realign / cold, capped at 1/3). Last section: it mutates the pair.
  {
    core::AlignmentConfig config;
    config.num_threads = 1;
    config.max_iterations = 40;
    config.record_history = false;

    core::Aligner base(*rest->left, *rest->right, config);
    core::AlignmentResult base_result = base.Run();

    const auto& instances = rest->left->instances();
    const std::string relation_name = std::string(
        rest->left->pool().lexical(rest->left->store().relation_name(0)));
    std::vector<rdf::ParsedTriple> delta;
    for (size_t i = 0; i < instances.size(); i += 100) {
      rdf::ParsedTriple t;
      t.subject = std::string(rest->left->pool().lexical(instances[i]));
      t.predicate = relation_name;
      t.object = "bench delta value " + std::to_string(i);
      t.object_is_literal = true;
      delta.push_back(t);
    }

    obs::Span realign_timer(nullptr, 0, "bench", "delta_realign");
    auto merged = rest->left->ApplyDelta(delta);
    if (!merged.ok()) {
      std::fprintf(stderr, "delta merge failed: %s\n",
                   merged.status().ToString().c_str());
      return 1;
    }
    core::Aligner incremental(*rest->left, *rest->right, config);
    core::RealignSeed seed;
    seed.instances = std::move(base_result.instances);
    seed.relations = std::move(base_result.relations);
    seed.left_touched_terms = merged->touched_terms;
    const core::AlignmentResult realigned =
        incremental.Realign(std::move(seed));
    const double realign_seconds = realign_timer.End();

    obs::Span cold_timer(nullptr, 0, "bench", "delta_run_cold");
    core::Aligner cold(*rest->left, *rest->right, config);
    const core::AlignmentResult cold_result = cold.Run();
    const double cold_seconds = cold_timer.End();

    // Realign lands on a fixpoint of the post-delta pair by a different
    // trajectory than a cold run; the maximal assignments agree up to
    // borderline ties (the tests pin this down pair by pair).
    const double aligned_gap =
        double(realigned.instances.num_left_aligned()) -
        double(cold_result.instances.num_left_aligned());
    if (aligned_gap > 0.02 * cold_result.instances.num_left_aligned() ||
        -aligned_gap > 0.02 * cold_result.instances.num_left_aligned()) {
      std::fprintf(stderr, "delta realign diverged from cold run: %zu vs %zu\n",
                   realigned.instances.num_left_aligned(),
                   cold_result.instances.num_left_aligned());
      return 1;
    }
    phases.push_back({"delta_realign", 1, realign_seconds});
    phases.push_back({"delta_run_cold", 1, cold_seconds});
    phases.push_back({"delta_realign_fraction", 1,
                      cold_seconds > 0 ? realign_seconds / cold_seconds : 0.0});
  }

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  Emit(out, phases, store_triples, pair_triples,
       std::thread::hardware_concurrency());
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace paris::bench

int main(int argc, char** argv) { return paris::bench::Main(argc, argv); }
