// Appendix A ablation: end-to-end alignment quality under the four global
// functionality definitions. The paper argues for the harmonic mean
// (alternatives 4/5); alternative 2 ("argument ratio") is shown to be
// treacherous and alternative 1 volatile to high-degree sources.
#include "bench/bench_common.h"

namespace paris::bench {
namespace {

const char* VariantName(ontology::FunctionalityVariant v) {
  switch (v) {
    case ontology::FunctionalityVariant::kHarmonicMean:
      return "harmonic mean (paper)";
    case ontology::FunctionalityVariant::kStatementPairRatio:
      return "statement-pair ratio";
    case ontology::FunctionalityVariant::kArgumentRatio:
      return "argument ratio";
    case ontology::FunctionalityVariant::kArithmeticMean:
      return "arithmetic mean";
  }
  return "?";
}

void RunDataset(const std::string& name, const synth::OntologyPair& pair) {
  std::printf("\nDataset: %s\n", name.c_str());
  eval::TablePrinter table(
      {"Functionality variant", "Prec", "Rec", "F", "Matches"});
  for (auto variant : {ontology::FunctionalityVariant::kHarmonicMean,
                       ontology::FunctionalityVariant::kStatementPairRatio,
                       ontology::FunctionalityVariant::kArgumentRatio,
                       ontology::FunctionalityVariant::kArithmeticMean}) {
    core::AlignmentConfig config;
    config.functionality_variant = variant;
    const auto result = RunParis(pair, 6, false, config);
    const auto pr = eval::EvaluateInstances(result.instances, pair.gold);
    std::vector<std::string> row{VariantName(variant)};
    AppendPrf(&row, pr);
    row.push_back(std::to_string(pr.predicted));
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
}

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader("Appendix A ablation — global functionality definitions",
              "Suchanek et al., PVLDB 5(3), 2011, Appendix A");

  auto restaurant = synth::MakeOaeiRestaurantPair();
  if (restaurant.ok()) RunDataset("restaurant", *restaurant);

  synth::ProfileOptions opts;
  opts.scale = 0.4;
  auto movies = synth::MakeYagoImdbPair(opts);
  if (movies.ok()) RunDataset("yago-imdb (scale 0.4)", *movies);
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
