// Triple-pattern query engine benchmark: per-mask pattern-scan latency
// (p50/p99 + total) against the hexastore orderings, and a head-to-head of
// the fixpoint's per-(term, relation) probe — the old binary search over
// the full adjacency span (core::FactsWithRelation) vs the new per-term
// relation directory (TripleStore::FactsCursor) — on a deliberately
// high-degree ontology where the directory's O(log distinct-relations)
// advantage is visible.
//
// Emits the same JSON shape as bench_parallel / bench_service
// (hardware_threads + phases), so scripts/check_bench_regression.py gates
// it against BENCH_query.json with no changes. Two extra signals ride
// along: `probe_directory_vs_binary_fraction` (directory time / binary-
// search time, best-of-N; the script caps it at 1.0 so the new path can
// never regress past the old one on any machine shape), and per-pattern
// percentiles as documentation below the gate's noise floor.
//
//   bench_query [OUTPUT.json]    (default: stdout)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "paris/core/direction.h"
#include "paris/ontology/ontology.h"
#include "paris/rdf/store.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"
#include "paris/storage/tri_index.h"
#include "paris/util/logging.h"
#include "paris/util/random.h"

namespace paris::bench {
namespace {

using storage::TriplePattern;

struct PhaseTime {
  std::string phase;
  size_t threads;
  double seconds;
};

void Emit(std::FILE* out, const std::vector<PhaseTime>& phases,
          size_t hardware, size_t entities, size_t queries) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_query\",\n");
  std::fprintf(out, "  \"hardware_threads\": %zu,\n", hardware);
  std::fprintf(out,
               "  \"workload\": {\"entities\": %zu, "
               "\"queries_per_phase\": %zu},\n",
               entities, queries);
  std::fprintf(out, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    std::fprintf(out,
                 "    {\"phase\": \"%s\", \"threads\": %zu, "
                 "\"seconds\": %.6f}%s\n",
                 phases[i].phase.c_str(), phases[i].threads,
                 phases[i].seconds, i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

double Percentile(std::vector<double>& sorted_seconds, double p) {
  if (sorted_seconds.empty()) return 0.0;
  const size_t index = std::min(
      sorted_seconds.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_seconds.size())));
  return sorted_seconds[index];
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The probe workload the negative-evidence inner product issues: resolve a
// (term, relation) pair to its fact slice. High fan-out entities, few
// distinct relations — the shape the directory exists for.
constexpr size_t kEntities = 4000;
constexpr size_t kRelations = 12;
constexpr size_t kFactsPerEntity = 96;  // degree >> distinct relations
constexpr size_t kQueries = 200000;
constexpr int kProbeRounds = 5;  // best-of-N for the ratio phases

ontology::Ontology BuildDense(rdf::TermPool* pool) {
  ontology::OntologyBuilder b(pool, "left");
  util::Rng rng(0xC0FFEE);
  for (size_t i = 0; i < kEntities; ++i) {
    const std::string e = "d:e" + std::to_string(i);
    for (size_t f = 0; f < kFactsPerEntity; ++f) {
      const auto rel = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kRelations) - 1));
      const auto other = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kEntities) - 1));
      b.AddFact(e, "d:r" + std::to_string(rel), "d:e" + std::to_string(other));
    }
  }
  auto built = b.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(built).value();
}

int Main(int argc, char** argv) {
  util::SetLogLevel(util::LogLevel::kWarning);

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }

  rdf::TermPool pool;
  const ontology::Ontology onto = BuildDense(&pool);
  const rdf::TripleStore& store = onto.store();
  const storage::TriIndex& tri = store.tri();

  // Deterministic query mix drawn from actual statements.
  std::vector<rdf::Triple> seeds;
  seeds.reserve(kQueries);
  {
    const std::vector<rdf::Triple> all = tri.Collect({});
    util::Rng rng(0xBEEF);
    for (size_t i = 0; i < kQueries; ++i) {
      seeds.push_back(
          all[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(all.size()) - 1))]);
    }
  }

  std::vector<PhaseTime> phases;
  const size_t hardware = std::thread::hardware_concurrency();

  // --- Pattern scans, one phase per representative mask -------------------
  // Latencies are per-query; `_total` carries the gated wall time.
  uint64_t sink = 0;
  const auto measure_pattern = [&](const std::string& label,
                                   auto make_pattern) {
    std::vector<double> latencies;
    latencies.reserve(seeds.size());
    const double start = Now();
    for (const rdf::Triple& seed : seeds) {
      const double t0 = Now();
      sink += tri.Count(make_pattern(seed));
      latencies.push_back(Now() - t0);
    }
    const double total = Now() - start;
    std::sort(latencies.begin(), latencies.end());
    phases.push_back({label + "_total", 1, total});
    phases.push_back({label + "_p50", 1, Percentile(latencies, 0.50)});
    phases.push_back({label + "_p99", 1, Percentile(latencies, 0.99)});
  };

  measure_pattern("pattern_spo", [](const rdf::Triple& t) {
    return TriplePattern().BindSubject(t.subject).BindRel(t.rel).BindObject(
        t.object);
  });
  measure_pattern("pattern_sp", [](const rdf::Triple& t) {
    return TriplePattern().BindSubject(t.subject).BindRel(t.rel);
  });
  measure_pattern("pattern_po", [](const rdf::Triple& t) {
    return TriplePattern().BindRel(t.rel).BindObject(t.object);
  });
  measure_pattern("pattern_so", [](const rdf::Triple& t) {
    return TriplePattern().BindSubject(t.subject).BindObject(t.object);
  });

  // --- Probe paths: old binary search vs per-term directory ---------------
  // Both resolve (term, rel) -> fact slice, exactly the negative-evidence
  // inner loop. Best-of-N wall times make the committed ratio stable.
  double best_binary = 0.0;
  double best_directory = 0.0;
  for (int round = 0; round < kProbeRounds; ++round) {
    double start = Now();
    for (const rdf::Triple& seed : seeds) {
      const auto span =
          core::FactsWithRelation(store.FactsAbout(seed.subject), seed.rel);
      sink += span.size();
    }
    const double binary = Now() - start;

    start = Now();
    for (const rdf::Triple& seed : seeds) {
      const auto cursor = store.CursorFor(seed.subject);
      sink += cursor.FactsWith(seed.rel).size();
    }
    const double directory = Now() - start;

    if (round == 0 || binary < best_binary) best_binary = binary;
    if (round == 0 || directory < best_directory) best_directory = directory;
  }
  phases.push_back({"probe_binary_search", 1, best_binary});
  phases.push_back({"probe_directory", 1, best_directory});
  phases.push_back({"probe_directory_vs_binary_fraction", 1,
                    best_binary > 0 ? best_directory / best_binary : 0.0});

  if (sink == 0) std::fprintf(stderr, "suspicious: empty workload\n");
  Emit(out, phases, hardware, kEntities, kQueries);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace paris::bench

int main(int argc, char** argv) { return paris::bench::Main(argc, argv); }
