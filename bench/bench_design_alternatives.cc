// §6.3 "Design Alternatives" on the restaurant dataset:
//   1. θ ∈ {0.001, 0.01, 0.05, 0.1, 0.2} — final scores must not depend
//      on θ (the paper: "the final probability scores are the same").
//   2. Full equality distribution vs maximal-assignment-only — changes
//      results only marginally.
//   3. Negative evidence (Eq. 14) with the identity literal measure makes
//      PARIS give up matches on mismatching phone formats; plugging in the
//      normalized string measure restores precision at some recall cost.
#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader("§6.3 — design alternatives (restaurant dataset)",
              "Suchanek et al., PVLDB 5(3), 2011, Section 6.3");

  auto pair = synth::MakeOaeiRestaurantPair();
  if (!pair.ok()) {
    std::printf("profile failed: %s\n", pair.status().ToString().c_str());
    return;
  }

  // --- Experiment 1: θ sweep -------------------------------------------
  // The paper's claim is that the *sub-relationship scores* come out the
  // same regardless of θ ("A larger θ causes larger probability scores in
  // the first iteration. However, the sub-relationship scores turn out to
  // be the same"). We report both the instance metrics and the maximum
  // deviation of any converged sub-relation score from the θ=0.1 run.
  std::printf("\n[1] theta sweep (paper: results independent of theta)\n");
  const std::vector<double> thetas = {0.001, 0.01, 0.05, 0.1, 0.2};
  std::vector<core::AlignmentResult> runs;
  for (double theta : thetas) {
    core::AlignmentConfig config;
    config.theta = theta;
    runs.push_back(RunParis(*pair, 8, false, config));
  }
  // Reference = the θ=0.1 run; report, per θ, the maximum absolute
  // deviation of any strong (≥0.3) converged sub-relation score.
  const core::RelationScores& reference = runs[3].relations;
  eval::TablePrinter theta_table(
      {"theta", "Prec", "Rec", "F", "Matches", "MaxRelScoreDelta"});
  for (size_t i = 0; i < thetas.size(); ++i) {
    const auto pr = eval::EvaluateInstances(runs[i].instances, pair->gold);
    double max_delta = 0.0;
    for (const auto& e : reference.Entries()) {
      if (e.score < 0.3) continue;
      const double other =
          e.sub_is_left
              ? runs[i].relations.SubLeftRight(e.sub, e.super)
              : runs[i].relations.SubRightLeft(e.sub, e.super);
      max_delta = std::max(max_delta, std::abs(other - e.score));
    }
    std::vector<std::string> row{eval::TablePrinter::Fixed(thetas[i], 3)};
    AppendPrf(&row, pr);
    row.push_back(std::to_string(pr.predicted));
    row.push_back(eval::TablePrinter::Fixed(max_delta, 4));
    theta_table.AddRow(std::move(row));
  }
  std::printf("%s", theta_table.ToString().c_str());

  // --- Experiment 2: full distribution vs maximal assignment -----------
  std::printf(
      "\n[2] all previous-iteration equalities vs maximal assignment only "
      "(paper: changes results only marginally)\n");
  eval::TablePrinter full_table({"Mode", "Prec", "Rec", "F"});
  for (bool full : {false, true}) {
    core::AlignmentConfig config;
    config.use_full_equalities = full;
    const auto result = RunParis(*pair, 8, false, config);
    const auto pr = eval::EvaluateInstances(result.instances, pair->gold);
    std::vector<std::string> row{full ? "full distribution"
                                      : "maximal assignment"};
    AppendPrf(&row, pr);
    full_table.AddRow(std::move(row));
  }
  std::printf("%s", full_table.ToString().c_str());

  // --- Experiment 3: negative evidence ----------------------------------
  std::printf(
      "\n[3] negative evidence (Eq. 14) — with the identity measure the "
      "phone-format noise kills matches; the normalized measure restores "
      "precision (paper: 100%% precision / 70%% recall)\n");
  eval::TablePrinter neg_table(
      {"Evidence", "Literal measure", "Prec", "Rec", "F"});
  struct Setting {
    bool negative;
    bool normalized;
    const char* name;
    const char* measure;
  };
  for (const Setting& s :
       {Setting{false, false, "positive only", "identity"},
        Setting{true, false, "with negative", "identity"},
        Setting{true, true, "with negative", "normalized"}}) {
    core::AlignmentConfig config;
    config.use_negative_evidence = s.negative;
    core::Aligner aligner(*pair->left, *pair->right, [&] {
      config.max_iterations = 8;
      return config;
    }());
    if (s.normalized) {
      aligner.set_literal_matcher_factory(core::NormalizingMatcherFactory());
    }
    const auto result = aligner.Run();
    const auto pr = eval::EvaluateInstances(result.instances, pair->gold);
    std::vector<std::string> row{s.name, s.measure};
    AppendPrf(&row, pr);
    neg_table.AddRow(std::move(row));
  }
  std::printf("%s", neg_table.ToString().c_str());
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
