// Figure 1: precision of the class alignment yago ⊆ DBpedia as a function
// of the probability threshold (0.1 … 0.9). The paper's curve rises from
// ≈ 0.75 at threshold 0.1 to ≈ 0.95 at 0.9.
#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader(
      "Figure 1 — class alignment precision vs probability threshold",
      "Suchanek et al., PVLDB 5(3), 2011, Figure 1");
  std::printf(
      "Paper reference: precision rises monotonically ≈0.75 → ≈0.95 over "
      "thresholds 0.1 → 0.9\n\n");

  auto pair = synth::MakeYagoDbpediaPair();
  if (!pair.ok()) {
    std::printf("profile failed: %s\n", pair.status().ToString().c_str());
    return;
  }
  const core::AlignmentResult result = RunParis(*pair, 4);

  eval::TablePrinter table(
      {"Threshold", "Assignments", "Correct", "Precision"});
  for (int t = 1; t <= 9; ++t) {
    const double threshold = t / 10.0;
    const auto cls = eval::EvaluateClassEntries(result.classes, pair->gold,
                                                /*sub_is_left=*/true,
                                                threshold);
    table.AddRow({eval::TablePrinter::Fixed(threshold, 1),
                  std::to_string(cls.entries), std::to_string(cls.correct),
                  eval::TablePrinter::Pct1(cls.precision())});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
