// Figure 2: number of yago classes that have at least one assignment in
// DBpedia with a score greater than the threshold. The paper's curve
// decreases from ≈ 20×10⁴ classes at threshold 0.1 to ≈ 10×10⁴ at 0.9
// (ours is laptop-scale: hundreds of classes, same monotone shape).
#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader(
      "Figure 2 — #yago classes with an assignment above the threshold",
      "Suchanek et al., PVLDB 5(3), 2011, Figure 2");
  std::printf(
      "Paper reference: monotone decrease, ≈200k classes at 0.1 to ≈100k "
      "at 0.9 (out of 292k yago classes)\n\n");

  auto pair = synth::MakeYagoDbpediaPair();
  if (!pair.ok()) {
    std::printf("profile failed: %s\n", pair.status().ToString().c_str());
    return;
  }
  const core::AlignmentResult result = RunParis(*pair, 4);
  const size_t total_classes = pair->left->classes().size();

  eval::TablePrinter table(
      {"Threshold", "#Aligned yago classes", "Fraction of all classes"});
  for (int t = 1; t <= 9; ++t) {
    const double threshold = t / 10.0;
    const size_t count =
        result.classes.NumAlignedSubClasses(threshold, /*sub_is_left=*/true);
    table.AddRow({eval::TablePrinter::Fixed(threshold, 1),
                  std::to_string(count),
                  eval::TablePrinter::Pct1(static_cast<double>(count) /
                                           static_cast<double>(total_classes))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("(left ontology has %zu classes in total)\n", total_classes);
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
