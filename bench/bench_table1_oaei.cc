// Table 1: instance / class / relation alignment on the OAEI 2010 person
// and restaurant benchmarks — PARIS vs our ObjectCoref-style self-training
// baseline (the paper compares against ObjectCoref's published numbers).
// The "Gold" columns count the gold equivalences.
#include "paris/baseline/self_training.h"
#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void RunDataset(const std::string& name, const synth::OntologyPair& pair) {
  const core::AlignmentResult result = RunParis(pair, 6);

  const auto instances = eval::EvaluateInstances(result.instances, pair.gold);

  // Classes and relations accumulated over both directions, as in the
  // paper's footnote 11.
  const auto cls_lr =
      eval::EvaluateClassesMaximal(result.classes, pair.gold, true, 0.3);
  const auto cls_rl =
      eval::EvaluateClassesMaximal(result.classes, pair.gold, false, 0.3);
  const auto rel_lr =
      eval::EvaluateRelations(result.relations, pair.gold, true, 0.3);
  const auto rel_rl =
      eval::EvaluateRelations(result.relations, pair.gold, false, 0.3);

  auto combine = [](const eval::AssignmentEval& a,
                    const eval::AssignmentEval& b) {
    eval::AssignmentEval out;
    out.assigned = a.assigned + b.assigned;
    out.correct = a.correct + b.correct;
    out.alignable = a.alignable + b.alignable;
    return out;
  };
  const auto classes = combine(cls_lr, cls_rl);
  const auto relations = combine(rel_lr, rel_rl);

  eval::TablePrinter table({"Dataset", "System", "InstGold", "Prec", "Rec",
                            "F", "ClsGold", "Prec", "Rec", "RelGold", "Prec",
                            "Rec"});
  std::vector<std::string> row{name,
                               "paris",
                               std::to_string(instances.gold)};
  row.push_back(eval::TablePrinter::Pct(instances.precision()));
  row.push_back(eval::TablePrinter::Pct(instances.recall()));
  row.push_back(eval::TablePrinter::Pct(instances.f1()));
  row.push_back(std::to_string(classes.alignable));
  row.push_back(eval::TablePrinter::Pct(classes.precision()));
  row.push_back(eval::TablePrinter::Pct(classes.recall()));
  row.push_back(std::to_string(relations.alignable));
  row.push_back(eval::TablePrinter::Pct(relations.precision()));
  row.push_back(eval::TablePrinter::Pct(relations.recall()));
  table.AddRow(std::move(row));

  // The self-training comparison system (instances only, like ObjectCoref).
  const auto st = eval::EvaluateInstances(
      baseline::AlignBySelfTraining(*pair.left, *pair.right), pair.gold);
  table.AddRow({name, "self-training", std::to_string(st.gold),
                eval::TablePrinter::Pct(st.precision()),
                eval::TablePrinter::Pct(st.recall()),
                eval::TablePrinter::Pct(st.f1()), "-", "-", "-", "-", "-",
                "-"});
  std::printf("%s", table.ToString().c_str());
  std::printf("paris converged after %d iterations, %.2fs total\n",
              result.converged_at, result.seconds_total);
}

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader("Table 1 — OAEI benchmark (person, restaurant)",
              "Suchanek et al., PVLDB 5(3), 2011, Table 1");
  std::printf(
      "Paper reference: person  paris 100%%/100%%/100%% (500 gold), "
      "ObjectCoref 100%%/100%%/100%%\n"
      "                 rest.   paris  95%%/ 88%%/ 91%% (112 gold), "
      "ObjectCoref F=90%%\n");

  auto person = synth::MakeOaeiPersonPair();
  if (!person.ok()) {
    std::printf("person profile failed: %s\n",
                person.status().ToString().c_str());
    return;
  }
  RunDataset("Person", *person);

  auto restaurant = synth::MakeOaeiRestaurantPair();
  if (!restaurant.ok()) {
    std::printf("restaurant profile failed: %s\n",
                restaurant.status().ToString().c_str());
    return;
  }
  RunDataset("Restaurant", *restaurant);
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
