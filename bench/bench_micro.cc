// Micro-benchmarks (google-benchmark) for the substrate operations the
// alignment passes are built on: term interning, store construction and
// lookup, functionality computation, literal matching, and one full
// alignment iteration on the restaurant dataset.
#include <benchmark/benchmark.h>

#include "paris/core/aligner.h"
#include "paris/core/literal_match.h"
#include "paris/ontology/functionality.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/store.h"
#include "paris/synth/profiles.h"
#include "paris/util/logging.h"
#include "paris/util/string_util.h"

namespace paris {
namespace {

void BM_TermInterning(benchmark::State& state) {
  std::vector<std::string> names;
  for (int i = 0; i < 10000; ++i) names.push_back("t" + std::to_string(i));
  for (auto _ : state) {
    rdf::TermPool pool;
    for (const auto& n : names) benchmark::DoNotOptimize(pool.InternIri(n));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TermInterning);

void BM_StoreAddFinalize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rdf::TermPool pool;
  std::vector<rdf::TermId> terms;
  for (int i = 0; i < n; ++i) {
    terms.push_back(pool.InternIri("e" + std::to_string(i)));
  }
  for (auto _ : state) {
    rdf::TripleStore store(&pool);
    const rdf::RelId rel = store.InternRelation(pool.InternIri("r"));
    for (int i = 0; i < n; ++i) {
      store.Add(terms[static_cast<size_t>(i)], rel,
                terms[static_cast<size_t>((i * 7 + 1) % n)]);
    }
    store.Finalize();
    benchmark::DoNotOptimize(store.num_triples());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StoreAddFinalize)->Arg(1000)->Arg(10000);

void BM_FactsAboutLookup(benchmark::State& state) {
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  const rdf::RelId rel = store.InternRelation(pool.InternIri("r"));
  const int n = 10000;
  std::vector<rdf::TermId> terms;
  for (int i = 0; i < n; ++i) {
    terms.push_back(pool.InternIri("e" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    store.Add(terms[static_cast<size_t>(i)], rel,
              terms[static_cast<size_t>((i * 13 + 5) % n)]);
  }
  store.Finalize();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.FactsAbout(terms[i % n]).size());
    ++i;
  }
}
BENCHMARK(BM_FactsAboutLookup);

void BM_ObjectsOfLookup(benchmark::State& state) {
  rdf::TermPool pool;
  rdf::TripleStore store(&pool);
  const rdf::RelId rel = store.InternRelation(pool.InternIri("r"));
  const int n = 10000;
  std::vector<rdf::TermId> terms;
  for (int i = 0; i < n; ++i) {
    terms.push_back(pool.InternIri("e" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    store.Add(terms[static_cast<size_t>(i)], rel,
              terms[static_cast<size_t>((i * 13 + 5) % n)]);
  }
  store.Finalize();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.ObjectsOf(terms[i % n], rel).size());
    ++i;
  }
}
BENCHMARK(BM_ObjectsOfLookup);

void BM_FunctionalityTable(benchmark::State& state) {
  auto pair = synth::MakeOaeiRestaurantPair();
  if (!pair.ok()) {
    state.SkipWithError("profile failed");
    return;
  }
  for (auto _ : state) {
    ontology::FunctionalityTable table(pair->left->store());
    benchmark::DoNotOptimize(table.Global(1));
  }
}
BENCHMARK(BM_FunctionalityTable);

void BM_EditDistance(benchmark::State& state) {
  const std::string a = "The Crimson Spoon of Stoneridge";
  const std::string b = "The Crimsn Spoon of Stonerige";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance);

void BM_NTriplesParse(benchmark::State& state) {
  std::string doc;
  for (int i = 0; i < 1000; ++i) {
    doc += "<ex:s" + std::to_string(i) + "> <ex:p> \"value " +
           std::to_string(i) + "\" .\n";
  }
  for (auto _ : state) {
    rdf::VectorTripleSink sink;
    benchmark::DoNotOptimize(
        rdf::NTriplesParser::ParseDocument(doc, &sink).ok());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NTriplesParse);

void BM_FullAlignmentRestaurant(benchmark::State& state) {
  util::SetLogLevel(util::LogLevel::kWarning);
  auto pair = synth::MakeOaeiRestaurantPair();
  if (!pair.ok()) {
    state.SkipWithError("profile failed");
    return;
  }
  for (auto _ : state) {
    core::AlignmentConfig config;
    config.max_iterations = static_cast<int>(state.range(0));
    config.convergence_threshold = 0.0;
    core::Aligner aligner(*pair->left, *pair->right, config);
    auto result = aligner.Run();
    benchmark::DoNotOptimize(result.instances.num_left_aligned());
  }
}
BENCHMARK(BM_FullAlignmentRestaurant)->Arg(1)->Arg(4);

void BM_FuzzyLiteralMatch(benchmark::State& state) {
  util::SetLogLevel(util::LogLevel::kWarning);
  auto pair = synth::MakeOaeiRestaurantPair();
  if (!pair.ok()) {
    state.SkipWithError("profile failed");
    return;
  }
  core::FuzzyLiteralMatcher matcher(0.8, 4);
  matcher.IndexTarget(*pair->right);
  // Query with every left literal.
  std::vector<rdf::TermId> literals;
  for (rdf::TermId t : pair->left->store().terms()) {
    if (pair->left->pool().IsLiteral(t)) literals.push_back(t);
  }
  size_t i = 0;
  std::vector<core::Candidate> out;
  for (auto _ : state) {
    out.clear();
    matcher.Match(literals[i % literals.size()], &out);
    benchmark::DoNotOptimize(out.size());
    ++i;
  }
}
BENCHMARK(BM_FuzzyLiteralMatch);

}  // namespace
}  // namespace paris

BENCHMARK_MAIN();
