// Table 4: sample relation alignments between yago and DBpedia with their
// scores — showing inverses (y:actedIn ⊆ dbp:starring⁻¹), merges
// (fine-grained into coarse-grained), and differently-named relations.
#include <algorithm>

#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void PrintDirection(const synth::OntologyPair& pair,
                    const core::RelationScores& scores, bool sub_is_left,
                    size_t limit) {
  const auto& sub_onto = sub_is_left ? *pair.left : *pair.right;
  const auto& super_onto = sub_is_left ? *pair.right : *pair.left;
  std::printf("\n%s ⊆ %s\n", sub_onto.name().c_str(),
              super_onto.name().c_str());
  auto entries = scores.Entries();
  std::erase_if(entries, [&](const core::RelationAlignmentEntry& e) {
    // Keep one canonical orientation per pair: positive sub relation.
    return e.sub_is_left != sub_is_left || e.sub < 0 || e.score < 0.1;
  });
  std::sort(entries.begin(), entries.end(),
            [](const core::RelationAlignmentEntry& a,
               const core::RelationAlignmentEntry& b) {
              return a.score > b.score;
            });
  if (entries.size() > limit) entries.resize(limit);
  eval::TablePrinter table({"Sub-relation", "Super-relation", "Score",
                            "Gold?"});
  for (const auto& e : entries) {
    table.AddRow({sub_onto.RelationName(e.sub),
                  super_onto.RelationName(e.super),
                  eval::TablePrinter::Fixed(e.score, 2),
                  pair.gold.RelationContained(sub_is_left, e.sub, e.super)
                      ? "yes"
                      : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
}

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader("Table 4 — relation alignments between yago and DBpedia",
              "Suchanek et al., PVLDB 5(3), 2011, Table 4");
  std::printf(
      "Paper reference (examples): y:actedIn ⊆ dbp:starring⁻¹ 0.95; "
      "y:isCitizenOf ⊆ dbp:nationality 0.88; dbp:author ⊆ y:created⁻¹ "
      "0.70; dbp:birthName ⊆ rdfs:label 0.96\n");

  auto pair = synth::MakeYagoDbpediaPair();
  if (!pair.ok()) {
    std::printf("profile failed: %s\n", pair.status().ToString().c_str());
    return;
  }
  const core::AlignmentResult result = RunParis(*pair, 4);
  PrintDirection(*pair, result.relations, /*sub_is_left=*/true, 20);
  PrintDirection(*pair, result.relations, /*sub_is_left=*/false, 20);
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
