// Service traffic generator: p50/p99 LOOKUP latency against an in-process
// parisd daemon, measured twice — against an idle daemon, and again while
// an alignment job is running on the worker thread — so the bench answers
// the question the read path exists for: does serving stay fast while the
// daemon computes?
//
// Emits the same JSON shape as bench_parallel (hardware_threads + phases),
// so scripts/check_bench_regression.py gates it against BENCH_service.json
// with no changes. The per-request percentiles (microseconds-scale) sit
// below the gate's noise floor and ride along as documentation; the gated
// signal is the total wall time each phase spends answering its fixed
// request quota.
//
//   bench_service [OUTPUT.json]    (default: stdout)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "paris/api/dataset.h"
#include "paris/service/daemon.h"
#include "paris/service/protocol.h"
#include "paris/util/logging.h"
#include "paris/util/net.h"
#include "paris/util/status.h"

namespace paris::bench {
namespace {

struct PhaseTime {
  std::string phase;
  size_t threads;
  double seconds;
};

void Emit(std::FILE* out, const std::vector<PhaseTime>& phases,
          size_t hardware, size_t clients, size_t requests) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"bench_service\",\n");
  std::fprintf(out, "  \"hardware_threads\": %zu,\n", hardware);
  std::fprintf(out,
               "  \"workload\": {\"clients\": %zu, "
               "\"requests_per_client\": %zu},\n",
               clients, requests);
  std::fprintf(out, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    std::fprintf(out,
                 "    {\"phase\": \"%s\", \"threads\": %zu, "
                 "\"seconds\": %.6f}%s\n",
                 phases[i].phase.c_str(), phases[i].threads,
                 phases[i].seconds, i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

double Percentile(std::vector<double>& sorted_seconds, double p) {
  if (sorted_seconds.empty()) return 0.0;
  const size_t index = std::min(
      sorted_seconds.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_seconds.size())));
  return sorted_seconds[index];
}

// One synchronous request/reply exchange; dies loudly on transport errors
// so a broken daemon can't produce fake numbers.
std::string Call(util::SocketConn& conn, const std::string& request) {
  util::Status status =
      service::WriteFrame(conn, request, service::kDefaultMaxFrameBytes);
  if (!status.ok()) {
    std::fprintf(stderr, "send failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  std::string reply;
  auto more =
      service::ReadFrame(conn, &reply, service::kDefaultMaxFrameBytes);
  if (!more.ok() || !*more) {
    std::fprintf(stderr, "recv failed: %s\n",
                 more.ok() ? "connection closed" : more.status().ToString().c_str());
    std::exit(1);
  }
  return reply;
}

std::string SubmitJob(util::SocketConn& conn, const std::string& overrides) {
  const std::string reply = Call(conn, "SUBMIT " + overrides);
  if (reply.rfind("OK ", 0) != 0) {
    std::fprintf(stderr, "SUBMIT failed: %s\n", reply.c_str());
    std::exit(1);
  }
  return reply.substr(3);
}

void AwaitJobState(util::SocketConn& conn, const std::string& id,
                   const std::string& state) {
  for (int i = 0; i < 6000; ++i) {
    const std::string reply = Call(conn, "STATUS " + id);
    if (reply.find(" state=" + state + " ") != std::string::npos ||
        reply.find(" state=" + state + "\n") != std::string::npos) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::fprintf(stderr, "job %s never reached state %s\n", id.c_str(),
               state.c_str());
  std::exit(1);
}

// The hot-key mix every client cycles through: entities, a relation, and a
// class — the three LOOKUP kinds, all present in any restaurant pair.
std::vector<std::string> RequestMix() {
  std::vector<std::string> requests;
  for (int i = 0; i < 10; ++i) {
    requests.push_back("LOOKUP entity left r1:address_" + std::to_string(i));
  }
  requests.push_back("LOOKUP relation left r1:category");
  requests.push_back("LOOKUP class left r1:Restaurant");
  return requests;
}

// Runs `clients` threads, each with its own connection, each issuing
// `requests` lookups; returns every per-request latency (seconds).
std::vector<double> DriveTraffic(int port, size_t clients, size_t requests) {
  const std::vector<std::string> mix = RequestMix();
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto conn =
          util::SocketConn::Connect("127.0.0.1", static_cast<uint16_t>(port));
      if (!conn.ok()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     conn.status().ToString().c_str());
        std::exit(1);
      }
      latencies[c].reserve(requests);
      for (size_t i = 0; i < requests; ++i) {
        const std::string& request = mix[(c + i) % mix.size()];
        const auto start = std::chrono::steady_clock::now();
        const std::string reply = Call(*conn, request);
        latencies[c].push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count());
        if (reply.rfind("OK ", 0) != 0) {
          std::fprintf(stderr, "lookup failed: %s\n", reply.c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  return all;
}

int Main(int argc, char** argv) {
  util::SetLogLevel(util::LogLevel::kWarning);

  const size_t clients = 4;
  const size_t requests = 5000;

  const std::string work =
      (std::filesystem::temp_directory_path() / "bench_service").string();
  std::filesystem::remove_all(work);
  std::filesystem::create_directories(work);

  api::DatasetSpec spec;
  spec.profile = "restaurant";
  spec.output_prefix = work + "/rest";
  // Large enough that the concurrent-phase job outlives the measurement
  // window (an exact-fixpoint stop ends a small pair's run in tens of
  // milliseconds, before any traffic lands).
  spec.scale = 16.0;
  auto dataset = api::GenerateDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  service::Daemon::Config config;
  config.num_handlers = clients;
  config.queue.data_dir = work + "/data";
  config.queue.left_path = dataset->left_path;
  config.queue.right_path = dataset->right_path;
  config.queue.base_options.config.max_iterations = 3;
  config.queue.base_options.config.convergence_threshold = 0.0;
  service::Daemon daemon(config);
  util::Status status = daemon.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "daemon start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  auto control =
      util::SocketConn::Connect("127.0.0.1",
                                static_cast<uint16_t>(daemon.port()));
  if (!control.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 control.status().ToString().c_str());
    return 1;
  }

  // First job: produce the snapshot every lookup will be served from.
  AwaitJobState(*control, SubmitJob(*control, "max-iterations=3"), "done");

  std::vector<PhaseTime> phases;
  const auto measure = [&](const std::string& label) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<double> latencies = DriveTraffic(daemon.port(), clients,
                                                 requests);
    const double total =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::sort(latencies.begin(), latencies.end());
    phases.push_back({label + "_total", clients, total});
    phases.push_back({label + "_p50", clients, Percentile(latencies, 0.50)});
    phases.push_back({label + "_p99", clients, Percentile(latencies, 0.99)});
  };

  // Phase 1: the daemon is idle apart from the traffic.
  measure("lookup_idle");

  // Phase 2: the same traffic while the worker thread aligns. The iteration
  // cap keeps the job alive past the measurement window on any machine;
  // it is cancelled as soon as the traffic is done.
  const std::string concurrent = SubmitJob(*control, "max-iterations=500");
  AwaitJobState(*control, concurrent, "running");
  measure("lookup_during_job");
  // On a fast machine the fixpoint can lock before the traffic drains, so
  // the job may already be done; either terminal state is fine.
  const std::string cancel_reply = Call(*control, "CANCEL " + concurrent);
  if (cancel_reply.rfind("OK ", 0) == 0) {
    AwaitJobState(*control, concurrent, "cancelled");
  }

  daemon.Stop();
  std::filesystem::remove_all(work);

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  Emit(out, phases, std::thread::hardware_concurrency(), clients, requests);
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace paris::bench

int main(int argc, char** argv) { return paris::bench::Main(argc, argv); }
