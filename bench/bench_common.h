// Shared helpers for the per-table/per-figure benchmark binaries.
#ifndef PARIS_BENCH_BENCH_COMMON_H_
#define PARIS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "paris/core/aligner.h"
#include "paris/eval/metrics.h"
#include "paris/eval/report.h"
#include "paris/synth/profiles.h"
#include "paris/util/logging.h"

namespace paris::bench {

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper.c_str());
  std::printf("==============================================================\n");
}

// P/R/F cells in the paper's "Prec Rec F" style.
inline void AppendPrf(std::vector<std::string>* row,
                      const eval::PrecisionRecall& pr) {
  row->push_back(eval::TablePrinter::Pct(pr.precision()));
  row->push_back(eval::TablePrinter::Pct(pr.recall()));
  row->push_back(eval::TablePrinter::Pct(pr.f1()));
}

// Runs the aligner with the paper's default configuration (up to
// `iterations` rounds, forced — no early convergence exit — when
// `force_all_iterations`).
inline core::AlignmentResult RunParis(const synth::OntologyPair& pair,
                                      int iterations,
                                      bool force_all_iterations = false,
                                      core::AlignmentConfig config = {}) {
  config.max_iterations = iterations;
  if (force_all_iterations) config.convergence_threshold = 0.0;
  core::Aligner aligner(*pair.left, *pair.right, config);
  return aligner.Run();
}

}  // namespace paris::bench

#endif  // PARIS_BENCH_BENCH_COMMON_H_
