// Table 5: YAGO ↔ IMDb over iterations 1-4, plus the rdfs:label baseline
// comparison of §6.4 (the baseline reaches high precision but loses recall
// on the noisy IMDb labels; PARIS recovers through structure).
#include "paris/baseline/label_match.h"
#include "bench/bench_common.h"

namespace paris::bench {
namespace {

void Main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  PrintHeader("Table 5 — matching yago and IMDb over iterations 1-4",
              "Suchanek et al., PVLDB 5(3), 2011, Table 5 + §6.4 baseline");
  std::printf(
      "Paper reference (instances): 84/75/79 → 94/89/91 → 94/90/92 → "
      "94/90/92; label baseline 97/70 (F 82); relations at iter 4: "
      "y⊆IMDb 100%%prec/80%%rec, IMDb⊆y 100%%/80%%\n");

  auto pair = synth::MakeYagoImdbPair();
  if (!pair.ok()) {
    std::printf("profile failed: %s\n", pair.status().ToString().c_str());
    return;
  }
  const core::AlignmentResult result =
      RunParis(*pair, 4, /*force_all_iterations=*/true);

  eval::TablePrinter table({"Iter", "Change", "Time", "Prec", "Rec", "F",
                            "Rel y⊆IMDb (prec/rec)",
                            "Rel IMDb⊆y (prec/rec)"});
  for (const auto& it : result.iterations) {
    const auto pr = eval::EvaluateInstanceMap(it.max_left, pair->gold);
    const auto rel_lr =
        eval::EvaluateRelations(it.relations, pair->gold, true, 0.3);
    const auto rel_rl =
        eval::EvaluateRelations(it.relations, pair->gold, false, 0.3);
    table.AddRow(
        {std::to_string(it.index),
         it.index == 1 ? "-" : eval::TablePrinter::Pct1(it.change_fraction),
         eval::TablePrinter::Fixed(it.seconds_instances + it.seconds_relations,
                                   2) +
             "s",
         eval::TablePrinter::Pct(pr.precision()),
         eval::TablePrinter::Pct(pr.recall()),
         eval::TablePrinter::Pct(pr.f1()),
         eval::TablePrinter::Pct(rel_lr.precision()) + "/" +
             eval::TablePrinter::Pct(rel_lr.recall()),
         eval::TablePrinter::Pct(rel_rl.precision()) + "/" +
             eval::TablePrinter::Pct(rel_rl.recall())});
  }
  std::printf("%s", table.ToString().c_str());

  // The rdfs:label baseline (IMDb labels its entities via name/title).
  baseline::LabelMatchConfig label_config;
  label_config.right_label_relations = {"imdb:name", "imdb:title"};
  const auto baseline_pr = eval::EvaluateInstances(
      baseline::AlignByLabel(*pair->left, *pair->right, label_config),
      pair->gold);
  const auto paris_pr = eval::EvaluateInstances(result.instances, pair->gold);
  eval::TablePrinter cmp({"System", "Prec", "Rec", "F"});
  std::vector<std::string> row{"paris"};
  AppendPrf(&row, paris_pr);
  cmp.AddRow(std::move(row));
  row = {"rdfs:label baseline"};
  AppendPrf(&row, baseline_pr);
  cmp.AddRow(std::move(row));
  std::printf("\n%s", cmp.ToString().c_str());

  // Classes, both directions (the paper's asymmetric class result: mapping
  // IMDb's handful of classes into yago works, the reverse direction drags
  // in "People from X ⊆ actor"-style assignments).
  const auto cls_lr =
      eval::EvaluateClassEntries(result.classes, pair->gold, true, 0.4);
  const auto cls_rl =
      eval::EvaluateClassEntries(result.classes, pair->gold, false, 0.4);
  std::printf(
      "\nClasses (threshold 0.4): y⊆IMDb %zu assignments @ %s precision; "
      "IMDb⊆y %zu @ %s\n",
      cls_lr.entries, eval::TablePrinter::Pct(cls_lr.precision()).c_str(),
      cls_rl.entries, eval::TablePrinter::Pct(cls_rl.precision()).c_str());
}

}  // namespace
}  // namespace paris::bench

int main() {
  paris::bench::Main();
  return 0;
}
