// Aligning MORE than two ontologies — the paper's §7 future-work item —
// with the MultiAligner extension: PARIS runs on every pair and reciprocal
// maximal assignments are merged into cross-ontology entity clusters.
//
//   ./build/examples/multi_ontology
#include <cstdio>

#include "paris/paris.h"

int main() {
  paris::util::SetLogLevel(paris::util::LogLevel::kWarning);
  paris::rdf::TermPool pool;

  // Three small knowledge bases about the same people, each with its own
  // vocabulary and with partial coverage.
  auto build = [&](const std::string& ns, const std::string& name_rel,
                   const std::string& city_rel, int from, int to) {
    paris::ontology::OntologyBuilder b(&pool, ns);
    const char* names[] = {"Ada Lovelace",   "Alan Turing",  "Grace Hopper",
                           "Kurt Goedel",    "Emmy Noether", "John von Neumann"};
    const char* cities[] = {"London",   "Wilmslow", "New York",
                            "Brno",     "Erlangen", "Budapest"};
    for (int i = from; i < to; ++i) {
      const std::string e = ns + ":p" + std::to_string(i);
      b.AddLiteralFact(e, ns + ":" + name_rel, names[i]);
      b.AddLiteralFact(e, ns + ":" + city_rel, cities[i]);
    }
    auto onto = b.Build();
    if (!onto.ok()) {
      std::printf("build failed: %s\n", onto.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(onto).value();
  };

  paris::ontology::Ontology kb1 = build("kb1", "name", "bornIn", 0, 5);
  paris::ontology::Ontology kb2 = build("kb2", "label", "birthCity", 1, 6);
  paris::ontology::Ontology kb3 = build("kb3", "fullName", "city", 0, 6);

  paris::core::MultiAligner aligner({&kb1, &kb2, &kb3});
  paris::core::MultiAlignmentResult result = aligner.Run();

  std::printf("found %zu cross-ontology entity clusters:\n",
              result.clusters.size());
  for (const auto& cluster : result.clusters) {
    std::printf("  [min Pr %.2f] ", cluster.min_edge_prob);
    for (const auto& member : cluster.members) {
      std::printf(" %s", std::string(pool.lexical(member.term)).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
