// Quickstart: align two tiny in-memory ontologies with PARIS.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// One ontology is built programmatically, the other is parsed from an
// N-Triples document — the two loading paths the library offers. PARIS then
// discovers that the instances, the relations (one of them inverted!) and
// the classes line up, with zero configuration.
#include <cstdio>

#include "paris/paris.h"

int main() {
  paris::rdf::TermPool pool;  // shared between the two ontologies

  // --- Left ontology: built programmatically --------------------------
  paris::ontology::OntologyBuilder left_builder(&pool, "left");
  left_builder.AddType("l:elvis", "l:Singer");
  left_builder.AddSubClassOf("l:Singer", "l:Person");
  left_builder.AddLiteralFact("l:elvis", "l:name", "Elvis Presley");
  left_builder.AddLiteralFact("l:elvis", "l:born", "1935-01-08");
  left_builder.AddFact("l:elvis", "l:bornIn", "l:tupelo");
  left_builder.AddLiteralFact("l:tupelo", "l:label", "Tupelo");
  left_builder.AddType("l:priscilla", "l:Person");
  left_builder.AddLiteralFact("l:priscilla", "l:name", "Priscilla Presley");
  left_builder.AddFact("l:elvis", "l:marriedTo", "l:priscilla");
  auto left = left_builder.Build();
  if (!left.ok()) {
    std::printf("left build failed: %s\n", left.status().ToString().c_str());
    return 1;
  }

  // --- Right ontology: parsed from N-Triples --------------------------
  const char* document = R"(
<r:presley_e> <rdf:type> <r:Artist> .
<r:presley_e> <r:fullName> "Elvis Presley" .
<r:presley_e> <r:birthDate> "1935-01-08" .
# Note the inverted relation: birthPlaceOf(place, person).
<r:tupelo_ms> <r:birthPlaceOf> <r:presley_e> .
<r:tupelo_ms> <rdfs:label> "Tupelo" .
<r:presley_p> <rdf:type> <r:Artist> .
<r:presley_p> <r:fullName> "Priscilla Presley" .
<r:presley_e> <r:spouse> <r:presley_p> .
)";
  auto right = paris::ontology::LoadOntologyFromNTriples(&pool, "right",
                                                         document);
  if (!right.ok()) {
    std::printf("right parse failed: %s\n",
                right.status().ToString().c_str());
    return 1;
  }

  // --- Align ------------------------------------------------------------
  paris::core::Aligner aligner(*left, *right);
  paris::core::AlignmentResult result = aligner.Run();

  std::printf("\nInstance equivalences (maximal assignment):\n");
  for (const auto& [l, candidate] : result.instances.max_left()) {
    std::printf("  %-14s ≡ %-14s  (Pr = %.3f)\n",
                left->TermName(l).c_str(),
                right->TermName(candidate.other).c_str(), candidate.prob);
  }

  std::printf("\nSub-relation alignments (score ≥ 0.3):\n");
  for (const auto& e : result.relations.Entries()) {
    if (e.score < 0.3) continue;
    const auto& sub_onto = e.sub_is_left ? *left : *right;
    const auto& super_onto = e.sub_is_left ? *right : *left;
    std::printf("  %-18s ⊆ %-18s  (%.2f)\n",
                sub_onto.RelationName(e.sub).c_str(),
                super_onto.RelationName(e.super).c_str(), e.score);
  }

  std::printf("\nSub-class alignments:\n");
  for (const auto& e : result.classes.entries()) {
    const auto& sub_onto = e.sub_is_left ? *left : *right;
    const auto& super_onto = e.sub_is_left ? *right : *left;
    std::printf("  %-14s ⊆ %-14s  (%.2f)\n",
                sub_onto.TermName(e.sub).c_str(),
                super_onto.TermName(e.super).c_str(), e.score);
  }

  std::printf("\nConverged after %d iteration(s).\n", result.converged_at);
  return 0;
}
