// Extending PARIS with a custom literal equality function (§5.3 of the
// paper lists this as the one application-dependent component). This
// example plugs a phone-aware matcher into the noisy restaurant scenario:
// it canonicalizes phone-shaped strings by digits and falls back to a fuzzy
// trigram match for everything else.
//
//   ./build/examples/custom_literal_matcher
#include <cctype>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

#include "paris/eval/metrics.h"
#include "paris/paris.h"
#include "paris/synth/profiles.h"

namespace {

// Extracts the digits of a phone-shaped string ("(213) 467-1108" →
// "2134671108"); empty if the string is not phone-shaped.
std::string PhoneKey(std::string_view s) {
  std::string digits;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) digits.push_back(c);
  }
  return digits.size() == 10 ? digits : std::string();
}

// A LiteralMatcher is directional: IndexTarget() sees the candidate side
// once, Match() maps a source literal to its equivalents.
class PhoneAwareMatcher : public paris::core::LiteralMatcher {
 public:
  void IndexTarget(const paris::ontology::Ontology& target) override {
    pool_ = &target.pool();
    fuzzy_.IndexTarget(target);
    for (paris::rdf::TermId t : target.store().terms()) {
      if (!pool_->IsLiteral(t)) continue;
      const std::string key = PhoneKey(pool_->lexical(t));
      if (!key.empty()) phone_index_[key].push_back(t);
    }
  }

  void Match(paris::rdf::TermId literal,
             std::vector<paris::core::Candidate>* out) const override {
    const std::string key = PhoneKey(pool_->lexical(literal));
    if (!key.empty()) {
      auto it = phone_index_.find(key);
      if (it != phone_index_.end()) {
        for (paris::rdf::TermId t : it->second) {
          out->push_back({t, 1.0});  // same digits ⇒ same phone number
        }
      }
      return;
    }
    fuzzy_.Match(literal, out);  // names, streets, ... with typo tolerance
  }

  std::string name() const override { return "phone-aware"; }

 private:
  const paris::rdf::TermPool* pool_ = nullptr;
  paris::core::FuzzyLiteralMatcher fuzzy_{0.85, 4};
  std::unordered_map<std::string, std::vector<paris::rdf::TermId>>
      phone_index_;
};

void Report(const char* name, const paris::eval::PrecisionRecall& pr) {
  std::printf("%-22s prec %5.1f%%   rec %5.1f%%   F1 %5.1f%%\n", name,
              100 * pr.precision(), 100 * pr.recall(), 100 * pr.f1());
}

}  // namespace

int main() {
  paris::util::SetLogLevel(paris::util::LogLevel::kWarning);
  auto pair = paris::synth::MakeOaeiRestaurantPair();
  if (!pair.ok()) {
    std::printf("dataset generation failed: %s\n",
                pair.status().ToString().c_str());
    return 1;
  }

  // Default identity matcher: loses the reformatted phone numbers.
  {
    paris::core::Aligner aligner(*pair->left, *pair->right);
    Report("identity matcher",
           paris::eval::EvaluateInstances(aligner.Run().instances,
                                          pair->gold));
  }
  // Custom matcher: canonical phones + fuzzy strings.
  {
    paris::core::Aligner aligner(*pair->left, *pair->right);
    aligner.set_literal_matcher_factory(
        [] { return std::make_unique<PhoneAwareMatcher>(); });
    Report("phone-aware matcher",
           paris::eval::EvaluateInstances(aligner.Run().instances,
                                          pair->gold));
  }
  return 0;
}
