// Quickstart for the `paris::api::Session` facade — the documented entry
// point of the library. Generates a small synthetic dataset, then drives
// the whole lifecycle through one handle with per-iteration progress:
//
//   load -> snapshot -> align (callbacks) -> save result -> export
//        -> apply delta -> realign -> export again
//
// Build & run (in-tree):
//   cmake -B build -DPARIS_BUILD_EXAMPLES=ON && cmake --build build
//   ./build/example_api_quickstart
//
// Build & run (out-of-tree, against an installed paris):
//   cmake --install build --prefix /tmp/paris-prefix
//   cmake -B build-ex -S examples/find_package_smoke \
//         -DCMAKE_PREFIX_PATH=/tmp/paris-prefix
//   cmake --build build-ex && ./build-ex/api_quickstart
//
// Every facade call returns util::Status — nothing below main() prints or
// exits on its own.
#include <cstdio>
#include <string>

#include "paris/paris.h"

namespace {

// One Status-check to rule the example; a real embedder would propagate.
bool Check(const paris::util::Status& status, const char* what) {
  if (status.ok()) return true;
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  return false;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/paris_api_quickstart";

  // --- Generate a small benchmark pair (also a facade call) -------------
  paris::api::DatasetSpec spec;
  spec.profile = "restaurant";
  spec.output_prefix = dir + "_data";
  spec.scale = 0.5;
  // Hold back ~2% of the left fact triples in a separate delta file — the
  // incremental-update half of this example feeds it back in below.
  spec.delta_fraction = 0.02;
  auto dataset = paris::api::GenerateDataset(spec);
  if (!Check(dataset.status(), "GenerateDataset")) return 1;
  std::printf("generated %zu + %zu triples (%zu gold pairs, %zu held back)\n",
              dataset->left_triples, dataset->right_triples,
              dataset->gold_pairs, dataset->delta_triples);

  // --- Configure a session ----------------------------------------------
  paris::api::Session session(paris::api::Session::Options()
                                  .set_threads(2)
                                  .set_max_iterations(8)
                                  .set_matcher("normalized"));

  // --- Load, snapshot for faster future loads ----------------------------
  if (!Check(session.LoadFromFiles(dataset->left_path, dataset->right_path),
             "LoadFromFiles")) {
    return 1;
  }
  if (!Check(session.SaveSnapshot(dir + ".snap"), "SaveSnapshot")) return 1;

  // --- Align with progress reporting and a cancellation token ------------
  auto token = std::make_shared<paris::api::CancellationToken>();
  paris::api::RunCallbacks callbacks;
  callbacks.cancellation = token;  // call token->Cancel() from any thread
  callbacks.on_iteration = [](const paris::api::IterationProgress& progress) {
    std::printf("  iteration %d/%d: %zu aligned, %.1f%% changed, %.3fs\n",
                progress.iteration, progress.max_iterations,
                progress.num_aligned, 100.0 * progress.change_fraction,
                progress.seconds);
  };
  if (!Check(session.Align(callbacks), "Align")) return 1;

  const paris::api::RunSummary summary = session.summary();
  std::printf("aligned %zu instances, %zu relation scores, %zu class scores "
              "in %.2fs%s\n",
              summary.instances_aligned, summary.relation_scores,
              summary.class_scores, summary.seconds,
              summary.converged ? " (converged)" : "");

  // --- Persist the run and export the tables ------------------------------
  // The result snapshot can seed `Session::Resume` in a later process.
  if (!Check(session.SaveResult(dir + ".result"), "SaveResult")) return 1;
  if (!Check(session.Export(dir + "_out"), "Export")) return 1;
  std::printf("wrote %s_out_{instances,relations,classes}.tsv\n",
              dir.c_str());

  // --- Incremental update: apply the held-back delta and realign ----------
  // ApplyDelta stages the new statements; Realign merges them and re-runs
  // the fixpoint warm-started from the result above — only the entities in
  // the delta's structural cone are recomputed, so this is a small fraction
  // of the cold run. (The CLI spelling of the same flow is
  // `paris_align --delta ... --realign-from ...`.)
  if (!Check(session.ApplyDelta(paris::api::Session::DeltaSide::kLeft,
                                dataset->delta_path),
             "ApplyDelta")) {
    return 1;
  }
  if (!Check(session.Realign(callbacks), "Realign")) return 1;

  const paris::api::RunSummary updated = session.summary();
  std::printf("realigned after %zu-triple delta: %zu instances in %.2fs\n",
              dataset->delta_triples, updated.instances_aligned,
              updated.seconds);
  if (!Check(session.Export(dir + "_out_v2"), "Export v2")) return 1;
  std::printf("wrote %s_out_v2_{instances,relations,classes}.tsv\n",
              dir.c_str());
  return 0;
}
