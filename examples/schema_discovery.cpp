// Schema discovery: explore two independently designed ontologies with the
// triple-pattern query engine, then let PARIS's holistic alignment discover
// the schema mapping between them — sub-relations (including inverted ones)
// and sub-classes across class hierarchies of different granularity. This
// is the YAGO ↔ DBpedia scenario of §6.4, driven entirely through the
// `paris::api::Session` facade:
//
//   generate -> load -> Query (pattern scans, merge-join) -> align -> report
//
// Build & run (in-tree):
//   cmake -B build -DPARIS_BUILD_EXAMPLES=ON && cmake --build build
//   ./build/example_schema_discovery [scale]
//
// Also buildable out-of-tree against an installed paris — see
// examples/find_package_smoke.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "paris/paris.h"

namespace {

bool Check(const paris::util::Status& status, const char* what) {
  if (status.ok()) return true;
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  return false;
}

// Resolves a relation by lexical name; kNullRel when the side lacks it.
paris::rdf::RelId FindRel(const paris::ontology::Ontology& onto,
                          const std::string& name) {
  const auto id = onto.pool().Find(name, paris::rdf::TermKind::kIri);
  if (!id.has_value()) return paris::rdf::kNullRel;
  return onto.store().FindRelation(*id).value_or(paris::rdf::kNullRel);
}

// Prints one side's relation inventory straight off the pattern engine:
// one DistinctBindings scan for the relation ids, one O(log n) Count per
// relation for its statement count.
void PrintSchema(const char* label, const paris::ontology::Ontology& onto) {
  const paris::storage::TriIndex& tri = onto.store().tri();
  const std::vector<uint32_t> rels = tri.DistinctBindings(
      paris::storage::TriplePattern(), paris::storage::TriPos::kRel);
  std::printf("%s: %zu classes, %zu relations\n", label,
              onto.classes().size(), rels.size());
  for (uint32_t rel : rels) {
    const auto r = static_cast<paris::rdf::RelId>(rel);
    std::printf("  %-22s %6llu facts\n", onto.RelationName(r).c_str(),
                static_cast<unsigned long long>(tri.Count(
                    paris::storage::TriplePattern().BindRel(r))));
  }
}

}  // namespace

int main(int argc, char** argv) {
  paris::util::SetLogLevel(paris::util::LogLevel::kWarning);

  // --- Generate the YAGO ↔ DBpedia benchmark pair -----------------------
  paris::api::DatasetSpec spec;
  spec.profile = "yago-dbpedia";
  spec.output_prefix = "/tmp/paris_schema_discovery";
  spec.scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  auto dataset = paris::api::GenerateDataset(spec);
  if (!Check(dataset.status(), "GenerateDataset")) return 1;

  paris::api::Session session(
      paris::api::Session::Options().set_threads(2));
  if (!Check(session.LoadFromFiles(dataset->left_path, dataset->right_path),
             "LoadFromFiles")) {
    return 1;
  }
  const paris::ontology::Ontology& left = session.left();
  const paris::ontology::Ontology& right = session.right();

  // --- Explore the schemas with pattern queries (pre-alignment) ---------
  PrintSchema("\nleft schema", left);
  PrintSchema("\nright schema", right);

  // A bound-relation pattern is one range scan of the POS ordering; sample
  // a few y:wasBornIn statements through the facade.
  const paris::rdf::RelId born_in = FindRel(left, "y:wasBornIn");
  if (born_in != paris::rdf::kNullRel) {
    auto sample = session.Query(
        paris::api::Session::DeltaSide::kLeft,
        paris::storage::TriplePattern().BindRel(born_in), /*limit=*/3);
    if (!Check(sample.status(), "Query")) return 1;
    std::printf("\nsample y:wasBornIn statements:\n");
    for (const paris::rdf::Triple& t : *sample) {
      std::printf("  %s -> %s\n", left.TermName(t.subject).c_str(),
                  left.TermName(t.object).c_str());
    }
  }

  // Both ontologies intern into one shared term pool, so a merge-join of
  // two single-relation patterns on their *object* position yields the
  // literal values present on both sides — the classic candidate-seed
  // query, answered by two sorted scans and one intersection.
  const paris::rdf::RelId left_label = FindRel(left, "rdfs:label");
  const paris::rdf::RelId right_name = FindRel(right, "dbp:birthName");
  if (left_label != paris::rdf::kNullRel &&
      right_name != paris::rdf::kNullRel) {
    const std::vector<uint32_t> shared = paris::storage::MergeJoin(
        left.store().tri(),
        paris::storage::TriplePattern().BindRel(left_label),
        paris::storage::TriPos::kObject, right.store().tri(),
        paris::storage::TriplePattern().BindRel(right_name),
        paris::storage::TriPos::kObject);
    std::printf(
        "\n%zu literal values appear as both rdfs:label and dbp:birthName\n",
        shared.size());
  }

  // --- Align and report the discovered schema mapping -------------------
  if (!Check(session.Align(), "Align")) return 1;
  const paris::core::AlignmentResult& result = session.result();

  std::printf("\nDiscovered relation mapping (left → right):\n");
  std::vector<paris::core::RelationAlignmentEntry> entries =
      result.relations.Entries();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  std::vector<bool> seen(left.num_relations() + 1, false);
  for (const auto& e : entries) {
    if (!e.sub_is_left) continue;
    const paris::rdf::RelId base = paris::rdf::BaseRel(e.sub);
    if (seen[static_cast<size_t>(base)]) continue;
    seen[static_cast<size_t>(base)] = true;
    // Report with a positive sub id for readability.
    const auto super = paris::rdf::IsInverse(e.sub)
                           ? paris::rdf::Inverse(e.super)
                           : e.super;
    std::printf("  %-22s ⊆ %-24s  (%.2f)\n", left.RelationName(base).c_str(),
                right.RelationName(super).c_str(), e.score);
  }

  std::printf("\nSample class mapping (right → left, score ≥ 0.5):\n");
  int shown = 0;
  for (const auto& e : result.classes.AboveThreshold(0.5, false)) {
    if (shown++ >= 12) break;
    std::printf("  %-22s ⊆ %-28s  (%.2f)\n", right.TermName(e.sub).c_str(),
                left.TermName(e.super).c_str(), e.score);
  }

  const paris::api::RunSummary summary = session.summary();
  std::printf("\naligned %zu instances in %zu iterations (%.1fs)\n",
              summary.instances_aligned, summary.iterations, summary.seconds);
  return 0;
}
