// Schema discovery: use PARIS's holistic alignment to discover the schema
// mapping between two independently designed ontologies — sub-relations
// (including inverted ones) and sub-classes across class hierarchies of
// different granularity. This is the YAGO ↔ DBpedia scenario of §6.4.
//
//   ./build/examples/schema_discovery [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "paris/eval/metrics.h"
#include "paris/paris.h"
#include "paris/synth/profiles.h"

int main(int argc, char** argv) {
  paris::util::SetLogLevel(paris::util::LogLevel::kWarning);

  paris::synth::ProfileOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  auto pair = paris::synth::MakeYagoDbpediaPair(options);
  if (!pair.ok()) {
    std::printf("dataset generation failed: %s\n",
                pair.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "left schema: %zu classes, %zu relations; right schema: %zu classes, "
      "%zu relations\n",
      pair->left->classes().size(), pair->left->num_relations(),
      pair->right->classes().size(), pair->right->num_relations());

  paris::core::Aligner aligner(*pair->left, *pair->right);
  const paris::core::AlignmentResult result = aligner.Run();

  // ---- Relations: maximal assignment per left relation ----------------
  std::printf("\nDiscovered relation mapping (left → right):\n");
  std::vector<paris::core::RelationAlignmentEntry> entries =
      result.relations.Entries();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });
  std::vector<bool> seen(pair->left->num_relations() + 1, false);
  for (const auto& e : entries) {
    if (!e.sub_is_left) continue;
    const paris::rdf::RelId base = paris::rdf::BaseRel(e.sub);
    if (seen[static_cast<size_t>(base)]) continue;
    seen[static_cast<size_t>(base)] = true;
    // Report with a positive sub id for readability.
    const auto sub = base;
    const auto super = paris::rdf::IsInverse(e.sub)
                           ? paris::rdf::Inverse(e.super)
                           : e.super;
    std::printf("  %-22s ⊆ %-24s  (%.2f)\n",
                pair->left->RelationName(sub).c_str(),
                pair->right->RelationName(super).c_str(), e.score);
  }

  // ---- Classes: the most specific confident super-class ---------------
  std::printf("\nSample class mapping (right → left, score ≥ 0.5):\n");
  int shown = 0;
  for (const auto& e : result.classes.AboveThreshold(0.5, false)) {
    if (shown++ >= 12) break;
    std::printf("  %-22s ⊆ %-28s  (%.2f)\n",
                pair->right->TermName(e.sub).c_str(),
                pair->left->TermName(e.super).c_str(), e.score);
  }

  // ---- Accuracy against the generator's hidden gold -------------------
  const auto rel_eval = paris::eval::EvaluateRelations(
      result.relations, pair->gold, /*sub_is_left=*/true, 0.3);
  const auto cls_eval = paris::eval::EvaluateClassEntries(
      result.classes, pair->gold, /*sub_is_left=*/true, 0.5);
  std::printf(
      "\nrelation mapping: %zu aligned, %.0f%% precision, %.0f%% recall\n",
      rel_eval.assigned, 100 * rel_eval.precision(),
      100 * rel_eval.recall());
  std::printf("class assignments (≥0.5): %zu entries, %.0f%% precision\n",
              cls_eval.entries, 100 * cls_eval.precision());
  return 0;
}
