// Align a general-purpose knowledge base with a movies-only database —
// the YAGO ↔ IMDb scenario of the paper's §6.4 — and compare PARIS against
// the rdfs:label exact-match baseline.
//
//   ./build/examples/movie_alignment [scale]
//
// `scale` (default 0.5) multiplies the dataset size.
#include <cstdio>
#include <cstdlib>

#include "paris/baseline/label_match.h"
#include "paris/eval/metrics.h"
#include "paris/paris.h"
#include "paris/synth/profiles.h"

int main(int argc, char** argv) {
  paris::util::SetLogLevel(paris::util::LogLevel::kInfo);

  paris::synth::ProfileOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  auto pair = paris::synth::MakeYagoImdbPair(options);
  if (!pair.ok()) {
    std::printf("dataset generation failed: %s\n",
                pair.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu + %zu instances, %zu gold pairs\n",
              pair->left->instances().size(),
              pair->right->instances().size(),
              pair->gold.num_instance_pairs());

  // PARIS, default configuration (θ = 0.1, identity literals).
  paris::core::Aligner aligner(*pair->left, *pair->right);
  paris::core::AlignmentResult result = aligner.Run();
  const auto paris_pr =
      paris::eval::EvaluateInstances(result.instances, pair->gold);

  // Baseline: exact label match (IMDb labels live in name/title).
  paris::baseline::LabelMatchConfig label_config;
  label_config.right_label_relations = {"imdb:name", "imdb:title"};
  const auto baseline_pr = paris::eval::EvaluateInstances(
      paris::baseline::AlignByLabel(*pair->left, *pair->right, label_config),
      pair->gold);

  std::printf("\n                      prec    rec     F1\n");
  std::printf("PARIS                %5.1f%%  %5.1f%%  %5.1f%%\n",
              100 * paris_pr.precision(), 100 * paris_pr.recall(),
              100 * paris_pr.f1());
  std::printf("label baseline       %5.1f%%  %5.1f%%  %5.1f%%\n",
              100 * baseline_pr.precision(), 100 * baseline_pr.recall(),
              100 * baseline_pr.f1());

  // Show a few discovered relation alignments.
  std::printf("\nDiscovered relation alignments (≥ 0.3):\n");
  for (const auto& e : result.relations.Entries()) {
    if (e.score < 0.3 || e.sub < 0) continue;
    const auto& sub_onto = e.sub_is_left ? *pair->left : *pair->right;
    const auto& super_onto = e.sub_is_left ? *pair->right : *pair->left;
    std::printf("  %-22s ⊆ %-22s  (%.2f)\n",
                sub_onto.RelationName(e.sub).c_str(),
                super_onto.RelationName(e.super).c_str(), e.score);
  }
  return 0;
}
