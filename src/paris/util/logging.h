#ifndef PARIS_UTIL_LOGGING_H_
#define PARIS_UTIL_LOGGING_H_

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace paris::util {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a level name as spelled on CLI flags: "debug", "info", "warning",
// "error", "none". nullopt for anything else.
std::optional<LogLevel> LogLevelFromName(std::string_view name);

// Where formatted lines go. The sink receives the already-filtered level
// and the complete line (prefix included, no trailing newline). Called
// under the logging mutex, so it may be a plain capture-by-reference
// lambda; keep it cheap. Passing nullptr restores the default stderr sink.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void SetLogSink(LogSink sink);

// Internal: filters on the level, formats the prefix
// `[<level-char> <seconds-since-start> t<thread>]`, and hands the line to
// the sink. The timestamp is monotonic (steady clock, matching obs::Span
// timings); the thread id is a dense per-process counter, 0 for the first
// logging thread.
void LogMessage(LogLevel level, const std::string& message);

// Stream-style log sink: `PARIS_LOG(kInfo) << "loaded " << n << " triples";`
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace paris::util

#define PARIS_LOG(severity) \
  ::paris::util::LogStream(::paris::util::LogLevel::severity)

#endif  // PARIS_UTIL_LOGGING_H_
