#include "paris/util/flags.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <limits>

namespace paris::util {

bool ParseFullInt64(const std::string& s, long long* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseFullDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Status ParseDuration(const std::string& s, const std::string& what,
                     double* out_seconds) {
  const Status bad = InvalidArgumentError(
      "invalid duration for " + what + ": '" + s +
      "' (expected NUMBER[ns|us|ms|s|m|h], e.g. 500ms or 2s)");
  if (s.empty()) return bad;
  // Split the trailing unit (letters) from the numeric prefix.
  size_t unit_start = s.size();
  while (unit_start > 0 && std::isalpha(static_cast<unsigned char>(
                               s[unit_start - 1]))) {
    --unit_start;
  }
  const std::string number = s.substr(0, unit_start);
  const std::string unit = s.substr(unit_start);
  double value = 0.0;
  if (!ParseFullDouble(number, &value)) return bad;
  double scale = 1.0;
  if (unit.empty() || unit == "s") {
    scale = 1.0;
  } else if (unit == "ns") {
    scale = 1e-9;
  } else if (unit == "us") {
    scale = 1e-6;
  } else if (unit == "ms") {
    scale = 1e-3;
  } else if (unit == "m") {
    scale = 60.0;
  } else if (unit == "h") {
    scale = 3600.0;
  } else {
    return bad;
  }
  const double seconds = value * scale;
  if (!(seconds >= 0.0)) {  // also rejects NaN
    return InvalidArgumentError("duration for " + what +
                                " must be non-negative: '" + s + "'");
  }
  *out_seconds = seconds;
  return OkStatus();
}

Status ParseSize(const std::string& s, const std::string& what,
                 size_t* out_bytes) {
  const Status bad = InvalidArgumentError(
      "invalid size for " + what + ": '" + s +
      "' (expected INTEGER[b|k|kb|m|mb|g|gb], e.g. 64k or 1g)");
  if (s.empty()) return bad;
  size_t unit_start = s.size();
  while (unit_start > 0 && std::isalpha(static_cast<unsigned char>(
                               s[unit_start - 1]))) {
    --unit_start;
  }
  std::string number = s.substr(0, unit_start);
  std::string unit = s.substr(unit_start);
  std::transform(unit.begin(), unit.end(), unit.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  long long value = 0;
  if (!ParseFullInt64(number, &value)) return bad;
  if (value < 0) {
    return InvalidArgumentError("size for " + what +
                                " must be non-negative: '" + s + "'");
  }
  unsigned long long scale = 1;
  if (unit.empty() || unit == "b") {
    scale = 1;
  } else if (unit == "k" || unit == "kb") {
    scale = 1ull << 10;
  } else if (unit == "m" || unit == "mb") {
    scale = 1ull << 20;
  } else if (unit == "g" || unit == "gb") {
    scale = 1ull << 30;
  } else {
    return bad;
  }
  const unsigned long long magnitude = static_cast<unsigned long long>(value);
  if (magnitude != 0 &&
      magnitude > std::numeric_limits<unsigned long long>::max() / scale) {
    return InvalidArgumentError("size for " + what + " overflows: '" + s +
                                "'");
  }
  const unsigned long long bytes = magnitude * scale;
  if (bytes > std::numeric_limits<size_t>::max()) {
    return InvalidArgumentError("size for " + what + " overflows: '" + s +
                                "'");
  }
  *out_bytes = static_cast<size_t>(bytes);
  return OkStatus();
}

namespace {

std::string JoinChoices(const std::vector<std::string>& choices) {
  std::string out;
  for (const auto& c : choices) {
    if (!out.empty()) out += "|";
    out += c;
  }
  return out;
}

}  // namespace

FlagParser::FlagParser(std::string program, std::string positional_usage)
    : program_(std::move(program)),
      positional_usage_(std::move(positional_usage)) {}

void FlagParser::Add(Flag flag) {
  assert(flag.name.rfind("--", 0) == 0 && "flag names must start with --");
  assert(Find(flag.name) == nullptr && "duplicate flag registration");
  flags_.push_back(std::move(flag));
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help,
                           const std::string& value_name) {
  Add({name, Type::kString, target, help, value_name, {}});
}

void FlagParser::AddInt(const std::string& name, int* target,
                        const std::string& help,
                        const std::string& value_name) {
  Add({name, Type::kInt, target, help, value_name, {}});
}

void FlagParser::AddSizeT(const std::string& name, size_t* target,
                          const std::string& help,
                          const std::string& value_name) {
  Add({name, Type::kSizeT, target, help, value_name, {}});
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help,
                           const std::string& value_name) {
  Add({name, Type::kDouble, target, help, value_name, {}});
}

void FlagParser::AddDuration(const std::string& name, double* target_seconds,
                             const std::string& help,
                             const std::string& value_name) {
  Add({name, Type::kDuration, target_seconds, help, value_name, {}});
}

void FlagParser::AddSize(const std::string& name, size_t* target_bytes,
                         const std::string& help,
                         const std::string& value_name) {
  Add({name, Type::kSize, target_bytes, help, value_name, {}});
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  Add({name, Type::kBool, target, help, "", {}});
}

void FlagParser::AddChoice(const std::string& name, std::string* target,
                           std::vector<std::string> choices,
                           const std::string& help) {
  Add({name, Type::kChoice, target, help, JoinChoices(choices),
       std::move(choices)});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagParser::Assign(const Flag& flag, const std::string& value) const {
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return OkStatus();
    case Type::kChoice: {
      for (const auto& choice : flag.choices) {
        if (value == choice) {
          *static_cast<std::string*>(flag.target) = value;
          return OkStatus();
        }
      }
      return InvalidArgumentError("invalid value for " + flag.name + ": '" +
                                  value + "' (expected " + flag.value_name +
                                  ")");
    }
    case Type::kInt: {
      long long v = 0;
      if (!ParseFullInt64(value, &v) || v < INT_MIN || v > INT_MAX) {
        return InvalidArgumentError("invalid integer for " + flag.name +
                                    ": '" + value + "'");
      }
      *static_cast<int*>(flag.target) = static_cast<int>(v);
      return OkStatus();
    }
    case Type::kSizeT: {
      long long v = 0;
      if (!ParseFullInt64(value, &v) || v < 0) {
        return InvalidArgumentError("invalid non-negative integer for " +
                                    flag.name + ": '" + value + "'");
      }
      *static_cast<size_t*>(flag.target) = static_cast<size_t>(v);
      return OkStatus();
    }
    case Type::kDouble: {
      double v = 0.0;
      if (!ParseFullDouble(value, &v)) {
        return InvalidArgumentError("invalid number for " + flag.name + ": '" +
                                    value + "'");
      }
      *static_cast<double*>(flag.target) = v;
      return OkStatus();
    }
    case Type::kDuration:
      return ParseDuration(value, flag.name,
                           static_cast<double*>(flag.target));
    case Type::kSize:
      return ParseSize(value, flag.name, static_cast<size_t*>(flag.target));
    case Type::kBool:
      return InternalError("bool flags take no value");
  }
  return InternalError("unhandled flag type");
}

Status FlagParser::Parse(int argc, char* const* argv,
                         std::vector<std::string>* positional) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return OkStatus();
    }
    if (arg.rfind("--", 0) != 0) {
      positional->push_back(arg);
      continue;
    }
    // Split "--flag=value" into name and inline value.
    std::string name = arg;
    std::string inline_value;
    bool has_inline_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      return InvalidArgumentError("unknown option: " + name +
                                  " (try --help)");
    }
    if (flag->type == Type::kBool) {
      if (has_inline_value) {
        return InvalidArgumentError(flag->name + " takes no value");
      }
      *static_cast<bool*>(flag->target) = true;
      continue;
    }
    std::string value;
    if (has_inline_value) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) {
        return InvalidArgumentError("missing value for " + flag->name);
      }
      value = argv[++i];
    }
    auto status = Assign(*flag, value);
    if (!status.ok()) return status;
  }
  return OkStatus();
}

std::string FlagParser::Usage() const {
  std::string out = "usage: " + program_;
  if (!positional_usage_.empty()) out += " " + positional_usage_;
  if (!flags_.empty()) out += " [options]";
  return out;
}

std::string FlagParser::Help() const {
  std::string out = Usage() + "\noptions:\n";
  // First pass: column width for aligned descriptions.
  size_t width = 0;
  auto spelled = [](const Flag& flag) {
    std::string s = flag.name;
    if (flag.type != Type::kBool) s += " " + flag.value_name;
    return s;
  };
  for (const auto& flag : flags_) {
    width = std::max(width, spelled(flag).size());
  }
  width = std::max(width, std::string("--help").size());
  for (const auto& flag : flags_) {
    std::string row = "  " + spelled(flag);
    row.append(width + 4 - spelled(flag).size(), ' ');
    out += row + flag.help + "\n";
  }
  out += "  --help";
  out.append(width - 2, ' ');
  out += "show this message\n";
  return out;
}

}  // namespace paris::util
