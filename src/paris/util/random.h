#ifndef PARIS_UTIL_RANDOM_H_
#define PARIS_UTIL_RANDOM_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace paris::util {

// Deterministic, seedable random source used throughout the synthetic data
// generators. All generation in this repository flows through explicitly
// seeded `Rng` instances so experiments are bit-reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // True with probability p (p clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  // Geometric-ish count: 1 + Geometric(p_continue). Used for "most people
  // live in one place, a few in several" cardinality profiles.
  int CountWithTail(double p_continue, int max_count) {
    int n = 1;
    while (n < max_count && Bernoulli(p_continue)) ++n;
    return n;
  }

  // Zipf-like index in [0, n): small indexes are much more likely. `skew`
  // of 0 degenerates to uniform.
  size_t ZipfIndex(size_t n, double skew);

  // Uniformly picks an element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  // Derives an independent child generator; used to decorrelate subsystem
  // streams from a single experiment seed.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace paris::util

#endif  // PARIS_UTIL_RANDOM_H_
