#ifndef PARIS_UTIL_FLAGS_H_
#define PARIS_UTIL_FLAGS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "paris/util/status.h"

namespace paris::util {

// Strict full-consumption numeric parses ("3abc" and "" are errors, unlike
// atoi/atof). Shared by the flag parser and by tools parsing positional
// arguments.
bool ParseFullInt64(const std::string& s, long long* out);
bool ParseFullDouble(const std::string& s, double* out);

// Duration parse into seconds: a number plus an optional unit suffix from
// {ns, us, ms, s, m, h} ("500ms", "2s", "1.5m"). A bare number means
// seconds. Negative durations are rejected. On failure returns
// InvalidArgument naming `what` (flag or field name) and the accepted
// units.
Status ParseDuration(const std::string& s, const std::string& what,
                     double* out_seconds);

// Size parse into bytes: an integer plus an optional binary-scale suffix
// from {b, k, kb, m, mb, g, gb} ("64k" = 65536, "1g" = 1<<30). A bare
// number means bytes. Rejects negatives, fractions, and values that
// overflow size_t. On failure returns InvalidArgument naming `what`.
Status ParseSize(const std::string& s, const std::string& what,
                 size_t* out_bytes);

// Minimal typed command-line flag parser shared by the CLI tools, replacing
// their hand-rolled argv loops. Flags are registered against caller-owned
// storage (which also supplies the default), then `Parse` walks argv:
//
//   paris::util::FlagParser parser("paris_align", "LEFT.nt RIGHT.nt");
//   parser.AddString("--output", &output_prefix, "write PREFIX_*.tsv");
//   parser.AddInt("--max-iterations", &max_iterations, "fixpoint cap");
//   parser.AddBool("--stats", &stats_only, "print statistics and exit");
//   std::vector<std::string> positional;
//   auto status = parser.Parse(argc, argv, &positional);
//
// Both `--flag value` and `--flag=value` spellings are accepted; `--help`
// is always recognized and reported via `help_requested()`. Unknown flags,
// missing values, and malformed numbers come back as InvalidArgument
// statuses naming the offending flag. `Help()` renders a usage block from
// the registered flags, so the tools never hand-maintain usage strings.
class FlagParser {
 public:
  // `program` names the binary in the usage line; `positional_usage`
  // describes the expected positional arguments ("LEFT.nt RIGHT.nt").
  FlagParser(std::string program, std::string positional_usage);

  // `name` must include the leading dashes ("--output"). `value_name` is
  // the placeholder shown in the usage text ("PREFIX"). The current value
  // of the target is the default.
  void AddString(const std::string& name, std::string* target,
                 const std::string& help,
                 const std::string& value_name = "VALUE");
  void AddInt(const std::string& name, int* target, const std::string& help,
              const std::string& value_name = "N");
  void AddSizeT(const std::string& name, size_t* target,
                const std::string& help, const std::string& value_name = "N");
  void AddDouble(const std::string& name, double* target,
                 const std::string& help, const std::string& value_name = "X");
  // Duration flag parsed with ParseDuration into seconds ("500ms", "2s",
  // bare numbers mean seconds, so plain-seconds spellings keep working).
  void AddDuration(const std::string& name, double* target_seconds,
                   const std::string& help,
                   const std::string& value_name = "DURATION");
  // Size flag parsed with ParseSize into bytes ("64k", "1g", bare numbers
  // mean bytes).
  void AddSize(const std::string& name, size_t* target_bytes,
               const std::string& help,
               const std::string& value_name = "SIZE");
  // Presence flag: no value, sets the target to true when seen.
  void AddBool(const std::string& name, bool* target, const std::string& help);
  // String flag restricted to the given values; anything else is an
  // InvalidArgument naming the choices. The usage text shows "a|b|c".
  void AddChoice(const std::string& name, std::string* target,
                 std::vector<std::string> choices, const std::string& help);

  // Consumes argv[1..argc); non-flag arguments are appended to
  // `positional`. Stops early (returning OK) when --help is seen.
  Status Parse(int argc, char* const* argv, std::vector<std::string>* positional);

  bool help_requested() const { return help_requested_; }

  // One-line usage summary ("usage: paris_align LEFT.nt RIGHT.nt [options]").
  std::string Usage() const;
  // Full help block: the usage line plus one aligned row per flag.
  std::string Help() const;

 private:
  enum class Type {
    kString,
    kInt,
    kSizeT,
    kDouble,
    kBool,
    kChoice,
    kDuration,
    kSize
  };

  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string value_name;
    std::vector<std::string> choices;  // kChoice only
  };

  void Add(Flag flag);
  const Flag* Find(const std::string& name) const;
  Status Assign(const Flag& flag, const std::string& value) const;

  std::string program_;
  std::string positional_usage_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace paris::util

#endif  // PARIS_UTIL_FLAGS_H_
