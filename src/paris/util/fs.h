#ifndef PARIS_UTIL_FS_H_
#define PARIS_UTIL_FS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "paris/util/fault_injection.h"
#include "paris/util/status.h"

namespace paris::util {

// CheckFault() plus the transient-errno policy of the IO layer: an injected
// EINTR/EAGAIN is retried with bounded exponential backoff — each retry is
// counted in IoRetryCount() and consults the injector again, so a "once"
// transient spec succeeds on the retry while a sticky one keeps failing —
// and only a persistent fault reaches the caller. Every guarded IO call
// site uses this so transient injected faults exercise the retry path
// end-to-end instead of failing the operation.
FaultAction CheckFaultRetryingTransient(std::string_view point);

// Crash-safe file replacement: bytes are streamed to `<path>.tmp`, and
// Commit() makes them visible with the durable sequence
//     flush -> fsync(tmp) -> rename(tmp, path) -> fsync(parent dir)
// so at every instant `path` is either the complete previous file or the
// complete new one — never truncated, torn, or half-new. If the writer is
// destroyed without a successful Commit() (error, early return, crash
// before rename), the previous file is untouched and the tmp file is
// unlinked (or left behind by a crash; loaders never look at *.tmp).
//
// Transient IO failures (EINTR/EAGAIN) are retried with bounded exponential
// backoff; everything else surfaces as a Status from Commit(). Write errors
// in stream() are sticky: they set failbit and are reported by Commit(), so
// callers only need to check once.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // The ostream staging into the tmp file. Valid until Commit().
  std::ostream& stream();

  // Flushes, fsyncs, renames over `path`, fsyncs the parent directory.
  // Returns the first error hit anywhere in the write sequence; on error
  // the tmp file is removed and `path` still holds its previous contents.
  Status Commit();

  const std::string& path() const { return path_; }

 private:
  struct Impl;
  std::string path_;
  std::unique_ptr<Impl> impl_;
};

// Atomically replaces `path` with `contents` (AtomicFileWriter one-shot).
Status WriteFileAtomic(const std::string& path, std::string_view contents);

// Process-wide count of transient IO errors (EINTR/EAGAIN) that were
// retried. Exported as the `io_retries` recovery gauge.
uint64_t IoRetryCount();
void ResetIoRetryCount();

namespace internal {
// Counts one transient-IO retry in IoRetryCount(); for the net layer's
// retry loops, which live outside this translation unit.
void CountIoRetry();
}  // namespace internal

}  // namespace paris::util

#endif  // PARIS_UTIL_FS_H_
