#ifndef PARIS_UTIL_STRING_UTIL_H_
#define PARIS_UTIL_STRING_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paris::util {

// ASCII lowercase copy of `s`.
std::string ToLowerAscii(std::string_view s);

// Removes every non-alphanumeric ASCII character and lowercases the rest.
// This is the string normalization of §6.3 of the paper (used to make
// "213/467-1108" equal to "213-467-1108").
std::string NormalizeAlnum(std::string_view s);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

// Splits on a single character; keeps empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Levenshtein edit distance with unit costs. O(|a|*|b|) time, O(min) space.
size_t EditDistance(std::string_view a, std::string_view b);

// Edit distance with an early-exit bound: returns `bound + 1` as soon as the
// distance provably exceeds `bound` (banded computation).
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound);

// 1 - EditDistance / max(len): in [0,1], 1 iff equal, 0 iff disjoint length
// budget exhausted. Returns 1.0 for two empty strings.
double EditSimilarity(std::string_view a, std::string_view b);

// The character trigrams of `s` packed into 32-bit keys (for the fuzzy
// literal matcher's inverted index). Strings shorter than 3 characters get a
// single padded trigram.
std::vector<uint32_t> TrigramKeys(std::string_view s);

}  // namespace paris::util

#endif  // PARIS_UTIL_STRING_UTIL_H_
