#include "paris/util/fs.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <streambuf>
#include <thread>
#include <vector>

#include "paris/util/fault_injection.h"

#if defined(__unix__) || defined(__APPLE__)
#define PARIS_HAS_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace paris::util {
namespace {

std::atomic<uint64_t> g_io_retries{0};

// EINTR/EAGAIN are worth retrying; everything else is a real failure.
bool IsTransientErrno(int err) {
  return err == EINTR || err == EAGAIN
#if defined(EWOULDBLOCK)
         || err == EWOULDBLOCK
#endif
      ;  // NOLINT(whitespace/semicolon)
}

// Runs `op` (>= 0 on success, -1 with errno set on failure), retrying
// transient errnos with exponential backoff: 1, 2, 4, 8, 16 ms.
template <typename Op>
long RetryTransient(Op&& op) {
  constexpr int kMaxRetries = 5;
  for (int attempt = 0;; ++attempt) {
    errno = 0;
    const long result = op();
    if (result >= 0 || !IsTransientErrno(errno) || attempt >= kMaxRetries) {
      return result;
    }
    g_io_retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
  }
}

}  // namespace

uint64_t IoRetryCount() { return g_io_retries.load(std::memory_order_relaxed); }
void ResetIoRetryCount() { g_io_retries.store(0, std::memory_order_relaxed); }

namespace internal {
void CountIoRetry() { g_io_retries.fetch_add(1, std::memory_order_relaxed); }
}  // namespace internal

FaultAction CheckFaultRetryingTransient(std::string_view point) {
  constexpr int kMaxRetries = 5;
  FaultAction fault = CheckFault(point);
  for (int attempt = 0; fault.kind == FaultKind::kErrno &&
                        IsTransientErrno(fault.error_number) &&
                        attempt < kMaxRetries;
       ++attempt) {
    g_io_retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
    fault = CheckFault(point);
  }
  return fault;
}

// The staging streambuf: buffers into 64 KiB chunks and writes them to the
// tmp file, folding every failure into one sticky `first_error`.
struct AtomicFileWriter::Impl : public std::streambuf {
  std::string tmp_path;
  std::string final_path;
#if PARIS_HAS_POSIX_IO
  int fd = -1;
#else
  std::FILE* file = nullptr;
#endif
  bool committed = false;
  Status first_error;
  std::vector<char> buffer;
  std::ostream out{this};

  explicit Impl(std::string path)
      : tmp_path(path + ".tmp"),
        final_path(std::move(path)),
        buffer(1 << 16) {
    setp(buffer.data(), buffer.data() + buffer.size());
    const FaultAction fault = CheckFaultRetryingTransient("atomic_write.open");
    if (fault.kind == FaultKind::kErrno) {
      Fail(fault.error_number, "open");
      return;
    }
#if PARIS_HAS_POSIX_IO
    fd = static_cast<int>(RetryTransient([&] {
      return static_cast<long>(
          ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
    }));
    if (fd < 0) Fail(errno, "open");
#else
    file = std::fopen(tmp_path.c_str(), "wb");
    if (file == nullptr) Fail(errno, "open");
#endif
  }

  ~Impl() override {
    CloseHandle();
    if (!committed) std::remove(tmp_path.c_str());
  }

  void Fail(int err, const char* op) {
    if (!first_error.ok()) return;
    first_error = InternalError(std::string(op) + " failed for '" + tmp_path +
                                "': " + std::strerror(err));
  }

  bool RawWrite(const char* data, size_t size) {
#if PARIS_HAS_POSIX_IO
    while (size > 0) {
      const long n = RetryTransient(
          [&] { return static_cast<long>(::write(fd, data, size)); });
      if (n < 0) return false;
      data += n;
      size -= static_cast<size_t>(n);
    }
    return true;
#else
    return std::fwrite(data, 1, size, file) == size;
#endif
  }

  void WriteBytes(const char* data, size_t size) {
    if (!first_error.ok() || size == 0) return;
    const FaultAction fault =
        CheckFaultRetryingTransient("atomic_write.write");
    if (fault.kind == FaultKind::kErrno) {
      Fail(fault.error_number, "write");
      return;
    }
    std::vector<char> mutated;
    if (fault.kind == FaultKind::kBitFlip) {
      // Silent in-flight corruption: the bytes land but one is wrong. Only
      // the loader-side checksum can catch this.
      mutated.assign(data, data + size);
      mutated[size / 2] = static_cast<char>(mutated[size / 2] ^ 0x20);
      data = mutated.data();
    } else if (fault.kind == FaultKind::kShortWrite) {
      // Torn write: half the bytes reach the device, then it fails. The
      // tmp file is abandoned; the previous `final_path` must survive.
      (void)RawWrite(data, size / 2);
      Fail(EIO, "short write");
      return;
    }
    if (!RawWrite(data, size)) Fail(errno, "write");
  }

  void FlushBuffer() {
    const size_t pending = static_cast<size_t>(pptr() - pbase());
    if (pending > 0) WriteBytes(pbase(), pending);
    setp(buffer.data(), buffer.data() + buffer.size());
  }

  int_type overflow(int_type ch) override {
    FlushBuffer();
    if (!first_error.ok()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
      return ch;
    }
    return 0;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    if (n <= 0) return 0;
    if (static_cast<size_t>(n) <= static_cast<size_t>(epptr() - pptr())) {
      std::memcpy(pptr(), s, static_cast<size_t>(n));
      pbump(static_cast<int>(n));
      return n;
    }
    FlushBuffer();
    if (static_cast<size_t>(n) < buffer.size()) {
      std::memcpy(pbase(), s, static_cast<size_t>(n));
      pbump(static_cast<int>(n));
    } else {
      WriteBytes(s, static_cast<size_t>(n));
    }
    return first_error.ok() ? n : 0;
  }

  int sync() override {
    FlushBuffer();
    return first_error.ok() ? 0 : -1;
  }

  void CloseHandle() {
#if PARIS_HAS_POSIX_IO
    if (fd >= 0) {
      (void)RetryTransient([&] { return static_cast<long>(::close(fd)); });
      fd = -1;
    }
#else
    if (file != nullptr) {
      std::fclose(file);
      file = nullptr;
    }
#endif
  }

  void FsyncFile() {
    const FaultAction fault =
        CheckFaultRetryingTransient("atomic_write.fsync_file");
    if (fault.kind == FaultKind::kErrno) {
      Fail(fault.error_number, "fsync");
      return;
    }
#if PARIS_HAS_POSIX_IO
    if (RetryTransient([&] { return static_cast<long>(::fsync(fd)); }) < 0) {
      Fail(errno, "fsync");
    }
#else
    std::fflush(file);
#endif
  }

  void Rename() {
    const FaultAction fault = CheckFaultRetryingTransient("atomic_write.rename");
    if (fault.kind == FaultKind::kErrno) {
      Fail(fault.error_number, "rename");
      return;
    }
    if (RetryTransient([&] {
          return static_cast<long>(
              std::rename(tmp_path.c_str(), final_path.c_str()));
        }) < 0) {
      Fail(errno, "rename");
    }
  }

  // Makes the rename itself durable. Filesystems that cannot fsync a
  // directory (EINVAL/ENOTSUP/EROFS) are tolerated: the data file is
  // already complete and synced.
  void FsyncParentDir() {
    const FaultAction fault =
        CheckFaultRetryingTransient("atomic_write.fsync_dir");
    if (fault.kind == FaultKind::kErrno) {
      Fail(fault.error_number, "fsync(dir)");
      return;
    }
#if PARIS_HAS_POSIX_IO
    const size_t slash = final_path.find_last_of('/');
    std::string dir =
        slash == std::string::npos ? "." : final_path.substr(0, slash);
    if (dir.empty()) dir = "/";
    int flags = O_RDONLY;
#if defined(O_DIRECTORY)
    flags |= O_DIRECTORY;
#endif
    const int dir_fd = static_cast<int>(RetryTransient(
        [&] { return static_cast<long>(::open(dir.c_str(), flags)); }));
    if (dir_fd < 0) {
      Fail(errno, "open(dir)");
      return;
    }
    if (RetryTransient([&] { return static_cast<long>(::fsync(dir_fd)); }) <
            0 &&
        errno != EINVAL && errno != ENOTSUP && errno != EROFS) {
      Fail(errno, "fsync(dir)");
    }
    (void)RetryTransient([&] { return static_cast<long>(::close(dir_fd)); });
#endif
  }

  Status Commit() {
    out.flush();
    if (first_error.ok()) FsyncFile();
    CloseHandle();
    if (first_error.ok()) Rename();
    if (first_error.ok()) {
      committed = true;
      FsyncParentDir();
    }
    if (!committed) std::remove(tmp_path.c_str());
    return first_error;
  }
};

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), impl_(std::make_unique<Impl>(path_)) {}

AtomicFileWriter::~AtomicFileWriter() = default;

std::ostream& AtomicFileWriter::stream() { return impl_->out; }

Status AtomicFileWriter::Commit() { return impl_->Commit(); }

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  AtomicFileWriter writer(path);
  writer.stream().write(contents.data(),
                        static_cast<std::streamsize>(contents.size()));
  return writer.Commit();
}

}  // namespace paris::util
