#ifndef PARIS_UTIL_NET_H_
#define PARIS_UTIL_NET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "paris/util/status.h"

namespace paris::util {

// Thin RAII wrappers over POSIX TCP sockets, shared by parisd, the client
// CLI, and the service bench. All blocking calls route transient errnos
// (EINTR/EAGAIN) through the same bounded-backoff retry policy as the file
// IO layer (counted in IoRetryCount()), and every network operation passes
// a fault point — net.accept / net.recv / net.send — so the fault-injection
// matrix covers network IO with the exact machinery the durability tests
// already use. On platforms without POSIX sockets every entry point
// returns kUnimplemented.

// One connected stream socket. Move-only; the destructor closes the fd.
class SocketConn {
 public:
  SocketConn() = default;
  // Adopts an already-connected fd (from SocketListener::Accept).
  explicit SocketConn(int fd) : fd_(fd) {}
  ~SocketConn();

  SocketConn(SocketConn&& other) noexcept;
  SocketConn& operator=(SocketConn&& other) noexcept;
  SocketConn(const SocketConn&) = delete;
  SocketConn& operator=(const SocketConn&) = delete;

  // Connects to host:port (numeric IPv4 or a resolvable name).
  static StatusOr<SocketConn> Connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all `size` bytes. Injected "short" faults drop half the payload
  // then fail (a torn send); "bitflip" corrupts one byte in flight.
  Status SendAll(const void* data, size_t size);

  // Reads up to `size` bytes; returns the count, 0 on orderly peer close.
  StatusOr<size_t> RecvSome(void* data, size_t size);

  // Reads exactly `size` bytes. Returns false on a clean EOF before the
  // first byte (peer finished); EOF mid-buffer is a kDataLoss error
  // (truncated stream).
  StatusOr<bool> RecvAll(void* data, size_t size);

  // Half-close both directions without releasing the fd: a blocked
  // SendAll/RecvSome/RecvAll on *another thread* returns promptly (EOF or
  // EPIPE). The one cross-thread operation SocketConn supports — Close()
  // and the destructor must stay with the owning thread.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

// A listening TCP socket with a self-pipe so Close() — from any thread —
// wakes a blocked Accept(), which then returns kCancelled. Move-only; do
// not move while another thread is blocked in Accept().
class SocketListener {
 public:
  SocketListener() = default;
  ~SocketListener();

  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&& other) noexcept;
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Binds and listens on host:port; port 0 picks an ephemeral port,
  // readable afterwards via port().
  static StatusOr<SocketListener> Listen(const std::string& host,
                                         uint16_t port, int backlog = 64);

  bool valid() const { return listen_fd_ >= 0; }
  // The actual bound port (resolves port 0).
  uint16_t port() const { return port_; }

  // Blocks until a connection arrives (returns it) or Close() is called
  // (returns kCancelled).
  StatusOr<SocketConn> Accept();

  // Stops accepting and wakes any blocked Accept(). Safe to call from a
  // different thread than the accept loop, and idempotent.
  void Close();

 private:
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace paris::util

#endif  // PARIS_UTIL_NET_H_
