#include "paris/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace paris::util {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};
std::mutex g_log_mutex;
LogSink g_sink;  // guarded by g_log_mutex; empty = stderr

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kNone:
      return '?';
  }
  return '?';
}

// Seconds since the first log call (steady clock — immune to wall-clock
// adjustments, comparable to obs::Span durations).
double SecondsSinceStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Dense per-process thread id (0, 1, 2, ... in first-log order) — stable
// and readable, unlike std::thread::id.
int DenseThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(level); }

LogLevel GetLogLevel() { return g_min_level.load(); }

std::optional<LogLevel> LogLevelFromName(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warning") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  if (name == "none") return LogLevel::kNone;
  return std::nullopt;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_sink = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_min_level.load())) return;
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "[%c %.3f t%d]", LevelChar(level),
                SecondsSinceStart(), DenseThreadId());
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_sink) {
    g_sink(level, std::string(prefix) + " " + message);
  } else {
    std::fprintf(stderr, "%s %s\n", prefix, message.c_str());
  }
}

}  // namespace paris::util
