#ifndef PARIS_UTIL_FAULT_INJECTION_H_
#define PARIS_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "paris/util/status.h"

namespace paris::util {

// Deterministic fault injection for the IO layer. Disarmed (the default) a
// fault point costs one relaxed atomic load. Armed via Arm() or the
// PARIS_FAULT_INJECT environment variable (";"-separated
// "point:nth:kind[:mode]" specs), each named fault point counts its hits and
// fires the configured fault on the nth one.
//
// Kinds: enospc | eintr | eagain | short | bitflip | abort.
//   - The errno kinds make the guarded IO call fail with that errno. EINTR /
//     EAGAIN are transient, so a non-sticky spec exercises the fs-layer
//     retry path; ENOSPC models a full disk.
//   - "short" truncates the write actually issued and "bitflip" XORs one
//     byte of the buffer in flight — both only have an effect at
//     write-style points; read-style points ignore them.
//   - "abort" calls std::abort() at the fault point (a simulated crash).
//
// Mode: "sticky" (every hit >= nth fires) or "once" (exactly the nth hit).
// Defaults: enospc is sticky (a full disk stays full); everything else once.
//
// `nth` is a positive integer, or "rand" for a value in [1, 16] derived
// deterministically from PARIS_FAULT_SEED (default 0) and the point name —
// the same seed always selects the same operation.

enum class FaultKind : uint8_t {
  kNone = 0,
  kErrno,
  kShortWrite,
  kBitFlip,
  kAbort,
};

// What a fault point should do for the current operation. kAbort never
// reaches the caller (Check() aborts the process).
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  int error_number = 0;  // set for kErrno
};

class FaultInjector {
 public:
  // The process-wide injector; every fault point reports here.
  static FaultInjector& Global();

  // True when any spec is armed. This is the fast path: fault points bail
  // out on one relaxed load when disarmed.
  static bool armed() { return armed_flag_.load(std::memory_order_relaxed); }

  // Arms one "point:nth:kind[:mode]" spec (see file comment).
  Status Arm(std::string_view spec);
  // Arms every ";"-separated spec in PARIS_FAULT_INJECT (no-op when unset)
  // and reads PARIS_FAULT_SEED. Returns the first parse error, if any.
  Status ArmFromEnv();
  // Disarms everything and clears hit counters.
  void Reset();
  // Seed for "rand" hit counts; call before Arm().
  void SetSeed(uint64_t seed);

  // Records a hit on `point` and returns the action to apply (kNone almost
  // always). Prefer the CheckFault() wrapper below.
  FaultAction Check(std::string_view point);

 private:
  struct ArmedSpec {
    std::string point;
    uint64_t nth = 1;
    FaultKind kind = FaultKind::kNone;
    int error_number = 0;
    bool sticky = false;
    uint64_t hits = 0;
  };

  mutable std::mutex mu_;
  std::vector<ArmedSpec> specs_;
  uint64_t seed_ = 0;
  static std::atomic<bool> armed_flag_;
};

// The canonical list of fault points threaded through the IO layer. The
// fault-matrix test iterates this so every registered point is exercised;
// keep it in sync with the CheckFault() call sites.
std::span<const std::string_view> RegisteredFaultPoints();

// The one call sites use: near-zero cost when the injector is disarmed.
inline FaultAction CheckFault(std::string_view point) {
  if (!FaultInjector::armed()) return {};
  return FaultInjector::Global().Check(point);
}

}  // namespace paris::util

#endif  // PARIS_UTIL_FAULT_INJECTION_H_
