#include "paris/util/random.h"

#include <algorithm>
#include <cmath>

namespace paris::util {

size_t Rng::ZipfIndex(size_t n, double skew) {
  assert(n > 0);
  if (n == 1) return 0;
  if (skew <= 0.0) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }
  // Inverse-CDF approximation for a power-law over ranks 1..n: rank ~
  // u^(-1/(skew)) style transform, clamped. Cheap and adequate for workload
  // shaping (we do not need an exact Zipf sampler).
  const double u = UniformDouble();
  const double exponent = 1.0 / (1.0 + skew);
  const double r = std::pow(static_cast<double>(n), exponent);
  double x = std::pow(u * (r - 1.0) + 1.0, 1.0 + skew) - 1.0;
  size_t index = static_cast<size_t>(x);
  return std::min(index, n - 1);
}

}  // namespace paris::util
