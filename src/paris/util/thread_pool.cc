#include "paris/util/thread_pool.h"

#include <algorithm>

namespace paris::util {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t total,
                             const std::function<void(size_t, size_t)>& fn) {
  if (total == 0) return;
  if (threads_.empty()) {
    fn(0, total);
    return;
  }
  // Over-decompose, then let workers claim chunks off a shared counter:
  // fixed boundaries keep the fn(begin, end) calls identical across runs and
  // pool sizes, while dynamic claiming keeps every worker busy until the
  // whole range is drained, even when per-index cost is heavily skewed.
  const size_t num_chunks = std::min(total, threads_.size() * 8);
  const size_t chunk = (total + num_chunks - 1) / num_chunks;
  std::atomic<size_t> next{0};
  const size_t num_workers = std::min(threads_.size(), num_chunks);
  for (size_t w = 0; w < num_workers; ++w) {
    // Capturing locals by reference is safe: Wait() below blocks until every
    // claimed chunk has run.
    Schedule([&next, &fn, chunk, total] {
      while (true) {
        const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= total) return;
        fn(begin, std::min(begin + chunk, total));
      }
    });
  }
  Wait();
}

void ThreadPool::ParallelForShards(
    size_t total, const std::function<bool(size_t, size_t)>& fn) {
  if (total == 0) return;
  if (threads_.empty()) {
    for (size_t shard = 0; shard < total; ++shard) {
      if (!fn(shard, 0)) return;
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> stop{false};
  const size_t num_workers = std::min(threads_.size(), total);
  for (size_t w = 0; w < num_workers; ++w) {
    // Capturing locals by reference is safe: Wait() below blocks until every
    // claimed shard has run. `w` is the worker's stable scratch slot.
    Schedule([&next, &stop, &fn, total, w] {
      while (!stop.load(std::memory_order_acquire)) {
        const size_t shard = next.fetch_add(1, std::memory_order_relaxed);
        if (shard >= total) return;
        if (!fn(shard, w)) {
          stop.store(true, std::memory_order_release);
          return;
        }
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace paris::util
