#ifndef PARIS_UTIL_STATUS_H_
#define PARIS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace paris::util {

// Error codes for the subset of failure modes this library can produce.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kCancelled = 8,
  // On-disk bytes are unrecoverably corrupt (checksum mismatch, truncation,
  // torn section). Distinct from kInvalidArgument ("wrong kind of file"):
  // callers may safely fall back to recompute on kDataLoss, never on
  // config/usage errors.
  kDataLoss = 9,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
// ...).
std::string_view StatusCodeName(StatusCode code);

// A lightweight absl::Status-style error carrier. The library does not use
// exceptions (per the style guide); fallible operations return `Status` or
// `StatusOr<T>`.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status CancelledError(std::string message);
Status DataLossError(std::string message);

// Value-or-error, in the spirit of absl::StatusOr. `value()` must only be
// called when `ok()`.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so functions can `return value;` / `return status;`.
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace paris::util

#endif  // PARIS_UTIL_STATUS_H_
