#include "paris/util/fault_injection.h"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "paris/util/logging.h"

namespace paris::util {
namespace {

// Keep in sync with every CheckFault() call site in the IO layer.
constexpr std::string_view kRegisteredPoints[] = {
    "atomic_write.open",      "atomic_write.write",
    "atomic_write.fsync_file", "atomic_write.rename",
    "atomic_write.fsync_dir", "mmap.open",
    "mmap.map",               "snapshot.read",
    "checkpoint.manifest",    "net.accept",
    "net.recv",               "net.send",
};

// splitmix64: one deterministic draw per (seed, point) pair.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashPoint(std::string_view point) {
  uint64_t h = 14695981039346656037ull;
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::atomic<bool> FaultInjector::armed_flag_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::Arm(std::string_view spec) {
  // point:nth:kind[:mode]
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t colon = spec.find(':', start);
    if (colon == std::string_view::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4) {
    return InvalidArgumentError("fault spec must be point:nth:kind[:mode]: '" +
                                std::string(spec) + "'");
  }

  ArmedSpec armed;
  armed.point = std::string(parts[0]);
  bool known = false;
  for (std::string_view p : kRegisteredPoints) known |= (p == armed.point);
  if (!known) {
    return InvalidArgumentError("unknown fault point '" + armed.point + "'");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (parts[1] == "rand") {
    armed.nth = 1 + Mix(seed_ ^ HashPoint(armed.point)) % 16;
  } else {
    uint64_t nth = 0;
    for (char c : parts[1]) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("fault spec nth must be a number or "
                                    "'rand': '" +
                                    std::string(spec) + "'");
      }
      nth = nth * 10 + static_cast<uint64_t>(c - '0');
    }
    if (nth == 0) {
      return InvalidArgumentError("fault spec nth must be >= 1: '" +
                                  std::string(spec) + "'");
    }
    armed.nth = nth;
  }

  const std::string_view kind = parts[2];
  if (kind == "enospc") {
    armed.kind = FaultKind::kErrno;
    armed.error_number = ENOSPC;
    armed.sticky = true;  // a full disk stays full
  } else if (kind == "eintr") {
    armed.kind = FaultKind::kErrno;
    armed.error_number = EINTR;
  } else if (kind == "eagain") {
    armed.kind = FaultKind::kErrno;
    armed.error_number = EAGAIN;
  } else if (kind == "short") {
    armed.kind = FaultKind::kShortWrite;
  } else if (kind == "bitflip") {
    armed.kind = FaultKind::kBitFlip;
  } else if (kind == "abort") {
    armed.kind = FaultKind::kAbort;
  } else {
    return InvalidArgumentError("unknown fault kind '" + std::string(kind) +
                                "' in '" + std::string(spec) + "'");
  }
  if (parts.size() == 4) {
    if (parts[3] == "sticky") {
      armed.sticky = true;
    } else if (parts[3] == "once") {
      armed.sticky = false;
    } else {
      return InvalidArgumentError("fault spec mode must be sticky|once: '" +
                                  std::string(spec) + "'");
    }
  }

  specs_.push_back(std::move(armed));
  armed_flag_.store(true, std::memory_order_relaxed);
  return OkStatus();
}

Status FaultInjector::ArmFromEnv() {
  if (const char* seed_env = std::getenv("PARIS_FAULT_SEED")) {
    SetSeed(std::strtoull(seed_env, nullptr, 10));
  }
  const char* specs = std::getenv("PARIS_FAULT_INJECT");
  if (specs == nullptr || *specs == '\0') return OkStatus();
  std::string_view rest(specs);
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    const std::string_view one =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (one.empty()) continue;
    Status status = Arm(one);
    if (!status.ok()) return status;
    PARIS_LOG(kWarning) << "fault injection armed: " << one;
  }
  return OkStatus();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  specs_.clear();
  seed_ = 0;
  armed_flag_.store(false, std::memory_order_relaxed);
}

void FaultInjector::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

FaultAction FaultInjector::Check(std::string_view point) {
  FaultAction action;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ArmedSpec& spec : specs_) {
      if (spec.point != point) continue;
      ++spec.hits;
      const bool fire =
          spec.sticky ? spec.hits >= spec.nth : spec.hits == spec.nth;
      if (!fire) continue;
      action.kind = spec.kind;
      action.error_number = spec.error_number;
      break;
    }
  }
  if (action.kind == FaultKind::kAbort) {
    PARIS_LOG(kWarning) << "fault injection: aborting at '" << point << "'";
    std::abort();
  }
  return action;
}

std::span<const std::string_view> RegisteredFaultPoints() {
  return kRegisteredPoints;
}

}  // namespace paris::util
