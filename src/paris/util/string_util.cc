#include "paris/util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdint>

namespace paris::util {

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string NormalizeAlnum(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      out.push_back(static_cast<char>(std::tolower(uc)));
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is now the shorter string; row has |b|+1 entries.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > bound) return bound + 1;
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    size_t row_min = row[0];
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
      row_min = std::min(row_min, row[j]);
    }
    if (row_min > bound) return bound + 1;
  }
  return std::min(row[b.size()], bound + 1);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  const size_t dist = EditDistance(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(max_len);
}

std::vector<uint32_t> TrigramKeys(std::string_view s) {
  std::vector<uint32_t> keys;
  auto pack = [](unsigned char a, unsigned char b, unsigned char c) {
    return (static_cast<uint32_t>(a) << 16) | (static_cast<uint32_t>(b) << 8) |
           static_cast<uint32_t>(c);
  };
  if (s.size() < 3) {
    unsigned char c0 = s.size() > 0 ? static_cast<unsigned char>(s[0]) : 0;
    unsigned char c1 = s.size() > 1 ? static_cast<unsigned char>(s[1]) : 0;
    keys.push_back(pack(c0, c1, 0));
    return keys;
  }
  keys.reserve(s.size() - 2);
  for (size_t i = 0; i + 2 < s.size(); ++i) {
    keys.push_back(pack(static_cast<unsigned char>(s[i]),
                        static_cast<unsigned char>(s[i + 1]),
                        static_cast<unsigned char>(s[i + 2])));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace paris::util
