#include "paris/util/net.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "paris/util/fault_injection.h"
#include "paris/util/fs.h"

#if defined(__unix__) || defined(__APPLE__)
#define PARIS_HAS_POSIX_NET 1
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace paris::util {

#if PARIS_HAS_POSIX_NET

namespace {

bool IsTransientErrno(int err) {
  return err == EINTR || err == EAGAIN
#if defined(EWOULDBLOCK)
         || err == EWOULDBLOCK
#endif
      ;  // NOLINT(whitespace/semicolon)
}

// Same policy as the file IO layer: transient errnos retry with bounded
// exponential backoff, counted in IoRetryCount().
template <typename Op>
long RetryTransient(Op&& op) {
  constexpr int kMaxRetries = 5;
  for (int attempt = 0;; ++attempt) {
    errno = 0;
    const long result = op();
    if (result >= 0 || !IsTransientErrno(errno) || attempt >= kMaxRetries) {
      return result;
    }
    internal::CountIoRetry();
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
  }
}

Status ErrnoError(const char* op, int err) {
  return InternalError(std::string(op) + " failed: " + std::strerror(err));
}

#if !defined(MSG_NOSIGNAL)
constexpr int MSG_NOSIGNAL = 0;  // macOS: suppressed via SO_NOSIGPIPE instead
#endif

}  // namespace

SocketConn::~SocketConn() { Close(); }

SocketConn::SocketConn(SocketConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

SocketConn& SocketConn::operator=(SocketConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void SocketConn::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void SocketConn::Close() {
  if (fd_ >= 0) {
    (void)RetryTransient([&] { return static_cast<long>(::close(fd_)); });
    fd_ = -1;
  }
}

StatusOr<SocketConn> SocketConn::Connect(const std::string& host,
                                         uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0) {
    return InvalidArgumentError("cannot resolve '" + host +
                                "': " + ::gai_strerror(rc));
  }
  Status last = InternalError("no addresses for '" + host + "'");
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    const int fd = static_cast<int>(RetryTransient([&] {
      return static_cast<long>(
          ::socket(a->ai_family, a->ai_socktype, a->ai_protocol));
    }));
    if (fd < 0) {
      last = ErrnoError("socket", errno);
      continue;
    }
    const int one = 1;
#if defined(SO_NOSIGPIPE)
    ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
    // Request/reply framing sends small writes; without TCP_NODELAY, Nagle
    // holds the second segment of every frame for the peer's delayed ACK
    // (~40ms), turning a microsecond lookup into a ~90ms round trip.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const long conn = RetryTransient([&] {
      const long r =
          static_cast<long>(::connect(fd, a->ai_addr, a->ai_addrlen));
      // A connect interrupted by EINTR may complete in the background; the
      // retry then sees EISCONN, which is success.
      if (r < 0 && errno == EISCONN) return 0L;
      return r;
    });
    if (conn == 0) {
      ::freeaddrinfo(addrs);
      return SocketConn(fd);
    }
    last = ErrnoError("connect", errno);
    (void)::close(fd);
  }
  ::freeaddrinfo(addrs);
  return last;
}

Status SocketConn::SendAll(const void* data, size_t size) {
  if (fd_ < 0) return InternalError("send on closed socket");
  const FaultAction fault = CheckFaultRetryingTransient("net.send");
  if (fault.kind == FaultKind::kErrno) {
    return ErrnoError("send", fault.error_number);
  }
  const char* bytes = static_cast<const char*>(data);
  std::vector<char> mutated;
  if (fault.kind == FaultKind::kBitFlip && size > 0) {
    // In-flight corruption: all bytes land but one is wrong; only the
    // receiver's framing/validation can catch it.
    mutated.assign(bytes, bytes + size);
    mutated[size / 2] = static_cast<char>(mutated[size / 2] ^ 0x20);
    bytes = mutated.data();
  }
  size_t remaining = size;
  if (fault.kind == FaultKind::kShortWrite) {
    // Torn send: half the payload reaches the peer, then the connection
    // errors out.
    remaining = size / 2;
  }
  while (remaining > 0) {
    const long n = RetryTransient([&] {
      return static_cast<long>(::send(fd_, bytes, remaining, MSG_NOSIGNAL));
    });
    if (n < 0) return ErrnoError("send", errno);
    bytes += n;
    remaining -= static_cast<size_t>(n);
  }
  if (fault.kind == FaultKind::kShortWrite) {
    return ErrnoError("send (torn)", EPIPE);
  }
  return OkStatus();
}

StatusOr<size_t> SocketConn::RecvSome(void* data, size_t size) {
  if (fd_ < 0) return InternalError("recv on closed socket");
  const FaultAction fault = CheckFaultRetryingTransient("net.recv");
  if (fault.kind == FaultKind::kErrno) {
    return ErrnoError("recv", fault.error_number);
  }
  // short/bitflip are write-style faults; read points ignore them (same
  // policy as snapshot.read).
  const long n = RetryTransient(
      [&] { return static_cast<long>(::recv(fd_, data, size, 0)); });
  if (n < 0) return ErrnoError("recv", errno);
  return static_cast<size_t>(n);
}

StatusOr<bool> SocketConn::RecvAll(void* data, size_t size) {
  char* bytes = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    auto n = RecvSome(bytes + got, size - got);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      if (got == 0) return false;  // clean EOF between messages
      return DataLossError("connection closed mid-message (" +
                           std::to_string(got) + "/" + std::to_string(size) +
                           " bytes)");
    }
    got += *n;
  }
  return true;
}

SocketListener::~SocketListener() {
  Close();
  if (listen_fd_ >= 0) (void)::close(listen_fd_);
  if (wake_read_fd_ >= 0) (void)::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) (void)::close(wake_write_fd_);
}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : listen_fd_(std::exchange(other.listen_fd_, -1)),
      wake_read_fd_(std::exchange(other.wake_read_fd_, -1)),
      wake_write_fd_(std::exchange(other.wake_write_fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      closed_(other.closed_.load()) {}

SocketListener& SocketListener::operator=(SocketListener&& other) noexcept {
  if (this != &other) {
    this->~SocketListener();
    new (this) SocketListener(std::move(other));
  }
  return *this;
}

StatusOr<SocketListener> SocketListener::Listen(const std::string& host,
                                                uint16_t port, int backlog) {
  SocketListener listener;
  listener.listen_fd_ = static_cast<int>(RetryTransient(
      [&] { return static_cast<long>(::socket(AF_INET, SOCK_STREAM, 0)); }));
  if (listener.listen_fd_ < 0) return ErrnoError("socket", errno);
  const int one = 1;
  ::setsockopt(listener.listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("listen host must be a numeric IPv4 "
                                "address: '" +
                                host + "'");
  }
  if (RetryTransient([&] {
        return static_cast<long>(
            ::bind(listener.listen_fd_,
                   reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)));
      }) < 0) {
    return ErrnoError("bind", errno);
  }
  if (RetryTransient([&] {
        return static_cast<long>(::listen(listener.listen_fd_, backlog));
      }) < 0) {
    return ErrnoError("listen", errno);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listener.listen_fd_,
                    reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    return ErrnoError("getsockname", errno);
  }
  listener.port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) return ErrnoError("pipe", errno);
  listener.wake_read_fd_ = pipe_fds[0];
  listener.wake_write_fd_ = pipe_fds[1];
  return listener;
}

StatusOr<SocketConn> SocketListener::Accept() {
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) {
      return CancelledError("listener closed");
    }
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (IsTransientErrno(errno)) continue;
      return ErrnoError("poll", errno);
    }
    if (closed_.load(std::memory_order_acquire) ||
        (fds[1].revents & POLLIN) != 0) {
      return CancelledError("listener closed");
    }
    if ((fds[0].revents & POLLIN) == 0) continue;

    const FaultAction fault = CheckFaultRetryingTransient("net.accept");
    if (fault.kind == FaultKind::kErrno) {
      return ErrnoError("accept", fault.error_number);
    }
    const int fd = static_cast<int>(RetryTransient([&] {
      return static_cast<long>(::accept(listen_fd_, nullptr, nullptr));
    }));
    if (fd < 0) {
      // The peer can abandon the connection between poll and accept;
      // that's its problem, keep serving.
      if (errno == ECONNABORTED || errno == EPROTO) continue;
      return ErrnoError("accept", errno);
    }
    const int one = 1;
#if defined(SO_NOSIGPIPE)
    ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
    // See Connect(): framed request/reply traffic needs Nagle off.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return SocketConn(fd);
  }
}

void SocketListener::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  if (wake_write_fd_ >= 0) {
    const char byte = 0;
    (void)RetryTransient([&] {
      return static_cast<long>(::write(wake_write_fd_, &byte, 1));
    });
  }
}

#else  // !PARIS_HAS_POSIX_NET

SocketConn::~SocketConn() = default;
SocketConn::SocketConn(SocketConn&&) noexcept {}
SocketConn& SocketConn::operator=(SocketConn&&) noexcept { return *this; }
void SocketConn::Shutdown() {}
void SocketConn::Close() {}
StatusOr<SocketConn> SocketConn::Connect(const std::string&, uint16_t) {
  return UnimplementedError("sockets require POSIX");
}
Status SocketConn::SendAll(const void*, size_t) {
  return UnimplementedError("sockets require POSIX");
}
StatusOr<size_t> SocketConn::RecvSome(void*, size_t) {
  return UnimplementedError("sockets require POSIX");
}
StatusOr<bool> SocketConn::RecvAll(void*, size_t) {
  return UnimplementedError("sockets require POSIX");
}
SocketListener::~SocketListener() = default;
SocketListener::SocketListener(SocketListener&&) noexcept {}
SocketListener& SocketListener::operator=(SocketListener&&) noexcept {
  return *this;
}
StatusOr<SocketListener> SocketListener::Listen(const std::string&, uint16_t,
                                                int) {
  return UnimplementedError("sockets require POSIX");
}
StatusOr<SocketConn> SocketListener::Accept() {
  return UnimplementedError("sockets require POSIX");
}
void SocketListener::Close() {}

#endif  // PARIS_HAS_POSIX_NET

}  // namespace paris::util
