#ifndef PARIS_UTIL_THREAD_POOL_H_
#define PARIS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace paris::util {

// A fixed-size worker pool. Used to parallelize the per-instance alignment
// pass; determinism is preserved because workers write to disjoint output
// slots and never mutate shared state.
class ThreadPool {
 public:
  // Creates `num_threads` workers. `num_threads == 0` is allowed and means
  // "run everything inline on the calling thread".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Enqueues a task. Must not be called after the destructor has begun.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished.
  void Wait();

  // Splits [0, total) into contiguous fixed-size chunks and runs
  // `fn(begin, end)` for each chunk across the pool, blocking until done.
  // Chunks are claimed dynamically off a shared atomic counter, so a worker
  // that drew a cheap chunk immediately pulls the next one instead of idling
  // behind the unluckiest statically-assigned range (skewed fanout no longer
  // serializes the pass). Chunk boundaries depend only on `total` and the
  // pool size — never on claim order — so callers writing to disjoint
  // per-index output slots stay deterministic. With 0 workers, runs a single
  // chunk inline.
  void ParallelFor(size_t total, const std::function<void(size_t, size_t)>& fn);

  // Shard-granular variant for the pass pipeline: claims one index at a
  // time off the shared counter and runs `fn(shard, worker)`, blocking
  // until the range is drained or the loop is stopped. `worker` is a stable
  // slot id in [0, max(1, num_threads())) identifying the claiming worker,
  // so callers can keep per-worker scratch that is reused across shards
  // instead of reallocated. `fn` returning false stops the loop
  // cooperatively: no further shards are claimed (shards already running
  // finish) — this is what lets a cancellation land at a shard boundary
  // instead of an iteration boundary. Claim order is nondeterministic;
  // callers must write only shard-local output. With 0 workers, runs the
  // shards in order on the calling thread (worker slot 0), stopping at the
  // first false.
  void ParallelForShards(size_t total,
                         const std::function<bool(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Runs `fn` over [0, total): sharded across `pool` when one is present (and
// has workers), inline as a single chunk otherwise. The nullable-pool
// convention every parallelized pass shares.
inline void ForRange(ThreadPool* pool, size_t total,
                     const std::function<void(size_t, size_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 0) {
    pool->ParallelFor(total, fn);
  } else if (total > 0) {
    fn(0, total);
  }
}

// Nullable-pool counterpart of `ParallelForShards`: claims shards across
// `pool` when one is present (and has workers), otherwise runs them in
// order inline on worker slot 0, stopping at the first false.
inline void ForRangeShards(ThreadPool* pool, size_t total,
                           const std::function<bool(size_t, size_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 0) {
    pool->ParallelForShards(total, fn);
    return;
  }
  for (size_t shard = 0; shard < total; ++shard) {
    if (!fn(shard, 0)) return;
  }
}

}  // namespace paris::util

#endif  // PARIS_UTIL_THREAD_POOL_H_
