#ifndef PARIS_UTIL_HASH_H_
#define PARIS_UTIL_HASH_H_

#include <cstdint>
#include <functional>
#include <utility>

namespace paris::util {

// Packs two 32-bit keys into one 64-bit map key (used for relation-pair and
// term-pair score tables).
constexpr uint64_t PackPair(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

constexpr uint32_t UnpackFirst(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}

constexpr uint32_t UnpackSecond(uint64_t key) {
  return static_cast<uint32_t>(key & 0xffffffffULL);
}

// 64-bit mix (splitmix64 finalizer); good enough as a hash for packed pairs.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct PackedPairHash {
  size_t operator()(uint64_t key) const {
    return static_cast<size_t>(Mix64(key));
  }
};

}  // namespace paris::util

#endif  // PARIS_UTIL_HASH_H_
