#ifndef PARIS_SYNTH_NOISE_H_
#define PARIS_SYNTH_NOISE_H_

#include <string>
#include <string_view>

#include "paris/util/random.h"

namespace paris::synth {

// Literal corruption models used by the ontology deriver to reproduce the
// noise the paper's datasets exhibit (§6.3: "213/467-1108" vs
// "213-467-1108"; §6.4: "Sugata Sanshirô" vs "Sanshiro Sugata").

// One random character-level edit (substitute / delete / insert / transpose).
std::string ApplyTypo(util::Rng& rng, std::string_view s);

// Rewrites separators of a phone-like string: "213-467-1108" becomes
// "213/467-1108", "213 467 1108", or "(213) 467-1108".
std::string ReformatPhone(util::Rng& rng, std::string_view s);

// Random case/punctuation jitter: uppercases the string, lowercases it, or
// appends a trailing period.
std::string JitterCasePunct(util::Rng& rng, std::string_view s);

// Swaps the first two whitespace-separated tokens ("Sugata Sanshiro" →
// "Sanshiro Sugata"); returns the input unchanged if it has fewer than two.
std::string SwapFirstTokens(std::string_view s);

}  // namespace paris::synth

#endif  // PARIS_SYNTH_NOISE_H_
