#include "paris/synth/noise.h"

#include <cctype>

#include "paris/util/string_util.h"

namespace paris::synth {

std::string ApplyTypo(util::Rng& rng, std::string_view s) {
  std::string out(s);
  if (out.empty()) return out;
  const int op = static_cast<int>(rng.UniformInt(0, 3));
  const size_t pos =
      static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
  const char random_char =
      static_cast<char>('a' + rng.UniformInt(0, 25));
  switch (op) {
    case 0:  // substitute
      out[pos] = random_char;
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(pos, 1, random_char);
      break;
    case 3:  // transpose
      if (pos + 1 < out.size()) {
        std::swap(out[pos], out[pos + 1]);
      } else {
        out[pos] = random_char;
      }
      break;
  }
  return out;
}

std::string ReformatPhone(util::Rng& rng, std::string_view s) {
  // Extract the digits, then re-render in an alternative format.
  std::string digits;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) digits.push_back(c);
  }
  if (digits.size() != 10) return std::string(s);
  const std::string area = digits.substr(0, 3);
  const std::string mid = digits.substr(3, 3);
  const std::string last = digits.substr(6, 4);
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return area + "/" + mid + "-" + last;
    case 1:
      return area + " " + mid + " " + last;
    default:
      return "(" + area + ") " + mid + "-" + last;
  }
}

std::string JitterCasePunct(util::Rng& rng, std::string_view s) {
  std::string out(s);
  switch (rng.UniformInt(0, 2)) {
    case 0:
      for (char& c : out) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      return out;
    case 1:
      return util::ToLowerAscii(out);
    default:
      return out + ".";
  }
}

std::string SwapFirstTokens(std::string_view s) {
  const size_t space = s.find(' ');
  if (space == std::string_view::npos) return std::string(s);
  std::string_view first = s.substr(0, space);
  std::string_view rest = s.substr(space + 1);
  const size_t space2 = rest.find(' ');
  std::string_view second =
      space2 == std::string_view::npos ? rest : rest.substr(0, space2);
  std::string out(second);
  out += " ";
  out += first;
  if (space2 != std::string_view::npos) {
    out += " ";
    out += rest.substr(space2 + 1);
  }
  return out;
}

}  // namespace paris::synth
