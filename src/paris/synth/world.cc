#include "paris/synth/world.h"

#include <cassert>
#include <unordered_set>

#include "paris/synth/names.h"

namespace paris::synth {

std::string GenerateValue(ValueKind kind, util::Rng& rng) {
  switch (kind) {
    case ValueKind::kPersonName:
      return PersonName(rng);
    case ValueKind::kPlaceName:
      return PlaceName(rng);
    case ValueKind::kRestaurantName:
      return RestaurantName(rng);
    case ValueKind::kMovieTitle:
      return MovieTitle(rng);
    case ValueKind::kStreetAddress:
      return StreetAddress(rng);
    case ValueKind::kPhone:
      return PhoneNumber(rng);
    case ValueKind::kDate:
      return DateString(rng);
    case ValueKind::kSsn:
      return SsnLike(rng);
    case ValueKind::kYear:
      return YearString(rng);
  }
  return "";
}

bool World::ClassInSubtree(int cls, int root) const {
  while (cls >= 0) {
    if (cls == root) return true;
    cls = spec_.classes[static_cast<size_t>(cls)].parent;
  }
  return false;
}

std::vector<int> World::AncestorsOf(int cls) const {
  std::vector<int> out;
  while (cls >= 0) {
    out.push_back(cls);
    cls = spec_.classes[static_cast<size_t>(cls)].parent;
  }
  return out;
}

World World::Generate(const WorldSpec& spec) {
  World world;
  world.spec_ = spec;
  util::Rng rng(spec.seed);

  // 1. Entities.
  for (const EntityGroup& group : spec.groups) {
    assert(group.cls >= 0 &&
           static_cast<size_t>(group.cls) < spec.classes.size());
    for (int i = 0; i < group.count; ++i) {
      WorldEntity e;
      e.cls = group.cls;
      e.id = group.id_prefix + "_" + std::to_string(i);
      e.prominence = rng.UniformDouble();
      world.entities_.push_back(std::move(e));
    }
  }
  // Fact-richness multiplier per entity: 1 for the prominent, down to ~0.25
  // for the obscure when prominence_richness = 1.
  auto richness = [&](int entity_index) {
    const double prom =
        world.entities_[static_cast<size_t>(entity_index)].prominence;
    return 1.0 - spec.prominence_richness * 0.75 * (1.0 - prom);
  };

  // Subtree membership index.
  world.subtree_entities_.assign(spec.classes.size(), {});
  for (size_t ei = 0; ei < world.entities_.size(); ++ei) {
    for (int anc : world.AncestorsOf(world.entities_[ei].cls)) {
      world.subtree_entities_[static_cast<size_t>(anc)].push_back(
          static_cast<int>(ei));
    }
  }

  // 2. Attributes. A unique-value attribute re-draws until unused (a few
  //    retries suffice because identifier spaces are huge).
  for (size_t ai = 0; ai < spec.attributes.size(); ++ai) {
    const AttributeSpec& attr = spec.attributes[ai];
    assert(!(attr.unique && attr.pool_size > 0));
    util::Rng attr_rng = rng.Fork();
    std::vector<std::string> pool;
    for (int p = 0; p < attr.pool_size; ++p) {
      pool.push_back(GenerateValue(attr.kind, attr_rng));
    }
    std::unordered_set<std::string> used;
    for (int ei : world.EntitiesInSubtree(attr.domain_class)) {
      if (!attr_rng.Bernoulli(attr.coverage * richness(ei))) continue;
      const int count =
          attr_rng.CountWithTail(attr.extra_value_prob, attr.max_values);
      for (int v = 0; v < count; ++v) {
        std::string value =
            pool.empty()
                ? GenerateValue(attr.kind, attr_rng)
                : pool[attr_rng.ZipfIndex(pool.size(), attr.pool_skew)];
        if (attr.unique) {
          int retries = 0;
          while (used.contains(value) && retries < 64) {
            value = GenerateValue(attr.kind, attr_rng);
            ++retries;
          }
          used.insert(value);
        }
        world.entities_[static_cast<size_t>(ei)].attributes.emplace_back(
            static_cast<int>(ai), std::move(value));
      }
    }
  }

  // 3. Relations.
  for (size_t ri = 0; ri < spec.relations.size(); ++ri) {
    const RelationSpec& rel = spec.relations[ri];
    util::Rng rel_rng = rng.Fork();
    const std::vector<int>& domain =
        world.EntitiesInSubtree(rel.domain_class);
    const std::vector<int>& range = world.EntitiesInSubtree(rel.range_class);
    if (range.empty()) continue;
    for (size_t di = 0; di < domain.size(); ++di) {
      const int src = domain[di];
      if (!rel_rng.Bernoulli(rel.coverage * richness(src))) continue;
      if (rel.one_to_one) {
        const int dst = range[di % range.size()];
        if (dst != src) {
          world.edges_.push_back(WorldEdge{static_cast<int>(ri), src, dst});
        }
        continue;
      }
      const int degree =
          rel_rng.CountWithTail(rel.extra_edge_prob, rel.max_degree);
      std::unordered_set<int> chosen;
      for (int d = 0; d < degree; ++d) {
        const int dst = range[rel_rng.ZipfIndex(range.size(), rel.range_skew)];
        if (dst == src || !chosen.insert(dst).second) continue;
        world.edges_.push_back(
            WorldEdge{static_cast<int>(ri), src, dst});
      }
    }
  }

  return world;
}

}  // namespace paris::synth
