#include "paris/synth/names.h"

#include <array>
#include <cstdio>

namespace paris::synth {

namespace {

constexpr std::array<const char*, 24> kFirstNames = {
    "Alma",   "Boris",  "Clara",  "Dario",  "Elena",  "Farid",
    "Greta",  "Hugo",   "Irina",  "Jonas",  "Katya",  "Liam",
    "Marena", "Nils",   "Odette", "Pavel",  "Quinn",  "Rosa",
    "Stefan", "Talia",  "Ugo",    "Vera",   "Willem", "Yusuf"};

// Surnames are assembled from syllables so the name space is large (tens of
// thousands) yet occasional homonyms still occur naturally at dataset scale.
constexpr std::array<const char*, 20> kSurnameStart = {
    "Kov", "Mad", "Fer", "Lind", "Oka", "Pet", "Quin", "Rad", "So", "Tak",
    "Ust", "Van", "Whit", "Yam", "Zel", "Mor", "Gal", "Hen", "Bel", "Cas"};

constexpr std::array<const char*, 16> kSurnameMiddle = {
    "an", "er", "in", "ov", "al", "en", "ar", "os",
    "ič", "ur", "em", "ol", "ad", "ik", "un", "es"};

constexpr std::array<const char*, 14> kSurnameEnd = {
    "ich", "dox", "te", "qvist", "for", "rov", "tana", "cliff",
    "to",  "eda", "son", "ski",  "elli", "eau"};

constexpr std::array<const char*, 14> kPlacePrefixes = {
    "North", "South", "East", "West",  "Lake",  "Glen",  "Fair",
    "Oak",   "Elm",   "Stone", "River", "Bright", "Ash",  "Mill"};

constexpr std::array<const char*, 12> kPlaceSuffixes = {
    "field", "brook", "haven", "wood",  "ton",  "ville",
    "port",  "ridge", "dale",  "mouth", "ford", "stead"};

constexpr std::array<const char*, 12> kRestaurantFirst = {
    "Golden", "Silver", "Rustic", "Blue",  "Jade",   "Crimson",
    "Olive",  "Amber",  "Velvet", "Coral", "Copper", "Ivory"};

constexpr std::array<const char*, 12> kRestaurantSecond = {
    "Lantern", "Table",  "Garden", "Spoon", "Kettle", "Harvest",
    "Anchor",  "Orchid", "Tavern", "Grill", "Bistro", "Terrace"};

constexpr std::array<const char*, 28> kTitleNouns = {
    "Shadow",  "Return",  "Empire",  "Garden",  "Winter",  "Voyage",
    "Secret",  "Station", "Horizon", "Lantern", "Echo",    "Fortune",
    "Crown",   "Storm",   "River",   "Kingdom", "Promise", "Harvest",
    "Journey", "Silence", "Mirror",  "Temple",  "Desert",  "Island",
    "Letter",  "Covenant", "Orchard", "Reckoning"};

constexpr std::array<const char*, 24> kTitleAdjectives = {
    "Iron",    "Silent",  "Crimson",  "Lost",    "Golden",   "Hidden",
    "Final",   "Broken",  "Distant",  "Eternal", "Burning",  "Frozen",
    "Scarlet", "Quiet",   "Forgotten", "Midnight", "Hollow",  "Restless",
    "Savage",  "Gilded",  "Wandering", "Last",    "First",    "Pale"};

constexpr std::array<const char*, 10> kPlaceSecondWords = {
    "Heights", "Springs", "Junction", "Hollow", "Corners",
    "Landing", "Crossing", "Meadows", "Bluffs", "Terrace"};

constexpr std::array<const char*, 6> kSequelNumerals = {"II",  "III", "IV",
                                                        "V",   "VI",  "VII"};

constexpr std::array<const char*, 10> kStreets = {
    "Baker St",   "Hill Rd",     "Main St",    "Elm Ave",   "Harbor Blvd",
    "Maple Dr",   "Station Rd",  "Park Lane",  "Sunset Ave", "Cedar Ct"};

}  // namespace

template <typename Array>
const char* PickFrom(util::Rng& rng, const Array& items) {
  return items[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
}

std::string Surname(util::Rng& rng) {
  std::string name = PickFrom(rng, kSurnameStart);
  name += PickFrom(rng, kSurnameMiddle);
  if (rng.Bernoulli(0.6)) name += PickFrom(rng, kSurnameMiddle);
  name += PickFrom(rng, kSurnameEnd);
  return name;
}

std::string PersonName(util::Rng& rng) {
  std::string name = PickFrom(rng, kFirstNames);
  if (rng.Bernoulli(0.25)) {
    name += " ";
    name += static_cast<char>('A' + rng.UniformInt(0, 25));
    name += ".";
  }
  name += " ";
  name += Surname(rng);
  return name;
}

std::string PlaceName(util::Rng& rng) {
  std::string name = PickFrom(rng, kPlacePrefixes);
  name += PickFrom(rng, kPlaceSuffixes);
  if (rng.Bernoulli(0.45)) {
    name += " ";
    name += PickFrom(rng, kPlaceSecondWords);
  }
  return name;
}

std::string RestaurantName(util::Rng& rng) {
  std::string name = "The ";
  name += PickFrom(rng, kRestaurantFirst);
  name += " ";
  name += PickFrom(rng, kRestaurantSecond);
  if (rng.Bernoulli(0.5)) {
    name += " of ";
    name += PickFrom(rng, kPlacePrefixes);
    name += PickFrom(rng, kPlaceSuffixes);
  }
  return name;
}

std::string MovieTitle(util::Rng& rng) {
  std::string title = "The ";
  title += PickFrom(rng, kTitleAdjectives);
  title += " ";
  title += PickFrom(rng, kTitleNouns);
  if (rng.Bernoulli(0.8)) {
    title += " of ";
    if (rng.Bernoulli(0.5)) title += "the ";
    title += PickFrom(rng, kTitleNouns);
  }
  if (rng.Bernoulli(0.12)) {
    title += " ";
    title += PickFrom(rng, kSequelNumerals);
  }
  return title;
}

std::string StreetAddress(util::Rng& rng) {
  std::string addr = std::to_string(rng.UniformInt(1, 999));
  addr += " ";
  addr += kStreets[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(kStreets.size()) - 1))];
  return addr;
}

std::string PhoneNumber(util::Rng& rng) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%03d-%03d-%04d",
                static_cast<int>(rng.UniformInt(200, 999)),
                static_cast<int>(rng.UniformInt(200, 999)),
                static_cast<int>(rng.UniformInt(0, 9999)));
  return buffer;
}

std::string DateString(util::Rng& rng) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d",
                static_cast<int>(rng.UniformInt(1900, 2010)),
                static_cast<int>(rng.UniformInt(1, 12)),
                static_cast<int>(rng.UniformInt(1, 28)));
  return buffer;
}

std::string SsnLike(util::Rng& rng) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%09lld",
                static_cast<long long>(rng.UniformInt(0, 999999999)));
  return buffer;
}

std::string YearString(util::Rng& rng) {
  return std::to_string(rng.UniformInt(1900, 2010));
}

}  // namespace paris::synth
