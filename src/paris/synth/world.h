#ifndef PARIS_SYNTH_WORLD_H_
#define PARIS_SYNTH_WORLD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "paris/util/random.h"

namespace paris::synth {

// ---------------------------------------------------------------------------
// World specification
// ---------------------------------------------------------------------------
//
// A "world" is the hidden ground truth both synthetic ontologies are derived
// from: a class taxonomy, entities, literal attributes, and entity-entity
// relations with controlled cardinality (hence controlled functionality,
// the quantity PARIS's probabilistic model keys on).

// A node of the world class taxonomy (a forest; parent -1 = root).
struct WorldClass {
  std::string name;
  int parent = -1;
};

// What kind of literal values an attribute generates.
enum class ValueKind {
  kPersonName,
  kPlaceName,
  kRestaurantName,
  kMovieTitle,
  kStreetAddress,
  kPhone,
  kDate,
  kSsn,
  kYear,
};

// A literal-valued property attached to every entity of a class subtree.
struct AttributeSpec {
  std::string name;       // world-level relation name
  int domain_class = 0;   // applies to entities whose class is in this subtree
  ValueKind kind = ValueKind::kPersonName;
  double coverage = 1.0;  // fraction of domain entities carrying the attribute
  double extra_value_prob = 0.0;  // continue-prob for additional values
  int max_values = 1;
  bool unique = false;  // values drawn to be globally unique (identifiers)
  // If > 0, values are drawn (Zipf-skewed) from a pre-generated pool of this
  // size instead of fresh per entity. This models low-inverse-functionality
  // attributes ("city": many addresses share few city names). Incompatible
  // with `unique`.
  int pool_size = 0;
  double pool_skew = 0.8;
};

// An entity-entity relation with a cardinality profile. The expected local
// out-degree is 1 + O(extra_edge_prob); the paper's functionality
// fun(r) ≈ 1 / E[degree].
struct RelationSpec {
  std::string name;
  int domain_class = 0;
  int range_class = 0;
  double coverage = 0.9;         // fraction of domain entities with ≥1 edge
  double extra_edge_prob = 0.0;  // continue-prob for additional edges
  int max_degree = 1;
  double range_skew = 0.8;  // Zipf skew of target popularity (hubs)
  // If true, the i-th domain entity links to the i-th range entity: a
  // bijective relation (restaurant ↔ its address). Overrides degree/skew.
  bool one_to_one = false;
};

// A block of entities of one class.
struct EntityGroup {
  int cls = 0;
  int count = 0;
  std::string id_prefix;  // world ids are "<prefix>_<i>"
};

struct WorldSpec {
  std::vector<WorldClass> classes;
  std::vector<EntityGroup> groups;
  std::vector<AttributeSpec> attributes;
  std::vector<RelationSpec> relations;
  uint64_t seed = 42;
  // How strongly an entity's prominence modulates its fact richness
  // (0 = not at all; 1 = an obscure entity keeps only ~25 % of its facts).
  // Real KBs are like this: famous entities are fact-rich, the long tail is
  // sparse — which is what keeps spurious alignments of tail entities rare.
  double prominence_richness = 0.0;
};

// ---------------------------------------------------------------------------
// Generated world
// ---------------------------------------------------------------------------

struct WorldEntity {
  int cls = 0;
  std::string id;
  // How "famous" this entity is, in [0, 1]. Drives fact richness (see
  // WorldSpec::prominence_richness) and, in the deriver, the correlation
  // between the two ontologies' entity selections.
  double prominence = 1.0;
  // (attribute index, value) pairs in generation order.
  std::vector<std::pair<int, std::string>> attributes;
};

struct WorldEdge {
  int relation = 0;
  int source = 0;
  int target = 0;
};

// The generated ground truth. Deterministic in `spec.seed`.
class World {
 public:
  static World Generate(const WorldSpec& spec);

  const WorldSpec& spec() const { return spec_; }
  const std::vector<WorldEntity>& entities() const { return entities_; }
  const std::vector<WorldEdge>& edges() const { return edges_; }

  // True if `cls` equals `root` or is a descendant of it.
  bool ClassInSubtree(int cls, int root) const;

  // `cls` and all its ancestors, nearest first.
  std::vector<int> AncestorsOf(int cls) const;

  // Entity indexes whose class lies in the subtree of `root`.
  const std::vector<int>& EntitiesInSubtree(int root) const {
    return subtree_entities_[static_cast<size_t>(root)];
  }

  size_t num_classes() const { return spec_.classes.size(); }

 private:
  WorldSpec spec_;
  std::vector<WorldEntity> entities_;
  std::vector<WorldEdge> edges_;
  std::vector<std::vector<int>> subtree_entities_;
};

// Value generation for one attribute kind (exposed for tests).
std::string GenerateValue(ValueKind kind, util::Rng& rng);

}  // namespace paris::synth

#endif  // PARIS_SYNTH_WORLD_H_
