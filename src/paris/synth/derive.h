#ifndef PARIS_SYNTH_DERIVE_H_
#define PARIS_SYNTH_DERIVE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"
#include "paris/synth/world.h"
#include "paris/util/status.h"
#include "paris/util/thread_pool.h"

namespace paris::synth {

// ---------------------------------------------------------------------------
// Derivation specification
// ---------------------------------------------------------------------------
//
// A `DeriveSpec` projects the hidden world into one concrete ontology:
// it picks a subset of entities, renames everything into the ontology's
// namespace, re-expresses world relations in the ontology's own vocabulary
// (possibly inverted or merged — the structural heterogeneity of §6.4), maps
// the world taxonomy at its own granularity, and corrupts literals with the
// configured noise models. Because two ontologies are derived from the same
// world, the ground-truth alignment is known exactly (`DerivedGold`).

// Maps one world relation or attribute into this ontology's vocabulary.
// Exactly one of `world_relation` / `world_attribute` is ≥ 0. Mapping two
// world relations onto one `name` merges them into a coarser relation.
struct RelationMapping {
  int world_relation = -1;
  int world_attribute = -1;
  std::string name;        // vocabulary name, already namespaced
  bool inverted = false;   // emit object→subject (only for world relations)
};

// Exposes the subtree of `world_class` as ontology class `name`.
struct ClassMapping {
  int world_class = 0;
  std::string name;
};

struct DeriveSpec {
  std::string onto_name;  // e.g. "yago"
  uint64_t seed = 1;
  // Probability that a world entity exists in this ontology (decided by a
  // deterministic per-entity hash so the two sides' choices are independent
  // yet reproducible).
  double entity_coverage = 1.0;
  // Per-subtree coverage overrides (nearest enclosing subtree wins). Used
  // to keep shared hub entities — cities, categories — present on both
  // sides, as they are in the real datasets.
  std::vector<std::pair<int, double>> class_coverage;
  // How strongly inclusion correlates with entity prominence (0 = purely
  // independent per-side coin flips; 1 = both sides pick exactly the most
  // prominent entities). With correlation, the *shared* instances are the
  // fact-rich ones and the one-sided leftovers are sparse — as with real
  // KB pairs, where both projects cover the famous entities.
  double prominence_correlation = 0.0;
  // Per-fact omission probability (complementing data, §1).
  double fact_dropout = 0.0;
  // Literal noise pipeline probabilities.
  double typo_prob = 0.0;
  double phone_reformat_prob = 0.0;
  double case_jitter_prob = 0.0;
  double token_swap_prob = 0.0;
  std::vector<RelationMapping> relations;
  std::vector<ClassMapping> classes;
};

// ---------------------------------------------------------------------------
// Derived gold standard
// ---------------------------------------------------------------------------

// The exact alignment between the two derived ontologies, straight from the
// world: instance pairs, relation containments (at the signed-relation
// level, so inverted vocabularies are handled), and class containments.
class DerivedGold {
 public:
  // ---- Instances ----
  const std::unordered_map<rdf::TermId, rdf::TermId>& left_to_right() const {
    return left_to_right_;
  }
  size_t num_instance_pairs() const { return left_to_right_.size(); }
  bool InstanceMatch(rdf::TermId left, rdf::TermId right) const {
    auto it = left_to_right_.find(left);
    return it != left_to_right_.end() && it->second == right;
  }
  bool LeftHasMatch(rdf::TermId left) const {
    return left_to_right_.contains(left);
  }
  bool RightHasMatch(rdf::TermId right) const {
    return right_to_left_.contains(right);
  }

  // ---- Relations ----
  // Orientation-tagged world key: 2*k for forward, 2*k+1 for inverted,
  // where k encodes a world relation (k) or attribute (k + kAttributeBase).
  static constexpr int kAttributeBase = 1 << 20;
  using Cover = std::vector<int>;  // sorted orientation-tagged keys

  // True sub-relation containment sub ⊆ super where `sub` is a signed
  // relation of the (left if sub_is_left else right) ontology and `super`
  // of the other.
  bool RelationContained(bool sub_is_left, rdf::RelId sub,
                         rdf::RelId super) const;
  // Positive relation ids of one side that have at least one true
  // containment on the other side (the denominator of relation recall; the
  // paper's "Gold" column for relations).
  std::vector<rdf::RelId> AlignableRelations(bool left_side) const;

  // ---- Classes ----
  // True class containment sub ⊆ super (class term ids).
  bool ClassContained(bool sub_is_left, rdf::TermId sub,
                      rdf::TermId super) const;
  // Classes of one side that have a true superclass on the other side.
  std::vector<rdf::TermId> AlignableClasses(bool left_side) const;

  struct Side {
    std::vector<Cover> covers;                        // by positive RelId - 1
    std::unordered_map<rdf::TermId, int> class_world;  // class term → node
  };

 private:
  friend class PairDeriver;

  const Side& side(bool left) const { return left ? left_ : right_; }

  std::unordered_map<rdf::TermId, rdf::TermId> left_to_right_;
  std::unordered_map<rdf::TermId, rdf::TermId> right_to_left_;
  Side left_;
  Side right_;
  // Parent array of the world taxonomy (for class containment).
  std::vector<int> class_parent_;
};

// ---------------------------------------------------------------------------
// Pair derivation
// ---------------------------------------------------------------------------

// One fully-derived ontology pair with shared pool and gold standard.
struct OntologyPair {
  std::string name;
  std::unique_ptr<rdf::TermPool> pool;
  std::unique_ptr<ontology::Ontology> left;
  std::unique_ptr<ontology::Ontology> right;
  DerivedGold gold;
};

// Derives both ontologies of a pair from one world.
class PairDeriver {
 public:
  PairDeriver(const World* world, DeriveSpec left_spec, DeriveSpec right_spec)
      : world_(world),
        left_spec_(std::move(left_spec)),
        right_spec_(std::move(right_spec)) {}

  // With a non-null `pool`, the per-side index finalization (term-slice
  // and relation-pair sorts, counting-sort scatters) fans across the
  // workers; the derived pair is byte-identical either way.
  util::StatusOr<OntologyPair> Derive(std::string pair_name,
                                      util::ThreadPool* pool = nullptr) const;

  // Deterministic inclusion decision for `entity_index` at the given
  // coverage probability (exposed for tests).
  static bool IncludedAt(uint64_t seed, int entity_index, double coverage);

  // Inclusion under `spec`, resolving per-class coverage overrides against
  // `world`.
  static bool Includes(const DeriveSpec& spec, const World& world,
                       int entity_index);

 private:
  const World* world_;
  DeriveSpec left_spec_;
  DeriveSpec right_spec_;
};

}  // namespace paris::synth

#endif  // PARIS_SYNTH_DERIVE_H_
