#include "paris/synth/profiles.h"

#include <algorithm>
#include <string>

namespace paris::synth {

namespace {

int Scaled(double scale, int count) {
  return std::max(1, static_cast<int>(count * scale));
}

RelationMapping RelMap(int world_relation, std::string name,
                       bool inverted = false) {
  RelationMapping m;
  m.world_relation = world_relation;
  m.name = std::move(name);
  m.inverted = inverted;
  return m;
}

RelationMapping AttrMap(int world_attribute, std::string name) {
  RelationMapping m;
  m.world_attribute = world_attribute;
  m.name = std::move(name);
  return m;
}

ClassMapping ClsMap(int world_class, std::string name) {
  return ClassMapping{world_class, std::move(name)};
}

}  // namespace

// ---------------------------------------------------------------------------
// OAEI Person
// ---------------------------------------------------------------------------

util::StatusOr<OntologyPair> MakeOaeiPersonPair(
    const ProfileOptions& options) {
  WorldSpec spec;
  spec.seed = options.seed;
  // Taxonomy: 0 Thing, 1 Person, 2 Address, 3 Suburb.
  spec.classes = {{"thing", -1}, {"person", 0}, {"address", 0}, {"suburb", 0}};
  spec.groups = {{1, Scaled(options.scale, 500), "person"},
                 {2, Scaled(options.scale, 500), "address"},
                 {3, Scaled(options.scale, 50), "suburb"}};
  // Attributes (the OAEI person records: names, SSN-like id, phone, dates).
  spec.attributes = {
      {"name", 1, ValueKind::kPersonName, 1.0, 0.0, 1, false},        // 0
      {"soc_sec_id", 1, ValueKind::kSsn, 1.0, 0.0, 1, true},          // 1
      {"phone", 1, ValueKind::kPhone, 0.95, 0.0, 1, true},            // 2
      {"birthdate", 1, ValueKind::kDate, 0.9, 0.0, 1, false},         // 3
      {"street", 2, ValueKind::kStreetAddress, 1.0, 0.0, 1, false},   // 4
      {"suburb_name", 3, ValueKind::kPlaceName, 1.0, 0.0, 1, false},  // 5
  };
  // Relations: each person has one address; each address one suburb.
  spec.relations = {
      {"has_address", 1, 2, 1.0, 0.0, 1, 0.0, /*one_to_one=*/true},  // 0
      {"in_suburb", 2, 3, 1.0, 0.0, 1, 0.5},                         // 1
  };
  World world = World::Generate(spec);

  DeriveSpec left;
  left.onto_name = "p1";
  left.seed = options.seed + 1;
  left.relations = {
      AttrMap(0, "p1:has_name"),     AttrMap(1, "p1:soc_sec_id"),
      AttrMap(2, "p1:phone_number"), AttrMap(3, "p1:date_of_birth"),
      AttrMap(4, "p1:street"),       AttrMap(5, "p1:suburb_label"),
      RelMap(0, "p1:has_address"),   RelMap(1, "p1:in_suburb"),
  };
  left.classes = {ClsMap(0, "p1:Thing"), ClsMap(1, "p1:Person"),
                  ClsMap(2, "p1:Address"), ClsMap(3, "p1:Suburb")};

  DeriveSpec right;
  right.onto_name = "p2";
  right.seed = options.seed + 2;
  // Disjoint vocabulary (the paper renames one side artificially) and the
  // inverse direction for the address relation.
  right.relations = {
      AttrMap(0, "p2:fullName"),   AttrMap(1, "p2:socialSecurityNumber"),
      AttrMap(2, "p2:telephone"),  AttrMap(3, "p2:born"),
      AttrMap(4, "p2:streetLine"), AttrMap(5, "p2:suburbName"),
      RelMap(0, "p2:isAddressOf", /*inverted=*/true),
      RelMap(1, "p2:locatedInSuburb"),
  };
  right.classes = {ClsMap(0, "p2:Entity"), ClsMap(1, "p2:Human"),
                   ClsMap(2, "p2:Location"), ClsMap(3, "p2:District")};

  return PairDeriver(&world, std::move(left), std::move(right))
      .Derive("oaei-person", options.pool);
}

// ---------------------------------------------------------------------------
// OAEI Restaurant
// ---------------------------------------------------------------------------

util::StatusOr<OntologyPair> MakeOaeiRestaurantPair(
    const ProfileOptions& options) {
  WorldSpec spec;
  spec.seed = options.seed + 100;
  // 0 Thing, 1 Restaurant, 2 Address, 3 Category.
  spec.classes = {
      {"thing", -1}, {"restaurant", 0}, {"address", 0}, {"category", 0}};
  spec.groups = {{1, Scaled(options.scale, 280), "restaurant"},
                 {2, Scaled(options.scale, 280), "address"},
                 {3, Scaled(options.scale, 10), "category"}};
  spec.attributes = {
      {"name", 1, ValueKind::kRestaurantName, 1.0, 0.0, 1, false},   // 0
      {"phone", 1, ValueKind::kPhone, 1.0, 0.0, 1, true},            // 1
      {"street", 2, ValueKind::kStreetAddress, 1.0, 0.0, 1, false},  // 2
      // City names come from a small pool: many addresses share one city
      // (low inverse functionality, like the LA-area restaurant data).
      {"city", 2, ValueKind::kPlaceName, 1.0, 0.0, 1, false, /*pool=*/12,
       0.8},  // 3
      {"cat_name", 3, ValueKind::kPlaceName, 1.0, 0.0, 1, true},  // 4
  };
  spec.relations = {
      {"has_address", 1, 2, 1.0, 0.0, 1, 0.0, /*one_to_one=*/true},  // 0
      {"has_category", 1, 3, 0.95, 0.2, 2, 0.6},                     // 1
  };
  World world = World::Generate(spec);
  // Shared hub entities exist on both sides regardless of the restaurant
  // coverage: categories and addresses are part of both datasets' schema.
  const std::vector<std::pair<int, double>> shared_hubs = {{2, 1.0},
                                                           {3, 1.0}};

  DeriveSpec left;
  left.onto_name = "r1";
  left.seed = options.seed + 101;
  left.entity_coverage = 0.8;
  left.class_coverage = shared_hubs;
  left.relations = {
      AttrMap(0, "r1:name"),         AttrMap(1, "r1:phone"),
      AttrMap(2, "r1:street"),       AttrMap(3, "r1:city"),
      AttrMap(4, "r1:categoryName"), RelMap(0, "r1:hasAddress"),
      RelMap(1, "r1:category"),
  };
  left.classes = {ClsMap(0, "r1:Thing"), ClsMap(1, "r1:Restaurant"),
                  ClsMap(2, "r1:Address"), ClsMap(3, "r1:Category")};

  DeriveSpec right;
  right.onto_name = "r2";
  right.seed = options.seed + 102;
  right.entity_coverage = 0.5;
  right.class_coverage = shared_hubs;
  // The famous noise of §6.3: a large share of phone numbers are formatted
  // differently ("213/467-1108" vs "213-467-1108"), and names carry typos.
  right.phone_reformat_prob = 0.45;
  right.typo_prob = 0.06;
  right.relations = {
      AttrMap(0, "r2:title"),     AttrMap(1, "r2:phoneNumber"),
      AttrMap(2, "r2:streetAddress"), AttrMap(3, "r2:cityName"),
      AttrMap(4, "r2:categoryLabel"),
      RelMap(0, "r2:address"),
      RelMap(1, "r2:inCategory"),
  };
  right.classes = {ClsMap(0, "r2:Entity"), ClsMap(1, "r2:Venue"),
                   ClsMap(2, "r2:Place"), ClsMap(3, "r2:Cuisine")};

  return PairDeriver(&world, std::move(left), std::move(right))
      .Derive("oaei-restaurant", options.pool);
}

// ---------------------------------------------------------------------------
// YAGO ↔ DBpedia
// ---------------------------------------------------------------------------

util::StatusOr<OntologyPair> MakeYagoDbpediaPair(
    const ProfileOptions& options) {
  WorldSpec spec;
  spec.seed = options.seed + 200;

  // Taxonomy: a root with four domains; persons and works get many
  // fine-grained leaf classes (the YAGO side maps all of them, the DBpedia
  // side only the domain level — the granularity mismatch of §4.3).
  spec.classes.push_back({"entity", -1});  // 0
  spec.classes.push_back({"person", 0});   // 1
  spec.classes.push_back({"place", 0});    // 2
  spec.classes.push_back({"organization", 0});  // 3
  spec.classes.push_back({"work", 0});     // 4
  const int kPersonGroups = 120;
  const int kWorkGroups = 60;
  const int kPlaceGroups = 12;
  std::vector<int> person_leaves;
  std::vector<int> work_leaves;
  std::vector<int> place_leaves;
  for (int i = 0; i < kPersonGroups; ++i) {
    person_leaves.push_back(static_cast<int>(spec.classes.size()));
    spec.classes.push_back({"person_group_" + std::to_string(i), 1});
  }
  for (int i = 0; i < kWorkGroups; ++i) {
    work_leaves.push_back(static_cast<int>(spec.classes.size()));
    spec.classes.push_back({"work_group_" + std::to_string(i), 4});
  }
  for (int i = 0; i < kPlaceGroups; ++i) {
    place_leaves.push_back(static_cast<int>(spec.classes.size()));
    spec.classes.push_back({"place_group_" + std::to_string(i), 2});
  }

  // Entities spread over the leaf classes.
  const int persons_per_leaf = Scaled(options.scale, 200);
  const int works_per_leaf = Scaled(options.scale, 120);
  // Places do NOT scale with the entity count: as in real KBs the place
  // vocabulary is small relative to the person population, so sharing a
  // birthplace stays weak evidence (inverse functionality well below θ).
  const int places_per_leaf = 8;
  for (int i = 0; i < kPersonGroups; ++i) {
    spec.groups.push_back(
        {person_leaves[static_cast<size_t>(i)], persons_per_leaf,
         "person" + std::to_string(i)});
  }
  for (int i = 0; i < kWorkGroups; ++i) {
    spec.groups.push_back({work_leaves[static_cast<size_t>(i)],
                           works_per_leaf, "work" + std::to_string(i)});
  }
  for (int i = 0; i < kPlaceGroups; ++i) {
    spec.groups.push_back({place_leaves[static_cast<size_t>(i)],
                           places_per_leaf, "place" + std::to_string(i)});
  }
  // Few organizations relative to persons (unscaled, like places):
  // employment / alma-mater relations must have *low* inverse functionality
  // (sharing an employer is weak evidence), as in the real KBs.
  spec.groups.push_back({3, 150, "org"});

  spec.attributes = {
      {"person_name", 1, ValueKind::kPersonName, 0.95, 0.0, 1, false},  // 0
      {"birthdate", 1, ValueKind::kDate, 0.8, 0.0, 1, false},           // 1
      {"place_name", 2, ValueKind::kPlaceName, 0.95, 0.0, 1, false},    // 2
      {"org_name", 3, ValueKind::kPlaceName, 0.9, 0.0, 1, false},       // 3
      {"work_title", 4, ValueKind::kMovieTitle, 0.95, 0.0, 1, false},   // 4
      {"work_year", 4, ValueKind::kYear, 0.85, 0.0, 1, false},          // 5
  };
  spec.relations = {
      {"born_in", 1, 2, 0.85, 0.0, 1, 0.8},      // 0
      {"lives_in", 1, 2, 0.5, 0.25, 3, 0.8},     // 1
      {"died_in", 1, 2, 0.3, 0.0, 1, 0.8},       // 2
      {"works_at", 1, 3, 0.5, 0.05, 2, 0.7},     // 3
      {"married_to", 1, 1, 0.35, 0.0, 1, 0.0},   // 4
      // Works own their (single) creator — person-side: "y:created" is the
      // inverse. A Zipf skew makes some authors prolific.
      {"created_by", 4, 1, 0.6, 0.0, 1, 0.9},    // 5
      // Movie casts: one work, several cast members (high fan-out → sharing
      // a cast member is moderate evidence; sharing a movie credit strong).
      {"has_cast", 4, 1, 0.45, 0.7, 6, 1.0},     // 6
      {"citizen_of", 1, 2, 0.8, 0.05, 2, 1.2},   // 7
      {"org_located_in", 3, 2, 0.9, 0.0, 1, 0.8},  // 8
      {"graduated_from", 1, 3, 0.4, 0.03, 2, 0.9},  // 9
  };
  // Long-tail entities are fact-poor; famous ones fact-rich (and both KBs
  // prefer the famous ones — Wikipedia categories / infoboxes).
  spec.prominence_richness = 0.85;
  World world = World::Generate(spec);

  // ---- Left: YAGO-like. Fine classes, forward relation vocabulary. ----
  DeriveSpec left;
  left.onto_name = "y";
  left.seed = options.seed + 201;
  left.entity_coverage = 0.75;
  left.prominence_correlation = 0.6;
  // Places and organizations are hub entities both KBs cover well.
  left.class_coverage = {{2, 0.97}, {3, 0.9}};
  left.fact_dropout = 0.2;
  left.typo_prob = 0.02;
  left.relations = {
      AttrMap(0, "rdfs:label"),
      AttrMap(1, "y:wasBornOnDate"),
      AttrMap(2, "rdfs:label"),
      AttrMap(3, "rdfs:label"),
      AttrMap(4, "rdfs:label"),
      AttrMap(5, "y:wasCreatedOnYear"),
      RelMap(0, "y:wasBornIn"),
      RelMap(1, "y:livesIn"),
      RelMap(2, "y:diedIn"),
      RelMap(3, "y:worksAt"),
      RelMap(4, "y:isMarriedTo"),
      RelMap(5, "y:created", /*inverted=*/true),   // person → work
      RelMap(6, "y:actedIn", /*inverted=*/true),   // person → work
      RelMap(7, "y:isCitizenOf"),
      RelMap(8, "y:isLocatedIn"),
      RelMap(9, "y:graduatedFrom"),
  };
  left.classes = {ClsMap(0, "y:entity"), ClsMap(1, "y:person"),
                  ClsMap(2, "y:place"), ClsMap(3, "y:organization"),
                  ClsMap(4, "y:work")};
  for (int leaf : person_leaves) {
    left.classes.push_back(
        ClsMap(leaf, "y:wikicategory_people_" + std::to_string(leaf)));
  }
  for (int leaf : work_leaves) {
    left.classes.push_back(
        ClsMap(leaf, "y:wikicategory_works_" + std::to_string(leaf)));
  }
  for (int leaf : place_leaves) {
    left.classes.push_back(
        ClsMap(leaf, "y:wikicategory_places_" + std::to_string(leaf)));
  }

  // ---- Right: DBpedia-like. Flat coarse classes; inverted / merged
  // relation vocabulary with different names. ----
  DeriveSpec right;
  right.onto_name = "dbp";
  right.seed = options.seed + 202;
  right.entity_coverage = 0.7;
  right.prominence_correlation = 0.6;
  right.class_coverage = {{2, 0.97}, {3, 0.9}};
  right.fact_dropout = 0.25;
  right.case_jitter_prob = 0.08;
  right.relations = {
      AttrMap(0, "dbp:birthName"),
      AttrMap(1, "dbp:birthDate"),
      AttrMap(2, "dbp:placeName"),
      AttrMap(3, "dbp:orgName"),
      AttrMap(4, "dbp:title"),
      AttrMap(5, "dbp:releaseYear"),
      RelMap(0, "dbp:birthPlace"),
      // lives_in and citizen_of merge into one coarse "residence".
      RelMap(1, "dbp:residence"),
      RelMap(7, "dbp:residence"),
      RelMap(2, "dbp:deathPlace"),
      RelMap(3, "dbp:employer"),
      RelMap(4, "dbp:spouse"),
      // Work-side directions, as in Table 4 (y:created ⊆ dbp:author⁻¹,
      // y:actedIn ⊆ dbp:starring⁻¹).
      RelMap(5, "dbp:author"),
      RelMap(6, "dbp:starring"),
      RelMap(8, "dbp:headquarter", /*inverted=*/true),
      RelMap(9, "dbp:almaMater"),
  };
  right.classes = {ClsMap(0, "dbp:Thing"), ClsMap(1, "dbp:Person"),
                   ClsMap(2, "dbp:Place"), ClsMap(3, "dbp:Organisation"),
                   ClsMap(4, "dbp:Work")};
  // A handful of mid-level DBpedia classes that coincide with some left
  // leaves (so exact matches exist too).
  for (int i = 0; i < 8; ++i) {
    right.classes.push_back(ClsMap(person_leaves[static_cast<size_t>(i)],
                                   "dbp:PersonGroup" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    right.classes.push_back(ClsMap(work_leaves[static_cast<size_t>(i)],
                                   "dbp:WorkGroup" + std::to_string(i)));
  }

  return PairDeriver(&world, std::move(left), std::move(right))
      .Derive("yago-dbpedia", options.pool);
}

// ---------------------------------------------------------------------------
// YAGO ↔ IMDb
// ---------------------------------------------------------------------------

util::StatusOr<OntologyPair> MakeYagoImdbPair(const ProfileOptions& options) {
  WorldSpec spec;
  spec.seed = options.seed + 300;
  // 0 entity, 1 person, 2 movie_person, 3 other_person, 4 movie, 5 place,
  // 6 tv_series (under movie), plus fine-grained person categories under
  // other_person/movie_person for the left side.
  spec.classes = {{"entity", -1}, {"person", 0},      {"movie_person", 1},
                  {"other_person", 1}, {"movie", 0},  {"place", 0},
                  {"tv_series", 4}};
  const int kActorGroups = 20;
  const int kOtherGroups = 15;
  std::vector<int> actor_leaves;
  std::vector<int> other_leaves;
  for (int i = 0; i < kActorGroups; ++i) {
    actor_leaves.push_back(static_cast<int>(spec.classes.size()));
    spec.classes.push_back({"actor_group_" + std::to_string(i), 2});
  }
  for (int i = 0; i < kOtherGroups; ++i) {
    other_leaves.push_back(static_cast<int>(spec.classes.size()));
    spec.classes.push_back({"other_group_" + std::to_string(i), 3});
  }

  const int actors_per_leaf = Scaled(options.scale, 220);
  const int others_per_leaf = Scaled(options.scale, 140);
  for (int i = 0; i < kActorGroups; ++i) {
    spec.groups.push_back({actor_leaves[static_cast<size_t>(i)],
                           actors_per_leaf, "mperson" + std::to_string(i)});
  }
  for (int i = 0; i < kOtherGroups; ++i) {
    spec.groups.push_back({other_leaves[static_cast<size_t>(i)],
                           others_per_leaf, "operson" + std::to_string(i)});
  }
  spec.groups.push_back({4, Scaled(options.scale, 2600), "movie"});
  spec.groups.push_back({6, Scaled(options.scale, 500), "tv"});
  spec.groups.push_back({5, 120, "place"});  // unscaled hub pool

  spec.attributes = {
      // Movie-person names (mapped by both sides).
      {"mp_name", 2, ValueKind::kPersonName, 0.98, 0.0, 1, false},  // 0
      // Other-person names (left side only — IMDb has no such people).
      {"op_name", 3, ValueKind::kPersonName, 0.98, 0.0, 1, false},  // 1
      {"movie_title", 4, ValueKind::kMovieTitle, 0.98, 0.0, 1, false},  // 2
      {"movie_year", 4, ValueKind::kYear, 0.9, 0.0, 1, false},      // 3
      // Birth years split by person kind so the IMDb side can cover only
      // movie people. Drawn from a small pool of years: thousands of people
      // share each year, so a shared birth year alone is weak evidence.
      {"mp_birth_year", 2, ValueKind::kYear, 0.85, 0.0, 1, false,
       /*pool=*/42, 0.3},  // 4
      {"place_name", 5, ValueKind::kPlaceName, 0.95, 0.0, 1, false},  // 5
      {"op_birth_year", 3, ValueKind::kYear, 0.85, 0.0, 1, false,
       /*pool=*/42, 0.3},  // 6
  };
  spec.relations = {
      // Movie-side credits: one movie, several cast members; a Zipf skew
      // over actors models stars with long filmographies.
      {"cast", 4, 2, 0.92, 0.85, 14, 1.0},       // 0
      {"directed_by", 4, 2, 0.5, 0.05, 2, 1.2},  // 1
      {"born_in", 1, 5, 0.7, 0.0, 1, 0.8},       // 2  (left only)
      {"married_to", 1, 1, 0.3, 0.0, 1, 0.0},    // 3  (left only)
  };
  spec.prominence_richness = 0.5;
  World world = World::Generate(spec);

  // ---- Left: YAGO-like. ----
  DeriveSpec left;
  left.onto_name = "y";
  left.seed = options.seed + 301;
  left.entity_coverage = 0.8;
  left.prominence_correlation = 0.6;
  left.fact_dropout = 0.15;
  left.relations = {
      AttrMap(0, "rdfs:label"),
      AttrMap(1, "rdfs:label"),
      AttrMap(2, "rdfs:label"),
      AttrMap(3, "y:wasCreatedOnYear"),
      AttrMap(4, "y:wasBornOnYear"),
      AttrMap(6, "y:wasBornOnYear"),
      AttrMap(5, "rdfs:label"),
      RelMap(0, "y:actedIn", /*inverted=*/true),   // person → movie
      RelMap(1, "y:directed", /*inverted=*/true),  // person → movie
      RelMap(2, "y:wasBornIn"),
      RelMap(3, "y:isMarriedTo"),
  };
  left.classes = {ClsMap(0, "y:entity"),      ClsMap(1, "y:person"),
                  ClsMap(4, "y:movie"),       ClsMap(6, "y:tvSeries"),
                  ClsMap(5, "y:place")};
  for (int leaf : actor_leaves) {
    left.classes.push_back(
        ClsMap(leaf, "y:wikicategory_actors_" + std::to_string(leaf)));
  }
  for (int leaf : other_leaves) {
    left.classes.push_back(
        ClsMap(leaf, "y:wikicategory_people_" + std::to_string(leaf)));
  }

  // ---- Right: IMDb-like. Movies only; noisy labels (typos and
  // transliteration-style token swaps, §6.4). ----
  DeriveSpec right;
  right.onto_name = "imdb";
  right.seed = options.seed + 302;
  right.entity_coverage = 0.9;
  right.prominence_correlation = 0.6;
  // IMDb is nearly complete for its own domain: movies and movie people.
  right.class_coverage = {{4, 0.98}, {2, 0.97}};
  right.fact_dropout = 0.08;
  right.typo_prob = 0.08;
  right.token_swap_prob = 0.06;
  right.relations = {
      AttrMap(0, "imdb:name"),
      AttrMap(2, "imdb:title"),
      AttrMap(3, "imdb:productionYear"),
      AttrMap(4, "imdb:bornOn"),
      RelMap(0, "imdb:actedIn", /*inverted=*/true),  // person → movie
      RelMap(1, "imdb:directedBy"),                  // movie → person
  };
  right.classes = {ClsMap(2, "imdb:actor"), ClsMap(4, "imdb:movie"),
                   ClsMap(6, "imdb:tvSeries")};

  return PairDeriver(&world, std::move(left), std::move(right))
      .Derive("yago-imdb", options.pool);
}

}  // namespace paris::synth
