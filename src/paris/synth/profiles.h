#ifndef PARIS_SYNTH_PROFILES_H_
#define PARIS_SYNTH_PROFILES_H_

#include "paris/synth/derive.h"
#include "paris/util/status.h"
#include "paris/util/thread_pool.h"

namespace paris::synth {

// Options common to all dataset profiles.
struct ProfileOptions {
  // Multiplies every entity count (1.0 = the defaults documented below).
  double scale = 1.0;
  uint64_t seed = 42;
  // Non-owning worker pool for index finalization; null = build serially.
  // The generated pair is byte-identical either way.
  util::ThreadPool* pool = nullptr;
};

// The four dataset pairs of the paper's evaluation (§6), rebuilt as seeded
// synthetic profiles. See DESIGN.md §2 for the substitution rationale: each
// profile reproduces the statistical properties PARIS is sensitive to
// (functionality profiles, instance overlap, literal noise, vocabulary and
// granularity mismatch) rather than the original data.

// OAEI 2010 "Person" (§6.2, Table 1): two near-noise-free person/address
// ontologies with disjoint vocabularies; 500 gold person pairs at scale 1.
util::StatusOr<OntologyPair> MakeOaeiPersonPair(
    const ProfileOptions& options = {});

// OAEI 2010 "Restaurant" (§6.2/§6.3, Table 1): restaurant/address/category
// ontologies where one side reformats phone numbers and typos names;
// ~112 gold pairs at scale 1.
util::StatusOr<OntologyPair> MakeOaeiRestaurantPair(
    const ProfileOptions& options = {});

// YAGO ↔ DBpedia (§6.4, Tables 2-4, Figures 1-2): a deep fine-grained class
// tree vs a flat coarse one, small forward-named relation vocabulary vs a
// larger one with inverted directions and merged relations, partial
// instance overlap and fact dropout.
util::StatusOr<OntologyPair> MakeYagoDbpediaPair(
    const ProfileOptions& options = {});

// YAGO ↔ IMDb (§6.4, Table 5): a general-purpose KB vs a movies-only
// database; labels on the IMDb side carry typos and token-swapped
// transliteration variants, so the rdfs:label baseline loses recall while
// PARIS recovers through structure.
util::StatusOr<OntologyPair> MakeYagoImdbPair(
    const ProfileOptions& options = {});

}  // namespace paris::synth

#endif  // PARIS_SYNTH_PROFILES_H_
