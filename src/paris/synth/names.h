#ifndef PARIS_SYNTH_NAMES_H_
#define PARIS_SYNTH_NAMES_H_

#include <string>

#include "paris/util/random.h"

namespace paris::synth {

// Deterministic generators of realistic-looking literal values for the
// synthetic worlds. All draw exclusively from the passed `Rng`, so a fixed
// seed reproduces the exact same dataset.

// "Marena Kovich"-style person names. A small surname pool is reused on
// purpose so that homonyms occur (the precision challenge of §6.4).
std::string PersonName(util::Rng& rng);

// "Westbrook", "Northfield" style toponyms.
std::string PlaceName(util::Rng& rng);

// "The Golden Lantern", "Casa Verde" style restaurant names.
std::string RestaurantName(util::Rng& rng);

// "The Return of the Iron Shadow" style movie titles.
std::string MovieTitle(util::Rng& rng);

// "123 Baker St" style street addresses.
std::string StreetAddress(util::Rng& rng);

// "213-467-1108" style US phone numbers (the canonical format; noise models
// reformat them).
std::string PhoneNumber(util::Rng& rng);

// "1942-07-15" ISO dates within [1900, 2010].
std::string DateString(util::Rng& rng);

// A 9-digit SSN-like identifier, zero-padded.
std::string SsnLike(util::Rng& rng);

// Year as a string in [1900, 2010].
std::string YearString(util::Rng& rng);

}  // namespace paris::synth

#endif  // PARIS_SYNTH_NAMES_H_
