#include "paris/synth/derive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "paris/synth/noise.h"
#include "paris/util/hash.h"
#include "paris/util/random.h"

namespace paris::synth {

namespace {

// Orientation-tagged world key (see DerivedGold::Cover).
constexpr int MakeCoverKey(int world_key, bool inverted) {
  return 2 * world_key + (inverted ? 1 : 0);
}

// The cover of a *signed* relation: inverting a relation flips the
// orientation bit of every entry.
DerivedGold::Cover AdjustedCover(const std::vector<DerivedGold::Cover>& covers,
                                 rdf::RelId rel) {
  const size_t base = static_cast<size_t>(rdf::BaseRel(rel));
  if (base == 0 || base > covers.size()) return {};
  DerivedGold::Cover cover = covers[base - 1];
  if (rdf::IsInverse(rel)) {
    for (int& key : cover) key ^= 1;
    std::sort(cover.begin(), cover.end());
  }
  return cover;
}

// Per-side build artifacts needed to assemble the gold standard.
struct SideArtifacts {
  std::unordered_map<int, std::string> entity_iri;  // world index → IRI
};

}  // namespace

// ---------------------------------------------------------------------------
// DerivedGold
// ---------------------------------------------------------------------------

bool DerivedGold::RelationContained(bool sub_is_left, rdf::RelId sub,
                                    rdf::RelId super) const {
  const Side& sub_side = side(sub_is_left);
  const Side& super_side = side(!sub_is_left);
  const Cover sub_cover = AdjustedCover(sub_side.covers, sub);
  if (sub_cover.empty()) return false;
  const Cover super_cover = AdjustedCover(super_side.covers, super);
  return std::includes(super_cover.begin(), super_cover.end(),
                       sub_cover.begin(), sub_cover.end());
}

std::vector<rdf::RelId> DerivedGold::AlignableRelations(bool left_side) const {
  const Side& sub_side = side(left_side);
  const Side& super_side = side(!left_side);
  std::vector<rdf::RelId> out;
  for (size_t i = 0; i < sub_side.covers.size(); ++i) {
    const rdf::RelId sub = static_cast<rdf::RelId>(i + 1);
    bool alignable = false;
    for (size_t j = 0; !alignable && j < super_side.covers.size(); ++j) {
      const rdf::RelId super = static_cast<rdf::RelId>(j + 1);
      alignable = RelationContained(left_side, sub, super) ||
                  RelationContained(left_side, sub, rdf::Inverse(super));
    }
    if (alignable) out.push_back(sub);
  }
  return out;
}

bool DerivedGold::ClassContained(bool sub_is_left, rdf::TermId sub,
                                 rdf::TermId super) const {
  const Side& sub_side = side(sub_is_left);
  const Side& super_side = side(!sub_is_left);
  auto sub_it = sub_side.class_world.find(sub);
  auto super_it = super_side.class_world.find(super);
  if (sub_it == sub_side.class_world.end() ||
      super_it == super_side.class_world.end()) {
    return false;
  }
  // sub ⊆ super iff super's world node is an ancestor-or-self of sub's.
  int node = sub_it->second;
  while (node >= 0) {
    if (node == super_it->second) return true;
    node = class_parent_[static_cast<size_t>(node)];
  }
  return false;
}

std::vector<rdf::TermId> DerivedGold::AlignableClasses(bool left_side) const {
  const Side& sub_side = side(left_side);
  const Side& super_side = side(!left_side);
  std::unordered_set<int> super_nodes;
  for (const auto& [term, node] : super_side.class_world) {
    super_nodes.insert(node);
  }
  std::vector<rdf::TermId> out;
  for (const auto& [term, node] : sub_side.class_world) {
    int walk = node;
    while (walk >= 0) {
      if (super_nodes.contains(walk)) {
        out.push_back(term);
        break;
      }
      walk = class_parent_[static_cast<size_t>(walk)];
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// PairDeriver
// ---------------------------------------------------------------------------

// Threshold t such that P(cX + (1-c)Y > t) = q for independent X, Y ~ U(0,1):
// the upper q-quantile of the trapezoidal blend distribution.
static double BlendUpperQuantile(double c, double q) {
  const double a = std::min(c, 1.0 - c);
  const double b = std::max(c, 1.0 - c);
  if (a <= 1e-12) return 1.0 - q;  // degenerate: plain uniform
  if (q <= a / (2.0 * b)) return 1.0 - std::sqrt(2.0 * a * b * q);
  if (q < 1.0 - a / (2.0 * b)) return a / 2.0 + b * (1.0 - q);
  return std::sqrt(2.0 * a * b * (1.0 - q));
}

bool PairDeriver::IncludedAt(uint64_t seed, int entity_index,
                             double coverage) {
  if (coverage >= 1.0) return true;
  const uint64_t h = util::Mix64(util::Mix64(seed + 0x5151) ^
                                 static_cast<uint64_t>(entity_index + 1));
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  return u < coverage;
}

bool PairDeriver::Includes(const DeriveSpec& spec, const World& world,
                           int entity_index) {
  double coverage = spec.entity_coverage;
  if (!spec.class_coverage.empty()) {
    const int cls =
        world.entities()[static_cast<size_t>(entity_index)].cls;
    // Nearest enclosing override wins: walk ancestors from the leaf out.
    for (int node : world.AncestorsOf(cls)) {
      bool found = false;
      for (const auto& [root, cov] : spec.class_coverage) {
        if (root == node) {
          coverage = cov;
          found = true;
          break;
        }
      }
      if (found) break;
    }
  }
  if (spec.prominence_correlation <= 0.0) {
    return IncludedAt(spec.seed, entity_index, coverage);
  }
  // Blend the side-specific uniform draw with the entity's prominence and
  // include the top `coverage` probability mass of the blend. The exact
  // quantile of the trapezoidal blend distribution keeps the nominal
  // coverage accurate while making both sides prefer the same prominent
  // entities.
  if (coverage >= 1.0) return true;
  const uint64_t h = util::Mix64(util::Mix64(spec.seed + 0x5151) ^
                                 static_cast<uint64_t>(entity_index + 1));
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  const double c = std::min(spec.prominence_correlation, 1.0);
  const double prom =
      world.entities()[static_cast<size_t>(entity_index)].prominence;
  const double score = c * prom + (1.0 - c) * u;
  return score > BlendUpperQuantile(c, coverage);
}

namespace {

// Builds one ontology from the world under `spec`, recording the artifacts
// needed for the gold standard.
util::StatusOr<ontology::Ontology> BuildSide(const World& world,
                                             const DeriveSpec& spec,
                                             rdf::TermPool* pool,
                                             SideArtifacts* artifacts,
                                             util::ThreadPool* workers) {
  ontology::OntologyBuilder builder(pool, spec.onto_name);
  util::Rng noise_rng(spec.seed ^ 0x6e6f697365ULL);  // "noise"

  // Index the mappings.
  std::unordered_map<int, std::vector<const RelationMapping*>> rel_mappings;
  std::unordered_map<int, std::vector<const RelationMapping*>> attr_mappings;
  for (const RelationMapping& m : spec.relations) {
    if (m.world_relation >= 0) {
      rel_mappings[m.world_relation].push_back(&m);
    } else {
      assert(m.world_attribute >= 0);
      assert(!m.inverted && "literal attributes cannot be inverted");
      attr_mappings[m.world_attribute].push_back(&m);
    }
  }
  std::unordered_map<int, std::vector<const ClassMapping*>> class_by_node;
  for (const ClassMapping& m : spec.classes) {
    class_by_node[m.world_class].push_back(&m);
  }

  // Subclass edges between mapped classes: m1 ⊆ m2 iff m2's world node is a
  // strict ancestor of m1's.
  for (const ClassMapping& m : spec.classes) {
    const std::vector<int> ancestors = world.AncestorsOf(m.world_class);
    for (size_t a = 1; a < ancestors.size(); ++a) {  // skip self
      auto it = class_by_node.find(ancestors[a]);
      if (it == class_by_node.end()) continue;
      for (const ClassMapping* super : it->second) {
        builder.AddSubClassOf(m.name, super->name);
      }
    }
  }

  const std::string ns = spec.onto_name + ":";
  auto iri_of = [&](int entity_index) {
    return ns + world.entities()[static_cast<size_t>(entity_index)].id;
  };

  auto corrupt = [&](std::string value) {
    if (spec.phone_reformat_prob > 0.0 &&
        noise_rng.Bernoulli(spec.phone_reformat_prob)) {
      value = ReformatPhone(noise_rng, value);
    }
    if (spec.typo_prob > 0.0 && noise_rng.Bernoulli(spec.typo_prob)) {
      value = ApplyTypo(noise_rng, value);
    }
    if (spec.case_jitter_prob > 0.0 &&
        noise_rng.Bernoulli(spec.case_jitter_prob)) {
      value = JitterCasePunct(noise_rng, value);
    }
    if (spec.token_swap_prob > 0.0 &&
        noise_rng.Bernoulli(spec.token_swap_prob)) {
      value = SwapFirstTokens(value);
    }
    return value;
  };

  // Entities: types and literal attributes.
  for (size_t ei = 0; ei < world.entities().size(); ++ei) {
    const int entity_index = static_cast<int>(ei);
    if (!PairDeriver::Includes(spec, world, entity_index)) continue;
    const WorldEntity& entity = world.entities()[ei];
    const std::string iri = iri_of(entity_index);
    artifacts->entity_iri.emplace(entity_index, iri);

    for (int anc : world.AncestorsOf(entity.cls)) {
      auto it = class_by_node.find(anc);
      if (it == class_by_node.end()) continue;
      for (const ClassMapping* m : it->second) {
        builder.AddType(iri, m->name);
      }
    }

    for (const auto& [attr_index, value] : entity.attributes) {
      auto it = attr_mappings.find(attr_index);
      if (it == attr_mappings.end()) continue;
      for (const RelationMapping* m : it->second) {
        if (spec.fact_dropout > 0.0 && noise_rng.Bernoulli(spec.fact_dropout))
          continue;
        builder.AddLiteralFact(iri, m->name, corrupt(value));
      }
    }
  }

  // Entity-entity edges.
  for (const WorldEdge& edge : world.edges()) {
    auto it = rel_mappings.find(edge.relation);
    if (it == rel_mappings.end()) continue;
    if (!PairDeriver::Includes(spec, world, edge.source) ||
        !PairDeriver::Includes(spec, world, edge.target)) {
      continue;
    }
    for (const RelationMapping* m : it->second) {
      if (spec.fact_dropout > 0.0 && noise_rng.Bernoulli(spec.fact_dropout))
        continue;
      if (m->inverted) {
        builder.AddFact(iri_of(edge.target), m->name, iri_of(edge.source));
      } else {
        builder.AddFact(iri_of(edge.source), m->name, iri_of(edge.target));
      }
    }
  }

  return builder.Build(workers);
}

// Resolves the gold cover / class tables of one built side.
void ResolveGoldSide(const DeriveSpec& spec, const ontology::Ontology& onto,
                     std::vector<DerivedGold::Cover>* covers,
                     std::unordered_map<rdf::TermId, int>* class_world) {
  const rdf::TermPool& pool = onto.pool();
  covers->assign(onto.num_relations(), {});
  for (const RelationMapping& m : spec.relations) {
    const auto name_term = pool.Find(m.name, rdf::TermKind::kIri);
    if (!name_term.has_value()) continue;
    const auto rel = onto.store().FindRelation(*name_term);
    if (!rel.has_value()) continue;
    const int world_key = m.world_relation >= 0
                              ? m.world_relation
                              : DerivedGold::kAttributeBase + m.world_attribute;
    (*covers)[static_cast<size_t>(*rel) - 1].push_back(
        MakeCoverKey(world_key, m.inverted));
  }
  for (auto& cover : *covers) {
    std::sort(cover.begin(), cover.end());
    cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
  }
  for (const ClassMapping& m : spec.classes) {
    const auto term = pool.Find(m.name, rdf::TermKind::kIri);
    if (!term.has_value() || !onto.IsClassTerm(*term)) continue;
    class_world->emplace(*term, m.world_class);
  }
}

}  // namespace

util::StatusOr<OntologyPair> PairDeriver::Derive(
    std::string pair_name, util::ThreadPool* pool) const {
  OntologyPair pair;
  pair.name = std::move(pair_name);
  pair.pool = std::make_unique<rdf::TermPool>();

  SideArtifacts left_artifacts;
  SideArtifacts right_artifacts;
  auto left =
      BuildSide(*world_, left_spec_, pair.pool.get(), &left_artifacts, pool);
  if (!left.ok()) return left.status();
  auto right = BuildSide(*world_, right_spec_, pair.pool.get(),
                         &right_artifacts, pool);
  if (!right.ok()) return right.status();
  pair.left =
      std::make_unique<ontology::Ontology>(std::move(left).value());
  pair.right =
      std::make_unique<ontology::Ontology>(std::move(right).value());

  // Gold: instances present on both sides.
  DerivedGold& gold = pair.gold;
  for (const auto& [entity_index, left_iri] : left_artifacts.entity_iri) {
    auto right_it = right_artifacts.entity_iri.find(entity_index);
    if (right_it == right_artifacts.entity_iri.end()) continue;
    const auto left_term =
        pair.pool->Find(left_iri, rdf::TermKind::kIri);
    const auto right_term =
        pair.pool->Find(right_it->second, rdf::TermKind::kIri);
    if (!left_term.has_value() || !right_term.has_value()) continue;
    if (!pair.left->IsInstanceTerm(*left_term) ||
        !pair.right->IsInstanceTerm(*right_term)) {
      continue;
    }
    gold.left_to_right_.emplace(*left_term, *right_term);
    gold.right_to_left_.emplace(*right_term, *left_term);
  }

  // Gold: relation covers and class nodes.
  ResolveGoldSide(left_spec_, *pair.left, &gold.left_.covers,
                  &gold.left_.class_world);
  ResolveGoldSide(right_spec_, *pair.right, &gold.right_.covers,
                  &gold.right_.class_world);

  // World taxonomy parents for class containment.
  gold.class_parent_.reserve(world_->num_classes());
  for (const WorldClass& c : world_->spec().classes) {
    gold.class_parent_.push_back(c.parent);
  }

  return pair;
}

}  // namespace paris::synth
