#include "paris/ontology/export.h"

#include <ostream>

#include "paris/ontology/vocab.h"
#include "paris/rdf/ntriples.h"
#include "paris/util/fs.h"

namespace paris::ontology {

void ExportToNTriples(const Ontology& onto, std::ostream& out) {
  const rdf::TermPool& pool = onto.pool();
  out << "# ontology \"" << onto.name() << "\": " << onto.instances().size()
      << " instances, " << onto.classes().size() << " classes, "
      << onto.num_relations() << " relations, " << onto.num_triples()
      << " triples\n";

  // Schema: subclass closure.
  for (rdf::TermId cls : onto.classes()) {
    for (rdf::TermId super : onto.SuperClassesOf(cls)) {
      out << "<" << pool.lexical(cls) << "> <" << kRdfsSubClassOf << "> <"
          << pool.lexical(super) << "> .\n";
    }
  }
  // Types (closed).
  for (rdf::TermId instance : onto.instances()) {
    for (rdf::TermId cls : onto.ClassesOf(instance)) {
      out << "<" << pool.lexical(instance) << "> <" << kRdfType << "> <"
          << pool.lexical(cls) << "> .\n";
    }
  }
  // Regular facts (base direction only).
  for (rdf::TermId term : onto.store().terms()) {
    for (const rdf::Fact& f : onto.FactsAbout(term)) {
      if (f.rel < 0) continue;  // emit each statement once
      out << "<" << pool.lexical(term) << "> <"
          << pool.lexical(onto.store().relation_name(f.rel)) << "> ";
      if (pool.IsLiteral(f.other)) {
        out << "\"" << rdf::EscapeLiteral(pool.lexical(f.other)) << "\"";
      } else {
        out << "<" << pool.lexical(f.other) << ">";
      }
      out << " .\n";
    }
  }
}

util::Status ExportToNTriplesFile(const Ontology& onto,
                                  const std::string& path) {
  util::AtomicFileWriter out(path);
  ExportToNTriples(onto, out.stream());
  return out.Commit();
}

}  // namespace paris::ontology
