#ifndef PARIS_ONTOLOGY_ONTOLOGY_H_
#define PARIS_ONTOLOGY_ONTOLOGY_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "paris/ontology/functionality.h"
#include "paris/ontology/packed_term_map.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/store.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"
#include "paris/util/status.h"

namespace paris::storage {
class SnapshotReader;
class SnapshotWriter;
}  // namespace paris::storage

namespace paris::util {
class ThreadPool;
}  // namespace paris::util

namespace paris::ontology {

class Ontology;

// Snapshot section I/O (src/ontology/snapshot.h); friends of Ontology.
// `version` is the snapshot file's format version, steering how the packed
// triple store section is written / interpreted.
void SaveOntologySection(const Ontology& onto, storage::SnapshotWriter& writer,
                         uint32_t version);
util::StatusOr<Ontology> LoadOntologySection(storage::SnapshotReader& reader,
                                             rdf::TermPool* pool,
                                             uint32_t version);

// An RDFS ontology in the paper's sense (§3): a finalized set of statements
// over a shared term pool, with
//   * resources partitioned into classes and instances,
//   * the rdf:type / rdfs:subClassOf / rdfs:subPropertyOf statements
//     materialized to their deductive closure,
//   * all inverse statements materialized (via signed relation ids), and
//   * global functionalities precomputed for every signed relation.
//
// Built exclusively through `OntologyBuilder`. Immutable while alignment
// passes read it from many threads; between runs, `ApplyDelta` may merge a
// batch of new statements in place (no concurrent readers allowed during
// the merge).
class Ontology {
 public:
  Ontology(const Ontology&) = delete;
  Ontology& operator=(const Ontology&) = delete;
  Ontology(Ontology&&) = default;
  Ontology& operator=(Ontology&&) = default;

  const std::string& name() const { return name_; }
  rdf::TermPool& pool() const { return store_.pool(); }
  const rdf::TripleStore& store() const { return store_; }

  // ---- Partition (§3) ----

  // Instances in first-seen order. Every id is an IRI term.
  const std::vector<rdf::TermId>& instances() const { return instances_; }
  // Classes in first-seen order.
  const std::vector<rdf::TermId>& classes() const { return classes_; }

  bool IsClassTerm(rdf::TermId t) const { return class_set_.contains(t); }
  bool IsInstanceTerm(rdf::TermId t) const {
    return instance_set_.contains(t);
  }

  // ---- Types (deductively closed) ----

  // All classes `instance` belongs to (direct types plus superclasses).
  // Sorted. Served from a packed CSR index (one hash + one probe, no
  // bucket-pointer chase) — the class pass hits this for every candidate
  // instance in its inner loop.
  std::span<const rdf::TermId> ClassesOf(rdf::TermId instance) const {
    return packed_classes_of_.Get(instance);
  }
  // All instances of `cls` (including instances of subclasses). Sorted.
  std::span<const rdf::TermId> InstancesOf(rdf::TermId cls) const {
    return packed_instances_of_.Get(cls);
  }

  // ---- Class hierarchy ----

  // Direct rdfs:subClassOf edges out of `cls` (transitively closed at build).
  std::span<const rdf::TermId> SuperClassesOf(rdf::TermId cls) const;
  bool IsSubClassOf(rdf::TermId sub, rdf::TermId super) const;

  // ---- Facts & functionality ----

  // Statements `t` participates in (regular relations only; schema
  // statements live in the indexes above).
  std::span<const rdf::Fact> FactsAbout(rdf::TermId t) const {
    return store_.FactsAbout(t);
  }

  // The statements of `t` with relation exactly `rel` (may be inverse):
  // a binary search within `t`'s packed adjacency slice.
  std::span<const rdf::Fact> FactsAbout(rdf::TermId t, rdf::RelId rel) const {
    return store_.FactsAbout(t, rel);
  }

  // The objects y with rel(t, y), as a sorted span into the store's object
  // column (no allocation).
  std::span<const rdf::TermId> ObjectsOf(rdf::TermId t, rdf::RelId rel) const {
    return store_.ObjectsOf(t, rel);
  }

  const FunctionalityTable& functionality() const { return *functionality_; }
  double Fun(rdf::RelId rel) const { return functionality_->Global(rel); }
  double FunInverse(rdf::RelId rel) const {
    return functionality_->GlobalInverse(rel);
  }

  size_t num_relations() const { return store_.num_relations(); }
  size_t num_triples() const { return store_.num_triples(); }

  // ---- Delta ingestion ----

  // What one ApplyDelta changed. Every list is sorted and deduplicated, so
  // downstream consumers (the incremental aligner's seed worklist) iterate
  // in a canonical order independent of delta file order.
  struct DeltaSummary {
    // Terms that gained statements or types (includes literal objects).
    std::vector<rdf::TermId> touched_terms;
    // Base relations that gained pairs; their global functionalities (and
    // possibly every relation's sub-relation scores against them) changed.
    std::vector<rdf::RelId> touched_relations;
    // Instance terms first seen by this delta.
    std::vector<rdf::TermId> new_instances;
    // Distinct novel statements (duplicates of existing facts are dropped).
    size_t num_new_statements = 0;
  };

  // Merges a batch of new statements into the built ontology: regular facts
  // and rdf:type statements only. Schema deltas (rdfs:subClassOf /
  // rdfs:subPropertyOf) are rejected with InvalidArgument — they would
  // invalidate the precomputed closures — as are statements that move a
  // term across the class/instance partition. The caller must supply the
  // delta in its deductive closure w.r.t. rdfs:subPropertyOf (facts are
  // recorded exactly as given); rdf:type statements are closed under the
  // existing subclass hierarchy here. The store merge is an in-place splice
  // of the touched CSR/POS slices (rdf/store.h MergeDelta), after which the
  // global functionality table is recomputed over the merged store. On
  // error the ontology is unchanged.
  util::StatusOr<DeltaSummary> ApplyDelta(
      std::span<const rdf::ParsedTriple> triples,
      util::ThreadPool* thread_pool = nullptr, obs::Hooks hooks = {});

  std::string TermName(rdf::TermId t) const {
    return std::string(pool().lexical(t));
  }
  std::string RelationName(rdf::RelId rel) const {
    return store_.RelationDebugName(rel);
  }

 private:
  friend class OntologyBuilder;
  friend void SaveOntologySection(const Ontology& onto,
                                  storage::SnapshotWriter& writer,
                                  uint32_t version);
  friend util::StatusOr<Ontology> LoadOntologySection(
      storage::SnapshotReader& reader, rdf::TermPool* pool, uint32_t version);
  explicit Ontology(rdf::TermPool* pool) : store_(pool) {}

  // Re-derives the packed type indexes from classes_of_ / instances_of_.
  // Must run after anything that mutates those maps (build, load, delta).
  void RepackTypeIndexes();

  std::string name_;
  rdf::TripleStore store_;

  std::vector<rdf::TermId> instances_;
  std::vector<rdf::TermId> classes_;
  std::unordered_set<rdf::TermId> instance_set_;
  std::unordered_set<rdf::TermId> class_set_;

  // Closed type indexes (source of truth; mutated by ApplyDelta).
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> classes_of_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> instances_of_;
  // Read-optimized packed forms of the two maps above; ClassesOf /
  // InstancesOf serve from these.
  PackedTermMap packed_classes_of_;
  PackedTermMap packed_instances_of_;
  // Transitively closed subclass edges (excluding self).
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> superclasses_;

  std::unique_ptr<FunctionalityTable> functionality_;
};

// Accumulates statements (programmatically or as an N-Triples sink), then
// `Build()`s an immutable `Ontology`:
//   1. computes the rdfs:subPropertyOf closure and copies implied facts,
//   2. computes the rdfs:subClassOf closure and closes rdf:type under it,
//   3. partitions resources into classes and instances,
//   4. finalizes the triple store and precomputes functionalities.
class OntologyBuilder : public rdf::TripleSink {
 public:
  OntologyBuilder(rdf::TermPool* pool, std::string name)
      : pool_(pool), name_(std::move(name)) {}

  // Regular statement relation(subject, object-IRI).
  void AddFact(std::string_view subject, std::string_view relation,
               std::string_view object_iri);
  // Regular statement relation(subject, "literal").
  void AddLiteralFact(std::string_view subject, std::string_view relation,
                      std::string_view literal);
  // rdf:type(instance, cls).
  void AddType(std::string_view instance, std::string_view cls);
  // rdfs:subClassOf(sub, super).
  void AddSubClassOf(std::string_view sub, std::string_view super);
  // rdfs:subPropertyOf(sub, super).
  void AddSubPropertyOf(std::string_view sub, std::string_view super);

  // rdf::TripleSink: dispatches on well-known predicates (vocab.h). A
  // literal in a schema position (e.g. as the object of rdf:type) is
  // recorded as an error and reported by Build().
  void OnTriple(const rdf::ParsedTriple& triple) override;

  size_t num_pending_facts() const { return facts_.size(); }

  // Consumes the builder. Returns an error if the accumulated statements
  // violate the model (e.g., a literal used as a class). With a non-null
  // `pool`, the triple-store finalize (the dominant build phase on large
  // ontologies) shards its sorts across the workers. `hooks` (optional)
  // records "io" spans for the finalize and functionality phases.
  util::StatusOr<Ontology> Build(util::ThreadPool* pool = nullptr,
                                 obs::Hooks hooks = {});

 private:
  struct RawFact {
    rdf::TermId subject;
    rdf::TermId relation_name;
    rdf::TermId object;
  };

  rdf::TermPool* pool_;
  std::string name_;
  util::Status first_error_;
  std::vector<RawFact> facts_;
  std::vector<rdf::TermPair> type_edges_;      // (instance, class)
  std::vector<rdf::TermPair> subclass_edges_;  // (sub, super)
  std::vector<rdf::TermPair> subprop_edges_;   // (sub, super)
};

// Convenience: parse an N-Triples document into an ontology.
util::StatusOr<Ontology> LoadOntologyFromNTriples(rdf::TermPool* pool,
                                                  std::string name,
                                                  std::string_view document);

}  // namespace paris::ontology

#endif  // PARIS_ONTOLOGY_ONTOLOGY_H_
