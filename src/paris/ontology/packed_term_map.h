#ifndef PARIS_ONTOLOGY_PACKED_TERM_MAP_H_
#define PARIS_ONTOLOGY_PACKED_TERM_MAP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "paris/rdf/term.h"

namespace paris::ontology {

// A read-optimized snapshot of a TermId → sorted-TermId-list map: all value
// lists packed into one contiguous CSR array, keyed by an open-addressed
// probe table sized at twice the key count. `Get` is one multiplicative
// hash plus (usually) a single slot probe touching 8 bytes — no pointer
// chase through unordered_map buckets and no per-key vector header — which
// is what the class pass's membership probes (ClassesOf/InstancesOf on
// every candidate instance) want in their inner loop.
//
// The map it was built from stays the source of truth: `Repack` derives the
// packed form and preserves each key's value order exactly, so spans served
// from here are element-identical to spans over the original vectors.
class PackedTermMap {
 public:
  PackedTermMap() = default;

  // Rebuilds the packed form from `map`. Any previously returned spans are
  // invalidated.
  void Repack(const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>&
                  map);

  // The values of `key`, or an empty span. Valid until the next Repack().
  std::span<const rdf::TermId> Get(rdf::TermId key) const {
    if (slots_.empty()) return {};
    size_t i = Hash(key) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) {
        return {values_.data() + offsets_[s.row],
                offsets_[s.row + 1] - offsets_[s.row]};
      }
      if (s.key == rdf::kNullTerm) return {};
      i = (i + 1) & mask_;
    }
  }

  size_t num_keys() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

 private:
  struct Slot {
    rdf::TermId key = rdf::kNullTerm;  // kNullTerm marks an empty slot
    uint32_t row = 0;
  };

  static size_t Hash(rdf::TermId key) {
    // Fibonacci multiplicative hash; the probe table is a power of two.
    return static_cast<size_t>(key) * 2654435761u;
  }

  std::vector<Slot> slots_;  // power-of-two open-addressed probe table
  size_t mask_ = 0;          // slots_.size() - 1
  std::vector<uint64_t> offsets_;      // row → [begin, end) in values_
  std::vector<rdf::TermId> values_;    // concatenated value lists
};

}  // namespace paris::ontology

#endif  // PARIS_ONTOLOGY_PACKED_TERM_MAP_H_
