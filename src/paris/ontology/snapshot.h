#ifndef PARIS_ONTOLOGY_SNAPSHOT_H_
#define PARIS_ONTOLOGY_SNAPSHOT_H_

#include <string>

#include "paris/ontology/ontology.h"
#include "paris/rdf/term.h"
#include "paris/storage/snapshot.h"
#include "paris/util/status.h"

namespace paris::ontology {

// Ontology-level snapshot persistence on top of the storage-layer binary
// format (src/storage/snapshot.h). A snapshot file holds the shared term
// pool, both ontologies of an alignment run (name, packed triple store,
// class/instance partition, closed type and subclass indexes), and a
// checksum trailer. Functionality tables are recomputed on load — they are
// a deterministic function of the packed store.
//
// `SaveOntologySection` / `LoadOntologySection` (declared in ontology.h as
// friends) write one ontology; the functions below frame a whole file.

// Both ontologies must share one term pool (the normal alignment setup).
// `version` selects the format version to write (compat tests write a
// downlevel storage::kMinSnapshotVersion file); it must lie in
// [storage::kMinSnapshotVersion, storage::kSnapshotVersion].
util::Status SaveAlignmentSnapshot(const std::string& path,
                                   const Ontology& left, const Ontology& right,
                                   uint32_t version = storage::kSnapshotVersion);

struct AlignmentSnapshot {
  Ontology left;
  Ontology right;
};

// How `LoadAlignmentSnapshot` brings the file in. In `kMmap` the packed
// index columns alias the mapping, which the loaded ontologies keep alive.
using SnapshotLoadMode = storage::SnapshotLoadMode;

// Loads a snapshot into the (empty) `pool`. On failure the pool's contents
// are unspecified — use a fresh pool per attempt. Rejects files with a bad
// magic/version, structurally invalid sections, or a checksum mismatch
// (corruption / truncation); the mmap path verifies the whole-file checksum
// *before* adopting any view (checksum-before-map).
util::StatusOr<AlignmentSnapshot> LoadAlignmentSnapshot(
    const std::string& path, rdf::TermPool* pool,
    SnapshotLoadMode mode = SnapshotLoadMode::kAuto);

}  // namespace paris::ontology

#endif  // PARIS_ONTOLOGY_SNAPSHOT_H_
