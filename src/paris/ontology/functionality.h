#ifndef PARIS_ONTOLOGY_FUNCTIONALITY_H_
#define PARIS_ONTOLOGY_FUNCTIONALITY_H_

#include <cstddef>
#include <vector>

#include "paris/rdf/store.h"
#include "paris/rdf/triple.h"

namespace paris::ontology {

// The global-functionality definitions discussed in Appendix A of the paper.
// `kHarmonicMean` (alternatives 4/5, which coincide) is the paper's choice
// and this library's default; the others exist for the ablation benchmark.
enum class FunctionalityVariant {
  // fun(r) = #x∃y:r(x,y) / #(x,y):r(x,y)  — harmonic mean of local
  // functionalities (Eq. 2).
  kHarmonicMean = 0,
  // Alternative 1: #(x,y) / #(x,y,y'): volatile to high-degree sources.
  kStatementPairRatio = 1,
  // Alternative 2: #distinct first args / #distinct second args (clamped to
  // [0,1]); the treacherous "likesDish" definition.
  kArgumentRatio = 2,
  // Alternative 3: arithmetic mean of the local functionalities.
  kArithmeticMean = 3,
};

// Degree statistics of one relation direction, sufficient to evaluate every
// variant in O(1).
struct DirectionStats {
  size_t num_pairs = 0;             // #(x,y) : r(x,y)
  size_t num_distinct_firsts = 0;   // #x ∃y : r(x,y)
  size_t num_distinct_seconds = 0;  // #y ∃x : r(x,y)
  double sum_inverse_degree = 0.0;  // Σ_x 1/#y:r(x,y)
  double sum_squared_degree = 0.0;  // Σ_x (#y:r(x,y))² = #(x,y,y')
};

// Precomputed functionalities for every signed relation of one store. Per
// §5.1 of the paper, functionalities are computed once per ontology upfront
// (the no-duplicates-within-one-ontology assumption makes them constant).
class FunctionalityTable {
 public:
  // Computes statistics for every relation of the (finalized) store.
  explicit FunctionalityTable(const rdf::TripleStore& store);

  // Global functionality of `rel` (which may be an inverse id) under
  // `variant`. Always in [0, 1]; relations with no pairs report 0.
  double Global(rdf::RelId rel, FunctionalityVariant variant =
                                    FunctionalityVariant::kHarmonicMean) const;

  // Global inverse functionality: fun⁻¹(r) = fun(r⁻¹).
  double GlobalInverse(rdf::RelId rel,
                       FunctionalityVariant variant =
                           FunctionalityVariant::kHarmonicMean) const {
    return Global(rdf::Inverse(rel), variant);
  }

  // The raw statistics of `rel`'s direction.
  const DirectionStats& Stats(rdf::RelId rel) const;

  // Local functionality fun(r, x) = 1 / #y : r(x, y), from the live store.
  static double Local(const rdf::TripleStore& store, rdf::RelId rel,
                      rdf::TermId x);

 private:
  // stats_[2*(base-1)] = forward direction, stats_[2*(base-1)+1] = inverse.
  std::vector<DirectionStats> stats_;
};

// Evaluates a variant from direction statistics (exposed for tests).
double EvaluateFunctionality(const DirectionStats& stats,
                             FunctionalityVariant variant);

}  // namespace paris::ontology

#endif  // PARIS_ONTOLOGY_FUNCTIONALITY_H_
