#include "paris/ontology/snapshot.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <utility>
#include <vector>

#include "paris/ontology/functionality.h"
#include "paris/storage/snapshot.h"
#include "paris/util/fs.h"

namespace paris::ontology {

namespace {

using TermVectorMap =
    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>;

// Maps are written in sorted key order so identical ontologies always
// produce byte-identical snapshots.
void SaveTermVectorMap(const TermVectorMap& map,
                       storage::SnapshotWriter& writer) {
  std::vector<rdf::TermId> keys;
  keys.reserve(map.size());
  for (const auto& [key, values] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer.WriteU64(keys.size());
  for (rdf::TermId key : keys) {
    writer.WriteU32(key);
    writer.WritePodVector(map.at(key));
  }
}

bool LoadTermVectorMap(storage::SnapshotReader& reader, size_t pool_size,
                       TermVectorMap* out) {
  const uint64_t count = reader.ReadU64();
  // Don't trust `count` for an upfront reservation — on a corrupt file it
  // can be arbitrary; entries are validated (and the map grown) one by one.
  out->reserve(std::min<uint64_t>(count, 1 << 16));
  for (uint64_t i = 0; i < count; ++i) {
    const rdf::TermId key = reader.ReadU32();
    std::vector<rdf::TermId> values;
    if (!reader.ReadPodVector(&values)) return false;
    if (static_cast<size_t>(key) >= pool_size) return false;
    for (rdf::TermId v : values) {
      if (static_cast<size_t>(v) >= pool_size) return false;
    }
    if (!out->emplace(key, std::move(values)).second) return false;
  }
  return reader.ok();
}

bool TermsInRange(const std::vector<rdf::TermId>& terms, size_t pool_size) {
  return std::all_of(terms.begin(), terms.end(), [pool_size](rdf::TermId t) {
    return static_cast<size_t>(t) < pool_size;
  });
}

}  // namespace

void SaveOntologySection(const Ontology& onto, storage::SnapshotWriter& writer,
                         uint32_t version) {
  writer.WriteString(onto.name_);
  onto.store_.SaveTo(writer, version);
  writer.WritePodVector(onto.instances_);
  writer.WritePodVector(onto.classes_);
  SaveTermVectorMap(onto.classes_of_, writer);
  SaveTermVectorMap(onto.superclasses_, writer);
}

util::StatusOr<Ontology> LoadOntologySection(storage::SnapshotReader& reader,
                                             rdf::TermPool* pool,
                                             uint32_t version) {
  Ontology onto(pool);
  onto.name_ = reader.ReadString();
  auto store = rdf::TripleStore::LoadFrom(reader, pool, version);
  if (!store.ok()) return store.status();
  onto.store_ = std::move(store).value();
  const size_t pool_size = pool->size();
  if (!reader.ReadPodVector(&onto.instances_) ||
      !reader.ReadPodVector(&onto.classes_) ||
      !LoadTermVectorMap(reader, pool_size, &onto.classes_of_) ||
      !LoadTermVectorMap(reader, pool_size, &onto.superclasses_)) {
    return util::DataLossError("truncated ontology section");
  }
  if (!TermsInRange(onto.instances_, pool_size) ||
      !TermsInRange(onto.classes_, pool_size)) {
    return util::DataLossError("ontology term id out of pool range");
  }

  // Derived structures: sets, the inverted type index, and functionalities
  // (all deterministic functions of the serialized state, mirroring
  // OntologyBuilder::Build()).
  onto.instance_set_.reserve(onto.instances_.size());
  for (rdf::TermId t : onto.instances_) {
    if (!onto.instance_set_.insert(t).second) {
      return util::DataLossError("duplicate instance in snapshot");
    }
  }
  onto.class_set_.reserve(onto.classes_.size());
  for (rdf::TermId t : onto.classes_) {
    if (!onto.class_set_.insert(t).second) {
      return util::DataLossError("duplicate class in snapshot");
    }
  }
  for (const auto& [instance, classes] : onto.classes_of_) {
    for (rdf::TermId c : classes) {
      onto.instances_of_[c].push_back(instance);
    }
  }
  for (auto& [cls, members] : onto.instances_of_) {
    std::sort(members.begin(), members.end());
  }
  onto.RepackTypeIndexes();
  onto.functionality_ = std::make_unique<FunctionalityTable>(onto.store_);
  return onto;
}

util::Status SaveAlignmentSnapshot(const std::string& path,
                                   const Ontology& left, const Ontology& right,
                                   uint32_t version) {
  if (&left.pool() != &right.pool()) {
    return util::InvalidArgumentError(
        "snapshot requires both ontologies to share one term pool");
  }
  if (version < storage::kMinSnapshotVersion ||
      version > storage::kSnapshotVersion) {
    return util::InvalidArgumentError("unsupported snapshot write version");
  }
  // Staged through AtomicFileWriter: a crash (or write error) at any point
  // leaves the previous snapshot at `path` intact.
  util::AtomicFileWriter out(path);
  storage::SnapshotWriter writer(out.stream());
  storage::WriteSnapshotHeader(writer, out.stream(), version);
  storage::SaveTermPool(left.pool(), writer);
  SaveOntologySection(left, writer, version);
  SaveOntologySection(right, writer, version);
  const uint64_t checksum = writer.checksum();
  writer.WriteU64(checksum);
  return out.Commit();
}

namespace {

// The two sections behind the header; shared by the streaming and mmap
// paths (the reader's mode steers copy vs. zero-copy column loads).
util::StatusOr<AlignmentSnapshot> LoadSections(storage::SnapshotReader& reader,
                                               rdf::TermPool* pool,
                                               uint32_t file_version) {
  util::Status status = storage::LoadTermPool(reader, pool);
  if (!status.ok()) return status;
  auto left = LoadOntologySection(reader, pool, file_version);
  if (!left.ok()) return left.status();
  auto right = LoadOntologySection(reader, pool, file_version);
  if (!right.ok()) return right.status();
  return AlignmentSnapshot{std::move(left).value(), std::move(right).value()};
}

}  // namespace

util::StatusOr<AlignmentSnapshot> LoadAlignmentSnapshot(
    const std::string& path, rdf::TermPool* pool, SnapshotLoadMode mode) {
  std::optional<AlignmentSnapshot> out;
  util::Status status = storage::LoadSnapshotFile(
      path, mode, storage::kSnapshotMagic, storage::kMinSnapshotVersion,
      storage::kSnapshotVersion, "snapshot",
      [&](storage::SnapshotReader& reader, uint32_t file_version) {
        auto sections = LoadSections(reader, pool, file_version);
        if (!sections.ok()) return sections.status();
        out.emplace(std::move(sections).value());
        return util::OkStatus();
      });
  if (!status.ok()) return status;
  return std::move(*out);
}

}  // namespace paris::ontology
