#include "paris/ontology/functionality.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace paris::ontology {

namespace {

DirectionStats ComputeDirection(std::span<const rdf::TermPair> pairs,
                                bool inverted) {
  DirectionStats stats;
  stats.num_pairs = pairs.size();
  std::unordered_map<rdf::TermId, size_t> first_degree;
  std::unordered_map<rdf::TermId, size_t> second_seen;
  first_degree.reserve(pairs.size());
  for (const auto& p : pairs) {
    const rdf::TermId first = inverted ? p.second : p.first;
    const rdf::TermId second = inverted ? p.first : p.second;
    ++first_degree[first];
    second_seen.emplace(second, 0);
  }
  stats.num_distinct_firsts = first_degree.size();
  stats.num_distinct_seconds = second_seen.size();
  for (const auto& entry : first_degree) {
    const double degree = static_cast<double>(entry.second);
    stats.sum_inverse_degree += 1.0 / degree;
    stats.sum_squared_degree += degree * degree;
  }
  return stats;
}

}  // namespace

double EvaluateFunctionality(const DirectionStats& stats,
                             FunctionalityVariant variant) {
  if (stats.num_pairs == 0) return 0.0;
  double value = 0.0;
  switch (variant) {
    case FunctionalityVariant::kHarmonicMean:
      value = static_cast<double>(stats.num_distinct_firsts) /
              static_cast<double>(stats.num_pairs);
      break;
    case FunctionalityVariant::kStatementPairRatio:
      value = static_cast<double>(stats.num_pairs) / stats.sum_squared_degree;
      break;
    case FunctionalityVariant::kArgumentRatio:
      value = static_cast<double>(stats.num_distinct_firsts) /
              static_cast<double>(stats.num_distinct_seconds);
      break;
    case FunctionalityVariant::kArithmeticMean:
      value = stats.sum_inverse_degree /
              static_cast<double>(stats.num_distinct_firsts);
      break;
  }
  return std::clamp(value, 0.0, 1.0);
}

FunctionalityTable::FunctionalityTable(const rdf::TripleStore& store) {
  assert(store.finalized());
  const size_t num_relations = store.num_relations();
  stats_.resize(2 * num_relations);
  for (size_t base = 1; base <= num_relations; ++base) {
    const auto pairs = store.PairsOf(static_cast<rdf::RelId>(base));
    stats_[2 * (base - 1)] = ComputeDirection(pairs, /*inverted=*/false);
    stats_[2 * (base - 1) + 1] = ComputeDirection(pairs, /*inverted=*/true);
  }
}

const DirectionStats& FunctionalityTable::Stats(rdf::RelId rel) const {
  const size_t base = static_cast<size_t>(rdf::BaseRel(rel));
  assert(base >= 1 && 2 * (base - 1) < stats_.size());
  return stats_[2 * (base - 1) + (rdf::IsInverse(rel) ? 1 : 0)];
}

double FunctionalityTable::Global(rdf::RelId rel,
                                  FunctionalityVariant variant) const {
  return EvaluateFunctionality(Stats(rel), variant);
}

double FunctionalityTable::Local(const rdf::TripleStore& store, rdf::RelId rel,
                                 rdf::TermId x) {
  const size_t degree = store.ObjectsOf(x, rel).size();
  if (degree == 0) return 0.0;
  return 1.0 / static_cast<double>(degree);
}

}  // namespace paris::ontology
