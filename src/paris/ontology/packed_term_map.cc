#include "paris/ontology/packed_term_map.h"

#include <cassert>

namespace paris::ontology {

void PackedTermMap::Repack(
    const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>& map) {
  slots_.clear();
  offsets_.clear();
  values_.clear();
  if (map.empty()) {
    mask_ = 0;
    return;
  }

  size_t capacity = 2;
  while (capacity < map.size() * 2) capacity <<= 1;
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;

  size_t total = 0;
  for (const auto& [key, values] : map) total += values.size();
  offsets_.reserve(map.size() + 1);
  values_.reserve(total);

  offsets_.push_back(0);
  uint32_t row = 0;
  for (const auto& [key, values] : map) {
    assert(key != rdf::kNullTerm && "kNullTerm is the empty-slot sentinel");
    values_.insert(values_.end(), values.begin(), values.end());
    offsets_.push_back(values_.size());
    size_t i = Hash(key) & mask_;
    while (slots_[i].key != rdf::kNullTerm) i = (i + 1) & mask_;
    slots_[i] = Slot{key, row++};
  }
}

}  // namespace paris::ontology
