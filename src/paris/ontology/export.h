#ifndef PARIS_ONTOLOGY_EXPORT_H_
#define PARIS_ONTOLOGY_EXPORT_H_

#include <iosfwd>
#include <string>

#include "paris/ontology/ontology.h"
#include "paris/util/status.h"

namespace paris::ontology {

// Serializes an ontology back to N-Triples: rdfs:subClassOf statements (in
// their deductive closure, as the model assumes), rdf:type statements
// (closed as well), and every regular fact. The output parses back into an
// equivalent ontology via `LoadOntologyFromNTriples`.
void ExportToNTriples(const Ontology& onto, std::ostream& out);

// Writes to a file.
util::Status ExportToNTriplesFile(const Ontology& onto,
                                  const std::string& path);

}  // namespace paris::ontology

#endif  // PARIS_ONTOLOGY_EXPORT_H_
