#include "paris/ontology/ontology.h"

#include <algorithm>
#include <cassert>

#include "paris/ontology/vocab.h"

namespace paris::ontology {

namespace {

// Transitive closure of a sparse DAG given as an edge list; returns, for
// each node that has outgoing edges, the set of all (strictly) reachable
// nodes. Tolerates cycles (nodes in a cycle simply reach each other).
class ReachabilityCloser {
 public:
  explicit ReachabilityCloser(const std::vector<rdf::TermPair>& edges) {
    for (const auto& e : edges) {
      if (e.first == e.second) continue;
      direct_[e.first].push_back(e.second);
    }
  }

  // All nodes reachable from `node` (excluding `node` itself unless it lies
  // on a cycle through itself).
  const std::vector<rdf::TermId>& Reachable(rdf::TermId node) {
    auto memo_it = memo_.find(node);
    if (memo_it != memo_.end()) return memo_it->second;
    // Iterative DFS; handles cycles without memo poisoning by computing the
    // full reachable set for `node` directly.
    std::vector<rdf::TermId> result;
    std::unordered_set<rdf::TermId> visited;
    std::vector<rdf::TermId> stack;
    auto push_targets = [&](rdf::TermId n) {
      auto it = direct_.find(n);
      if (it == direct_.end()) return;
      for (rdf::TermId t : it->second) {
        if (visited.insert(t).second) stack.push_back(t);
      }
    };
    push_targets(node);
    while (!stack.empty()) {
      const rdf::TermId n = stack.back();
      stack.pop_back();
      result.push_back(n);
      push_targets(n);
    }
    std::sort(result.begin(), result.end());
    return memo_.emplace(node, std::move(result)).first->second;
  }

 private:
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> direct_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> memo_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Ontology accessors
// ---------------------------------------------------------------------------

void Ontology::RepackTypeIndexes() {
  packed_classes_of_.Repack(classes_of_);
  packed_instances_of_.Repack(instances_of_);
}

std::span<const rdf::TermId> Ontology::SuperClassesOf(rdf::TermId cls) const {
  auto it = superclasses_.find(cls);
  if (it == superclasses_.end()) return {};
  return {it->second.data(), it->second.size()};
}

bool Ontology::IsSubClassOf(rdf::TermId sub, rdf::TermId super) const {
  if (sub == super) return true;
  auto supers = SuperClassesOf(sub);
  return std::binary_search(supers.begin(), supers.end(), super);
}

// ---------------------------------------------------------------------------
// OntologyBuilder
// ---------------------------------------------------------------------------

void OntologyBuilder::AddFact(std::string_view subject,
                              std::string_view relation,
                              std::string_view object_iri) {
  facts_.push_back(RawFact{pool_->InternIri(subject),
                           pool_->InternIri(relation),
                           pool_->InternIri(object_iri)});
}

void OntologyBuilder::AddLiteralFact(std::string_view subject,
                                     std::string_view relation,
                                     std::string_view literal) {
  facts_.push_back(RawFact{pool_->InternIri(subject),
                           pool_->InternIri(relation),
                           pool_->InternLiteral(literal)});
}

void OntologyBuilder::AddType(std::string_view instance,
                              std::string_view cls) {
  type_edges_.push_back(
      rdf::TermPair{pool_->InternIri(instance), pool_->InternIri(cls)});
}

void OntologyBuilder::AddSubClassOf(std::string_view sub,
                                    std::string_view super) {
  subclass_edges_.push_back(
      rdf::TermPair{pool_->InternIri(sub), pool_->InternIri(super)});
}

void OntologyBuilder::AddSubPropertyOf(std::string_view sub,
                                       std::string_view super) {
  subprop_edges_.push_back(
      rdf::TermPair{pool_->InternIri(sub), pool_->InternIri(super)});
}

void OntologyBuilder::OnTriple(const rdf::ParsedTriple& t) {
  const bool schema_predicate = IsTypePredicate(t.predicate) ||
                                IsSubClassOfPredicate(t.predicate) ||
                                IsSubPropertyOfPredicate(t.predicate);
  if (schema_predicate && t.object_is_literal) {
    if (first_error_.ok()) {
      first_error_ = util::InvalidArgumentError(
          "literal object in schema statement: " + t.predicate + "(" +
          t.subject + ", \"" + t.object + "\")");
    }
    return;
  }
  if (IsTypePredicate(t.predicate)) {
    AddType(t.subject, t.object);
  } else if (IsSubClassOfPredicate(t.predicate)) {
    AddSubClassOf(t.subject, t.object);
  } else if (IsSubPropertyOfPredicate(t.predicate)) {
    AddSubPropertyOf(t.subject, t.object);
  } else if (t.object_is_literal) {
    AddLiteralFact(t.subject, t.predicate, t.object);
  } else {
    AddFact(t.subject, t.predicate, t.object);
  }
}

util::StatusOr<Ontology> OntologyBuilder::Build(util::ThreadPool* pool,
                                                obs::Hooks hooks) {
  if (!first_error_.ok()) return first_error_;
  Ontology onto(pool_);
  onto.name_ = name_;

  // 1. Sub-property closure: every fact of r is also a fact of each
  //    super-property of r (§3: "ontologies are available in their deductive
  //    closure").
  ReachabilityCloser prop_closer(subprop_edges_);

  // 2. Class partition. A resource is a class iff it appears as the object
  //    of rdf:type or as an argument of rdfs:subClassOf.
  auto add_class = [&](rdf::TermId c) -> util::Status {
    if (pool_->IsLiteral(c)) {
      return util::InvalidArgumentError(
          "literal used as a class: " + std::string(pool_->lexical(c)));
    }
    if (onto.class_set_.insert(c).second) onto.classes_.push_back(c);
    return util::OkStatus();
  };
  for (const auto& e : type_edges_) {
    if (pool_->IsLiteral(e.first)) {
      return util::InvalidArgumentError(
          "literal used as an instance in rdf:type: " +
          std::string(pool_->lexical(e.first)));
    }
    util::Status s = add_class(e.second);
    if (!s.ok()) return s;
  }
  for (const auto& e : subclass_edges_) {
    util::Status s = add_class(e.first);
    if (!s.ok()) return s;
    s = add_class(e.second);
    if (!s.ok()) return s;
  }

  // 3. Sub-class closure.
  ReachabilityCloser class_closer(subclass_edges_);
  for (rdf::TermId c : onto.classes_) {
    const auto& reachable = class_closer.Reachable(c);
    if (!reachable.empty()) onto.superclasses_[c] = reachable;
  }

  // 4. Closed type index.
  auto add_instance = [&](rdf::TermId t) {
    if (onto.instance_set_.insert(t).second) onto.instances_.push_back(t);
  };
  for (const auto& e : type_edges_) {
    add_instance(e.first);
    std::vector<rdf::TermId>& classes = onto.classes_of_[e.first];
    classes.push_back(e.second);
    const auto supers = onto.SuperClassesOf(e.second);
    classes.insert(classes.end(), supers.begin(), supers.end());
  }
  for (auto& [instance, classes] : onto.classes_of_) {
    std::sort(classes.begin(), classes.end());
    classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
    for (rdf::TermId c : classes) onto.instances_of_[c].push_back(instance);
  }
  for (auto& [cls, members] : onto.instances_of_) {
    std::sort(members.begin(), members.end());
  }

  // 5. Regular facts (with sub-property closure applied). Fact arguments
  //    that are IRIs and not classes become instances.
  for (const RawFact& f : facts_) {
    if (pool_->IsLiteral(f.subject)) {
      return util::InvalidArgumentError(
          "literal used as a statement subject: " +
          std::string(pool_->lexical(f.subject)));
    }
    const rdf::RelId rel = onto.store_.InternRelation(f.relation_name);
    onto.store_.Add(f.subject, rel, f.object);
    for (rdf::TermId super_name : prop_closer.Reachable(f.relation_name)) {
      const rdf::RelId super_rel = onto.store_.InternRelation(super_name);
      onto.store_.Add(f.subject, super_rel, f.object);
    }
    if (!onto.class_set_.contains(f.subject)) add_instance(f.subject);
    if (!pool_->IsLiteral(f.object) && !onto.class_set_.contains(f.object)) {
      add_instance(f.object);
    }
  }

  onto.store_.Finalize(pool, hooks);
  onto.RepackTypeIndexes();
  {
    obs::Span span(hooks.trace, hooks.main_slot(), "io",
                   "ontology.functionality");
    onto.functionality_ = std::make_unique<FunctionalityTable>(onto.store_);
  }
  return onto;
}

util::StatusOr<Ontology::DeltaSummary> Ontology::ApplyDelta(
    std::span<const rdf::ParsedTriple> triples, util::ThreadPool* thread_pool,
    obs::Hooks hooks) {
  rdf::TermPool& terms = pool();
  // Phase 1: validate (and intern) everything before mutating any index, so
  // a rejected delta leaves the ontology unchanged (pool growth aside).
  struct TypeEdge {
    rdf::TermId instance;
    rdf::TermId cls;
  };
  struct FactEdge {
    rdf::TermId subject;
    rdf::TermId relation_name;
    rdf::TermId object;
  };
  std::vector<TypeEdge> type_edges;
  std::vector<FactEdge> fact_edges;
  for (const rdf::ParsedTriple& t : triples) {
    if (IsSubClassOfPredicate(t.predicate) ||
        IsSubPropertyOfPredicate(t.predicate)) {
      return util::InvalidArgumentError(
          "schema statement in delta (rebuild the ontology instead): " +
          t.predicate + "(" + t.subject + ", " + t.object + ")");
    }
    if (IsTypePredicate(t.predicate)) {
      if (t.object_is_literal) {
        return util::InvalidArgumentError(
            "literal object in delta rdf:type: " + t.subject);
      }
      const rdf::TermId instance = terms.InternIri(t.subject);
      const rdf::TermId cls = terms.InternIri(t.object);
      if (class_set_.contains(instance)) {
        return util::InvalidArgumentError(
            "delta types an existing class as an instance: " + t.subject);
      }
      if (instance_set_.contains(cls)) {
        return util::InvalidArgumentError(
            "delta uses an existing instance as a class: " + t.object);
      }
      type_edges.push_back({instance, cls});
    } else {
      const rdf::TermId subject = terms.InternIri(t.subject);
      const rdf::TermId object = t.object_is_literal
                                     ? terms.InternLiteral(t.object)
                                     : terms.InternIri(t.object);
      fact_edges.push_back({subject, terms.InternIri(t.predicate), object});
    }
  }

  DeltaSummary summary;
  auto add_instance = [&](rdf::TermId t) {
    if (instance_set_.insert(t).second) {
      instances_.push_back(t);
      summary.new_instances.push_back(t);
    }
  };

  // Phase 2: type edges — close under the existing subclass hierarchy and
  // keep both directions of the type index consistent (and sorted).
  for (const TypeEdge& e : type_edges) {
    if (class_set_.insert(e.cls).second) classes_.push_back(e.cls);
    add_instance(e.instance);
    std::vector<rdf::TermId>& classes = classes_of_[e.instance];
    std::vector<rdf::TermId> added;
    added.push_back(e.cls);
    const auto supers = SuperClassesOf(e.cls);
    added.insert(added.end(), supers.begin(), supers.end());
    bool any_new = false;
    for (rdf::TermId c : added) {
      if (!std::binary_search(classes.begin(), classes.end(), c)) {
        std::vector<rdf::TermId>& members = instances_of_[c];
        auto at = std::lower_bound(members.begin(), members.end(), e.instance);
        if (at == members.end() || *at != e.instance) {
          members.insert(at, e.instance);
        }
        classes.push_back(c);
        any_new = true;
      }
    }
    if (any_new) {
      std::sort(classes.begin(), classes.end());
      classes.erase(std::unique(classes.begin(), classes.end()),
                    classes.end());
      summary.touched_terms.push_back(e.instance);
    }
  }

  // Phase 3: regular facts, staged into the store then spliced in place.
  for (const FactEdge& f : fact_edges) {
    store_.Add(f.subject, store_.InternRelation(f.relation_name), f.object);
    if (!class_set_.contains(f.subject)) add_instance(f.subject);
    if (!terms.IsLiteral(f.object) && !class_set_.contains(f.object)) {
      add_instance(f.object);
    }
  }
  rdf::TripleStore::DeltaMergeResult merged =
      store_.MergeDelta(thread_pool, hooks);
  summary.num_new_statements = merged.num_new_statements;
  summary.touched_relations = std::move(merged.touched_relations);
  summary.touched_terms.insert(summary.touched_terms.end(),
                               merged.touched_terms.begin(),
                               merged.touched_terms.end());
  std::sort(summary.touched_terms.begin(), summary.touched_terms.end());
  summary.touched_terms.erase(
      std::unique(summary.touched_terms.begin(), summary.touched_terms.end()),
      summary.touched_terms.end());
  std::sort(summary.new_instances.begin(), summary.new_instances.end());
  RepackTypeIndexes();

  // Added pairs change the degree statistics of exactly the touched
  // relations, but the table is cheap relative to any alignment pass —
  // recompute it whole over the merged store.
  {
    obs::Span span(hooks.trace, hooks.main_slot(), "io",
                   "ontology.functionality");
    functionality_ = std::make_unique<FunctionalityTable>(store_);
  }
  return summary;
}

util::StatusOr<Ontology> LoadOntologyFromNTriples(rdf::TermPool* pool,
                                                  std::string name,
                                                  std::string_view document) {
  OntologyBuilder builder(pool, std::move(name));
  util::Status s = rdf::NTriplesParser::ParseDocument(document, &builder);
  if (!s.ok()) return s;
  return builder.Build();
}

}  // namespace paris::ontology
