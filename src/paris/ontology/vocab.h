#ifndef PARIS_ONTOLOGY_VOCAB_H_
#define PARIS_ONTOLOGY_VOCAB_H_

#include <string_view>

namespace paris::ontology {

// Well-known vocabulary. The ontology builder recognizes both the compact
// forms below and the full W3C IRIs and routes those statements to the
// schema indexes instead of the regular fact store.
inline constexpr std::string_view kRdfType = "rdf:type";
inline constexpr std::string_view kRdfsSubClassOf = "rdfs:subClassOf";
inline constexpr std::string_view kRdfsSubPropertyOf = "rdfs:subPropertyOf";
inline constexpr std::string_view kRdfsLabel = "rdfs:label";

inline constexpr std::string_view kRdfTypeFull =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsSubClassOfFull =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr std::string_view kRdfsSubPropertyOfFull =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr std::string_view kRdfsLabelFull =
    "http://www.w3.org/2000/01/rdf-schema#label";

inline bool IsTypePredicate(std::string_view iri) {
  return iri == kRdfType || iri == kRdfTypeFull;
}
inline bool IsSubClassOfPredicate(std::string_view iri) {
  return iri == kRdfsSubClassOf || iri == kRdfsSubClassOfFull;
}
inline bool IsSubPropertyOfPredicate(std::string_view iri) {
  return iri == kRdfsSubPropertyOf || iri == kRdfsSubPropertyOfFull;
}
inline bool IsLabelPredicate(std::string_view iri) {
  return iri == kRdfsLabel || iri == kRdfsLabelFull;
}

}  // namespace paris::ontology

#endif  // PARIS_ONTOLOGY_VOCAB_H_
