#include "paris/service/read_path.h"

#include <utility>

namespace paris::service {

bool LookupCache::Get(const std::string& key, std::string* value) {
  if (max_bytes_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void LookupCache::Put(const std::string& key, std::string value) {
  const size_t entry_bytes = key.size() + value.size();
  if (max_bytes_ == 0 || entry_bytes > max_bytes_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->first.size() + it->second->second.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  while (bytes_ + entry_bytes > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.first.size() + victim.second.size();
    index_.erase(victim.first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  bytes_ += entry_bytes;
}

void LookupCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

size_t LookupCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

util::Status SnapshotServer::Refresh(const std::string& path) {
  // Open (checksum pass + index build) outside the lock: lookups keep
  // serving the old snapshot until the new one is ready.
  auto reader = core::ResultReader::Open(path);
  if (!reader.ok()) return reader.status();
  auto shared =
      std::make_shared<const core::ResultReader>(std::move(reader).value());
  {
    std::lock_guard<std::mutex> lock(mu_);
    reader_ = std::move(shared);
    path_ = path;
  }
  cache_.Clear();
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return util::OkStatus();
}

std::shared_ptr<const core::ResultReader> SnapshotServer::reader() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reader_;
}

std::string SnapshotServer::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

}  // namespace paris::service
