#ifndef PARIS_SERVICE_READ_PATH_H_
#define PARIS_SERVICE_READ_PATH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "paris/core/result_reader.h"
#include "paris/util/status.h"

namespace paris::service {

// Bounded LRU cache of rendered lookup responses, keyed by the request
// ("entity:left:42") and capped by total byte footprint (keys + values).
// Sits in front of the mmap'd ResultReader so hot keys skip the binary
// searches and the response formatting. Thread-safe; a zero byte budget
// disables caching entirely.
class LookupCache {
 public:
  explicit LookupCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  bool Get(const std::string& key, std::string* value);
  void Put(const std::string& key, std::string value);
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t bytes() const;

 private:
  using Entry = std::pair<std::string, std::string>;  // key, rendered value

  const size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

// The daemon's current result snapshot: one shared zero-copy ResultReader
// that N connection handlers read concurrently (all lookups are const; the
// mmap means they share one page cache), swapped atomically when a job
// completes. Refresh() opens the new file *before* taking the swap lock, so
// serving never stalls on snapshot IO; in-flight lookups keep their
// shared_ptr to the old reader until they finish. Each successful refresh
// bumps the generation and clears the hot-key cache (its entries described
// the old snapshot).
class SnapshotServer {
 public:
  explicit SnapshotServer(size_t cache_bytes) : cache_(cache_bytes) {}

  // Opens `path` and makes it the served snapshot.
  util::Status Refresh(const std::string& path);

  // The current reader; null until the first successful Refresh.
  std::shared_ptr<const core::ResultReader> reader() const;

  // Source path of the served snapshot (empty before the first Refresh).
  std::string path() const;

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  LookupCache& cache() { return cache_; }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const core::ResultReader> reader_;
  std::string path_;
  std::atomic<uint64_t> generation_{0};
  LookupCache cache_;
};

}  // namespace paris::service

#endif  // PARIS_SERVICE_READ_PATH_H_
