#include "paris/service/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "paris/util/flags.h"
#include "paris/util/logging.h"

namespace paris::service {

namespace {

// Span names must outlive the recorder, so every verb maps to a literal.
const char* SpanNameForVerb(const std::string& verb) {
  if (verb == "PING") return "ping";
  if (verb == "SUBMIT") return "submit";
  if (verb == "STATUS") return "status";
  if (verb == "LIST") return "list";
  if (verb == "CANCEL") return "cancel";
  if (verb == "WATCH") return "watch";
  if (verb == "LOOKUP") return "lookup";
  if (verb == "QUERY") return "query";
  if (verb == "RESULT") return "result";
  if (verb == "SHUTDOWN") return "shutdown";
  return "unknown";
}

std::string FormatScore(double score) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", score);
  return buffer;
}

}  // namespace

Daemon::Daemon(Config config)
    : config_(std::move(config)),
      snapshots_(config_.cache_bytes),
      metrics_(std::max<size_t>(config_.num_handlers, 1) + 1) {
  config_.num_handlers = std::max<size_t>(config_.num_handlers, 1);
}

Daemon::~Daemon() { Stop(); }

util::Status Daemon::Start() {
  if (started_) return util::FailedPreconditionError("daemon already started");

  // Resolution pair: jobs re-load the same inputs into their own Sessions;
  // deterministic interning keeps all term ids aligned with this pool.
  api::Session::Options resolver_options = config_.queue.base_options;
  resolver_.emplace(std::move(resolver_options));
  util::Status status =
      config_.queue.snapshot_path.empty()
          ? resolver_->LoadFromFiles(config_.queue.left_path,
                                     config_.queue.right_path)
          : resolver_->LoadFromSnapshot(config_.queue.snapshot_path);
  if (!status.ok()) return status;

  if (config_.trace) {
    trace_ = std::make_unique<obs::TraceRecorder>(config_.num_handlers + 1);
  }
  requests_ = metrics_.Counter("service.requests");
  errors_ = metrics_.Counter("service.errors");
  lookups_ = metrics_.Counter("service.lookups");
  connections_ = metrics_.Counter("service.connections");
  lookup_micros_ = metrics_.Histogram(
      "service.lookup_micros",
      {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000});
  queries_ = metrics_.Counter("service.queries");
  query_micros_ = metrics_.Histogram(
      "service.query_micros",
      {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000});
  cache_hits_gauge_ = metrics_.Gauge("service.lookup_cache_hits");
  cache_misses_gauge_ = metrics_.Gauge("service.lookup_cache_misses");
  jobs_submitted_gauge_ = metrics_.Gauge("service.jobs_submitted");
  jobs_completed_gauge_ = metrics_.Gauge("service.jobs_completed");
  generation_gauge_ = metrics_.Gauge("service.snapshot_generation");

  JobQueue::Config queue_config = config_.queue;
  queue_config.on_result = [this](const std::string& job_id,
                                  const std::string& result_path) {
    const util::Status refresh = snapshots_.Refresh(result_path);
    if (refresh.ok()) {
      PARIS_LOG(kInfo) << "serving result of " << job_id << " ("
                       << result_path << ")";
    } else {
      PARIS_LOG(kWarning) << "cannot serve result of " << job_id << ": "
                          << refresh.ToString();
    }
  };
  queue_ = std::make_unique<JobQueue>(std::move(queue_config));
  auto requeued = queue_->Start(config_.auto_resume);
  if (!requeued.ok()) return requeued.status();
  for (const std::string& id : *requeued) {
    PARIS_LOG(kInfo) << "requeued in-flight job " << id;
  }

  if (!config_.serve_result.empty()) {
    status = snapshots_.Refresh(config_.serve_result);
    if (!status.ok()) return status;
  } else {
    // Serve the newest completed job's result, if any survived restarts.
    std::string latest;
    for (const auto& job : queue_->List()) {
      if (job.state == JobQueue::JobState::kDone) latest = job.result_path;
    }
    if (!latest.empty()) {
      const util::Status refresh = snapshots_.Refresh(latest);
      if (!refresh.ok()) {
        PARIS_LOG(kWarning) << "stale result not served: "
                            << refresh.ToString();
      }
    }
  }

  auto listener = util::SocketListener::Listen(
      config_.host, static_cast<uint16_t>(config_.port));
  if (!listener.ok()) return listener.status();
  listener_.emplace(std::move(listener).value());
  port_ = listener_->port();

  handlers_.reserve(config_.num_handlers);
  for (size_t slot = 0; slot < config_.num_handlers; ++slot) {
    handlers_.emplace_back([this, slot] { HandlerLoop(slot); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return util::OkStatus();
}

void Daemon::Wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock,
                    [this] { return shutdown_requested_ || stopped_; });
}

bool Daemon::WaitFor(double seconds) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [this] { return shutdown_requested_ || stopped_; });
}

void Daemon::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Daemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  closing_.store(true, std::memory_order_release);
  if (listener_) listener_->Close();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (util::SocketConn* conn : active_conns_) conn->Shutdown();
  }
  conn_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  if (queue_) queue_->Stop();
  shutdown_cv_.notify_all();
}

void Daemon::AcceptLoop() {
  for (;;) {
    auto conn = listener_->Accept();
    if (!conn.ok()) {
      if (conn.status().code() == util::StatusCode::kCancelled) return;
      PARIS_LOG(kWarning) << "accept: " << conn.status().ToString();
      continue;
    }
    {
      std::shared_lock<std::shared_mutex> obs_lock(obs_mu_);
      metrics_.Add(connections_, metrics_.main_slot(), 1);
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_queue_.push_back(std::move(conn).value());
    }
    conn_cv_.notify_one();
  }
}

void Daemon::HandlerLoop(size_t slot) {
  for (;;) {
    util::SocketConn conn;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] {
        return closing_.load(std::memory_order_acquire) ||
               !conn_queue_.empty();
      });
      if (closing_.load(std::memory_order_acquire)) return;
      conn = std::move(conn_queue_.front());
      conn_queue_.pop_front();
    }
    ServeConn(std::move(conn), slot);
  }
}

void Daemon::ServeConn(util::SocketConn conn, size_t slot) {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (closing_.load(std::memory_order_acquire)) return;
    active_conns_.push_back(&conn);
  }
  std::string payload;
  for (;;) {
    auto got = ReadFrame(conn, &payload, config_.max_frame_bytes);
    if (!got.ok()) {
      // Malformed framing (oversized prefix, truncated stream): tell the
      // client if the pipe still works, then drop the connection — after a
      // framing error the stream position is unreliable.
      (void)WriteFrame(conn, ErrorReply(got.status()),
                       config_.max_frame_bytes);
      break;
    }
    if (!*got) break;  // clean EOF
    const std::vector<std::string> tokens = SplitTokens(payload);
    if (tokens.empty()) {
      if (!WriteFrame(conn, "ERR INVALID_ARGUMENT empty request",
                      config_.max_frame_bytes)
               .ok()) {
        break;
      }
      continue;
    }
    if (tokens[0] == "WATCH") {
      if (!HandleWatch(conn, tokens, slot).ok()) break;
      continue;
    }
    const std::string reply = HandleRequest(payload, slot);
    if (!WriteFrame(conn, reply, config_.max_frame_bytes).ok()) break;
    if (tokens[0] == "SHUTDOWN") break;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    active_conns_.erase(
        std::remove(active_conns_.begin(), active_conns_.end(), &conn),
        active_conns_.end());
  }
}

std::string Daemon::HandleRequest(const std::string& payload, size_t slot) {
  const std::vector<std::string> tokens = SplitTokens(payload);
  const std::string& verb = tokens[0];

  // METRICS and TRACE export the registries, which requires no concurrent
  // slot updates — they take obs_mu_ exclusively inside their handlers.
  if (verb == "METRICS") return HandleMetrics(slot);
  if (verb == "TRACE") return HandleTrace(slot);

  std::shared_lock<std::shared_mutex> obs_lock(obs_mu_);
  obs::Span span(trace_.get(), slot, "request", SpanNameForVerb(verb));
  metrics_.Add(requests_, slot, 1);

  std::string reply;
  if (verb == "PING") {
    reply = "OK pong";
  } else if (verb == "SUBMIT") {
    reply = HandleSubmit(tokens);
  } else if (verb == "STATUS") {
    reply = HandleStatus(tokens);
  } else if (verb == "LIST") {
    reply = HandleList();
  } else if (verb == "CANCEL") {
    reply = HandleCancel(tokens);
  } else if (verb == "LOOKUP") {
    reply = HandleLookup(payload, slot);
  } else if (verb == "QUERY") {
    reply = HandleQuery(payload, slot);
  } else if (verb == "RESULT") {
    reply = HandleResult();
  } else if (verb == "SHUTDOWN") {
    RequestShutdown();
    reply = "OK shutting down";
  } else {
    reply = ErrorReply(
        util::InvalidArgumentError("unknown request '" + verb + "'"));
  }
  if (reply.rfind("ERR ", 0) == 0) metrics_.Add(errors_, slot, 1);
  return reply;
}

std::string Daemon::HandleSubmit(const std::vector<std::string>& tokens) {
  JobQueue::JobSpec spec;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return ErrorReply(util::InvalidArgumentError(
          "SUBMIT arguments must be key=value, got '" + tokens[i] + "'"));
    }
    spec.overrides.emplace_back(tokens[i].substr(0, eq),
                                tokens[i].substr(eq + 1));
  }
  auto id = queue_->Submit(spec);
  if (!id.ok()) return ErrorReply(id.status());
  return "OK " + *id;
}

std::string Daemon::RenderJobStatus(const JobQueue::JobStatus& status) {
  std::ostringstream out;
  out << "OK id=" << status.id << " state="
      << JobQueue::JobStateName(status.state)
      << " iteration=" << status.iteration
      << " aligned=" << status.num_aligned << " pass="
      << (status.pass.empty() ? "-" : status.pass) << " shards="
      << status.shards_completed << "/" << status.num_shards;
  if (!status.spec.empty()) out << "\nspec " << status.spec;
  if (!status.error.empty()) out << "\nerror " << status.error;
  if (!status.result_path.empty()) out << "\nresult " << status.result_path;
  return out.str();
}

std::string Daemon::HandleStatus(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return ErrorReply(util::InvalidArgumentError("usage: STATUS <job-id>"));
  }
  auto status = queue_->Status(tokens[1]);
  if (!status.ok()) return ErrorReply(status.status());
  return RenderJobStatus(*status);
}

std::string Daemon::HandleList() {
  const std::vector<JobQueue::JobStatus> jobs = queue_->List();
  std::ostringstream out;
  out << "OK " << jobs.size();
  for (const auto& job : jobs) {
    out << "\n" << job.id << " " << JobQueue::JobStateName(job.state);
  }
  return out.str();
}

std::string Daemon::HandleCancel(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return ErrorReply(util::InvalidArgumentError("usage: CANCEL <job-id>"));
  }
  const util::Status status = queue_->Cancel(tokens[1]);
  if (!status.ok()) return ErrorReply(status);
  return "OK cancelling " + tokens[1];
}

util::Status Daemon::HandleWatch(util::SocketConn& conn,
                                 const std::vector<std::string>& tokens,
                                 size_t slot) {
  {
    std::shared_lock<std::shared_mutex> obs_lock(obs_mu_);
    metrics_.Add(requests_, slot, 1);
  }
  if (tokens.size() != 2 && tokens.size() != 3) {
    return WriteFrame(conn,
                      ErrorReply(util::InvalidArgumentError(
                          "usage: WATCH <job-id> [from-seq]")),
                      config_.max_frame_bytes);
  }
  uint64_t next = 0;
  if (tokens.size() == 3) {
    long long from = 0;
    if (!util::ParseFullInt64(tokens[2], &from) || from < 0) {
      return WriteFrame(conn,
                        ErrorReply(util::InvalidArgumentError(
                            "WATCH from-seq must be a non-negative integer")),
                        config_.max_frame_bytes);
    }
    next = static_cast<uint64_t>(from);
  }
  for (;;) {
    if (closing_.load(std::memory_order_acquire)) {
      return WriteFrame(conn, "END interrupted", config_.max_frame_bytes);
    }
    bool terminal = false;
    JobQueue::JobState state = JobQueue::JobState::kQueued;
    auto events = queue_->WaitEvents(tokens[1], next, &terminal, &state, 0.25);
    if (!events.ok()) {
      return WriteFrame(conn, ErrorReply(events.status()),
                        config_.max_frame_bytes);
    }
    for (const JobQueue::Event& event : *events) {
      const util::Status sent =
          WriteFrame(conn, event.text, config_.max_frame_bytes);
      if (!sent.ok()) return sent;  // client went away mid-stream
      next = event.seq + 1;
    }
    if (terminal) {
      return WriteFrame(
          conn,
          "END " + std::string(JobQueue::JobStateName(state)),
          config_.max_frame_bytes);
    }
  }
}

util::StatusOr<rdf::TermId> Daemon::ResolveTerm(const std::string& key) const {
  if (!key.empty() && key[0] == '#') {
    long long raw = 0;
    if (!util::ParseFullInt64(key.substr(1), &raw) || raw < 0 ||
        static_cast<size_t>(raw) >= resolver_->left().pool().size()) {
      return util::InvalidArgumentError("bad raw term id '" + key + "'");
    }
    return static_cast<rdf::TermId>(raw);
  }
  // The pool is shared by both ontologies, so one lookup covers each side.
  const auto id = resolver_->left().pool().Find(key, rdf::TermKind::kIri);
  if (!id.has_value()) {
    return util::NotFoundError("unknown term '" + key + "'");
  }
  return *id;
}

util::StatusOr<rdf::RelId> Daemon::ResolveRelation(const std::string& key,
                                                   bool side_is_left) const {
  std::string name = key;
  bool inverse = false;
  if (!name.empty() && name[0] == '-') {
    inverse = true;
    name = name.substr(1);
  }
  const ontology::Ontology& side =
      side_is_left ? resolver_->left() : resolver_->right();
  if (!name.empty() && name[0] == '#') {
    long long raw = 0;
    if (!util::ParseFullInt64(name.substr(1), &raw) || raw < 1 ||
        static_cast<size_t>(raw) > side.store().num_relations()) {
      return util::InvalidArgumentError("bad raw relation id '" + key + "'");
    }
    const auto rel = static_cast<rdf::RelId>(raw);
    return inverse ? rdf::Inverse(rel) : rel;
  }
  const auto name_id = side.pool().Find(name, rdf::TermKind::kIri);
  if (name_id.has_value()) {
    const auto rel = side.store().FindRelation(*name_id);
    if (rel.has_value()) return inverse ? rdf::Inverse(*rel) : *rel;
  }
  return util::NotFoundError("unknown relation '" + name + "' in the " +
                             std::string(side_is_left ? "left" : "right") +
                             " ontology");
}

std::string Daemon::HandleLookup(const std::string& payload, size_t slot) {
  // The key is the remainder token, so IRIs containing no spaces and raw
  // "#<id>" forms both pass through unmangled.
  const std::vector<std::string> tokens = SplitTokens(payload, 4);
  if (tokens.size() != 4) {
    return ErrorReply(util::InvalidArgumentError(
        "usage: LOOKUP entity|relation|class left|right <key>"));
  }
  const std::string& kind = tokens[1];
  const std::string& side = tokens[2];
  const std::string& key = tokens[3];
  if (kind != "entity" && kind != "relation" && kind != "class") {
    return ErrorReply(util::InvalidArgumentError(
        "LOOKUP kind must be entity, relation, or class"));
  }
  if (side != "left" && side != "right") {
    return ErrorReply(
        util::InvalidArgumentError("LOOKUP side must be left or right"));
  }
  const bool side_is_left = side == "left";

  const auto start = std::chrono::steady_clock::now();
  const auto finish = [&](std::string reply) {
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    metrics_.Add(lookups_, slot, 1);
    metrics_.Observe(lookup_micros_, slot, micros);
    return reply;
  };

  const uint64_t generation = snapshots_.generation();
  auto reader = snapshots_.reader();
  if (reader == nullptr) {
    return finish(ErrorReply(util::FailedPreconditionError(
        "no result snapshot is being served yet")));
  }
  // The generation in the key makes entries self-invalidating: a Put that
  // races a Refresh lands under the old generation and is never read again.
  const std::string cache_key =
      kind + ":" + side + ":" + std::to_string(generation) + ":" + key;
  std::string cached;
  if (snapshots_.cache().Get(cache_key, &cached)) return finish(cached);

  std::ostringstream out;
  if (kind == "entity") {
    auto id = ResolveTerm(key);
    if (!id.ok()) return finish(ErrorReply(id.status()));
    const ontology::Ontology& other_side =
        side_is_left ? resolver_->right() : resolver_->left();
    if (side_is_left) {
      const auto candidates = reader->LeftEntity(*id);
      out << "OK " << candidates.size();
      for (size_t i = 0; i < candidates.size(); ++i) {
        out << "\n" << FormatScore(candidates.probs[i]) << "\t"
            << other_side.TermName(candidates.others[i]);
      }
    } else {
      const auto matches = reader->RightEntity(*id);
      out << "OK " << matches.size();
      for (const auto& match : matches) {
        out << "\n" << FormatScore(match.prob) << "\t"
            << other_side.TermName(match.other);
      }
    }
  } else if (kind == "relation") {
    auto rel = ResolveRelation(key, side_is_left);
    if (!rel.ok()) return finish(ErrorReply(rel.status()));
    const auto matches = reader->RelationSupers(*rel, side_is_left);
    const ontology::Ontology& other_side =
        side_is_left ? resolver_->right() : resolver_->left();
    out << "OK " << matches.size();
    for (const auto& match : matches) {
      out << "\n" << FormatScore(match.score) << "\t"
          << other_side.RelationName(match.super);
    }
  } else {
    auto id = ResolveTerm(key);
    if (!id.ok()) return finish(ErrorReply(id.status()));
    const auto matches = reader->ClassSupers(*id, side_is_left);
    const ontology::Ontology& other_side =
        side_is_left ? resolver_->right() : resolver_->left();
    out << "OK " << matches.size();
    for (const auto& match : matches) {
      out << "\n" << FormatScore(match.score) << "\t"
          << other_side.TermName(match.super);
    }
  }
  std::string reply = out.str();
  snapshots_.cache().Put(cache_key, reply);
  return finish(std::move(reply));
}

std::string Daemon::HandleQuery(const std::string& payload, size_t slot) {
  // QUERY left|right <s> <p> <o> [limit] — each position is `?` (variable),
  // `_` (ignored; duplicates collapse), `#<raw id>`, or a lexical IRI name;
  // the relation additionally accepts a `-` prefix for the inverse
  // direction. Answered from the ontology pair itself (the TriIndex
  // orderings), so it works before the first result snapshot exists.
  const std::vector<std::string> tokens = SplitTokens(payload);
  if (tokens.size() != 5 && tokens.size() != 6) {
    return ErrorReply(util::InvalidArgumentError(
        "usage: QUERY left|right <subject> <relation> <object> [limit]"));
  }
  const std::string& side = tokens[1];
  if (side != "left" && side != "right") {
    return ErrorReply(
        util::InvalidArgumentError("QUERY side must be left or right"));
  }
  const bool side_is_left = side == "left";
  size_t limit = 100;  // bounded by default; an explicit 0 means no limit
  if (tokens.size() == 6) {
    long long parsed = 0;
    if (!util::ParseFullInt64(tokens[5], &parsed) || parsed < 0) {
      return ErrorReply(util::InvalidArgumentError(
          "QUERY limit must be a non-negative integer"));
    }
    limit = static_cast<size_t>(parsed);
  }

  storage::TriplePattern pattern;
  if (tokens[2] == "_") {
    pattern.IgnoreSubject();
  } else if (tokens[2] != "?") {
    auto id = ResolveTerm(tokens[2]);
    if (!id.ok()) return ErrorReply(id.status());
    pattern.BindSubject(*id);
  }
  if (tokens[3] == "_") {
    pattern.IgnoreRel();
  } else if (tokens[3] != "?") {
    auto rel = ResolveRelation(tokens[3], side_is_left);
    if (!rel.ok()) return ErrorReply(rel.status());
    pattern.BindRel(*rel);
  }
  if (tokens[4] == "_") {
    pattern.IgnoreObject();
  } else if (tokens[4] != "?") {
    auto id = ResolveTerm(tokens[4]);
    if (!id.ok()) return ErrorReply(id.status());
    pattern.BindObject(*id);
  }

  const auto start = std::chrono::steady_clock::now();
  const auto finish = [&](std::string reply) {
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    metrics_.Add(queries_, slot, 1);
    metrics_.Observe(query_micros_, slot, micros);
    return reply;
  };

  // The pattern resolves against the immutable resolution pair, but keying
  // the cache by generation keeps the invalidation story uniform with
  // LOOKUP (and future daemons that re-load the pair per generation).
  const std::string cache_key = "query:" + side + ":" +
                                std::to_string(snapshots_.generation()) + ":" +
                                tokens[2] + " " + tokens[3] + " " + tokens[4] +
                                " " + std::to_string(limit);
  std::string cached;
  if (snapshots_.cache().Get(cache_key, &cached)) return finish(cached);

  const ontology::Ontology& onto =
      side_is_left ? resolver_->left() : resolver_->right();
  std::ostringstream body;
  const size_t matched = onto.store().tri().Scan(
      pattern, limit, [&](const rdf::Triple& t) {
        body << "\n"
             << (t.subject == rdf::kNullTerm ? "_" : onto.TermName(t.subject))
             << "\t"
             << (t.rel == rdf::kNullRel ? "_" : onto.RelationName(t.rel))
             << "\t"
             << (t.object == rdf::kNullTerm ? "_" : onto.TermName(t.object));
      });
  std::string reply = "OK " + std::to_string(matched) + body.str();
  snapshots_.cache().Put(cache_key, reply);
  return finish(std::move(reply));
}

std::string Daemon::HandleResult() {
  auto reader = snapshots_.reader();
  if (reader == nullptr) {
    return ErrorReply(
        util::NotFoundError("no result snapshot is being served yet"));
  }
  const auto& stats = reader->stats();
  std::ostringstream out;
  out << "OK generation=" << snapshots_.generation() << " path="
      << snapshots_.path() << " iterations=" << stats.num_iterations
      << " aligned=" << stats.num_left_aligned
      << " instances=" << stats.num_instance_keys
      << " relations=" << stats.num_relation_entries
      << " classes=" << stats.num_class_entries
      << " partial=" << (stats.has_partial ? 1 : 0);
  return out.str();
}

std::string Daemon::HandleMetrics(size_t slot) {
  std::unique_lock<std::shared_mutex> obs_lock(obs_mu_);
  obs::Span span(trace_.get(), slot, "request", "metrics");
  metrics_.Add(requests_, slot, 1);
  metrics_.SetGauge(cache_hits_gauge_,
                    static_cast<int64_t>(snapshots_.cache().hits()));
  metrics_.SetGauge(cache_misses_gauge_,
                    static_cast<int64_t>(snapshots_.cache().misses()));
  metrics_.SetGauge(jobs_submitted_gauge_,
                    static_cast<int64_t>(queue_->jobs_submitted()));
  metrics_.SetGauge(jobs_completed_gauge_,
                    static_cast<int64_t>(queue_->jobs_completed()));
  metrics_.SetGauge(generation_gauge_,
                    static_cast<int64_t>(snapshots_.generation()));
  std::ostringstream out;
  metrics_.WriteJson(out);
  return "OK\n" + out.str();
}

std::string Daemon::HandleTrace(size_t slot) {
  std::unique_lock<std::shared_mutex> obs_lock(obs_mu_);
  if (trace_ == nullptr) {
    return ErrorReply(util::FailedPreconditionError(
        "the daemon was started without --trace"));
  }
  obs::Span span(trace_.get(), slot, "request", "trace");
  metrics_.Add(requests_, slot, 1);
  span.End();  // recorded before the export so WriteJson sees it
  std::ostringstream out;
  trace_->WriteJson(out);
  return "OK\n" + out.str();
}

}  // namespace paris::service
