#include "paris/service/job_queue.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "paris/util/flags.h"
#include "paris/util/fs.h"
#include "paris/util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define PARIS_HAS_POSIX_DIRS 1
#include <dirent.h>
#include <sys/stat.h>
#endif

namespace paris::service {

namespace {

// Slow WATCH clients see a seq gap instead of stalling the run.
constexpr size_t kMaxEventsPerJob = 1024;

util::Status EnsureDir(const std::string& path) {
#if PARIS_HAS_POSIX_DIRS
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return util::OkStatus();
  }
  return util::InternalError("mkdir failed for '" + path +
                             "': " + std::strerror(errno));
#else
  (void)path;
  return util::UnimplementedError("job directories require POSIX");
#endif
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

bool ParseBoolValue(const std::string& value, bool* out) {
  if (value == "1" || value == "true") {
    *out = true;
    return true;
  }
  if (value == "0" || value == "false") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

const char* JobQueue::JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

JobQueue::JobQueue(Config config) : config_(std::move(config)) {}

JobQueue::~JobQueue() { Stop(); }

std::string JobQueue::RenderSpec(const JobSpec& spec) {
  std::string out;
  for (const auto& [key, value] : spec.overrides) {
    if (!out.empty()) out += " ";
    out += key + "=" + value;
  }
  return out;
}

util::StatusOr<api::Session::Options> JobQueue::ResolveOptions(
    const JobSpec& spec) const {
  api::Session::Options options = config_.base_options;
  for (const auto& [key, value] : spec.overrides) {
    const auto bad = [&](const std::string& expected) {
      return util::InvalidArgumentError("bad value for job option '" + key +
                                        "': '" + value + "' (expected " +
                                        expected + ")");
    };
    long long n = 0;
    double d = 0.0;
    bool b = false;
    if (key == "threads") {
      if (!util::ParseFullInt64(value, &n) || n < 0) {
        return bad("a non-negative integer");
      }
      options.set_threads(static_cast<size_t>(n));
    } else if (key == "max-iterations") {
      if (!util::ParseFullInt64(value, &n) || n < 1) {
        return bad("a positive integer");
      }
      options.set_max_iterations(static_cast<int>(n));
    } else if (key == "matcher") {
      if (value.empty()) return bad("a matcher name");
      options.set_matcher(value);
    } else if (key == "theta") {
      if (!util::ParseFullDouble(value, &d) || d < 0.0 || d > 1.0) {
        return bad("a number in [0, 1]");
      }
      options.set_theta(d);
    } else if (key == "shards") {
      if (!util::ParseFullInt64(value, &n) || n < 0) {
        return bad("a non-negative integer");
      }
      options.config.num_shards = static_cast<size_t>(n);
    } else if (key == "negative-evidence") {
      if (!ParseBoolValue(value, &b)) return bad("0|1|true|false");
      options.set_negative_evidence(b);
    } else if (key == "name-prior") {
      if (!ParseBoolValue(value, &b)) return bad("0|1|true|false");
      options.set_name_prior(b);
    } else {
      return util::InvalidArgumentError(
          "unknown job option '" + key +
          "' (accepted: threads, max-iterations, matcher, theta, shards, "
          "negative-evidence, name-prior)");
    }
  }
  return options;
}

void JobQueue::PushEventLocked(Job& job, std::string text) {
  job.events.push_back(Event{job.next_seq++, std::move(text)});
  if (job.events.size() > kMaxEventsPerJob) job.events.pop_front();
  cv_.notify_all();
}

void JobQueue::PersistLocked(const Job& job) {
  std::string meta = "state " + std::string(JobStateName(job.state)) + "\n";
  meta += "spec " + RenderSpec(job.spec) + "\n";
  if (!job.error.empty()) meta += "error " + job.error + "\n";
  const util::Status status =
      util::WriteFileAtomic(job.dir + "/job.meta", meta);
  if (!status.ok()) {
    PARIS_LOG(kWarning) << "failed to persist " << job.id << " meta: "
                        << status.ToString();
  }
}

util::StatusOr<std::vector<std::string>> JobQueue::Start(bool auto_resume) {
  std::vector<std::string> requeued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return util::FailedPreconditionError("job queue already started");
    }
    util::Status status = EnsureDir(config_.data_dir);
    if (status.ok()) status = EnsureDir(config_.data_dir + "/jobs");
    if (!status.ok()) return status;
    if (auto_resume) {
      status = RecoverLocked(&requeued);
      if (!status.ok()) return status;
    }
    started_ = true;
  }
  worker_ = std::thread([this] { WorkerLoop(); });
  return requeued;
}

util::Status JobQueue::RecoverLocked(std::vector<std::string>* requeued) {
#if PARIS_HAS_POSIX_DIRS
  const std::string jobs_dir = config_.data_dir + "/jobs";
  DIR* dir = ::opendir(jobs_dir.c_str());
  if (dir == nullptr) return util::OkStatus();  // nothing to recover
  std::vector<std::string> ids;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind("job-", 0) == 0) ids.push_back(name);
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());

  for (const std::string& id : ids) {
    const std::string job_dir = jobs_dir + "/" + id;
    std::ifstream meta(job_dir + "/job.meta");
    if (!meta.good()) {
      PARIS_LOG(kWarning) << "skipping " << id << ": unreadable job.meta";
      continue;
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    job->dir = job_dir;
    std::string persisted_state;
    std::string line;
    while (std::getline(meta, line)) {
      if (line.rfind("state ", 0) == 0) {
        persisted_state = line.substr(6);
      } else if (line.rfind("spec ", 0) == 0) {
        std::istringstream spec_in(line.substr(5));
        std::string pair;
        while (spec_in >> pair) {
          const size_t eq = pair.find('=');
          if (eq != std::string::npos) {
            job->spec.overrides.emplace_back(pair.substr(0, eq),
                                             pair.substr(eq + 1));
          }
        }
      } else if (line.rfind("error ", 0) == 0) {
        job->error = line.substr(6);
      }
    }
    // Track the numbering past every recovered id ("job-" + 6 digits).
    long long number = 0;
    if (util::ParseFullInt64(id.substr(4), &number) &&
        static_cast<uint64_t>(number) >= next_job_number_) {
      next_job_number_ = static_cast<uint64_t>(number) + 1;
    }

    if (persisted_state == "queued" || persisted_state == "running") {
      // The daemon died (or was stopped) with this job in flight; its
      // checkpoints under ckpt/ let the rerun resume mid-iteration.
      job->state = JobState::kQueued;
      job->cancellation = std::make_shared<api::CancellationToken>();
      PersistLocked(*job);
      pending_.push_back(id);
      requeued->push_back(id);
    } else if (persisted_state == "done") {
      job->state = JobState::kDone;
      if (!FileExists(job_dir + "/result.snapshot")) {
        job->state = JobState::kFailed;
        job->error = "result.snapshot missing after restart";
      }
    } else if (persisted_state == "failed") {
      job->state = JobState::kFailed;
    } else if (persisted_state == "cancelled") {
      job->state = JobState::kCancelled;
    } else {
      PARIS_LOG(kWarning) << "skipping " << id << ": unknown state '"
                          << persisted_state << "'";
      continue;
    }
    jobs_[id] = std::move(job);
  }
  return util::OkStatus();
#else
  (void)requeued;
  return util::OkStatus();
#endif
}

void JobQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopping; fall through to the join below.
    }
    stopping_ = true;
    if (!running_id_.empty()) {
      auto it = jobs_.find(running_id_);
      if (it != jobs_.end()) {
        it->second->interrupted_by_stop = true;
        if (it->second->cancellation) it->second->cancellation->Cancel();
      }
    }
    cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
}

util::StatusOr<std::string> JobQueue::Submit(const JobSpec& spec) {
  auto options = ResolveOptions(spec);
  if (!options.ok()) return options.status();

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ || !started_) {
    return util::FailedPreconditionError("job queue is not accepting jobs");
  }
  char id_buf[32];
  std::snprintf(id_buf, sizeof(id_buf), "job-%06llu",
                static_cast<unsigned long long>(next_job_number_++));
  auto job = std::make_unique<Job>();
  job->id = id_buf;
  job->dir = config_.data_dir + "/jobs/" + job->id;
  job->spec = spec;
  job->cancellation = std::make_shared<api::CancellationToken>();
  const util::Status dir_status = EnsureDir(job->dir);
  if (!dir_status.ok()) return dir_status;
  PersistLocked(*job);  // durable before the ack: a crash now still knows it
  PushEventLocked(*job, "EVT " + job->id + " state queued");
  const std::string id = job->id;
  jobs_[id] = std::move(job);
  pending_.push_back(id);
  ++jobs_submitted_;
  cv_.notify_all();
  return id;
}

JobQueue::JobStatus JobQueue::StatusOfLocked(const Job& job) const {
  JobStatus out;
  out.id = job.id;
  out.state = job.state;
  out.error = job.error;
  out.iteration = job.iteration;
  out.num_aligned = job.num_aligned;
  out.pass = job.pass;
  out.shards_completed = job.shards_completed;
  out.num_shards = job.num_shards;
  if (job.state == JobState::kDone) {
    out.result_path = job.dir + "/result.snapshot";
  }
  out.spec = RenderSpec(job.spec);
  return out;
}

util::StatusOr<JobQueue::JobStatus> JobQueue::Status(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::NotFoundError("no such job: " + id);
  }
  return StatusOfLocked(*it->second);
}

std::vector<JobQueue::JobStatus> JobQueue::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(StatusOfLocked(*job));
  return out;
}

util::Status JobQueue::Cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return util::NotFoundError("no such job: " + id);
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued: {
      job.state = JobState::kCancelled;
      pending_.erase(std::remove(pending_.begin(), pending_.end(), id),
                     pending_.end());
      PersistLocked(job);
      PushEventLocked(job, "EVT " + id + " state cancelled");
      ++jobs_completed_;
      return util::OkStatus();
    }
    case JobState::kRunning:
      job.cancellation->Cancel();  // honored at the next shard boundary
      return util::OkStatus();
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
      return util::FailedPreconditionError(
          id + " is already " + JobStateName(job.state));
  }
  return util::InternalError("unreachable");
}

util::StatusOr<std::vector<JobQueue::Event>> JobQueue::WaitEvents(
    const std::string& id, uint64_t from, bool* terminal, JobState* state,
    double timeout_seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return util::NotFoundError("no such job: " + id);
    const Job& job = *it->second;
    std::vector<Event> out;
    for (const Event& event : job.events) {
      if (event.seq >= from) out.push_back(event);
    }
    const bool is_terminal = job.state == JobState::kDone ||
                             job.state == JobState::kFailed ||
                             job.state == JobState::kCancelled;
    if (!out.empty() || is_terminal) {
      *terminal = is_terminal;
      *state = job.state;
      return out;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      *terminal = false;
      *state = job.state;
      return std::vector<Event>();
    }
  }
}

uint64_t JobQueue::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_submitted_;
}

uint64_t JobQueue::jobs_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_completed_;
}

void JobQueue::WorkerLoop() {
  for (;;) {
    std::string id;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      id = pending_.front();
      pending_.pop_front();
      running_id_ = id;
    }
    RunJob(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_id_.clear();
    }
  }
}

void JobQueue::RunJob(const std::string& id) {
  std::shared_ptr<api::CancellationToken> cancellation;
  JobSpec spec;
  std::string job_dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = *it->second;
    if (job.state != JobState::kQueued) return;  // cancelled while pending
    job.state = JobState::kRunning;
    spec = job.spec;
    job_dir = job.dir;
    cancellation = job.cancellation;
    PersistLocked(job);
    PushEventLocked(job, "EVT " + id + " state running");
  }

  const auto finish = [&](JobState state, const std::string& error) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = *it->second;
    if (state == JobState::kCancelled && job.interrupted_by_stop) {
      // Graceful shutdown, not a user cancel: persist as queued so the
      // next Start(auto_resume) requeues and resumes it.
      job.state = JobState::kQueued;
      PersistLocked(job);
      return;
    }
    job.state = state;
    job.error = error;
    PersistLocked(job);
    PushEventLocked(job, "EVT " + id + " state " +
                             std::string(JobStateName(state)));
    ++jobs_completed_;
  };

  auto options = ResolveOptions(spec);
  if (!options.ok()) {  // validated at submit; a recovery could still trip
    finish(JobState::kFailed, options.status().ToString());
    return;
  }
  const util::Status ckpt_dir_status = EnsureDir(job_dir + "/ckpt");
  if (!ckpt_dir_status.ok()) {
    finish(JobState::kFailed, ckpt_dir_status.ToString());
    return;
  }
  options->set_checkpointing(job_dir + "/ckpt",
                             config_.checkpoint_interval_seconds);
  options->set_auto_resume(true);

  api::Session session(std::move(options).value());
  util::Status status =
      config_.snapshot_path.empty()
          ? session.LoadFromFiles(config_.left_path, config_.right_path)
          : session.LoadFromSnapshot(config_.snapshot_path);
  if (!status.ok()) {
    finish(JobState::kFailed, status.ToString());
    return;
  }

  api::RunCallbacks callbacks;
  callbacks.cancellation = cancellation;
  callbacks.on_iteration = [&](const api::IterationProgress& progress) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = *it->second;
    job.iteration = progress.iteration;
    job.num_aligned = progress.num_aligned;
    std::ostringstream text;
    text << "EVT " << id << " iteration " << progress.iteration << "/"
         << progress.max_iterations << " aligned=" << progress.num_aligned
         << " change=" << progress.change_fraction;
    PushEventLocked(job, text.str());
  };
  callbacks.on_shard = [&](const api::ShardProgress& progress) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = *it->second;
    job.pass = progress.pass;
    job.shards_completed = progress.num_completed;
    job.num_shards = progress.num_shards;
    std::ostringstream text;
    text << "EVT " << id << " shard " << progress.pass << " "
         << progress.iteration << " " << progress.num_completed << "/"
         << progress.num_shards;
    PushEventLocked(job, text.str());
  };

  status = session.Align(callbacks);
  if (status.code() == util::StatusCode::kCancelled) {
    finish(JobState::kCancelled, "");
    return;
  }
  if (!status.ok()) {
    finish(JobState::kFailed, status.ToString());
    return;
  }

  const std::string result_path = job_dir + "/result.snapshot";
  status = session.SaveResult(result_path);
  if (status.ok()) status = session.Export(job_dir + "/export");
  if (!status.ok()) {
    finish(JobState::kFailed, status.ToString());
    return;
  }
  // Serve before publishing: the read path refreshes first, so a client
  // that just saw state=done (via STATUS or an END-terminated WATCH) can
  // immediately LOOKUP against this job's result without racing the swap.
  if (config_.on_result) config_.on_result(id, result_path);
  finish(JobState::kDone, "");
}

}  // namespace paris::service
