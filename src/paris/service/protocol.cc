#include "paris/service/protocol.h"

#include <cctype>
#include <cstring>

#include "paris/util/status.h"

namespace paris::service {

namespace {

uint32_t DecodeU32Le(const unsigned char* b) {
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

void EncodeU32Le(uint32_t v, unsigned char* b) {
  b[0] = static_cast<unsigned char>(v);
  b[1] = static_cast<unsigned char>(v >> 8);
  b[2] = static_cast<unsigned char>(v >> 16);
  b[3] = static_cast<unsigned char>(v >> 24);
}

}  // namespace

util::Status WriteFrame(util::SocketConn& conn, std::string_view payload,
                        size_t max_frame_bytes) {
  if (payload.size() > max_frame_bytes) {
    return util::InvalidArgumentError(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte cap");
  }
  // One buffer, one send: a header-only first segment would otherwise ride
  // a separate TCP packet per frame (and one extra syscall), and keeping
  // each frame a single write is what lets TCP_NODELAY deliver it
  // immediately.
  std::string frame;
  frame.reserve(sizeof(uint32_t) + payload.size());
  unsigned char header[4];
  EncodeU32Le(static_cast<uint32_t>(payload.size()), header);
  frame.append(reinterpret_cast<const char*>(header), sizeof(header));
  frame.append(payload);
  return conn.SendAll(frame.data(), frame.size());
}

util::StatusOr<bool> ReadFrame(util::SocketConn& conn, std::string* payload,
                               size_t max_frame_bytes) {
  unsigned char header[4];
  auto got_header = conn.RecvAll(header, sizeof(header));
  if (!got_header.ok()) return got_header.status();
  if (!*got_header) return false;  // clean EOF between frames
  const uint32_t length = DecodeU32Le(header);
  if (length > max_frame_bytes) {
    return util::InvalidArgumentError(
        "frame length prefix " + std::to_string(length) + " exceeds the " +
        std::to_string(max_frame_bytes) + "-byte cap");
  }
  payload->resize(length);
  if (length == 0) return true;
  auto got_body = conn.RecvAll(payload->data(), length);
  if (!got_body.ok()) return got_body.status();
  if (!*got_body) {
    return util::DataLossError("connection closed before frame payload");
  }
  return true;
}

std::vector<std::string> SplitTokens(std::string_view line,
                                     size_t max_tokens) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (i < line.size()) {
    while (i < line.size() && is_space(line[i])) ++i;
    if (i >= line.size()) break;
    if (max_tokens > 0 && tokens.size() + 1 == max_tokens) {
      // Remainder token: everything left, right-trimmed.
      size_t end = line.size();
      while (end > i && is_space(line[end - 1])) --end;
      tokens.emplace_back(line.substr(i, end - i));
      break;
    }
    size_t start = i;
    while (i < line.size() && !is_space(line[i])) ++i;
    tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

std::string ErrorReply(const util::Status& status) {
  return "ERR " + std::string(util::StatusCodeName(status.code())) + " " +
         status.message();
}

util::Status StatusFromReply(std::string_view payload) {
  if (payload.rfind("ERR ", 0) != 0) return util::OkStatus();
  std::string_view rest = payload.substr(4);
  const size_t space = rest.find(' ');
  const std::string_view code_name =
      space == std::string_view::npos ? rest : rest.substr(0, space);
  const std::string message =
      space == std::string_view::npos ? std::string()
                                      : std::string(rest.substr(space + 1));
  for (int c = 0; c <= static_cast<int>(util::StatusCode::kDataLoss); ++c) {
    const auto code = static_cast<util::StatusCode>(c);
    if (util::StatusCodeName(code) == code_name &&
        code != util::StatusCode::kOk) {
      return util::Status(code, message);
    }
  }
  return util::InternalError("unparseable error reply: " +
                             std::string(payload));
}

}  // namespace paris::service
