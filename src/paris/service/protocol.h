#ifndef PARIS_SERVICE_PROTOCOL_H_
#define PARIS_SERVICE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "paris/util/net.h"
#include "paris/util/status.h"

namespace paris::service {

// parisd wire protocol: length-prefixed frames carrying one-line text
// messages (see src/paris/service/README.md for the full spec).
//
//   frame := u32 little-endian payload length | payload bytes
//
// A request is one frame; a response is one frame. Streaming responses
// (WATCH) are a sequence of frames ending in an "END ..." payload. Frames
// above the size cap are rejected before any allocation — an oversized
// length prefix means a confused or malicious peer and fails the
// connection (there is no way to resynchronize a byte stream after a bad
// length). An EOF in the middle of a frame is kDataLoss; a clean EOF on a
// frame boundary is the peer hanging up.

inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

// Sends one frame.
util::Status WriteFrame(util::SocketConn& conn, std::string_view payload,
                        size_t max_frame_bytes = kDefaultMaxFrameBytes);

// Receives one frame into `*payload`. Returns false on clean EOF before a
// frame starts; kDataLoss when the stream ends mid-frame; kInvalidArgument
// when the length prefix exceeds `max_frame_bytes`.
util::StatusOr<bool> ReadFrame(util::SocketConn& conn, std::string* payload,
                               size_t max_frame_bytes = kDefaultMaxFrameBytes);

// Whitespace-tokenizes a request line. `max_tokens` > 0 stops splitting
// after that many tokens, leaving the remainder (trimmed) as the last one —
// how LOOKUP keeps spaces inside term names.
std::vector<std::string> SplitTokens(std::string_view line,
                                     size_t max_tokens = 0);

// "ERR <STATUS_CODE> <message>" for a non-OK status.
std::string ErrorReply(const util::Status& status);

// Parses an "ERR ..." reply back into a Status (client side); returns OK
// for any non-ERR payload.
util::Status StatusFromReply(std::string_view payload);

}  // namespace paris::service

#endif  // PARIS_SERVICE_PROTOCOL_H_
