#ifndef PARIS_SERVICE_JOB_QUEUE_H_
#define PARIS_SERVICE_JOB_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "paris/api/session.h"
#include "paris/util/status.h"

namespace paris::service {

// The daemon's alignment job queue. One daemon serves one ontology pair
// (fixed at startup, so the read path's term ids stay coherent across
// jobs); a job is one alignment run over that pair with per-job config
// overrides, executed on a single worker thread in submission order —
// inter-job parallelism would just thrash the pair's memory, the
// intra-run parallelism is the Session's worker pool.
//
// Every job owns a directory `<data_dir>/jobs/<id>/`:
//
//   job.meta          state + spec, rewritten atomically on each transition
//   ckpt/             the Session's crash-safe periodic checkpoints
//   result.snapshot   the completed run's result (serve + resume format)
//   export_*.tsv      the exported alignment tables
//
// Crash safety rides on PR 7's substrate: jobs run with checkpointing and
// auto-resume on, so a SIGKILL'd daemon restarted with Recover() requeues
// every job whose meta says queued/running and each resumes from its last
// checkpoint, byte-identical to an uninterrupted run. A *graceful* Stop()
// interrupts the running job cooperatively and re-persists it as queued —
// same recovery path, no checkpoint discarded.
class JobQueue {
 public:
  enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };
  static const char* JobStateName(JobState state);

  // Config overrides in "key=value" form, validated at submit time.
  // Accepted keys: threads, max-iterations, matcher, theta, shards,
  // negative-evidence (0/1), name-prior (0/1).
  struct JobSpec {
    std::vector<std::pair<std::string, std::string>> overrides;
  };

  struct JobStatus {
    std::string id;
    JobState state = JobState::kQueued;
    std::string error;             // kFailed only
    int iteration = 0;             // last completed iteration
    size_t num_aligned = 0;
    std::string pass;              // pass of the last shard event
    size_t shards_completed = 0;   // of the current pass
    size_t num_shards = 0;
    std::string result_path;       // set once kDone
    std::string spec;              // the overrides, re-rendered
  };

  // One progress event, pre-rendered as a protocol line ("EVT <id> ...").
  // Events live in a bounded per-job ring, so a slow WATCH client can
  // observe a sequence gap instead of stalling the run.
  struct Event {
    uint64_t seq = 0;
    std::string text;
  };

  struct Config {
    std::string data_dir;  // jobs live in <data_dir>/jobs/

    // How each job loads the pair: an ontology snapshot, or two RDF files.
    std::string snapshot_path;
    std::string left_path, right_path;

    // Base Session options every job starts from (threads, matcher, config
    // knobs); per-job overrides are applied on top. Checkpointing and
    // auto-resume are forced on by the queue, pointed at the job's dir.
    api::Session::Options base_options;
    double checkpoint_interval_seconds = 1.0;

    // Called (from the worker thread) after a job completes with the path
    // of its result snapshot — the daemon refreshes the read path here.
    std::function<void(const std::string& job_id,
                       const std::string& result_path)>
        on_result;
  };

  explicit JobQueue(Config config);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  // Starts the worker thread. When `auto_resume` is set, first scans the
  // jobs directory and requeues every job persisted as queued or running
  // (in id order); their checkpoints make the rerun resume where the dead
  // daemon left off. Returns the requeued job ids.
  util::StatusOr<std::vector<std::string>> Start(bool auto_resume);

  // Graceful shutdown: interrupts the running job (re-persisted as queued,
  // resumable), stops the worker. Idempotent.
  void Stop();

  util::StatusOr<std::string> Submit(const JobSpec& spec);
  util::StatusOr<JobStatus> Status(const std::string& id) const;
  std::vector<JobStatus> List() const;
  // Queued jobs cancel immediately; the running job is cancelled
  // cooperatively (shard granularity). Terminal jobs: FailedPrecondition.
  util::Status Cancel(const std::string& id);

  // WATCH support: blocks until the job has events with seq >= `from`, or
  // reaches a terminal state (sets `*terminal` + `*state`), or
  // `timeout_seconds` elapses (returns empty). NotFound for unknown ids.
  util::StatusOr<std::vector<Event>> WaitEvents(const std::string& id,
                                                uint64_t from, bool* terminal,
                                                JobState* state,
                                                double timeout_seconds) const;

  // Totals for service metrics.
  uint64_t jobs_submitted() const;
  uint64_t jobs_completed() const;

 private:
  struct Job {
    std::string id;
    std::string dir;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::string error;
    // Progress, updated by run callbacks (worker / pool threads) under mu_.
    int iteration = 0;
    size_t num_aligned = 0;
    std::string pass;
    size_t shards_completed = 0;
    size_t num_shards = 0;
    // Bounded event ring. next_seq - events.size() = seq of events.front().
    std::deque<Event> events;
    uint64_t next_seq = 0;
    std::shared_ptr<api::CancellationToken> cancellation;
    bool interrupted_by_stop = false;
  };

  static std::string RenderSpec(const JobSpec& spec);
  // Applies `spec` onto a copy of the base options; InvalidArgument on an
  // unknown key or malformed value.
  util::StatusOr<api::Session::Options> ResolveOptions(
      const JobSpec& spec) const;

  void WorkerLoop();
  void RunJob(const std::string& id);            // worker thread
  void PushEventLocked(Job& job, std::string text);
  void PersistLocked(const Job& job);            // writes job.meta atomically
  util::Status RecoverLocked(std::vector<std::string>* requeued);
  JobStatus StatusOfLocked(const Job& job) const;

  const Config config_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, std::unique_ptr<Job>> jobs_;  // ordered by id
  std::deque<std::string> pending_;
  std::string running_id_;  // job currently inside RunJob, "" when idle
  uint64_t next_job_number_ = 1;
  uint64_t jobs_submitted_ = 0;
  uint64_t jobs_completed_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  std::thread worker_;
};

}  // namespace paris::service

#endif  // PARIS_SERVICE_JOB_QUEUE_H_
