#ifndef PARIS_SERVICE_DAEMON_H_
#define PARIS_SERVICE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "paris/api/session.h"
#include "paris/obs/metrics.h"
#include "paris/obs/trace.h"
#include "paris/service/job_queue.h"
#include "paris/service/protocol.h"
#include "paris/service/read_path.h"
#include "paris/util/net.h"
#include "paris/util/status.h"

namespace paris::service {

// parisd's engine: one TCP listener, an accept thread feeding N handler
// threads, the job queue, and the lookup read path — everything behind the
// framed text protocol documented in src/paris/service/README.md.
//
// One daemon serves one ontology pair, loaded once at Start() into a
// resolution Session whose term pool answers name <-> id for LOOKUP.
// Alignment jobs load the same inputs into their own Sessions; because
// interning is deterministic in input order, their term ids coincide with
// the resolution pool's, so ids in a served result snapshot resolve
// correctly here.
//
// Observability: a MetricsRegistry with one slot per handler thread.
// Handler-side updates are slot-local and taken under a shared lock;
// METRICS (Snapshot) and TRACE (WriteJson) requests take the lock
// exclusively, because those exports require no concurrent updates.
class Daemon {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = ephemeral; the bound port is port() after Start
    size_t num_handlers = 4;
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    size_t cache_bytes = 4u << 20;  // lookup hot-key cache budget
    bool auto_resume = true;        // requeue in-flight jobs from data_dir
    bool trace = false;             // record per-request spans (TRACE verb)

    // Job execution (pair source, base options, checkpoint cadence).
    JobQueue::Config queue;

    // Optional result snapshot to serve before the first job completes.
    std::string serve_result;
  };

  explicit Daemon(Config config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Loads the pair, starts the job queue (recovering in-flight jobs when
  // configured), binds the listener, and launches the accept + handler
  // threads. On return the daemon is serving.
  util::Status Start();

  // Blocks until a client SHUTDOWN request or Stop() from another thread.
  // Returns immediately if Start() has not succeeded.
  void Wait();

  // Bounded Wait(): true when shutdown was requested (or the daemon
  // stopped), false on timeout. Lets a main loop interleave signal checks.
  bool WaitFor(double seconds);

  // Graceful shutdown, idempotent: stops accepting, drains handler
  // threads, stops the queue (the running job is re-persisted as queued
  // and resumable). Called by the destructor. Must not be called from a
  // handler thread — a client SHUTDOWN request goes through
  // RequestShutdown() and the owning thread's Wait()/Stop() instead.
  void Stop();

  // Makes Wait() return; safe from any thread (and the SHUTDOWN verb).
  void RequestShutdown();

  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandlerLoop(size_t slot);
  void ServeConn(util::SocketConn conn, size_t slot);

  // One request -> one reply payload ("OK ..." / "ERR CODE msg"). WATCH is
  // handled separately because it writes multiple frames.
  std::string HandleRequest(const std::string& payload, size_t slot);
  util::Status HandleWatch(util::SocketConn& conn,
                           const std::vector<std::string>& tokens,
                           size_t slot);

  std::string HandleSubmit(const std::vector<std::string>& tokens);
  std::string HandleStatus(const std::vector<std::string>& tokens);
  std::string HandleList();
  std::string HandleCancel(const std::vector<std::string>& tokens);
  std::string HandleLookup(const std::string& payload, size_t slot);
  std::string HandleQuery(const std::string& payload, size_t slot);
  std::string HandleResult();
  std::string HandleMetrics(size_t slot);
  std::string HandleTrace(size_t slot);

  // LOOKUP helpers; `side_is_left` = the queried id lives in the left
  // ontology. Keys are lexical names or "#<raw id>".
  util::StatusOr<rdf::TermId> ResolveTerm(const std::string& key) const;
  util::StatusOr<rdf::RelId> ResolveRelation(const std::string& key,
                                             bool side_is_left) const;

  static std::string RenderJobStatus(const JobQueue::JobStatus& status);

  Config config_;
  std::optional<api::Session> resolver_;  // loaded pair; names <-> ids
  std::unique_ptr<JobQueue> queue_;
  SnapshotServer snapshots_;
  std::optional<util::SocketListener> listener_;
  int port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> handlers_;
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::deque<util::SocketConn> conn_queue_;
  std::atomic<bool> closing_{false};
  // Connections currently inside ServeConn; Stop() Shutdown()s them so
  // handlers blocked in recv return. Guarded by conn_mu_; each entry is
  // owned by the handler thread that registered it, which unregisters
  // before destroying the conn.
  std::vector<util::SocketConn*> active_conns_;

  // Slot s belongs to handler thread s; main_slot() to the accept thread.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  mutable std::shared_mutex obs_mu_;  // shared: slot updates; unique: export
  obs::MetricId requests_ = 0;
  obs::MetricId errors_ = 0;
  obs::MetricId lookups_ = 0;
  obs::MetricId lookup_micros_ = 0;
  obs::MetricId queries_ = 0;
  obs::MetricId query_micros_ = 0;
  obs::MetricId connections_ = 0;
  obs::MetricId cache_hits_gauge_ = 0;
  obs::MetricId cache_misses_gauge_ = 0;
  obs::MetricId jobs_submitted_gauge_ = 0;
  obs::MetricId jobs_completed_gauge_ = 0;
  obs::MetricId generation_gauge_ = 0;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace paris::service

#endif  // PARIS_SERVICE_DAEMON_H_
