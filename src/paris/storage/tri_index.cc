#include "paris/storage/tri_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "paris/storage/columnar_index.h"
#include "paris/util/thread_pool.h"

namespace paris::storage {

namespace {

using Slot = TriplePattern::Slot;

// kComponentPos[f][i] = which triple position family f stores in row
// component i. Must stay consistent with RowFor / TripleFor below.
constexpr TriPos kComponentPos[3][3] = {
    {TriPos::kSubject, TriPos::kRel, TriPos::kObject},  // SPO: (s, p, o)
    {TriPos::kRel, TriPos::kObject, TriPos::kSubject},  // POS: (p, o, s)
    {TriPos::kObject, TriPos::kSubject, TriPos::kRel},  // OSP: (o, s, p)
};

constexpr size_t Idx(TriPos p) { return static_cast<size_t>(p); }
constexpr size_t Idx(TriOrdering o) { return static_cast<size_t>(o); }

constexpr TriRow RowFor(TriOrdering f, uint32_t s, uint32_t p, uint32_t o) {
  switch (f) {
    case TriOrdering::kSpo:
      return {s, p, o};
    case TriOrdering::kPos:
      return {p, o, s};
    case TriOrdering::kOsp:
      return {o, s, p};
  }
  return {};
}

constexpr rdf::Triple TripleFor(TriOrdering f, const TriRow& r) {
  switch (f) {
    case TriOrdering::kSpo:
      return {r.a, static_cast<rdf::RelId>(r.b), r.c};
    case TriOrdering::kPos:
      return {r.c, static_cast<rdf::RelId>(r.a), r.b};
    case TriOrdering::kOsp:
      return {r.b, static_cast<rdf::RelId>(r.c), r.a};
  }
  return {};
}

// Normalizes an inverse-relation pattern (`rel` bound to -r) into the
// equivalent positive-relation pattern: r⁻¹(s, o) matches exactly the
// statements r(o, s), so the subject and object slots swap.
TriplePattern Normalize(const TriplePattern& p) {
  if (p.bound(TriPos::kRel) && p.rel() < 0) {
    TriplePattern q = p;
    std::swap(q.slots[0], q.slots[2]);
    std::swap(q.values[0], q.values[2]);
    q.values[1] = static_cast<uint32_t>(-p.rel());
    return q;
  }
  return p;
}

// True when, past the bound prefix, no ignored position precedes a
// variable position in family order — the condition under which matches
// equal on every non-ignored position are adjacent in the range (so
// duplicate collapse is a compare-with-last) and variable bindings come
// out in sorted order.
bool VariablesBeforeIgnored(const TriplePattern& p, TriOrdering f,
                            int prefix) {
  bool seen_ignored = false;
  for (int i = prefix; i < 3; ++i) {
    const Slot s = p.slot(kComponentPos[Idx(f)][i]);
    if (s == Slot::kIgnored) {
      seen_ignored = true;
    } else if (s == Slot::kVariable && seen_ignored) {
      return false;
    }
  }
  return true;
}

// The rows whose first `k` components equal `prefix`, by binary search.
std::pair<const TriRow*, const TriRow*> PrefixRange(
    std::span<const TriRow> rows, const uint32_t* prefix, int k) {
  const auto row_below = [k](const TriRow& r, const uint32_t* pfx) {
    const uint32_t rc[3] = {r.a, r.b, r.c};
    for (int i = 0; i < k; ++i) {
      if (rc[i] != pfx[i]) return rc[i] < pfx[i];
    }
    return false;
  };
  const auto row_above = [k](const uint32_t* pfx, const TriRow& r) {
    const uint32_t rc[3] = {r.a, r.b, r.c};
    for (int i = 0; i < k; ++i) {
      if (rc[i] != pfx[i]) return pfx[i] < rc[i];
    }
    return false;
  };
  const TriRow* begin = rows.data();
  const TriRow* end = rows.data() + rows.size();
  const TriRow* lo = std::lower_bound(begin, end, prefix, row_below);
  const TriRow* hi = std::upper_bound(lo, end, prefix, row_above);
  return {lo, hi};
}

// Order-independent content hash of one triple; summed over a whole family
// it must match the sum over the ground-truth POS pairs, so a snapshot
// whose families disagree with the CSR/POS columns is rejected.
uint64_t TripleHash(uint32_t s, uint32_t p, uint32_t o) {
  uint64_t h = 14695981039346656037ull;
  const uint32_t comps[3] = {s, p, o};
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(comps);
  for (size_t i = 0; i < sizeof(comps); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::span<const TriRow> TriIndex::rows(TriOrdering o) const {
  switch (o) {
    case TriOrdering::kSpo:
      return spo_.span();
    case TriOrdering::kPos:
      return pos_.span();
    case TriOrdering::kOsp:
      return osp_.span();
  }
  return {};
}

TriIndex TriIndex::Build(const ColumnarIndex& index, util::ThreadPool* pool,
                         obs::Hooks hooks) {
  obs::Span build_span(hooks.trace, hooks.main_slot(), "io", "tri.build");
  const size_t n = index.num_triples();
  const size_t num_relations = index.num_relations();
  std::vector<TriRow> spo(n), pos(n), osp(n);
  const std::span<const uint64_t> pair_offsets = index.pair_offsets();
  const std::span<const rdf::TermPair> pairs = index.pairs();

  // The concatenated POS pairs enumerate every distinct statement once, in
  // (p, s, o) order; emit each family's permuted row.
  util::ForRange(pool, num_relations, [&](size_t rel_begin, size_t rel_end) {
    for (size_t r = rel_begin; r < rel_end; ++r) {
      const uint32_t p = static_cast<uint32_t>(r + 1);
      for (uint64_t i = pair_offsets[r]; i < pair_offsets[r + 1]; ++i) {
        const uint32_t s = pairs[i].first;
        const uint32_t o = pairs[i].second;
        spo[i] = {s, p, o};
        pos[i] = {p, o, s};
        osp[i] = {o, s, p};
      }
    }
  });

  // The POS family is already grouped by ascending p; only each relation's
  // range needs re-sorting from (s, o) to (o, s). SPO and OSP sort whole.
  // All rows are distinct, so every sort has a unique result and the build
  // is identical for any thread count.
  const auto sort_pos_ranges = [&](size_t rel_begin, size_t rel_end) {
    for (size_t r = rel_begin; r < rel_end; ++r) {
      std::sort(pos.begin() + static_cast<ptrdiff_t>(pair_offsets[r]),
                pos.begin() + static_cast<ptrdiff_t>(pair_offsets[r + 1]));
    }
  };
  if (pool != nullptr && pool->num_threads() > 0) {
    pool->Schedule([&] { std::sort(spo.begin(), spo.end()); });
    pool->Schedule([&] { std::sort(osp.begin(), osp.end()); });
    // ParallelFor blocks until every scheduled task has drained, including
    // the two whole-family sorts above.
    pool->ParallelFor(num_relations, sort_pos_ranges);
  } else {
    std::sort(spo.begin(), spo.end());
    std::sort(osp.begin(), osp.end());
    sort_pos_ranges(0, num_relations);
  }

  TriIndex out;
  out.spo_ = Column<TriRow>::FromOwned(std::move(spo));
  out.pos_ = Column<TriRow>::FromOwned(std::move(pos));
  out.osp_ = Column<TriRow>::FromOwned(std::move(osp));
  return out;
}

bool TriIndex::FromColumns(const ColumnarIndex& index, Column<TriRow> spo,
                           Column<TriRow> pos, Column<TriRow> osp,
                           std::shared_ptr<const void> keep_alive,
                           TriIndex* out) {
  const size_t n = index.num_triples();
  const size_t num_relations = index.num_relations();
  if (spo.size() != n || pos.size() != n || osp.size() != n) return false;

  // Ground truth: the order-independent hash of the POS pairs.
  uint64_t want = 0;
  const std::span<const uint64_t> pair_offsets = index.pair_offsets();
  const std::span<const rdf::TermPair> pairs = index.pairs();
  for (size_t r = 0; r < num_relations; ++r) {
    for (uint64_t i = pair_offsets[r]; i < pair_offsets[r + 1]; ++i) {
      want += TripleHash(pairs[i].first, static_cast<uint32_t>(r + 1),
                         pairs[i].second);
    }
  }

  const Column<TriRow>* families[3] = {&spo, &pos, &osp};
  for (size_t f = 0; f < 3; ++f) {
    const std::span<const TriRow> rows = families[f]->span();
    uint64_t got = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0 && !(rows[i - 1] < rows[i])) return false;  // strict order
      const rdf::Triple t = TripleFor(static_cast<TriOrdering>(f), rows[i]);
      if (t.rel < 1 || static_cast<size_t>(t.rel) > num_relations) {
        return false;
      }
      got += TripleHash(t.subject, static_cast<uint32_t>(t.rel), t.object);
    }
    if (got != want) return false;
  }

  out->spo_ = std::move(spo);
  out->pos_ = std::move(pos);
  out->osp_ = std::move(osp);
  out->keep_alive_ = std::move(keep_alive);
  return true;
}

void TriIndex::MergeDelta(std::vector<rdf::Triple> novel) {
  if (novel.empty()) return;
  Column<TriRow>* families[3] = {&spo_, &pos_, &osp_};
  std::vector<TriRow> delta(novel.size());
  for (size_t f = 0; f < 3; ++f) {
    const TriOrdering ordering = static_cast<TriOrdering>(f);
    for (size_t i = 0; i < novel.size(); ++i) {
      assert(novel[i].rel > 0);
      delta[i] = RowFor(ordering, novel[i].subject,
                        static_cast<uint32_t>(novel[i].rel), novel[i].object);
    }
    std::sort(delta.begin(), delta.end());
    const std::span<const TriRow> old = families[f]->span();
    std::vector<TriRow> merged(old.size() + delta.size());
    std::merge(old.begin(), old.end(), delta.begin(), delta.end(),
               merged.begin());
    *families[f] = Column<TriRow>::FromOwned(std::move(merged));
  }
  keep_alive_.reset();
}

TriDispatch TriIndex::DispatchFor(const TriplePattern& raw) {
  const TriplePattern p = Normalize(raw);
  const int mask = (p.bound(TriPos::kSubject) ? 4 : 0) |
                   (p.bound(TriPos::kRel) ? 2 : 0) |
                   (p.bound(TriPos::kObject) ? 1 : 0);
  switch (mask) {
    case 0b111:
      return {TriOrdering::kSpo, 3};
    case 0b110:
      return {TriOrdering::kSpo, 2};
    case 0b100:
      return {TriOrdering::kSpo, 1};
    case 0b011:
      return {TriOrdering::kPos, 2};
    case 0b010:
      return {TriOrdering::kPos, 1};
    case 0b101:
      return {TriOrdering::kOsp, 2};
    case 0b001:
      return {TriOrdering::kOsp, 1};
    default:
      break;
  }
  // No bound position: any family answers; prefer the one that lists every
  // variable before every ignored position, so duplicate collapse stays an
  // adjacency check and bindings come out sorted.
  for (TriOrdering f :
       {TriOrdering::kSpo, TriOrdering::kPos, TriOrdering::kOsp}) {
    if (VariablesBeforeIgnored(p, f, 0)) return {f, 0};
  }
  return {TriOrdering::kSpo, 0};
}

size_t TriIndex::Scan(const TriplePattern& raw, size_t limit,
                      const std::function<void(const rdf::Triple&)>& fn) const {
  const TriplePattern p = Normalize(raw);
  const TriDispatch d = DispatchFor(raw);
  const TriPos* order = kComponentPos[Idx(d.ordering)];

  uint32_t prefix[3] = {0, 0, 0};
  for (int i = 0; i < d.bound_prefix; ++i) {
    prefix[i] = p.values[Idx(order[i])];
  }
  const auto [lo, hi] = PrefixRange(rows(d.ordering), prefix, d.bound_prefix);

  const bool ignore_s = p.slot(TriPos::kSubject) == Slot::kIgnored;
  const bool ignore_p = p.slot(TriPos::kRel) == Slot::kIgnored;
  const bool ignore_o = p.slot(TriPos::kObject) == Slot::kIgnored;
  const bool any_ignored = ignore_s || ignore_p || ignore_o;
  const bool adjacent_dedup =
      VariablesBeforeIgnored(p, d.ordering, d.bound_prefix);
  // When adjacency does not hold, the pattern has exactly one variable
  // position (one bound, one ignored, one variable — the only shape where
  // an ignored component precedes a variable in its family's order), so
  // collapsing on that single component is exact.
  int var_pos = -1;
  if (any_ignored && !adjacent_dedup) {
    for (int i = 0; i < 3; ++i) {
      if (p.slots[i] == Slot::kVariable) var_pos = i;
    }
  }
  std::unordered_set<uint32_t> seen;

  size_t emitted = 0;
  rdf::Triple last{};
  bool have_last = false;
  for (const TriRow* r = lo; r != hi && (limit == 0 || emitted < limit); ++r) {
    rdf::Triple t = TripleFor(d.ordering, *r);
    if (ignore_s) t.subject = rdf::kNullTerm;
    if (ignore_p) t.rel = rdf::kNullRel;
    if (ignore_o) t.object = rdf::kNullTerm;
    if (any_ignored) {
      if (adjacent_dedup) {
        if (have_last && t == last) continue;
      } else {
        const uint32_t comps[3] = {t.subject, static_cast<uint32_t>(t.rel),
                                   t.object};
        if (!seen.insert(comps[var_pos]).second) continue;
      }
    }
    fn(t);
    ++emitted;
    last = t;
    have_last = true;
  }
  return emitted;
}

std::vector<rdf::Triple> TriIndex::Collect(const TriplePattern& pattern,
                                           size_t limit) const {
  std::vector<rdf::Triple> out;
  Scan(pattern, limit, [&out](const rdf::Triple& t) { out.push_back(t); });
  return out;
}

uint64_t TriIndex::Count(const TriplePattern& raw) const {
  const TriplePattern p = Normalize(raw);
  const bool any_ignored = p.slots[0] == Slot::kIgnored ||
                           p.slots[1] == Slot::kIgnored ||
                           p.slots[2] == Slot::kIgnored;
  if (any_ignored) {
    return Scan(raw, 0, [](const rdf::Triple&) {});
  }
  const TriDispatch d = DispatchFor(raw);
  const TriPos* order = kComponentPos[Idx(d.ordering)];
  uint32_t prefix[3] = {0, 0, 0};
  for (int i = 0; i < d.bound_prefix; ++i) {
    prefix[i] = p.values[Idx(order[i])];
  }
  const auto [lo, hi] = PrefixRange(rows(d.ordering), prefix, d.bound_prefix);
  return static_cast<uint64_t>(hi - lo);
}

std::vector<uint32_t> TriIndex::DistinctBindings(const TriplePattern& pattern,
                                                 TriPos pos,
                                                 size_t limit) const {
  if (pattern.bound(pos)) return {};
  TriplePattern q = pattern;
  for (int i = 0; i < 3; ++i) {
    if (q.slots[i] != Slot::kBound) q.slots[i] = Slot::kIgnored;
  }
  q.slots[Idx(pos)] = Slot::kVariable;

  const TriplePattern n = Normalize(q);
  const TriDispatch d = DispatchFor(q);
  // The normalized pattern's variable may have moved to the opposite slot.
  TriPos n_pos = pos;
  for (int i = 0; i < 3; ++i) {
    if (n.slots[i] == Slot::kVariable) n_pos = static_cast<TriPos>(i);
  }
  const bool sorted = VariablesBeforeIgnored(n, d.ordering, d.bound_prefix);

  std::vector<uint32_t> out;
  Scan(q, sorted ? limit : 0, [&out, n_pos](const rdf::Triple& t) {
    const uint32_t comps[3] = {t.subject, static_cast<uint32_t>(t.rel),
                               t.object};
    out.push_back(comps[Idx(n_pos)]);
  });
  if (!sorted) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    if (limit != 0 && out.size() > limit) out.resize(limit);
  }
  return out;
}

std::vector<uint32_t> MergeJoin(const TriIndex& a_index, const TriplePattern& a,
                                TriPos a_pos, const TriIndex& b_index,
                                const TriplePattern& b, TriPos b_pos,
                                size_t limit) {
  const std::vector<uint32_t> av = a_index.DistinctBindings(a, a_pos);
  const std::vector<uint32_t> bv = b_index.DistinctBindings(b, b_pos);
  std::vector<uint32_t> out;
  auto ai = av.begin();
  auto bi = bv.begin();
  while (ai != av.end() && bi != bv.end() &&
         (limit == 0 || out.size() < limit)) {
    if (*ai < *bi) {
      ++ai;
    } else if (*bi < *ai) {
      ++bi;
    } else {
      out.push_back(*ai);
      ++ai;
      ++bi;
    }
  }
  return out;
}

}  // namespace paris::storage
