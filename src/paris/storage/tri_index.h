#ifndef PARIS_STORAGE_TRI_INDEX_H_
#define PARIS_STORAGE_TRI_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "paris/obs/hooks.h"
#include "paris/rdf/triple.h"
#include "paris/storage/column.h"

namespace paris::util {
class ThreadPool;
}  // namespace paris::util

namespace paris::storage {

class ColumnarIndex;

// One row of one TriIndex ordering. Components are stored in that
// ordering's permutation — SPO rows hold (s, p, o), POS rows (p, o, s),
// OSP rows (o, s, p) — so lexicographic (a, b, c) comparison *is* the
// family's sort order and one prefix binary search serves every family.
// `s`/`o` are global term ids; the relation component is the positive
// relation id (inverse patterns are normalized away before dispatch).
struct TriRow {
  uint32_t a;
  uint32_t b;
  uint32_t c;

  friend constexpr auto operator<=>(const TriRow&, const TriRow&) = default;
};

// The three triple positions, in canonical (subject, relation, object)
// order. Used to address pattern slots and join variables.
enum class TriPos : uint8_t { kSubject = 0, kRel = 1, kObject = 2 };

// The three sorted orderings. SPO/POS/OSP suffice to answer all 8
// bound/variable masks with a single range scan (hexastore's "TriIndex"
// subset): each bound-position subset is a prefix of exactly one ordering.
enum class TriOrdering : uint8_t { kSpo = 0, kPos = 1, kOsp = 2 };

// A triple pattern: each position is bound to a value, a variable (report
// its bindings), or ignored (match anything, collapse duplicates). The
// relation may be bound to an inverse id `-r`; the engine normalizes that
// to the equivalent positive-relation pattern by swapping the subject and
// object slots before dispatch.
struct TriplePattern {
  enum class Slot : uint8_t { kVariable = 0, kBound = 1, kIgnored = 2 };

  // Defaults to the all-variable pattern (every triple).
  TriplePattern() = default;

  TriplePattern& BindSubject(rdf::TermId s) {
    slots[0] = Slot::kBound;
    values[0] = s;
    return *this;
  }
  TriplePattern& BindRel(rdf::RelId r) {
    slots[1] = Slot::kBound;
    values[1] = static_cast<uint32_t>(r);
    return *this;
  }
  TriplePattern& BindObject(rdf::TermId o) {
    slots[2] = Slot::kBound;
    values[2] = o;
    return *this;
  }
  TriplePattern& IgnoreSubject() {
    slots[0] = Slot::kIgnored;
    return *this;
  }
  TriplePattern& IgnoreRel() {
    slots[1] = Slot::kIgnored;
    return *this;
  }
  TriplePattern& IgnoreObject() {
    slots[2] = Slot::kIgnored;
    return *this;
  }

  Slot slot(TriPos p) const { return slots[static_cast<size_t>(p)]; }
  bool bound(TriPos p) const { return slot(p) == Slot::kBound; }
  rdf::RelId rel() const { return static_cast<rdf::RelId>(values[1]); }

  // Indexed by TriPos: slot states and bound values. values[1] holds the
  // RelId bit pattern; values[0]/values[2] hold term ids.
  Slot slots[3] = {Slot::kVariable, Slot::kVariable, Slot::kVariable};
  uint32_t values[3] = {0, 0, 0};
};

// Which ordering a (normalized) pattern dispatches to and how long its
// bound prefix is. Exposed so tests can assert that every mask is answered
// by one range scan: `bound_prefix` equals the number of bound positions
// for all 8 masks — only the all-variable pattern scans a whole family.
struct TriDispatch {
  TriOrdering ordering;
  int bound_prefix;
};

// Hexastore-style triple-pattern index: the three sorted orderings packed
// as flat row columns next to the CSR/POS families of `ColumnarIndex`.
// Built from a packed index (Build), reassembled from snapshot columns
// (FromColumns — zero-copy views when the reader is memory-backed), and
// kept in sync with delta merges (MergeDelta). All read accessors are
// allocation-free apart from the result containers and safe to call from
// many threads.
class TriIndex {
 public:
  TriIndex() = default;
  TriIndex(TriIndex&&) = default;
  TriIndex& operator=(TriIndex&&) = default;
  TriIndex(const TriIndex&) = delete;
  TriIndex& operator=(const TriIndex&) = delete;

  // Derives the three orderings from a packed index's POS pairs. With a
  // non-null `pool` the three family sorts run concurrently; the result is
  // identical to a serial build. `hooks` (optional) records one "io" span.
  static TriIndex Build(const ColumnarIndex& index,
                        util::ThreadPool* pool = nullptr, obs::Hooks hooks = {});

  // Reassembles the index from raw snapshot columns, validating each family
  // against `index` (equal row counts, strict sort order, relation range,
  // and an order-independent content hash that must match the POS pairs).
  // `keep_alive` pins the mapping when the columns are zero-copy views.
  // Returns false — leaving `out` untouched — on any mismatch.
  static bool FromColumns(const ColumnarIndex& index, Column<TriRow> spo,
                          Column<TriRow> pos, Column<TriRow> osp,
                          std::shared_ptr<const void> keep_alive,
                          TriIndex* out);

  // Splices novel statements (distinct triples not yet present, positive
  // relations) into all three orderings: one backward in-place merge per
  // family, O(existing + delta). Detaches zero-copy views.
  void MergeDelta(std::vector<rdf::Triple> novel);

  // ---- Query engine ----

  // The ordering `pattern` (after inverse normalization) dispatches to.
  static TriDispatch DispatchFor(const TriplePattern& pattern);

  // Emits every match in the chosen ordering's sort order, stopping after
  // `limit` matches (0 = no limit). Ignored positions are reported as
  // `kNullTerm` / `kNullRel` and matches differing only there are emitted
  // once. Returns the number of matches emitted.
  size_t Scan(const TriplePattern& pattern, size_t limit,
              const std::function<void(const rdf::Triple&)>& fn) const;

  std::vector<rdf::Triple> Collect(const TriplePattern& pattern,
                                   size_t limit = 0) const;

  // Number of matches. O(log n) for patterns with no ignored positions
  // (the dispatch range size); otherwise a counting scan.
  uint64_t Count(const TriplePattern& pattern) const;

  // Sorted distinct bindings of free position `pos` across every match of
  // `pattern` (whose `pos` slot must not be bound); the other free
  // positions are treated as ignored. Stops after `limit` distinct values
  // (0 = no limit).
  std::vector<uint32_t> DistinctBindings(const TriplePattern& pattern,
                                         TriPos pos, size_t limit = 0) const;

  size_t num_triples() const { return spo_.size(); }

  // True when the packed rows alias an mmap'ed snapshot.
  bool zero_copy() const { return keep_alive_ != nullptr; }

  // ---- Raw columns (snapshot save, deep-equality in tests) ----

  std::span<const TriRow> spo_rows() const { return spo_.span(); }
  std::span<const TriRow> pos_rows() const { return pos_.span(); }
  std::span<const TriRow> osp_rows() const { return osp_.span(); }

 private:
  std::span<const TriRow> rows(TriOrdering o) const;

  Column<TriRow> spo_;  // (s, p, o)
  Column<TriRow> pos_;  // (p, o, s)
  Column<TriRow> osp_;  // (o, s, p)
  std::shared_ptr<const void> keep_alive_;  // mapping owner for view columns
};

// Merge-join of a two-pattern conjunction on one shared variable: the
// sorted distinct values v such that `a` with its `a_pos` slot bound to v
// matches in `a_index` and `b` with `b_pos` bound to v matches in
// `b_index`. The two patterns may address the same index (self-join) or
// two different ontologies' indexes. Stops after `limit` values (0 = no
// limit).
std::vector<uint32_t> MergeJoin(const TriIndex& a_index, const TriplePattern& a,
                                TriPos a_pos, const TriIndex& b_index,
                                const TriplePattern& b, TriPos b_pos,
                                size_t limit = 0);

}  // namespace paris::storage

#endif  // PARIS_STORAGE_TRI_INDEX_H_
