#include "paris/storage/columnar_index.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>
#include <utility>

#include "paris/util/thread_pool.h"

namespace paris::storage {

namespace {

constexpr bool FactLess(const rdf::Fact& a, const rdf::Fact& b) {
  return a.rel != b.rel ? a.rel < b.rel : a.other < b.other;
}

constexpr bool PairLess(const rdf::TermPair& a, const rdf::TermPair& b) {
  return a.first != b.first ? a.first < b.first : a.second < b.second;
}

constexpr bool EntryLess(const ColumnarIndex::Entry& a,
                         const ColumnarIndex::Entry& b) {
  if (a.rel != b.rel) return a.rel < b.rel;
  return a.other < b.other;
}

// Number of input ranges the parallel counting-sort passes split their scan
// into. Per-range histograms cost range_count × bucket_count counters, so
// the fanout is deliberately modest; below kParallelSortMinEntries the
// serial scan wins and the parallel path is skipped entirely.
size_t SortRangeCount(const util::ThreadPool* pool) {
  // A constructed-but-empty pool (ThreadPool(0) = "run inline") counts as
  // one range, like no pool at all.
  if (pool == nullptr || pool->num_threads() == 0) return 1;
  return std::min<size_t>(pool->num_threads(), 8);
}
constexpr size_t kParallelSortMinEntries = 1 << 15;

// Parallel stable counting sort: scans `total` input items in `ranges`
// fixed ranges, building one histogram per range via `count(range_begin,
// range_end, histogram)`, prefix-combines the histograms into per-range
// write cursors (range r's cursor for bucket b starts where range r-1's
// items for b end), and scatters via `scatter(range_begin, range_end,
// cursors)`. Because cursors are pre-computed from fixed range boundaries,
// every item lands exactly where the serial scan would have put it — the
// output is byte-identical, in-bucket order included — while both the
// histogram and the scatter pass run across the pool.
// `prepare(total_out)` runs once between the two passes — after the bucket
// offsets are known, before any scatter — so the caller can size the output
// array.
template <typename CountFn, typename PrepareFn, typename ScatterFn>
std::vector<uint64_t> ParallelCountingSort(util::ThreadPool* pool,
                                           size_t total, size_t num_buckets,
                                           const CountFn& count,
                                           const PrepareFn& prepare,
                                           const ScatterFn& scatter) {
  // Each extra range costs a num_buckets-sized histogram; capping the
  // fanout at total/num_buckets bounds the transient counters by ~8 bytes
  // per input item (half the entry array) even when the bucket space is as
  // large as the term dictionary.
  size_t ranges = total >= kParallelSortMinEntries ? SortRangeCount(pool) : 1;
  if (num_buckets > 0) {
    ranges = std::min(ranges, std::max<size_t>(1, total / num_buckets));
  }
  const size_t chunk = (total + ranges - 1) / ranges;
  const auto range_bounds = [&](size_t r) {
    const size_t begin = r * chunk;
    return std::pair<size_t, size_t>{std::min(begin, total),
                                     std::min(begin + chunk, total)};
  };

  // Per-range histograms (bucket counts), then offsets via prefix sums.
  std::vector<std::vector<uint64_t>> counts(ranges);
  util::ForRange(pool, ranges, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      counts[r].assign(num_buckets, 0);
      const auto [lo, hi] = range_bounds(r);
      count(lo, hi, counts[r].data());
    }
  });
  std::vector<uint64_t> offsets(num_buckets + 1, 0);
  for (size_t r = 0; r < ranges; ++r) {
    for (size_t b = 0; b < num_buckets; ++b) {
      offsets[b + 1] += counts[r][b];
    }
  }
  for (size_t b = 1; b <= num_buckets; ++b) offsets[b] += offsets[b - 1];
  prepare(offsets[num_buckets]);

  // Rewrite each range's counts into its starting cursors: bucket start +
  // everything earlier ranges contribute to that bucket.
  for (size_t b = 0; b < num_buckets; ++b) {
    uint64_t cursor = offsets[b];
    for (size_t r = 0; r < ranges; ++r) {
      const uint64_t n = counts[r][b];
      counts[r][b] = cursor;
      cursor += n;
    }
  }
  util::ForRange(pool, ranges, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      const auto [lo, hi] = range_bounds(r);
      scatter(lo, hi, counts[r].data());
    }
  });
  return offsets;
}

}  // namespace

ColumnarIndex ColumnarIndex::Build(std::span<const rdf::TermId> terms,
                                   size_t num_relations,
                                   std::vector<Entry>&& entries,
                                   util::ThreadPool* pool, obs::Hooks hooks) {
  ColumnarIndex index;
  const size_t num_terms = terms.size();
  // Build runs on the calling thread (the inner loops fan across the pool
  // but block here), so every sub-phase span lands on the main slot.
  const size_t obs_slot = hooks.main_slot();
  obs::Span build_span(hooks.trace, obs_slot, "io", "index.build");

  // Bucket the entries by owner with a counting sort (owners are dense local
  // indexes), then sort each owner's slice by (rel, other) — sharded across
  // the pool. The concatenation equals one global (owner, rel, other) sort,
  // so the packed result is independent of the thread count. Histogram and
  // scatter both fan across the pool (per-range counts, prefix-combined
  // cursors); the stable per-range cursors reproduce the serial scatter's
  // in-bucket order exactly.
  std::vector<Entry> sorted;
  obs::Span bucket_span(hooks.trace, obs_slot, "io", "index.bucket_by_owner");
  const std::vector<uint64_t> bucket_offsets = ParallelCountingSort(
      pool, entries.size(), num_terms,
      [&](size_t lo, size_t hi, uint64_t* histogram) {
        for (size_t i = lo; i < hi; ++i) {
          assert(entries[i].owner < num_terms);
          ++histogram[entries[i].owner];
        }
      },
      [&](uint64_t total) { sorted.resize(total); },
      [&](size_t lo, size_t hi, uint64_t* cursors) {
        for (size_t i = lo; i < hi; ++i) {
          sorted[cursors[entries[i].owner]++] = entries[i];
        }
      });
  entries = {};
  bucket_span.End();

  // Per-term slice sort + dedup (a store is a *set* of statements;
  // duplicates always share an owner, so in-slice dedup is global dedup).
  obs::Span dedup_span(hooks.trace, obs_slot, "io", "index.sort_dedup");
  std::vector<uint64_t> kept(num_terms, 0);
  util::ForRange(pool, num_terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      auto lo = sorted.begin() + static_cast<ptrdiff_t>(bucket_offsets[t]);
      auto hi = sorted.begin() + static_cast<ptrdiff_t>(bucket_offsets[t + 1]);
      std::sort(lo, hi, EntryLess);
      kept[t] = static_cast<uint64_t>(std::unique(lo, hi) - lo);
    }
  });

  // SPO offsets: prefix sums over the deduplicated slice lengths.
  std::vector<uint64_t> offsets(num_terms + 1, 0);
  for (size_t t = 0; t < num_terms; ++t) {
    offsets[t + 1] = offsets[t] + kept[t];
  }
  const size_t num_facts = offsets[num_terms];
  dedup_span.End();

  // Fill both adjacency columns, sharded by term.
  obs::Span fill_span(hooks.trace, obs_slot, "io", "index.pack_columns");
  std::vector<rdf::Fact> facts(num_facts);
  std::vector<rdf::TermId> objects(num_facts);
  util::ForRange(pool, num_terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const Entry* src = sorted.data() + bucket_offsets[t];
      const size_t dst = offsets[t];
      for (uint64_t i = 0; i < kept[t]; ++i) {
        facts[dst + i] = rdf::Fact{src[i].rel, src[i].other};
        objects[dst + i] = src[i].other;
      }
    }
  });

  fill_span.End();

  // POS: bucket the base-direction statements by relation (counting-sort
  // histogram + scatter over fixed term ranges, both across the pool; the
  // returned offsets equal the serial pass's `pair_offsets` exactly), then
  // sort each relation's range by (first, second) — sharded by relation.
  obs::Span pairs_span(hooks.trace, obs_slot, "io", "index.pack_pairs");
  std::vector<rdf::TermPair> pairs;
  std::vector<uint64_t> pair_offsets = ParallelCountingSort(
      pool, num_terms, num_relations,
      [&](size_t lo, size_t hi, uint64_t* histogram) {
        for (size_t t = lo; t < hi; ++t) {
          const Entry* src = sorted.data() + bucket_offsets[t];
          for (uint64_t i = 0; i < kept[t]; ++i) {
            if (src[i].rel > 0) {
              assert(static_cast<size_t>(src[i].rel) <= num_relations);
              ++histogram[static_cast<size_t>(src[i].rel) - 1];
            }
          }
        }
      },
      [&](uint64_t total) { pairs.resize(total); },
      [&](size_t lo, size_t hi, uint64_t* cursors) {
        for (size_t t = lo; t < hi; ++t) {
          const Entry* src = sorted.data() + bucket_offsets[t];
          for (uint64_t i = 0; i < kept[t]; ++i) {
            if (src[i].rel > 0) {
              pairs[cursors[static_cast<size_t>(src[i].rel) - 1]++] =
                  rdf::TermPair{terms[src[i].owner], src[i].other};
            }
          }
        }
      });
  util::ForRange(pool, num_relations, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      std::sort(pairs.begin() + static_cast<ptrdiff_t>(pair_offsets[r]),
                pairs.begin() + static_cast<ptrdiff_t>(pair_offsets[r + 1]),
                PairLess);
    }
  });
  pairs_span.End();

  index.offsets_ = Column<uint64_t>::FromOwned(std::move(offsets));
  index.facts_ = Column<rdf::Fact>::FromOwned(std::move(facts));
  index.objects_ = Column<rdf::TermId>::FromOwned(std::move(objects));
  index.pair_offsets_ = Column<uint64_t>::FromOwned(std::move(pair_offsets));
  index.pairs_ = Column<rdf::TermPair>::FromOwned(std::move(pairs));
  index.RebuildDirectory(pool);
  return index;
}

std::vector<ColumnarIndex::Entry> ColumnarIndex::MergeDelta(
    std::span<const rdf::TermId> terms, size_t num_relations,
    std::vector<Entry>&& entries, util::ThreadPool* pool, obs::Hooks hooks) {
  const size_t old_terms = num_terms();
  const size_t old_rels = this->num_relations();
  const size_t new_terms = terms.size();
  assert(new_terms >= old_terms);
  assert(num_relations >= old_rels);
  const size_t obs_slot = hooks.main_slot();
  obs::Span merge_span(hooks.trace, obs_slot, "io", "index.merge_delta");

  // Sort + dedup the delta, then drop entries the index already holds — the
  // survivors are disjoint from every existing slice, so the per-term merges
  // below never have to dedup across the boundary.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.owner != b.owner) return a.owner < b.owner;
              return EntryLess(a, b);
            });
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  std::vector<Entry> kept;
  kept.reserve(entries.size());
  for (const Entry& e : entries) {
    assert(e.owner < new_terms);
    assert(static_cast<size_t>(rdf::BaseRel(e.rel)) <= num_relations);
    if (e.owner < old_terms) {
      const auto slice = FactsAbout(e.owner);
      if (std::binary_search(slice.begin(), slice.end(),
                             rdf::Fact{e.rel, e.other}, FactLess)) {
        continue;
      }
    }
    kept.push_back(e);
  }
  entries = {};

  // Per-term delta ranges (kept is sorted by owner) and merged SPO offsets.
  std::vector<uint64_t> delta_start(new_terms + 1, 0);
  for (const Entry& e : kept) ++delta_start[e.owner + 1];
  for (size_t t = 0; t < new_terms; ++t) delta_start[t + 1] += delta_start[t];
  std::vector<uint64_t> new_offsets(new_terms + 1, 0);
  for (size_t t = 0; t < new_terms; ++t) {
    const uint64_t old_len = t < old_terms ? offsets_[t + 1] - offsets_[t] : 0;
    new_offsets[t + 1] =
        new_offsets[t] + old_len + (delta_start[t + 1] - delta_start[t]);
  }

  // Merge the adjacency columns term by term: untouched slices are bulk
  // copies, touched slices a two-pointer merge (both sides sorted by
  // (rel, other), no duplicates across them).
  std::vector<rdf::Fact> new_facts(new_offsets[new_terms]);
  std::vector<rdf::TermId> new_objects(new_offsets[new_terms]);
  util::ForRange(pool, new_terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const rdf::Fact* old_lo =
          t < old_terms ? facts_.data() + offsets_[t] : nullptr;
      const rdf::Fact* old_hi =
          t < old_terms ? facts_.data() + offsets_[t + 1] : nullptr;
      const Entry* del_lo = kept.data() + delta_start[t];
      const Entry* del_hi = kept.data() + delta_start[t + 1];
      size_t dst = new_offsets[t];
      while (old_lo != old_hi || del_lo != del_hi) {
        rdf::Fact f;
        if (del_lo == del_hi ||
            (old_lo != old_hi &&
             FactLess(*old_lo, rdf::Fact{del_lo->rel, del_lo->other}))) {
          f = *old_lo++;
        } else {
          f = rdf::Fact{del_lo->rel, del_lo->other};
          ++del_lo;
        }
        new_facts[dst] = f;
        new_objects[dst] = f.other;
        ++dst;
      }
    }
  });

  // Merge POS: bucket the novel base-direction statements by relation, sort
  // each bucket by (first, second), then splice each relation's range.
  std::vector<std::pair<rdf::RelId, rdf::TermPair>> delta_pairs;
  for (const Entry& e : kept) {
    if (e.rel > 0) {
      delta_pairs.push_back({e.rel, rdf::TermPair{terms[e.owner], e.other}});
    }
  }
  std::sort(delta_pairs.begin(), delta_pairs.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return PairLess(a.second, b.second);
            });
  std::vector<uint64_t> pair_start(num_relations + 1, 0);
  for (const auto& [rel, pair] : delta_pairs) {
    ++pair_start[static_cast<size_t>(rel)];
  }
  for (size_t r = 0; r < num_relations; ++r) pair_start[r + 1] += pair_start[r];
  std::vector<uint64_t> new_pair_offsets(num_relations + 1, 0);
  for (size_t r = 0; r < num_relations; ++r) {
    const uint64_t old_len =
        r < old_rels ? pair_offsets_[r + 1] - pair_offsets_[r] : 0;
    new_pair_offsets[r + 1] =
        new_pair_offsets[r] + old_len + (pair_start[r + 1] - pair_start[r]);
  }
  std::vector<rdf::TermPair> new_pairs(new_pair_offsets[num_relations]);
  util::ForRange(pool, num_relations, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      const rdf::TermPair* old_lo =
          r < old_rels ? pairs_.data() + pair_offsets_[r] : nullptr;
      const rdf::TermPair* old_hi =
          r < old_rels ? pairs_.data() + pair_offsets_[r + 1] : nullptr;
      const auto* del_lo = delta_pairs.data() + pair_start[r];
      const auto* del_hi = delta_pairs.data() + pair_start[r + 1];
      size_t dst = new_pair_offsets[r];
      while (old_lo != old_hi || del_lo != del_hi) {
        if (del_lo == del_hi ||
            (old_lo != old_hi && PairLess(*old_lo, del_lo->second))) {
          new_pairs[dst++] = *old_lo++;
        } else {
          new_pairs[dst++] = (del_lo++)->second;
        }
      }
    }
  });

  offsets_ = Column<uint64_t>::FromOwned(std::move(new_offsets));
  facts_ = Column<rdf::Fact>::FromOwned(std::move(new_facts));
  objects_ = Column<rdf::TermId>::FromOwned(std::move(new_objects));
  pair_offsets_ = Column<uint64_t>::FromOwned(std::move(new_pair_offsets));
  pairs_ = Column<rdf::TermPair>::FromOwned(std::move(new_pairs));
  keep_alive_.reset();
  RebuildDirectory(pool);
  return kept;
}

bool ColumnarIndex::Validate(std::span<const uint64_t> offsets,
                             std::span<const rdf::Fact> facts,
                             std::span<const uint64_t> pair_offsets,
                             std::span<const rdf::TermPair> pairs) {
  if (offsets.empty() || pair_offsets.empty()) return false;
  if (offsets.front() != 0 || offsets.back() != facts.size()) return false;
  if (pair_offsets.front() != 0 || pair_offsets.back() != pairs.size()) {
    return false;
  }
  if (!std::is_sorted(offsets.begin(), offsets.end())) return false;
  if (!std::is_sorted(pair_offsets.begin(), pair_offsets.end())) return false;
  // Each term's adjacency slice must be strictly increasing by (rel, other);
  // a violation means the bytes don't describe a valid index.
  for (size_t t = 0; t + 1 < offsets.size(); ++t) {
    for (uint64_t i = offsets[t] + 1; i < offsets[t + 1]; ++i) {
      if (!FactLess(facts[i - 1], facts[i])) return false;
    }
  }
  for (const rdf::Fact& f : facts) {
    // Reject INT32_MIN before BaseRel: negating it is signed overflow.
    if (f.rel == rdf::kNullRel ||
        f.rel == std::numeric_limits<rdf::RelId>::min() ||
        static_cast<size_t>(rdf::BaseRel(f.rel)) >= pair_offsets.size()) {
      return false;
    }
  }
  for (size_t r = 1; r < pair_offsets.size(); ++r) {
    for (uint64_t i = pair_offsets[r - 1] + 1; i < pair_offsets[r]; ++i) {
      if (!PairLess(pairs[i - 1], pairs[i])) return false;
    }
  }
  return true;
}

void ColumnarIndex::RebuildObjectColumn() {
  std::vector<rdf::TermId> objects(facts_.size());
  for (size_t i = 0; i < facts_.size(); ++i) {
    objects[i] = facts_[i].other;
  }
  objects_ = Column<rdf::TermId>::FromOwned(std::move(objects));
}

void ColumnarIndex::RebuildDirectory(util::ThreadPool* pool) {
  const size_t terms = num_terms();
  std::vector<uint64_t> dir_offsets(terms + 1, 0);
  util::ForRange(pool, terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      uint64_t runs = 0;
      rdf::RelId prev = rdf::kNullRel;
      for (uint64_t i = offsets_[t]; i < offsets_[t + 1]; ++i) {
        if (runs == 0 || facts_[i].rel != prev) {
          ++runs;
          prev = facts_[i].rel;
        }
      }
      dir_offsets[t + 1] = runs;
    }
  });
  for (size_t t = 0; t < terms; ++t) dir_offsets[t + 1] += dir_offsets[t];
  std::vector<DirEntry> dir(dir_offsets[terms]);
  util::ForRange(pool, terms, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const uint64_t base = offsets_[t];
      assert(offsets_[t + 1] - base <=
             std::numeric_limits<uint32_t>::max());
      uint64_t dst = dir_offsets[t];
      rdf::RelId prev = rdf::kNullRel;
      for (uint64_t i = base; i < offsets_[t + 1]; ++i) {
        if (dst == dir_offsets[t] || facts_[i].rel != prev) {
          dir[dst++] = DirEntry{facts_[i].rel, static_cast<uint32_t>(i - base)};
          prev = facts_[i].rel;
        }
      }
    }
  });
  dir_offsets_ = Column<uint64_t>::FromOwned(std::move(dir_offsets));
  dir_ = Column<DirEntry>::FromOwned(std::move(dir));
}

bool ColumnarIndex::ValidateDirectory(std::span<const uint64_t> offsets,
                                      std::span<const rdf::Fact> facts,
                                      std::span<const uint64_t> dir_offsets,
                                      std::span<const DirEntry> dir) {
  if (dir_offsets.size() != offsets.size()) return false;
  if (dir_offsets.front() != 0 || dir_offsets.back() != dir.size()) {
    return false;
  }
  // Exact check: walking each term's facts must reproduce the directory
  // rows one-for-one (one row per (rel, other)-run start, relative begin
  // offsets). O(num_facts), like the other load-time validations.
  for (size_t t = 0; t + 1 < offsets.size(); ++t) {
    const uint64_t base = offsets[t];
    if (offsets[t + 1] - base > std::numeric_limits<uint32_t>::max()) {
      return false;
    }
    uint64_t next = dir_offsets[t];
    rdf::RelId prev = rdf::kNullRel;
    for (uint64_t i = base; i < offsets[t + 1]; ++i) {
      if (next == dir_offsets[t] || facts[i].rel != prev) {
        if (next >= dir_offsets[t + 1]) return false;
        const DirEntry want{facts[i].rel, static_cast<uint32_t>(i - base)};
        if (!(dir[next] == want)) return false;
        prev = facts[i].rel;
        ++next;
      }
    }
    if (next != dir_offsets[t + 1]) return false;
  }
  return true;
}

bool ColumnarIndex::FromColumns(std::vector<uint64_t> offsets,
                                std::vector<rdf::Fact> facts,
                                std::vector<uint64_t> pair_offsets,
                                std::vector<rdf::TermPair> pairs,
                                ColumnarIndex* out) {
  return FromColumns(Column<uint64_t>::FromOwned(std::move(offsets)),
                     Column<rdf::Fact>::FromOwned(std::move(facts)),
                     Column<uint64_t>::FromOwned(std::move(pair_offsets)),
                     Column<rdf::TermPair>::FromOwned(std::move(pairs)),
                     /*keep_alive=*/nullptr, out);
}

bool ColumnarIndex::FromColumns(Column<uint64_t> offsets,
                                Column<rdf::Fact> facts,
                                Column<uint64_t> pair_offsets,
                                Column<rdf::TermPair> pairs,
                                std::shared_ptr<const void> keep_alive,
                                ColumnarIndex* out) {
  if (!Validate(offsets.span(), facts.span(), pair_offsets.span(),
                pairs.span())) {
    return false;
  }
  out->offsets_ = std::move(offsets);
  out->facts_ = std::move(facts);
  out->pair_offsets_ = std::move(pair_offsets);
  out->pairs_ = std::move(pairs);
  out->keep_alive_ = std::move(keep_alive);
  out->RebuildObjectColumn();
  out->RebuildDirectory();
  return true;
}

bool ColumnarIndex::FromColumns(Column<uint64_t> offsets,
                                Column<rdf::Fact> facts,
                                Column<uint64_t> pair_offsets,
                                Column<rdf::TermPair> pairs,
                                Column<uint64_t> dir_offsets,
                                Column<DirEntry> dir,
                                std::shared_ptr<const void> keep_alive,
                                ColumnarIndex* out) {
  if (!Validate(offsets.span(), facts.span(), pair_offsets.span(),
                pairs.span())) {
    return false;
  }
  if (!ValidateDirectory(offsets.span(), facts.span(), dir_offsets.span(),
                         dir.span())) {
    return false;
  }
  out->offsets_ = std::move(offsets);
  out->facts_ = std::move(facts);
  out->pair_offsets_ = std::move(pair_offsets);
  out->pairs_ = std::move(pairs);
  out->dir_offsets_ = std::move(dir_offsets);
  out->dir_ = std::move(dir);
  out->keep_alive_ = std::move(keep_alive);
  out->RebuildObjectColumn();
  return true;
}

std::span<const rdf::Fact> ColumnarIndex::FactsWith(uint32_t local,
                                                    rdf::RelId rel) const {
  // Binary search over the term's compact relation-directory rows instead
  // of its full fact slice: O(log distinct-relations) 8-byte probes.
  const uint64_t slice_begin = offsets_[local];
  const DirEntry* lo = dir_.data() + dir_offsets_[local];
  const DirEntry* hi = dir_.data() + dir_offsets_[local + 1];
  const DirEntry* it = std::lower_bound(
      lo, hi, rel,
      [](const DirEntry& e, rdf::RelId r) { return e.rel < r; });
  if (it == hi || it->rel != rel) return {};
  const uint64_t begin = slice_begin + it->begin;
  const uint64_t end =
      it + 1 == hi ? offsets_[local + 1] : slice_begin + (it + 1)->begin;
  return {facts_.data() + begin, facts_.data() + end};
}

std::span<const rdf::TermId> ColumnarIndex::ObjectsOf(uint32_t local,
                                                      rdf::RelId rel) const {
  const auto with_rel = FactsWith(local, rel);
  if (with_rel.empty()) return {};
  // Map the fact slice onto the parallel object column.
  const size_t begin = static_cast<size_t>(with_rel.data() - facts_.data());
  return {objects_.data() + begin, with_rel.size()};
}

bool ColumnarIndex::Contains(uint32_t local, rdf::RelId rel,
                             rdf::TermId other) const {
  const auto objects = ObjectsOf(local, rel);
  return std::binary_search(objects.begin(), objects.end(), other);
}

}  // namespace paris::storage
