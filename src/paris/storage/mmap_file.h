#ifndef PARIS_STORAGE_MMAP_FILE_H_
#define PARIS_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "paris/util/status.h"

namespace paris::storage {

// A whole file mapped read-only into memory. Used by the zero-copy snapshot
// load path: the packed index columns become spans into the mapping instead
// of heap copies. The mapping lives until the MappedFile is destroyed;
// structures that alias it keep it alive through a shared_ptr.
//
// On platforms without mmap (or on any open/map failure) `Open` returns an
// error and callers fall back to the streaming reader.
class MappedFile {
 public:
  // Maps `path` read-only. Fails on open/stat/map errors and on empty files
  // (an empty snapshot is invalid anyway, and mmap of length 0 is UB-ish).
  static util::StatusOr<std::shared_ptr<MappedFile>> Open(
      const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }

 private:
  MappedFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace paris::storage

#endif  // PARIS_STORAGE_MMAP_FILE_H_
