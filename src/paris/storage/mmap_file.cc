#include "paris/storage/mmap_file.h"

#if defined(__unix__) || defined(__APPLE__)
#define PARIS_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

#include "paris/util/fault_injection.h"
#include "paris/util/fs.h"

namespace paris::storage {

#if defined(PARIS_HAS_MMAP)

util::StatusOr<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  const util::FaultAction open_fault =
      util::CheckFaultRetryingTransient("mmap.open");
  const int fd = open_fault.kind == util::FaultKind::kErrno
                     ? (errno = open_fault.error_number, -1)
                     : ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::NotFoundError("cannot open " + path + ": " +
                               std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return util::InternalError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return util::InvalidArgumentError("empty file: " + path);
  }
  const util::FaultAction map_fault =
      util::CheckFaultRetryingTransient("mmap.map");
  void* data = map_fault.kind == util::FaultKind::kErrno
                   ? (errno = map_fault.error_number, MAP_FAILED)
                   : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor can go.
  ::close(fd);
  if (data == MAP_FAILED) {
    return util::InternalError("mmap failed for " + path + ": " +
                               std::strerror(errno));
  }
  return std::shared_ptr<MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

#else  // !PARIS_HAS_MMAP

util::StatusOr<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  (void)path;
  return util::UnimplementedError("mmap is not available on this platform");
}

MappedFile::~MappedFile() = default;

#endif

}  // namespace paris::storage
