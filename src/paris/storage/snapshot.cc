#include "paris/storage/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <utility>

#include "paris/storage/mmap_file.h"
#include "paris/util/fault_injection.h"
#include "paris/util/fs.h"

namespace paris::storage {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t HashBytes(uint64_t h, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t FnvHash(const void* data, size_t size) {
  return HashBytes(14695981039346656037ull, data, size);
}

// ---------------------------------------------------------------------------
// SnapshotWriter
// ---------------------------------------------------------------------------

void SnapshotWriter::WriteBytes(const void* data, size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  checksum_ = HashBytes(checksum_, data, size);
  offset_ += size;
}

void SnapshotWriter::AlignTo8() {
  static constexpr char kZeros[8] = {};
  const size_t pad = (8 - offset_ % 8) % 8;
  if (pad != 0) WriteBytes(kZeros, pad);
}

void SnapshotWriter::WriteU8(uint8_t v) { WriteBytes(&v, 1); }

void SnapshotWriter::WriteU32(uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  WriteBytes(b, 4);
}

void SnapshotWriter::WriteU64(uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  WriteBytes(b, 8);
}

void SnapshotWriter::WriteDouble(double v) {
  WriteU64(std::bit_cast<uint64_t>(v));
}

void SnapshotWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

bool SnapshotWriter::ok() const { return static_cast<bool>(out_); }

// ---------------------------------------------------------------------------
// SnapshotReader
// ---------------------------------------------------------------------------

bool SnapshotReader::ReadBytes(void* data, size_t size) {
  if (failed_) return false;
  if (memory_backed()) {
    if (size > size_ - pos_) {
      failed_ = true;
      std::memset(data, 0, size);
      return false;
    }
    // No hashing: the memory-backed caller verified the whole-file checksum
    // before constructing the reader.
    std::memcpy(data, data_ + pos_, size);
    pos_ += size;
    return true;
  }
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<size_t>(in_->gcount()) != size) {
    failed_ = true;
    std::memset(data, 0, size);
    return false;
  }
  checksum_ = HashBytes(checksum_, data, size);
  pos_ += size;
  return true;
}

void SnapshotReader::SkipAlignmentPadding() {
  const size_t pad = (8 - pos_ % 8) % 8;
  if (pad == 0) return;
  unsigned char scratch[8];
  ReadBytes(scratch, pad);
}

uint8_t SnapshotReader::ReadU8() {
  uint8_t v = 0;
  ReadBytes(&v, 1);
  return v;
}

uint32_t SnapshotReader::ReadU32() {
  unsigned char b[4] = {};
  ReadBytes(b, 4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return v;
}

uint64_t SnapshotReader::ReadU64() {
  unsigned char b[8] = {};
  ReadBytes(b, 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

double SnapshotReader::ReadDouble() {
  return std::bit_cast<double>(ReadU64());
}

std::string SnapshotReader::ReadString(uint64_t max_size) {
  const uint64_t n = ReadU64();
  if (n > max_size) {
    failed_ = true;
    return {};
  }
  std::string s;
  constexpr uint64_t kChunk = 1 << 16;
  for (uint64_t done = 0; done < n;) {
    const uint64_t take = std::min(kChunk, n - done);
    const size_t old_size = s.size();
    s.resize(old_size + take);
    if (!ReadBytes(s.data() + old_size, take)) return {};
    done += take;
  }
  return s;
}

uint64_t SnapshotReader::ReadChecksumTrailer() {
  // Streaming mode only: the mmap path verifies the whole-file trailer with
  // FnvHash before constructing its reader.
  if (failed_ || memory_backed()) {
    failed_ = true;
    return 0;
  }
  unsigned char b[8] = {};
  in_->read(reinterpret_cast<char*>(b), 8);
  if (in_->gcount() != 8) {
    failed_ = true;
    return 0;
  }
  pos_ += 8;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

void WriteSnapshotHeader(SnapshotWriter& writer, std::ostream& raw,
                         uint32_t version) {
  raw.write(kSnapshotMagic, sizeof(kSnapshotMagic));  // excluded from hash
  writer.WriteU32(version);
}

namespace {

using SectionLoader =
    std::function<util::Status(SnapshotReader&, uint32_t file_version)>;

util::Status LoadSnapshotFileFromStream(const std::string& path,
                                        const char (&magic)[8],
                                        uint32_t min_version,
                                        uint32_t max_version, const char* kind,
                                        const SectionLoader& load_sections) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::NotFoundError("cannot open " + std::string(kind) + " " +
                               path);
  }
  char file_magic[8] = {};
  in.read(file_magic, sizeof(file_magic));
  if (in.gcount() != sizeof(file_magic) ||
      std::memcmp(file_magic, magic, sizeof(file_magic)) != 0) {
    return util::InvalidArgumentError("not a PARIS " + std::string(kind) +
                                      " (bad magic): " + path);
  }
  SnapshotReader reader(in);
  const uint32_t file_version = reader.ReadU32();
  if (!reader.ok()) {
    return util::DataLossError("truncated " + std::string(kind) + " header");
  }
  if (file_version < min_version || file_version > max_version) {
    return util::InvalidArgumentError(
        "unsupported " + std::string(kind) + " version " +
        std::to_string(file_version) + ": " + path);
  }
  util::Status status = load_sections(reader, file_version);
  if (!status.ok()) {
    // The streaming reader only sees the checksum trailer after the
    // sections, so a flipped byte inside them can surface as a section-level
    // FAILED_PRECONDITION (e.g. a garbled run-key field reading as "a
    // different config") instead of as corruption. Such verdicts are only
    // trustworthy over an intact file: drain the remainder, extend the
    // running hash, and report a trailer mismatch as corruption instead.
    if (status.code() == util::StatusCode::kFailedPrecondition &&
        reader.ok()) {
      // Chunked drain with an 8-byte rolling tail (the candidate trailer),
      // hashing everything before it — O(1) memory however large the file.
      uint64_t computed = reader.checksum();
      char tail[sizeof(uint64_t)];
      size_t tail_size = 0;
      char chunk[1 << 16];
      while (in) {
        in.read(chunk, sizeof(chunk));
        const size_t got = static_cast<size_t>(in.gcount());
        if (got == 0) break;
        if (tail_size + got <= sizeof(tail)) {
          std::memcpy(tail + tail_size, chunk, got);
          tail_size += got;
          continue;
        }
        const size_t hashable = tail_size + got - sizeof(tail);
        const size_t from_tail = std::min(tail_size, hashable);
        computed = HashBytes(computed, tail, from_tail);
        computed = HashBytes(computed, chunk, hashable - from_tail);
        char next_tail[sizeof(tail)];
        size_t n = 0;
        for (size_t i = from_tail; i < tail_size; ++i) {
          next_tail[n++] = tail[i];
        }
        for (size_t i = hashable - from_tail; i < got; ++i) {
          next_tail[n++] = chunk[i];
        }
        std::memcpy(tail, next_tail, n);
        tail_size = n;
      }
      if (tail_size < sizeof(tail)) {
        return util::DataLossError("corrupt " + std::string(kind) +
                                   " (checksum mismatch): " + path);
      }
      uint64_t stored = 0;
      for (size_t i = 0; i < sizeof(tail); ++i) {
        stored |= static_cast<uint64_t>(static_cast<unsigned char>(tail[i]))
                  << (8 * i);
      }
      if (computed != stored) {
        return util::DataLossError("corrupt " + std::string(kind) +
                                   " (checksum mismatch): " + path);
      }
    }
    return status;
  }
  const uint64_t computed = reader.checksum();
  const uint64_t stored = reader.ReadChecksumTrailer();
  if (!reader.ok() || computed != stored) {
    return util::DataLossError("corrupt " + std::string(kind) +
                               " (checksum mismatch): " + path);
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return util::DataLossError("corrupt " + std::string(kind) +
                               " (trailing bytes): " + path);
  }
  return util::OkStatus();
}

util::Status LoadSnapshotFileFromMapping(std::shared_ptr<MappedFile> mapping,
                                         const std::string& path,
                                         const char (&magic)[8],
                                         uint32_t min_version,
                                         uint32_t max_version, const char* kind,
                                         const SectionLoader& load_sections) {
  const std::span<const std::byte> bytes = mapping->bytes();
  constexpr size_t kMagicSize = 8;
  if (bytes.size() < kMagicSize ||
      std::memcmp(bytes.data(), magic, kMagicSize) != 0) {
    return util::InvalidArgumentError("not a PARIS " + std::string(kind) +
                                      " (bad magic): " + path);
  }
  if (bytes.size() < kMagicSize + sizeof(uint32_t) + sizeof(uint64_t)) {
    return util::DataLossError("truncated " + std::string(kind) + ": " + path);
  }

  // Checksum-before-map policy: verify the trailer over the whole mapping
  // before any structure adopts a view into it. This touches every byte
  // once (like the streaming reader) but nothing is copied.
  const size_t body_size = bytes.size() - kMagicSize - sizeof(uint64_t);
  const uint64_t computed = FnvHash(bytes.data() + kMagicSize, body_size);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (computed != stored) {
    return util::DataLossError("corrupt " + std::string(kind) +
                               " (checksum mismatch): " + path);
  }

  SnapshotReader reader(bytes);
  reader.set_view_owner(std::move(mapping));
  const uint32_t file_version = reader.ReadU32();
  if (!reader.ok() || file_version < min_version ||
      file_version > max_version) {
    return util::InvalidArgumentError(
        "unsupported " + std::string(kind) + " version " +
        std::to_string(file_version) + ": " + path);
  }
  util::Status status = load_sections(reader, file_version);
  if (!status.ok()) return status;
  if (reader.position() != bytes.size() - sizeof(uint64_t)) {
    return util::DataLossError("corrupt " + std::string(kind) +
                               " (trailing bytes): " + path);
  }
  return util::OkStatus();
}

}  // namespace

util::Status LoadSnapshotFile(
    const std::string& path, SnapshotLoadMode mode, const char (&magic)[8],
    uint32_t min_version, uint32_t max_version, const char* kind,
    const std::function<util::Status(SnapshotReader&, uint32_t file_version)>&
        load_sections) {
  const util::FaultAction fault =
      util::CheckFaultRetryingTransient("snapshot.read");
  if (fault.kind == util::FaultKind::kErrno) {
    return util::InternalError("read failed for '" + path +
                               "': " + std::strerror(fault.error_number));
  }
  if (mode == SnapshotLoadMode::kStream) {
    return LoadSnapshotFileFromStream(path, magic, min_version, max_version,
                                      kind, load_sections);
  }
  auto mapping = MappedFile::Open(path);
  if (!mapping.ok()) {
    // Only a map failure falls back; content errors never do.
    if (mode == SnapshotLoadMode::kMmap) return mapping.status();
    return LoadSnapshotFileFromStream(path, magic, min_version, max_version,
                                      kind, load_sections);
  }
  return LoadSnapshotFileFromMapping(std::move(mapping).value(), path, magic,
                                     min_version, max_version, kind,
                                     load_sections);
}

// ---------------------------------------------------------------------------
// Term pool
// ---------------------------------------------------------------------------

void SaveTermPool(const rdf::TermPool& pool, SnapshotWriter& writer) {
  writer.WriteU64(pool.size());
  for (rdf::TermId id = 0; id < pool.size(); ++id) {
    writer.WriteU8(static_cast<uint8_t>(pool.kind(id)));
    writer.WriteString(pool.lexical(id));
  }
}

util::Status LoadTermPool(SnapshotReader& reader, rdf::TermPool* pool) {
  if (pool->size() != 0) {
    return util::FailedPreconditionError(
        "snapshot must be loaded into an empty term pool");
  }
  const uint64_t count = reader.ReadU64();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    const uint8_t kind = reader.ReadU8();
    if (kind > static_cast<uint8_t>(rdf::TermKind::kLiteral)) {
      reader.MarkFailed();
      break;
    }
    const std::string lexical = reader.ReadString();
    if (!reader.ok()) break;
    const rdf::TermId id =
        pool->Intern(lexical, static_cast<rdf::TermKind>(kind));
    if (id != i) {
      // A duplicate (lexical, kind) row — the bytes are corrupt.
      reader.MarkFailed();
      break;
    }
  }
  if (!reader.ok()) {
    return util::DataLossError("corrupt term pool section");
  }
  return util::OkStatus();
}

}  // namespace paris::storage
