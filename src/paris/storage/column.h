#ifndef PARIS_STORAGE_COLUMN_H_
#define PARIS_STORAGE_COLUMN_H_

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace paris::storage {

// One packed column of the storage engine: either an owned vector (built in
// memory or streamed from a snapshot) or a read-only view into externally
// owned bytes (an mmap'ed snapshot — the mapping's lifetime is managed by
// the structure holding the column, see ColumnarIndex). Either way, readers
// see a contiguous immutable array.
template <typename T>
class Column {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Column() = default;

  static Column FromOwned(std::vector<T> values) {
    Column c;
    c.owned_ = std::move(values);
    c.view_ = c.owned_;
    return c;
  }

  // `values` must stay valid for the column's lifetime.
  static Column FromView(std::span<const T> values) {
    Column c;
    c.view_ = values;
    return c;
  }

  Column(Column&& other) noexcept { *this = std::move(other); }
  Column& operator=(Column&& other) noexcept {
    if (this == &other) return *this;
    const bool owned = !other.owned_.empty();
    owned_ = std::move(other.owned_);
    view_ = owned ? std::span<const T>(owned_) : other.view_;
    other.owned_.clear();
    other.view_ = {};
    return *this;
  }
  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  std::span<const T> span() const { return view_; }
  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }
  const T& front() const { return view_.front(); }
  const T& back() const { return view_.back(); }

  // True when the column aliases external bytes instead of owning them.
  bool is_view() const { return owned_.empty() && !view_.empty(); }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
};

}  // namespace paris::storage

#endif  // PARIS_STORAGE_COLUMN_H_
