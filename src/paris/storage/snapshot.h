#ifndef PARIS_STORAGE_SNAPSHOT_H_
#define PARIS_STORAGE_SNAPSHOT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "paris/rdf/term.h"
#include "paris/storage/column.h"
#include "paris/util/status.h"

namespace paris::storage {

// Versioned binary snapshot format (see src/storage/README.md):
//
//   [8-byte magic "PARISNP\n"] [u32 format version]
//   ... sections written by the layers above ...
//   [u64 FNV-1a checksum of every byte after the magic]
//
// Scalars are little-endian; POD rows (facts, pairs, offsets) are written
// raw, matching the in-memory layout of this library's fixed-width structs.
// Since version 2 every POD array payload is padded to an 8-byte file
// offset, so an mmap'ed snapshot can serve the packed columns in place
// (zero-copy load) with naturally aligned loads. The checksum trailer
// detects both corruption and truncation: the streaming reader hashes as it
// consumes, the mmap reader verifies the whole file before adopting any
// view.

inline constexpr char kSnapshotMagic[8] = {'P', 'A', 'R', 'I',
                                           'S', 'N', 'P', '\n'};
// Current write version. v3 appends the TriIndex orderings (SPO/POS/OSP)
// and the per-term relation directory as additional zero-copy column
// families; v2 files (CSR/POS only) still load, with those families
// rebuilt in memory.
inline constexpr uint32_t kSnapshotVersion = 3;
// Oldest ontology-snapshot version the loaders accept.
inline constexpr uint32_t kMinSnapshotVersion = 2;

// How a snapshot loader brings a file in. Shared by the ontology snapshots
// (src/ontology/snapshot.h) and the alignment-result snapshots
// (src/core/result_snapshot.h).
enum class SnapshotLoadMode {
  // Try the zero-copy mmap path, fall back to streaming when the file
  // cannot be mapped (platform without mmap, map failure). Content errors
  // never fall back — a corrupt file is rejected, not retried.
  kAuto,
  // Stream and copy through SnapshotReader.
  kStream,
  // Map the file read-only; loads may alias the mapping. Fails if mmap is
  // unavailable.
  kMmap,
};

// Streams sections to `out`, maintaining a running FNV-1a 64 hash of every
// byte written (the magic is excluded by writing it before construction —
// `WriteSnapshotHeader` handles this) plus the absolute file offset
// (assuming the stream is preceded by the 8-byte magic), which anchors the
// alignment padding of POD arrays.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::ostream& out) : out_(out) {}

  void WriteBytes(const void* data, size_t size);
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteDouble(double v);  // IEEE-754 bits as a little-endian u64
  void WriteString(std::string_view s);  // u64 length + bytes

  // u64 length, zero padding to an 8-byte file offset, then the raw rows.
  template <typename T>
  void WritePodSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= 8);
    WriteU64(v.size());
    AlignTo8();
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    WritePodSpan(std::span<const T>(v));
  }

  uint64_t checksum() const { return checksum_; }
  bool ok() const;

 private:
  void AlignTo8();

  std::ostream& out_;
  uint64_t checksum_ = 14695981039346656037ull;  // FNV-1a offset basis
  uint64_t offset_ = sizeof(kSnapshotMagic);     // absolute file offset
};

// Mirrors SnapshotWriter. Two modes share one API:
//
//  * streaming (istream): bytes are consumed and hashed incrementally;
//    callers compare `checksum()` against the trailer.
//  * memory-backed (a whole snapshot file, typically mmap'ed): reads advance
//    a cursor over the buffer, and `ReadPodView` hands out zero-copy spans
//    into it. No incremental hashing — the caller verifies the whole-file
//    checksum *before* constructing the reader (checksum-before-map).
//
// Read failures (EOF, oversized counts) latch a fail state instead of
// returning per-call statuses; callers check `ok()` after a batch of reads.
// Values read after a failure are zero.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(&in) {}

  // Memory-backed mode over a whole snapshot file (including the magic);
  // reading starts just after the magic. The caller must have verified the
  // checksum trailer already and must keep the bytes alive; `set_view_owner`
  // lets loaded structures pin an mmap for their lifetime.
  explicit SnapshotReader(std::span<const std::byte> file)
      : data_(file.data()), size_(file.size()), pos_(sizeof(kSnapshotMagic)) {
    if (size_ < pos_) failed_ = true;
  }

  bool ReadBytes(void* data, size_t size);
  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadDouble();
  std::string ReadString(uint64_t max_size = kMaxString);

  // Reads a length-prefixed POD array. Grows the vector in bounded chunks so
  // a corrupt length field on a truncated file fails fast at the first short
  // read instead of attempting one giant allocation up front.
  template <typename T>
  bool ReadPodVector(std::vector<T>* v, uint64_t max_elements = kMaxElements) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t n = ReadU64();
    if (n > max_elements) {
      failed_ = true;
      return false;
    }
    SkipAlignmentPadding();
    v->clear();
    constexpr uint64_t kChunk = 1 << 16;
    for (uint64_t done = 0; done < n;) {
      const uint64_t take = std::min(kChunk, n - done);
      const size_t old_size = v->size();
      v->resize(old_size + take);
      if (!ReadBytes(v->data() + old_size, take * sizeof(T))) return false;
      done += take;
    }
    return ok();
  }

  // Zero-copy read of a length-prefixed POD array: the span aliases the
  // backing buffer. Memory-backed mode only; fails (latching the error
  // state) in streaming mode.
  template <typename T>
  bool ReadPodView(std::span<const T>* out,
                   uint64_t max_elements = kMaxElements) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= 8);
    const uint64_t n = ReadU64();
    if (!memory_backed() || failed_ || n > max_elements) {
      failed_ = true;
      return false;
    }
    SkipAlignmentPadding();
    const uint64_t bytes = n * sizeof(T);
    if (failed_ || bytes > size_ - pos_ || pos_ % alignof(T) != 0) {
      failed_ = true;
      return false;
    }
    *out = {reinterpret_cast<const T*>(data_ + pos_), n};
    pos_ += bytes;
    return true;
  }

  // Reads one POD array into a Column: zero-copy view in memory-backed mode,
  // owned copy in streaming mode.
  template <typename T>
  bool ReadPodColumn(Column<T>* out, uint64_t max_elements = kMaxElements) {
    if (memory_backed()) {
      std::span<const T> view;
      if (!ReadPodView(&view, max_elements)) return false;
      *out = Column<T>::FromView(view);
      return true;
    }
    std::vector<T> values;
    if (!ReadPodVector(&values, max_elements)) return false;
    *out = Column<T>::FromOwned(std::move(values));
    return true;
  }

  // Reads the trailing checksum *without* hashing it, for comparison against
  // `checksum()` of everything consumed so far.
  uint64_t ReadChecksumTrailer();

  bool memory_backed() const { return data_ != nullptr; }
  // Absolute file offset of the cursor (memory-backed mode).
  uint64_t position() const { return pos_; }

  // The owner of the backing bytes in memory-backed mode (the file mapping);
  // structures that adopt zero-copy views hold a copy of this.
  void set_view_owner(std::shared_ptr<const void> owner) {
    view_owner_ = std::move(owner);
  }
  const std::shared_ptr<const void>& view_owner() const { return view_owner_; }

  uint64_t checksum() const { return checksum_; }
  bool ok() const { return !failed_; }
  void MarkFailed() { failed_ = true; }

 private:
  static constexpr uint64_t kMaxString = 1ull << 32;
  static constexpr uint64_t kMaxElements = 1ull << 40;

  // Consumes the zero padding WritePodSpan emitted before the array payload.
  void SkipAlignmentPadding();

  std::istream* in_ = nullptr;  // streaming mode
  const std::byte* data_ = nullptr;  // memory-backed mode
  uint64_t size_ = 0;
  uint64_t pos_ = sizeof(kSnapshotMagic);  // absolute file offset
  uint64_t checksum_ = 14695981039346656037ull;
  bool failed_ = false;
  std::shared_ptr<const void> view_owner_;
};

// Writes the magic + format version framing (the ontology snapshot family;
// other families write their own magic + version through the writer).
// `version` defaults to the current write version; passing
// `kMinSnapshotVersion` writes a downlevel file (compatibility tests).
void WriteSnapshotHeader(SnapshotWriter& writer, std::ostream& raw,
                         uint32_t version = kSnapshotVersion);

// Shared whole-file load framing for every snapshot family (ontology
// snapshots, alignment-result snapshots): magic and version checks, section
// loading via `load_sections`, checksum-trailer verification, and the
// trailing-bytes check — with the stream / mmap / auto dispatch and the
// checksum-before-map policy in one place, so the families cannot drift.
//
//  * kStream: sections are read and hashed incrementally; the trailer is
//    compared afterwards.
//  * kMmap: the whole-file FNV-1a trailer is verified over the mapping
//    *before* the reader is constructed; `load_sections` may then adopt
//    zero-copy views (the reader's view_owner pins the mapping).
//  * kAuto: try mmap, fall back to streaming only when the file cannot be
//    mapped. Content errors never fall back.
//
// `kind` names the family in error messages ("snapshot", "result
// snapshot"). Files whose version falls outside [min_version, max_version]
// are rejected; the accepted file version is handed to `load_sections`,
// which must consume everything between the version field and the trailer,
// returning a non-OK status on structural errors.
util::Status LoadSnapshotFile(
    const std::string& path, SnapshotLoadMode mode, const char (&magic)[8],
    uint32_t min_version, uint32_t max_version, const char* kind,
    const std::function<util::Status(SnapshotReader&, uint32_t file_version)>&
        load_sections);

// FNV-1a 64 over one contiguous byte range, seeded with the offset basis —
// the same hash the writer and the streaming reader maintain incrementally.
// Used by the mmap load path to verify a whole file before adopting views.
uint64_t FnvHash(const void* data, size_t size);

// ---- Term pool section ----

// count, then per term: kind byte + lexical form.
void SaveTermPool(const rdf::TermPool& pool, SnapshotWriter& writer);

// Re-interns every term in id order; `pool` must be empty so the dense ids
// reproduce exactly.
util::Status LoadTermPool(SnapshotReader& reader, rdf::TermPool* pool);

}  // namespace paris::storage

#endif  // PARIS_STORAGE_SNAPSHOT_H_
