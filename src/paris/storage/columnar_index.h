#ifndef PARIS_STORAGE_COLUMNAR_INDEX_H_
#define PARIS_STORAGE_COLUMNAR_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "paris/obs/hooks.h"
#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"
#include "paris/storage/column.h"

namespace paris::util {
class ThreadPool;
}  // namespace paris::util

namespace paris::storage {

// Immutable columnar index over the dictionary-encoded statements of one
// ontology — the storage engine behind `rdf::TripleStore`.
//
// Two permutations are packed:
//
//  * SPO (adjacency): a CSR layout keyed by dense local term index. One flat
//    `Fact` array sorted by (rel, other) within each term, plus an offset
//    array, so `FactsAbout` is a pure span lookup and `FactsWith`/`ObjectsOf`
//    are binary searches within one term's contiguous slice. Inverse
//    statements are materialized with negated relation ids, so the SPO
//    family subsumes OPS. A parallel object column (the `other` field of
//    each fact, stored contiguously) lets `ObjectsOf` return a
//    `std::span<const TermId>` without allocating.
//
//  * POS (pairs): per positive relation, its (first, second) pairs in one
//    flat array sorted by (first, second), with an offset per relation.
//
// Columns are either owned vectors (Build / streamed snapshot load) or
// read-only views into an mmap'ed snapshot (zero-copy load) — `keep_alive`
// pins the mapping for the index's lifetime. All spans point into the index
// and stay valid for its lifetime; every read accessor is allocation-free
// and safe to call from many threads.
class ColumnarIndex {
 public:
  // One half-statement during ingest: rel(owner, other) where `owner` is a
  // dense local term index and `rel` may be an inverse id.
  struct Entry {
    uint32_t owner;
    rdf::RelId rel;
    rdf::TermId other;

    friend bool operator==(const Entry& a, const Entry& b) = default;
  };

  // One row of the per-term relation directory: a term's distinct (possibly
  // inverse) relations in sorted order, each with the offset of its first
  // fact *within the term's adjacency slice* (u32 — a single term's degree
  // is bounded well below 2^32). `FactsWith` binary-searches these compact
  // rows instead of the term's full fact slice: O(log distinct-relations)
  // probes over 8-byte rows rather than O(log degree) over the fat slice,
  // which is what makes hub-heavy terms cheap in the fixpoint's inner
  // loops. Derived from the facts column (Build / MergeDelta / v2 load) or
  // adopted zero-copy from a v3 snapshot.
  struct DirEntry {
    rdf::RelId rel;
    uint32_t begin;

    friend bool operator==(const DirEntry& a, const DirEntry& b) = default;
  };

  ColumnarIndex() = default;
  ColumnarIndex(ColumnarIndex&&) = default;
  ColumnarIndex& operator=(ColumnarIndex&&) = default;
  ColumnarIndex(const ColumnarIndex&) = delete;
  ColumnarIndex& operator=(const ColumnarIndex&) = delete;

  // Packs the index. `terms` maps local index → global term id (used to emit
  // POS pairs); every entry's `owner` must be < terms.size() and every
  // positive |rel| must be ≤ num_relations. Duplicate entries are removed (a
  // store is a *set* of statements). With a non-null `pool`, the dominant
  // per-term slice sorts and per-relation pair sorts are sharded across the
  // workers; the packed result is identical to a serial build. `hooks`
  // (optional) records one "io" span per build sub-phase — bucket sort,
  // slice sort+dedup, column fill, pair packing — on the calling thread.
  static ColumnarIndex Build(std::span<const rdf::TermId> terms,
                             size_t num_relations,
                             std::vector<Entry>&& entries,
                             util::ThreadPool* pool = nullptr,
                             obs::Hooks hooks = {});

  // Merges a small batch of new entries into an already-packed index without
  // rebuilding it: per-term adjacency slices and per-relation pair ranges
  // that the delta does not touch are copied wholesale, touched slices are
  // linearly merged with the (sorted, deduplicated) delta. `terms` and
  // `num_relations` are the *updated* dictionary and relation registry —
  // both may have grown since Build; new terms get (possibly empty) fresh
  // slices appended and new relations get fresh pair ranges. Entries already
  // present in the index are dropped (a store is a set of statements).
  // After the merge every column is owned (zero-copy views are detached).
  //
  // Returns the kept entries — the novel, deduplicated delta — sorted by
  // (owner, rel, other), so the caller can derive exactly which terms and
  // relations changed. The merged index is byte-identical to a full
  // Build() over the union of the original entries and the delta.
  std::vector<Entry> MergeDelta(std::span<const rdf::TermId> terms,
                                size_t num_relations,
                                std::vector<Entry>&& entries,
                                util::ThreadPool* pool = nullptr,
                                obs::Hooks hooks = {});

  // Reassembles an index from raw columns (streamed snapshot load). Returns
  // false — leaving `out` untouched — if the columns are structurally
  // inconsistent (non-monotone offsets, unsorted or duplicate rows,
  // out-of-range ids).
  static bool FromColumns(std::vector<uint64_t> offsets,
                          std::vector<rdf::Fact> facts,
                          std::vector<uint64_t> pair_offsets,
                          std::vector<rdf::TermPair> pairs, ColumnarIndex* out);

  // Column-based core: each column is either owned (streamed load) or a
  // zero-copy view into externally owned bytes (an mmap'ed snapshot), in
  // which case `keep_alive` pins the owner of the viewed bytes (the file
  // mapping) for the index's lifetime. The derived object column is always
  // materialized in memory. On failure `out` is untouched.
  static bool FromColumns(Column<uint64_t> offsets, Column<rdf::Fact> facts,
                          Column<uint64_t> pair_offsets,
                          Column<rdf::TermPair> pairs,
                          std::shared_ptr<const void> keep_alive,
                          ColumnarIndex* out);

  // Snapshot-v3 variant: the relation directory comes from the file (and
  // stays zero-copy under an mmap'ed reader) instead of being rebuilt.
  // The directory is validated exactly against the facts column; a
  // mismatch fails the load.
  static bool FromColumns(Column<uint64_t> offsets, Column<rdf::Fact> facts,
                          Column<uint64_t> pair_offsets,
                          Column<rdf::TermPair> pairs,
                          Column<uint64_t> dir_offsets, Column<DirEntry> dir,
                          std::shared_ptr<const void> keep_alive,
                          ColumnarIndex* out);

  // ---- Read API (all O(1) or O(log degree), zero allocation) ----

  // Every statement the term participates in, sorted by (rel, other).
  std::span<const rdf::Fact> FactsAbout(uint32_t local) const {
    return {facts_.data() + offsets_[local],
            facts_.data() + offsets_[local + 1]};
  }

  // The facts of `local` whose relation is exactly `rel`: a binary search
  // over the term's relation-directory rows. Empty (data() == nullptr)
  // when the term has no `rel` facts.
  std::span<const rdf::Fact> FactsWith(uint32_t local, rdf::RelId rel) const;

  // The objects y with rel(term, y), as a contiguous sorted id column.
  std::span<const rdf::TermId> ObjectsOf(uint32_t local, rdf::RelId rel) const;

  // True if rel(term, other) is a statement.
  bool Contains(uint32_t local, rdf::RelId rel, rdf::TermId other) const;

  // (first, second) pairs of positive relation `base` in [1, num_relations],
  // sorted by (first, second).
  std::span<const rdf::TermPair> PairsOf(rdf::RelId base) const {
    const auto b = static_cast<size_t>(base);
    return {pairs_.data() + pair_offsets_[b - 1],
            pairs_.data() + pair_offsets_[b]};
  }

  size_t num_terms() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t num_relations() const {
    return pair_offsets_.empty() ? 0 : pair_offsets_.size() - 1;
  }
  // Adjacency rows (each statement appears twice: forward and inverse).
  size_t num_facts() const { return facts_.size(); }
  // Distinct statements (inverses not double-counted).
  size_t num_triples() const { return pairs_.size(); }

  // True when the packed columns alias an mmap'ed snapshot.
  bool zero_copy() const { return keep_alive_ != nullptr; }

  // ---- Raw columns (snapshot save, deep-equality in tests) ----

  std::span<const uint64_t> offsets() const { return offsets_.span(); }
  std::span<const rdf::Fact> facts() const { return facts_.span(); }
  std::span<const rdf::TermId> objects() const { return objects_.span(); }
  std::span<const uint64_t> pair_offsets() const {
    return pair_offsets_.span();
  }
  std::span<const rdf::TermPair> pairs() const { return pairs_.span(); }
  std::span<const uint64_t> dir_offsets() const { return dir_offsets_.span(); }
  std::span<const DirEntry> dir() const { return dir_.span(); }

 private:
  static bool Validate(std::span<const uint64_t> offsets,
                       std::span<const rdf::Fact> facts,
                       std::span<const uint64_t> pair_offsets,
                       std::span<const rdf::TermPair> pairs);
  static bool ValidateDirectory(std::span<const uint64_t> offsets,
                                std::span<const rdf::Fact> facts,
                                std::span<const uint64_t> dir_offsets,
                                std::span<const DirEntry> dir);
  void RebuildObjectColumn();
  void RebuildDirectory(util::ThreadPool* pool = nullptr);

  Column<uint64_t> offsets_;        // num_terms + 1
  Column<rdf::Fact> facts_;         // CSR adjacency rows
  Column<rdf::TermId> objects_;     // objects_[i] == facts_[i].other
  Column<uint64_t> pair_offsets_;   // num_relations + 1
  Column<rdf::TermPair> pairs_;     // POS rows
  Column<uint64_t> dir_offsets_;    // num_terms + 1
  Column<DirEntry> dir_;            // per-term distinct-relation rows
  std::shared_ptr<const void> keep_alive_;  // mapping owner for view columns
};

}  // namespace paris::storage

#endif  // PARIS_STORAGE_COLUMNAR_INDEX_H_
