// Umbrella header: the full public API of the PARIS ontology-alignment
// library. Typical usage:
//
//   paris::rdf::TermPool pool;
//   paris::ontology::OntologyBuilder b1(&pool, "left"), b2(&pool, "right");
//   ... AddFact / AddType / parse N-Triples ...
//   auto left = b1.Build(), right = b2.Build();
//   paris::core::Aligner aligner(*left, *right);
//   paris::core::AlignmentResult result = aligner.Run();
//
#ifndef PARIS_PARIS_PARIS_H_
#define PARIS_PARIS_PARIS_H_

#include "baseline/label_match.h"
#include "baseline/self_training.h"
#include "core/aligner.h"
#include "core/class_align.h"
#include "core/config.h"
#include "core/equiv.h"
#include "core/explain.h"
#include "core/instance_align.h"
#include "core/literal_match.h"
#include "core/multi_align.h"
#include "core/relation_align.h"
#include "core/relation_scores.h"
#include "core/result_io.h"
#include "ontology/export.h"
#include "ontology/functionality.h"
#include "ontology/ontology.h"
#include "ontology/vocab.h"
#include "rdf/ntriples.h"
#include "rdf/store.h"
#include "rdf/term.h"
#include "rdf/turtle.h"
#include "rdf/triple.h"
#include "util/logging.h"
#include "util/status.h"

#endif  // PARIS_PARIS_PARIS_H_
