// Umbrella header: the full public API of the PARIS ontology-alignment
// library.
//
// The documented entry point is the `paris::api::Session` facade, which
// owns the whole run lifecycle behind Status-returning methods:
//
//   paris::api::Session session(
//       paris::api::Session::Options().set_threads(4));
//   auto status = session.LoadFromFiles("left.nt", "right.ttl");
//   if (status.ok()) status = session.Align();    // callbacks optional
//   if (status.ok()) status = session.Export("out");
//   if (!status.ok()) { /* every failure is a util::Status */ }
//
// `Session::Align` takes optional `paris::api::RunCallbacks` (per-iteration
// progress + cooperative cancellation), runs can be snapshotted and
// resumed (`SaveResult` / `Resume`), and literal matchers are resolved by
// name through `paris::api::MatcherRegistry`, so custom matchers plug in
// without touching call sites. See src/api/README.md for a quickstart and
// examples/api_quickstart.cc for a buildable walkthrough.
//
// The layers beneath the facade stay public for embedders that need finer
// control (ablations, custom pipelines, the experiment drivers):
//
//   paris::rdf::TermPool pool;
//   paris::ontology::OntologyBuilder b1(&pool, "left"), b2(&pool, "right");
//   ... AddFact / AddType / parse N-Triples ...
//   auto left = b1.Build(), right = b2.Build();
//   paris::core::Aligner aligner(*left, *right);
//   paris::core::AlignmentResult result = aligner.Run();
//
#ifndef PARIS_PARIS_PARIS_H_
#define PARIS_PARIS_PARIS_H_

#include "api/dataset.h"
#include "api/matcher_registry.h"
#include "api/session.h"
#include "baseline/label_match.h"
#include "baseline/self_training.h"
#include "core/aligner.h"
#include "core/class_align.h"
#include "core/config.h"
#include "core/equiv.h"
#include "core/explain.h"
#include "core/instance_align.h"
#include "core/literal_match.h"
#include "core/multi_align.h"
#include "core/relation_align.h"
#include "core/relation_scores.h"
#include "core/result_io.h"
#include "core/result_snapshot.h"
#include "core/telemetry.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ontology/export.h"
#include "ontology/functionality.h"
#include "ontology/ontology.h"
#include "ontology/snapshot.h"
#include "ontology/vocab.h"
#include "rdf/ntriples.h"
#include "rdf/store.h"
#include "rdf/term.h"
#include "rdf/turtle.h"
#include "rdf/triple.h"
#include "util/logging.h"
#include "util/status.h"

#endif  // PARIS_PARIS_PARIS_H_
