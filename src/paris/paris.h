// Umbrella header: the full public API of the PARIS ontology-alignment
// library.
//
// The documented entry point is the `paris::api::Session` facade, which
// owns the whole run lifecycle behind Status-returning methods:
//
//   paris::api::Session session(
//       paris::api::Session::Options().set_threads(4));
//   auto status = session.LoadFromFiles("left.nt", "right.ttl");
//   if (status.ok()) status = session.Align();    // callbacks optional
//   if (status.ok()) status = session.Export("out");
//   if (!status.ok()) { /* every failure is a util::Status */ }
//
// `Session::Align` takes optional `paris::api::RunCallbacks` (per-iteration
// progress + cooperative cancellation), runs can be snapshotted and
// resumed (`SaveResult` / `Resume`), and literal matchers are resolved by
// name through `paris::api::MatcherRegistry`, so custom matchers plug in
// without touching call sites. When new statements arrive after a run,
// `ApplyDelta` + `Realign` merge them and re-align incrementally —
// warm-started from the existing result, recomputing only the delta's
// structural cone — instead of starting cold:
//
//   status = session.ApplyDelta(paris::api::Session::DeltaSide::kLeft,
//                               "updates.nt");          // stages the batch
//   if (status.ok()) status = session.Realign();        // merge + re-align
//
// All public headers are included with the `paris/` prefix, exactly as
// spelled above and below, in-tree and installed alike. See
// src/paris/api/README.md for a quickstart and examples/api_quickstart.cc
// for a buildable walkthrough.
//
// The layers beneath the facade stay public for embedders that need finer
// control (ablations, custom pipelines, the experiment drivers):
//
//   paris::rdf::TermPool pool;
//   paris::ontology::OntologyBuilder b1(&pool, "left"), b2(&pool, "right");
//   ... AddFact / AddType / parse N-Triples ...
//   auto left = b1.Build(), right = b2.Build();
//   paris::core::Aligner aligner(*left, *right);
//   paris::core::AlignmentResult result = aligner.Run();
//
#ifndef PARIS_PARIS_PARIS_H_
#define PARIS_PARIS_PARIS_H_

#include "paris/api/dataset.h"
#include "paris/api/matcher_registry.h"
#include "paris/api/session.h"
#include "paris/baseline/label_match.h"
#include "paris/baseline/self_training.h"
#include "paris/core/aligner.h"
#include "paris/core/class_align.h"
#include "paris/core/config.h"
#include "paris/core/equiv.h"
#include "paris/core/explain.h"
#include "paris/core/instance_align.h"
#include "paris/core/literal_match.h"
#include "paris/core/multi_align.h"
#include "paris/core/relation_align.h"
#include "paris/core/relation_scores.h"
#include "paris/core/result_io.h"
#include "paris/core/result_snapshot.h"
#include "paris/core/telemetry.h"
#include "paris/obs/hooks.h"
#include "paris/obs/metrics.h"
#include "paris/obs/trace.h"
#include "paris/ontology/export.h"
#include "paris/ontology/functionality.h"
#include "paris/ontology/ontology.h"
#include "paris/ontology/snapshot.h"
#include "paris/ontology/vocab.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/store.h"
#include "paris/rdf/term.h"
#include "paris/rdf/turtle.h"
#include "paris/rdf/triple.h"
#include "paris/util/logging.h"
#include "paris/util/status.h"

#endif  // PARIS_PARIS_PARIS_H_
