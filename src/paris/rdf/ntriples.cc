#include "paris/rdf/ntriples.h"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>

#include "paris/util/string_util.h"

namespace paris::rdf {

namespace {

// Cursor over one line.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
};

util::Status ParseError(const Cursor& c, std::string_view what) {
  std::ostringstream os;
  os << what << " at column " << (c.pos + 1) << " in: " << c.text;
  return util::InvalidArgumentError(os.str());
}

// Decodes \-escapes inside an IRI or literal body.
util::Status Unescape(Cursor& c, char terminator, std::string* out) {
  while (true) {
    if (c.AtEnd()) return ParseError(c, "unterminated token");
    char ch = c.text[c.pos];
    if (ch == terminator) {
      ++c.pos;
      return util::OkStatus();
    }
    if (ch != '\\') {
      out->push_back(ch);
      ++c.pos;
      continue;
    }
    ++c.pos;
    if (c.AtEnd()) return ParseError(c, "dangling escape");
    char esc = c.text[c.pos];
    ++c.pos;
    switch (esc) {
      case 't':
        out->push_back('\t');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case '"':
        out->push_back('"');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case 'u':
      case 'U': {
        const size_t ndigits = (esc == 'u') ? 4 : 8;
        if (c.pos + ndigits > c.text.size()) {
          return ParseError(c, "truncated \\u escape");
        }
        uint32_t code = 0;
        for (size_t i = 0; i < ndigits; ++i) {
          char d = c.text[c.pos + i];
          code <<= 4;
          if (d >= '0' && d <= '9') {
            code |= static_cast<uint32_t>(d - '0');
          } else if (d >= 'a' && d <= 'f') {
            code |= static_cast<uint32_t>(d - 'a' + 10);
          } else if (d >= 'A' && d <= 'F') {
            code |= static_cast<uint32_t>(d - 'A' + 10);
          } else {
            return ParseError(c, "bad hex digit in \\u escape");
          }
        }
        c.pos += ndigits;
        // UTF-8 encode.
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xc0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else if (code < 0x10000) {
          out->push_back(static_cast<char>(0xe0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
          out->push_back(static_cast<char>(0xf0 | (code >> 18)));
          out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
        break;
      }
      default:
        return ParseError(c, "unknown escape");
    }
  }
}

util::Status ParseIri(Cursor& c, std::string* out) {
  if (c.AtEnd() || c.Peek() != '<') return ParseError(c, "expected '<'");
  ++c.pos;
  return Unescape(c, '>', out);
}

util::Status ParseLiteralToken(Cursor& c, ParsedTriple* out) {
  ++c.pos;  // consume opening quote
  util::Status s = Unescape(c, '"', &out->object);
  if (!s.ok()) return s;
  out->object_is_literal = true;
  if (!c.AtEnd() && c.Peek() == '^') {
    if (c.pos + 1 >= c.text.size() || c.text[c.pos + 1] != '^') {
      return ParseError(c, "expected '^^'");
    }
    c.pos += 2;
    return ParseIri(c, &out->datatype);
  }
  if (!c.AtEnd() && c.Peek() == '@') {
    ++c.pos;
    const size_t start = c.pos;
    while (!c.AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(c.Peek())) ||
            c.Peek() == '-')) {
      ++c.pos;
    }
    if (c.pos == start) return ParseError(c, "empty language tag");
    out->language = std::string(c.text.substr(start, c.pos - start));
  }
  return util::OkStatus();
}

}  // namespace

util::Status NTriplesParser::ParseLine(std::string_view line,
                                       ParsedTriple* out, bool* is_triple) {
  *is_triple = false;
  Cursor c{line, 0};
  c.SkipSpace();
  if (c.AtEnd() || c.Peek() == '#') return util::OkStatus();
  if (c.Peek() == '_') {
    return ParseError(c, "blank nodes are not supported");
  }

  util::Status s = ParseIri(c, &out->subject);
  if (!s.ok()) return s;
  c.SkipSpace();
  s = ParseIri(c, &out->predicate);
  if (!s.ok()) return s;
  c.SkipSpace();
  if (c.AtEnd()) return ParseError(c, "missing object");
  if (c.Peek() == '"') {
    s = ParseLiteralToken(c, out);
  } else if (c.Peek() == '<') {
    out->object_is_literal = false;
    s = ParseIri(c, &out->object);
  } else if (c.Peek() == '_') {
    return ParseError(c, "blank nodes are not supported");
  } else {
    return ParseError(c, "expected IRI or literal object");
  }
  if (!s.ok()) return s;
  c.SkipSpace();
  if (c.AtEnd() || c.Peek() != '.') return ParseError(c, "expected '.'");
  ++c.pos;
  c.SkipSpace();
  if (!c.AtEnd()) return ParseError(c, "trailing content after '.'");
  *is_triple = true;
  return util::OkStatus();
}

util::Status NTriplesParser::ParseDocument(std::string_view text,
                                           TripleSink* sink) {
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    ++line_number;
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ParsedTriple triple;
    bool is_triple = false;
    util::Status s = ParseLine(line, &triple, &is_triple);
    if (!s.ok()) {
      return util::InvalidArgumentError("line " + std::to_string(line_number) +
                                        ": " + s.message());
    }
    if (is_triple) sink->OnTriple(triple);
    if (end == text.size()) break;
    start = end + 1;
  }
  return util::OkStatus();
}

util::Status NTriplesParser::ParseFile(const std::string& path,
                                       TripleSink* sink) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDocument(buffer.str(), sink);
}

std::string EscapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string NTriplesWriter::FormatTriple(const ParsedTriple& t) {
  std::string out;
  out += "<" + t.subject + "> <" + t.predicate + "> ";
  if (t.object_is_literal) {
    out += "\"" + EscapeLiteral(t.object) + "\"";
    if (!t.datatype.empty()) {
      out += "^^<" + t.datatype + ">";
    } else if (!t.language.empty()) {
      out += "@" + t.language;
    }
  } else {
    out += "<" + t.object + ">";
  }
  out += " .";
  return out;
}

void NTriplesWriter::WriteTriples(const std::vector<ParsedTriple>& triples,
                                  std::ostream& out) {
  for (const auto& t : triples) {
    out << FormatTriple(t) << "\n";
  }
}

}  // namespace paris::rdf
