#ifndef PARIS_RDF_TERM_H_
#define PARIS_RDF_TERM_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace paris::rdf {

// Dense identifier of an interned RDF term (resource IRI or literal).
// Term ids are indexes into a `TermPool`. The pool is *shared across the two
// ontologies being aligned* so that a literal has a single id regardless of
// which ontology mentions it; literal identity then reduces to id equality
// (the paper's default literal equality function, §5.3).
using TermId = uint32_t;

inline constexpr TermId kNullTerm = std::numeric_limits<TermId>::max();

enum class TermKind : uint8_t {
  kIri = 0,      // a resource (instance, class, or relation name)
  kLiteral = 1,  // a string/number/date literal (lexical form, datatype-free)
};

// Interning pool for RDF terms. An IRI and a literal with the same lexical
// form are distinct terms. Lookup is by (lexical form, kind); ids are dense
// and stable for the lifetime of the pool.
//
// Thread-compatibility: interning mutates the pool and must be externally
// synchronized; read accessors are safe to call concurrently once loading is
// done (the alignment passes are read-only on the pool).
class TermPool {
 public:
  TermPool() = default;
  TermPool(const TermPool&) = delete;
  TermPool& operator=(const TermPool&) = delete;

  // Interns an IRI / literal, returning the existing id if already present.
  TermId InternIri(std::string_view lexical);
  TermId InternLiteral(std::string_view lexical);
  TermId Intern(std::string_view lexical, TermKind kind) {
    return kind == TermKind::kIri ? InternIri(lexical)
                                  : InternLiteral(lexical);
  }

  // Lookup without interning.
  std::optional<TermId> Find(std::string_view lexical, TermKind kind) const;

  std::string_view lexical(TermId id) const { return lexical_[id]; }
  TermKind kind(TermId id) const { return kind_[id]; }
  bool IsLiteral(TermId id) const { return kind_[id] == TermKind::kLiteral; }

  // Number of interned terms; valid ids are [0, size()).
  size_t size() const { return lexical_.size(); }

 private:
  // Heterogeneous (string_view) lookup support.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using Index =
      std::unordered_map<std::string, TermId, StringHash, std::equal_to<>>;

  TermId InternInternal(std::string_view lexical, TermKind kind, Index& index);

  std::vector<std::string> lexical_;
  std::vector<TermKind> kind_;
  Index iri_index_;
  Index literal_index_;
};

}  // namespace paris::rdf

#endif  // PARIS_RDF_TERM_H_
