#ifndef PARIS_RDF_STORE_H_
#define PARIS_RDF_STORE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "paris/rdf/term.h"
#include "paris/rdf/triple.h"
#include "paris/storage/columnar_index.h"
#include "paris/storage/tri_index.h"
#include "paris/util/status.h"

namespace paris::storage {
class SnapshotReader;
class SnapshotWriter;
}  // namespace paris::storage

namespace paris::util {
class ThreadPool;
}  // namespace paris::util

namespace paris::rdf {

// Per-ontology fact storage, optimized for the access pattern of the PARIS
// alignment passes (§5.2 of the paper): given an entity, iterate every
// statement it participates in (in either argument position), and given a
// relation, iterate its (first, second) pairs.
//
// Usage: `Add()` triples, then `Finalize()` exactly once; all read accessors
// require a finalized store. Finalization packs the statements into a
// `storage::ColumnarIndex` — CSR adjacency plus sorted SPO/POS permutations
// — so every read accessor returns a span into the packed columns and never
// allocates. `Finalize()` also removes duplicate statements (an RDFS
// ontology is a *set* of triples).
class TripleStore {
 public:
  explicit TripleStore(TermPool* pool) : pool_(pool) {}
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  TermPool& pool() const { return *pool_; }

  // Registers (or finds) a relation by its name term. Returns its positive id.
  RelId InternRelation(TermId name);
  std::optional<RelId> FindRelation(TermId name) const;

  // Adds statement rel(subject, object). `rel` may be negative (inverse), in
  // which case the statement BaseRel(rel)(object, subject) is recorded.
  // Before Finalize() this feeds the initial build; after Finalize() it
  // stages a *delta* that becomes visible at the next MergeDelta() call
  // (the read API keeps answering from the last packed state until then).
  void Add(TermId subject, RelId rel, TermId object);

  // Packs the accumulated statements into the columnar index. With a
  // non-null `pool`, the per-term and per-relation sorts are sharded across
  // the workers; the packed index is identical to a serial finalize.
  // `hooks` (optional) records "io" spans for the build sub-phases.
  void Finalize(util::ThreadPool* pool = nullptr, obs::Hooks hooks = {});
  bool finalized() const { return finalized_; }

  // True when statements were Add()ed (or relations interned) after
  // Finalize() and have not been merged yet.
  bool has_pending_delta() const {
    return finalized_ && (!pending_.empty() ||
                          terms_.size() > index_.num_terms() ||
                          rel_names_.size() > index_.num_relations());
  }

  // What one MergeDelta() changed: exactly the terms that gained statements
  // and the (positive, base) relations that gained pairs — already-present
  // delta statements are dropped and contribute nothing. Both lists are
  // sorted and deduplicated, so downstream consumers iterate them in a
  // canonical order regardless of ingest order.
  struct DeltaMergeResult {
    std::vector<TermId> touched_terms;
    std::vector<RelId> touched_relations;
    size_t num_new_statements = 0;  // distinct novel triples (no inverses)
  };

  // Merges the statements staged since Finalize() into the packed index —
  // a linear splice of the small sorted delta into the touched CSR/POS
  // slices, not a rebuild; untouched slices are bulk-copied and the merged
  // index is byte-identical to a cold Finalize() over the union. Requires a
  // finalized store. Idempotent when nothing is staged (new relations with
  // no statements still get their empty POS ranges appended).
  DeltaMergeResult MergeDelta(util::ThreadPool* pool = nullptr,
                              obs::Hooks hooks = {});

  // ---- Read API (requires Finalize(); allocation-free) ----

  // Every statement `t` participates in, as (rel, other) with rel(t, other).
  // Sorted by (rel, other). Empty span if `t` is unknown to this ontology.
  std::span<const Fact> FactsAbout(TermId t) const;

  // The statements of `t` whose relation is exactly `rel` (`rel` may be
  // inverse): a binary search within `t`'s packed adjacency slice.
  std::span<const Fact> FactsAbout(TermId t, RelId rel) const;

  // The objects y with rel(t, y); `rel` may be inverse. Sorted. The span
  // points into the index's object column and stays valid for the store's
  // lifetime.
  std::span<const TermId> ObjectsOf(TermId t, RelId rel) const;

  // True if rel(s, o) is a statement of this store (rel may be inverse).
  bool Contains(TermId s, RelId rel, TermId o) const;

  // A resolved handle over one term's packed adjacency: the global→local
  // dictionary lookup happens once at `CursorFor`, so the fixpoint's inner
  // loops can issue many per-relation probes against the same term without
  // re-hashing its id. All spans stay valid for the store's lifetime.
  class FactsCursor {
   public:
    FactsCursor() = default;

    // False when the term is unknown (every accessor then returns empty).
    bool valid() const { return index_ != nullptr; }

    std::span<const Fact> all() const {
      return valid() ? index_->FactsAbout(local_) : std::span<const Fact>{};
    }
    std::span<const Fact> FactsWith(RelId rel) const {
      return valid() ? index_->FactsWith(local_, rel)
                     : std::span<const Fact>{};
    }
    std::span<const TermId> ObjectsOf(RelId rel) const {
      return valid() ? index_->ObjectsOf(local_, rel)
                     : std::span<const TermId>{};
    }
    bool Contains(RelId rel, TermId other) const {
      return valid() && index_->Contains(local_, rel, other);
    }

   private:
    friend class TripleStore;
    FactsCursor(const storage::ColumnarIndex* index, uint32_t local)
        : index_(index), local_(local) {}

    const storage::ColumnarIndex* index_ = nullptr;
    uint32_t local_ = 0;
  };

  // Resolves `t` once; invalid cursor if `t` is unknown to this ontology.
  FactsCursor CursorFor(TermId t) const;

  // Number of registered relations; valid positive ids are [1, count].
  size_t num_relations() const { return rel_names_.size(); }
  TermId relation_name(RelId rel) const {
    return rel_names_[static_cast<size_t>(BaseRel(rel)) - 1];
  }

  // Human-readable relation name; inverse relations get a "^-1" suffix.
  std::string RelationDebugName(RelId rel) const;

  // (first, second) pairs of `rel`, base direction only, sorted by
  // (first, second). For an inverse id the caller should swap the pair
  // components; `ForEachPair` does this.
  std::span<const TermPair> PairsOf(RelId rel) const {
    assert(finalized_);
    // A relation interned after Finalize() has no packed range until the
    // next MergeDelta().
    if (static_cast<size_t>(BaseRel(rel)) > index_.num_relations()) return {};
    return index_.PairsOf(BaseRel(rel));
  }

  // Invokes fn(x, y) for every pair of `rel` (handling inversion), stopping
  // after `limit` pairs (0 = no limit).
  void ForEachPair(RelId rel, size_t limit,
                   const std::function<void(TermId, TermId)>& fn) const;

  // Number of statements of `rel` (same for the inverse).
  size_t PairCount(RelId rel) const { return PairsOf(rel).size(); }

  // Every term that appears in some statement of this store, in first-seen
  // order.
  const std::vector<TermId>& terms() const { return terms_; }

  bool ContainsTerm(TermId t) const {
    return local_index_.find(t) != local_index_.end();
  }

  // Total number of distinct statements (not counting inverses twice).
  size_t num_triples() const { return index_.num_triples(); }

  // The packed storage engine (benchmarks, snapshot deep-equality).
  const storage::ColumnarIndex& index() const { return index_; }

  // The hexastore-style triple-pattern orderings over this store's
  // distinct statements (query engine; see storage::TriplePattern).
  // Subject/object components are global term ids.
  const storage::TriIndex& tri() const { return tri_; }

  // ---- Snapshot I/O (see src/storage/README.md) ----

  // Serializes the relation registry, term dictionary, and packed index as
  // one section. Requires a finalized store; term ids reference the pool,
  // which must be saved alongside (storage::SaveTermPool). The no-argument
  // form writes the current format version; `version` ==
  // storage::kMinSnapshotVersion writes a downlevel v2 section (CSR/POS
  // only — no TriIndex orderings or relation directory).
  void SaveTo(storage::SnapshotWriter& writer) const;
  void SaveTo(storage::SnapshotWriter& writer, uint32_t version) const;

  // Restores a finalized store whose term ids reference `pool` (already
  // loaded). Fails on structurally invalid or out-of-range data. With a
  // memory-backed reader (mmap'ed snapshot) the packed index columns
  // become zero-copy views into the mapping — only the dictionary hash
  // tables and the derived object column are materialized. `version` is
  // the snapshot file's format version: v3 sections carry the TriIndex
  // orderings and relation directory (adopted zero-copy), v2 sections get
  // them rebuilt in memory. The two-argument form loads the current
  // version.
  static util::StatusOr<TripleStore> LoadFrom(storage::SnapshotReader& reader,
                                              TermPool* pool);
  static util::StatusOr<TripleStore> LoadFrom(storage::SnapshotReader& reader,
                                              TermPool* pool,
                                              uint32_t version);

 private:
  uint32_t LocalIndex(TermId t);

  TermPool* pool_;
  bool finalized_ = false;

  // Relation registry.
  std::vector<TermId> rel_names_;
  std::unordered_map<TermId, RelId> rel_index_;

  // Term dictionary: global term id ↔ dense local index, first-seen order.
  std::unordered_map<TermId, uint32_t> local_index_;
  std::vector<TermId> terms_;

  // Ingest buffer; moved into the index by Finalize().
  std::vector<storage::ColumnarIndex::Entry> pending_;

  // The packed engine (empty until Finalize()).
  storage::ColumnarIndex index_;

  // The SPO/POS/OSP orderings, kept in lockstep with index_.
  storage::TriIndex tri_;
};

}  // namespace paris::rdf

#endif  // PARIS_RDF_STORE_H_
