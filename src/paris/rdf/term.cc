#include "paris/rdf/term.h"

namespace paris::rdf {

TermId TermPool::InternInternal(std::string_view lexical, TermKind kind,
                                Index& index) {
  auto it = index.find(lexical);
  if (it != index.end()) return it->second;
  const TermId id = static_cast<TermId>(lexical_.size());
  lexical_.emplace_back(lexical);
  kind_.push_back(kind);
  index.emplace(lexical_.back(), id);
  return id;
}

TermId TermPool::InternIri(std::string_view lexical) {
  return InternInternal(lexical, TermKind::kIri, iri_index_);
}

TermId TermPool::InternLiteral(std::string_view lexical) {
  return InternInternal(lexical, TermKind::kLiteral, literal_index_);
}

std::optional<TermId> TermPool::Find(std::string_view lexical,
                                     TermKind kind) const {
  const Index& index =
      kind == TermKind::kIri ? iri_index_ : literal_index_;
  auto it = index.find(lexical);
  if (it == index.end()) return std::nullopt;
  return it->second;
}

}  // namespace paris::rdf
