#ifndef PARIS_RDF_TRIPLE_H_
#define PARIS_RDF_TRIPLE_H_

#include <cstdint>
#include <cstdlib>

#include "paris/rdf/term.h"

namespace paris::rdf {

// Signed relation identifier. Positive ids 1..R denote the relations
// registered with a `TripleStore`; the negation `-r` denotes the inverse
// relation r⁻¹. Id 0 is invalid. This encoding materializes the paper's
// assumption (§3) that every ontology contains all inverse relations: a
// statement r(x,y) is visible from x as (r, y) and from y as (-r, x).
using RelId = int32_t;

inline constexpr RelId kNullRel = 0;

// The inverse of a (possibly already inverted) relation.
constexpr RelId Inverse(RelId r) { return -r; }

// True if `r` denotes an inverse relation r⁻¹.
constexpr bool IsInverse(RelId r) { return r < 0; }

// The positive base id of `r`.
constexpr RelId BaseRel(RelId r) { return r < 0 ? -r : r; }

// One edge of the per-entity adjacency: statement rel(owner, other) where
// `rel` may be inverted.
struct Fact {
  RelId rel;
  TermId other;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.rel == b.rel && a.other == b.other;
  }
};

// A fully-specified statement r(subject, object) with positive `rel`.
struct Triple {
  TermId subject;
  RelId rel;
  TermId object;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.rel == b.rel && a.object == b.object;
  }
};

// A (first-argument, second-argument) pair of some relation.
struct TermPair {
  TermId first;
  TermId second;

  friend bool operator==(const TermPair& a, const TermPair& b) {
    return a.first == b.first && a.second == b.second;
  }
};

}  // namespace paris::rdf

#endif  // PARIS_RDF_TRIPLE_H_
