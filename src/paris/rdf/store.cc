#include "paris/rdf/store.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "paris/storage/snapshot.h"

namespace paris::rdf {

RelId TripleStore::InternRelation(TermId name) {
  auto it = rel_index_.find(name);
  if (it != rel_index_.end()) return it->second;
  rel_names_.push_back(name);
  const RelId id = static_cast<RelId>(rel_names_.size());
  rel_index_.emplace(name, id);
  return id;
}

std::optional<RelId> TripleStore::FindRelation(TermId name) const {
  auto it = rel_index_.find(name);
  if (it == rel_index_.end()) return std::nullopt;
  return it->second;
}

uint32_t TripleStore::LocalIndex(TermId t) {
  auto [it, inserted] =
      local_index_.emplace(t, static_cast<uint32_t>(terms_.size()));
  if (inserted) terms_.push_back(t);
  return it->second;
}

void TripleStore::Add(TermId subject, RelId rel, TermId object) {
  assert(rel != kNullRel);
  if (rel < 0) {
    Add(object, -rel, subject);
    return;
  }
  assert(static_cast<size_t>(rel) <= rel_names_.size() &&
         "relation not registered");
  pending_.push_back({LocalIndex(subject), rel, object});
  pending_.push_back({LocalIndex(object), Inverse(rel), subject});
}

void TripleStore::Finalize(util::ThreadPool* pool, obs::Hooks hooks) {
  assert(!finalized_);
  index_ = storage::ColumnarIndex::Build(terms_, rel_names_.size(),
                                         std::move(pending_), pool, hooks);
  tri_ = storage::TriIndex::Build(index_, pool, hooks);
  pending_ = {};
  finalized_ = true;
}

std::span<const Fact> TripleStore::FactsAbout(TermId t) const {
  assert(finalized_);
  auto it = local_index_.find(t);
  // Terms first seen by a staged (unmerged) delta have no packed slice yet.
  if (it == local_index_.end() || it->second >= index_.num_terms()) return {};
  return index_.FactsAbout(it->second);
}

std::span<const Fact> TripleStore::FactsAbout(TermId t, RelId rel) const {
  assert(finalized_);
  auto it = local_index_.find(t);
  if (it == local_index_.end() || it->second >= index_.num_terms()) return {};
  return index_.FactsWith(it->second, rel);
}

std::span<const TermId> TripleStore::ObjectsOf(TermId t, RelId rel) const {
  assert(finalized_);
  auto it = local_index_.find(t);
  if (it == local_index_.end() || it->second >= index_.num_terms()) return {};
  return index_.ObjectsOf(it->second, rel);
}

bool TripleStore::Contains(TermId s, RelId rel, TermId o) const {
  assert(finalized_);
  auto it = local_index_.find(s);
  if (it == local_index_.end() || it->second >= index_.num_terms()) {
    return false;
  }
  return index_.Contains(it->second, rel, o);
}

TripleStore::FactsCursor TripleStore::CursorFor(TermId t) const {
  assert(finalized_);
  auto it = local_index_.find(t);
  if (it == local_index_.end() || it->second >= index_.num_terms()) return {};
  return FactsCursor(&index_, it->second);
}

TripleStore::DeltaMergeResult TripleStore::MergeDelta(util::ThreadPool* pool,
                                                      obs::Hooks hooks) {
  assert(finalized_ && "MergeDelta() requires a finalized store");
  const std::vector<storage::ColumnarIndex::Entry> kept = index_.MergeDelta(
      terms_, rel_names_.size(), std::move(pending_), pool, hooks);
  pending_ = {};

  DeltaMergeResult result;
  std::vector<Triple> novel;
  for (const auto& e : kept) {
    result.touched_terms.push_back(terms_[e.owner]);
    result.touched_relations.push_back(BaseRel(e.rel));
    if (e.rel > 0) {
      ++result.num_new_statements;
      // Each novel statement appears once with a positive relation (its
      // inverse half carries the negated id).
      novel.push_back(Triple{terms_[e.owner], e.rel, e.other});
    }
  }
  tri_.MergeDelta(std::move(novel));
  auto canonicalize = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  canonicalize(result.touched_terms);
  canonicalize(result.touched_relations);
  return result;
}

std::string TripleStore::RelationDebugName(RelId rel) const {
  std::string name(pool_->lexical(relation_name(rel)));
  if (IsInverse(rel)) name += "^-1";
  return name;
}

void TripleStore::ForEachPair(
    RelId rel, size_t limit,
    const std::function<void(TermId, TermId)>& fn) const {
  const auto pairs = PairsOf(rel);
  const size_t n =
      limit == 0 ? pairs.size() : std::min(limit, pairs.size());
  const bool inverted = IsInverse(rel);
  for (size_t i = 0; i < n; ++i) {
    if (inverted) {
      fn(pairs[i].second, pairs[i].first);
    } else {
      fn(pairs[i].first, pairs[i].second);
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot I/O
// ---------------------------------------------------------------------------

void TripleStore::SaveTo(storage::SnapshotWriter& writer) const {
  SaveTo(writer, storage::kSnapshotVersion);
}

void TripleStore::SaveTo(storage::SnapshotWriter& writer,
                         uint32_t version) const {
  assert(finalized_);
  assert(version >= storage::kMinSnapshotVersion &&
         version <= storage::kSnapshotVersion);
  writer.WritePodVector(rel_names_);
  writer.WritePodVector(terms_);
  writer.WritePodSpan(index_.offsets());
  writer.WritePodSpan(index_.facts());
  writer.WritePodSpan(index_.pair_offsets());
  writer.WritePodSpan(index_.pairs());
  if (version >= 3) {
    writer.WritePodSpan(index_.dir_offsets());
    writer.WritePodSpan(index_.dir());
    writer.WritePodSpan(tri_.spo_rows());
    writer.WritePodSpan(tri_.pos_rows());
    writer.WritePodSpan(tri_.osp_rows());
  }
}

util::StatusOr<TripleStore> TripleStore::LoadFrom(
    storage::SnapshotReader& reader, TermPool* pool) {
  return LoadFrom(reader, pool, storage::kSnapshotVersion);
}

util::StatusOr<TripleStore> TripleStore::LoadFrom(
    storage::SnapshotReader& reader, TermPool* pool, uint32_t version) {
  TripleStore store(pool);
  storage::Column<uint64_t> offsets;
  storage::Column<Fact> facts;
  storage::Column<uint64_t> pair_offsets;
  storage::Column<TermPair> pairs;
  storage::Column<uint64_t> dir_offsets;
  storage::Column<storage::ColumnarIndex::DirEntry> dir;
  storage::Column<storage::TriRow> spo;
  storage::Column<storage::TriRow> pos;
  storage::Column<storage::TriRow> osp;
  reader.ReadPodVector(&store.rel_names_);
  reader.ReadPodVector(&store.terms_);
  reader.ReadPodColumn(&offsets);
  reader.ReadPodColumn(&facts);
  reader.ReadPodColumn(&pair_offsets);
  reader.ReadPodColumn(&pairs);
  if (version >= 3) {
    reader.ReadPodColumn(&dir_offsets);
    reader.ReadPodColumn(&dir);
    reader.ReadPodColumn(&spo);
    reader.ReadPodColumn(&pos);
    reader.ReadPodColumn(&osp);
  }
  if (!reader.ok()) {
    return util::DataLossError("truncated triple store section");
  }

  const size_t pool_size = pool->size();
  auto valid_term = [pool_size](TermId t) {
    return static_cast<size_t>(t) < pool_size;
  };
  for (TermId name : store.rel_names_) {
    if (!valid_term(name)) {
      return util::DataLossError("relation name out of pool range");
    }
  }
  for (TermId t : store.terms_) {
    if (!valid_term(t)) {
      return util::DataLossError("term id out of pool range");
    }
  }
  for (const Fact& f : facts) {
    if (!valid_term(f.other)) {
      return util::DataLossError("fact object out of pool range");
    }
  }
  for (const TermPair& p : pairs) {
    if (!valid_term(p.first) || !valid_term(p.second)) {
      return util::DataLossError("pair term out of pool range");
    }
  }
  if (offsets.size() != store.terms_.size() + 1 ||
      pair_offsets.size() != store.rel_names_.size() + 1) {
    return util::DataLossError("inconsistent triple store columns");
  }
  if (version >= 3) {
    if (!storage::ColumnarIndex::FromColumns(
            std::move(offsets), std::move(facts), std::move(pair_offsets),
            std::move(pairs), std::move(dir_offsets), std::move(dir),
            reader.view_owner(), &store.index_)) {
      return util::DataLossError("inconsistent triple store columns");
    }
    if (!storage::TriIndex::FromColumns(store.index_, std::move(spo),
                                        std::move(pos), std::move(osp),
                                        reader.view_owner(), &store.tri_)) {
      return util::DataLossError("inconsistent triple-pattern orderings");
    }
  } else {
    if (!storage::ColumnarIndex::FromColumns(
            std::move(offsets), std::move(facts), std::move(pair_offsets),
            std::move(pairs), reader.view_owner(), &store.index_)) {
      return util::DataLossError("inconsistent triple store columns");
    }
    // Downlevel (v2) sections predate the persisted orderings; rebuild them
    // deterministically from the loaded index.
    store.tri_ = storage::TriIndex::Build(store.index_);
  }

  store.rel_index_.reserve(store.rel_names_.size());
  for (size_t i = 0; i < store.rel_names_.size(); ++i) {
    if (!store.rel_index_
             .emplace(store.rel_names_[i], static_cast<RelId>(i + 1))
             .second) {
      return util::DataLossError("duplicate relation name");
    }
  }
  store.local_index_.reserve(store.terms_.size());
  for (size_t i = 0; i < store.terms_.size(); ++i) {
    if (!store.local_index_
             .emplace(store.terms_[i], static_cast<uint32_t>(i))
             .second) {
      return util::DataLossError("duplicate term in dictionary");
    }
  }
  store.finalized_ = true;
  return store;
}

}  // namespace paris::rdf
