#ifndef PARIS_RDF_NTRIPLES_H_
#define PARIS_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "paris/util/status.h"

namespace paris::rdf {

// One parsed N-Triples statement, with IRIs and literal lexical forms
// unescaped. Datatype and language tags are preserved but PARIS ignores them
// (the paper normalizes literals by dropping datatype/dimension info, §5.3).
struct ParsedTriple {
  std::string subject;    // IRI
  std::string predicate;  // IRI
  std::string object;     // IRI or literal lexical form
  bool object_is_literal = false;
  std::string datatype;  // IRI of ^^<datatype>, or empty
  std::string language;  // @lang tag, or empty
};

// Receives statements from the parser. Implemented by `OntologyBuilder` and
// by the convenience vector sink below.
class TripleSink {
 public:
  virtual ~TripleSink() = default;
  virtual void OnTriple(const ParsedTriple& triple) = 0;
};

// Collects parsed triples into a vector (testing / small inputs).
class VectorTripleSink : public TripleSink {
 public:
  void OnTriple(const ParsedTriple& triple) override {
    triples_.push_back(triple);
  }
  const std::vector<ParsedTriple>& triples() const { return triples_; }

 private:
  std::vector<ParsedTriple> triples_;
};

// A line-oriented N-Triples parser (W3C N-Triples subset: IRIs, plain /
// typed / language-tagged literals, comments, blank lines). Blank nodes are
// rejected — the paper's data model has no anonymous resources.
class NTriplesParser {
 public:
  // Parses an entire document; stops at the first malformed line, returning
  // an error that names the 1-based line number.
  static util::Status ParseDocument(std::string_view text, TripleSink* sink);

  // Parses a single line. Returns OK and sets `*is_triple=false` for blank /
  // comment-only lines.
  static util::Status ParseLine(std::string_view line, ParsedTriple* out,
                                bool* is_triple);

  // Reads and parses a file from disk.
  static util::Status ParseFile(const std::string& path, TripleSink* sink);
};

// Serializes statements back to N-Triples, escaping literals.
class NTriplesWriter {
 public:
  static std::string FormatTriple(const ParsedTriple& triple);
  static void WriteTriples(const std::vector<ParsedTriple>& triples,
                           std::ostream& out);
};

// Escapes a literal lexical form per N-Triples rules (\" \\ \n \r \t).
std::string EscapeLiteral(std::string_view s);

}  // namespace paris::rdf

#endif  // PARIS_RDF_NTRIPLES_H_
