#ifndef PARIS_RDF_TURTLE_H_
#define PARIS_RDF_TURTLE_H_

#include <string>
#include <string_view>

#include "paris/rdf/ntriples.h"
#include "paris/util/status.h"

namespace paris::rdf {

// A parser for the Turtle subset that real knowledge-base dumps use:
//
//   @prefix ex: <http://example.org/> .      # prefix declarations
//   ex:elvis a ex:Singer ;                   # 'a' = rdf:type, ';' lists
//       ex:name "Elvis Presley" ,            # ',' repeats the predicate
//               "The King"@en ;
//       ex:born "1935"^^xsd:integer .
//   <http://full.iri/x> ex:knows ex:elvis .
//
// Supported: @prefix / PREFIX, prefixed names, full IRIs, the `a` keyword,
// `;` predicate lists, `,` object lists, plain / typed / language-tagged
// literals with the usual escapes, long (""" ''' ) strings, numeric and
// boolean literal abbreviations, and comments. Not supported (rejected
// with a parse error): blank nodes, collections `( ... )`, and @base with
// relative IRI resolution — the paper's data model has no anonymous
// resources, and the synthetic datasets use absolute identifiers.
//
// Parsed statements are emitted to the same `TripleSink` interface the
// N-Triples parser uses, so `OntologyBuilder` consumes either format.
class TurtleParser {
 public:
  // Parses a full document; on error, names the 1-based line of the
  // offending token.
  static util::Status ParseDocument(std::string_view text, TripleSink* sink);

  static util::Status ParseFile(const std::string& path, TripleSink* sink);
};

}  // namespace paris::rdf

#endif  // PARIS_RDF_TURTLE_H_
