#include "paris/rdf/turtle.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "paris/ontology/vocab.h"

namespace paris::rdf {

namespace {

// Token kinds produced by the scanner.
enum class TokenKind {
  kIri,           // <...> (unescaped)
  kPrefixedName,  // ex:name (raw; resolved later), also bare "a"
  kLiteral,       // string body (unescaped); datatype/lang in side fields
  kNumber,        // numeric abbreviation
  kBoolean,       // true / false
  kDot,
  kSemicolon,
  kComma,
  kAtPrefix,  // @prefix or PREFIX
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // IRI body, prefixed name, literal body, number
  std::string datatype;  // for kLiteral
  std::string language;  // for kLiteral
  size_t line = 0;
};

class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  util::Status Next(Token* token) {
    SkipWhitespaceAndComments();
    token->text.clear();
    token->datatype.clear();
    token->language.clear();
    token->line = line_;
    if (AtEnd()) {
      token->kind = TokenKind::kEnd;
      return util::OkStatus();
    }
    const char c = Peek();
    switch (c) {
      case '.':
        // Distinguish statement dot from a decimal point (handled in
        // number scanning; a bare '.' here is always a terminator).
        ++pos_;
        token->kind = TokenKind::kDot;
        return util::OkStatus();
      case ';':
        ++pos_;
        token->kind = TokenKind::kSemicolon;
        return util::OkStatus();
      case ',':
        ++pos_;
        token->kind = TokenKind::kComma;
        return util::OkStatus();
      case '<':
        return ScanIri(token);
      case '"':
      case '\'':
        return ScanLiteral(token, c);
      case '@':
        return ScanAtKeyword(token);
      case '(':
      case ')':
        return Error("collections are not supported");
      case '[':
      case ']':
        return Error("blank nodes are not supported");
      case '_':
        return Error("blank nodes are not supported");
      default:
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' ||
            c == '-') {
          return ScanNumber(token);
        }
        return ScanName(token);
    }
  }

  size_t line() const { return line_; }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }

  util::Status Error(const std::string& what) const {
    return util::InvalidArgumentError("line " + std::to_string(line_) + ": " +
                                      what);
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  util::Status ScanIri(Token* token) {
    ++pos_;  // consume '<'
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated IRI");
      const char c = Peek();
      if (c == '>') {
        ++pos_;
        break;
      }
      if (c == '\\') {
        util::Status s = AppendEscape(&out);
        if (!s.ok()) return s;
        continue;
      }
      if (c == '\n') return Error("newline in IRI");
      out.push_back(c);
      ++pos_;
    }
    token->kind = TokenKind::kIri;
    token->text = std::move(out);
    return util::OkStatus();
  }

  // Handles \t \n \r \" \' \\ \uXXXX \UXXXXXXXX; cursor on the backslash.
  util::Status AppendEscape(std::string* out) {
    ++pos_;  // consume backslash
    if (AtEnd()) return Error("dangling escape");
    const char esc = Peek();
    ++pos_;
    switch (esc) {
      case 't':
        out->push_back('\t');
        return util::OkStatus();
      case 'n':
        out->push_back('\n');
        return util::OkStatus();
      case 'r':
        out->push_back('\r');
        return util::OkStatus();
      case '"':
        out->push_back('"');
        return util::OkStatus();
      case '\'':
        out->push_back('\'');
        return util::OkStatus();
      case '\\':
        out->push_back('\\');
        return util::OkStatus();
      case 'u':
      case 'U': {
        const size_t ndigits = esc == 'u' ? 4 : 8;
        uint32_t code = 0;
        for (size_t i = 0; i < ndigits; ++i) {
          if (AtEnd()) return Error("truncated unicode escape");
          const char d = Peek();
          code <<= 4;
          if (d >= '0' && d <= '9') {
            code |= static_cast<uint32_t>(d - '0');
          } else if (d >= 'a' && d <= 'f') {
            code |= static_cast<uint32_t>(d - 'a' + 10);
          } else if (d >= 'A' && d <= 'F') {
            code |= static_cast<uint32_t>(d - 'A' + 10);
          } else {
            return Error("bad hex digit in unicode escape");
          }
          ++pos_;
        }
        // UTF-8 encode.
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xc0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else if (code < 0x10000) {
          out->push_back(static_cast<char>(0xe0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
          out->push_back(static_cast<char>(0xf0 | (code >> 18)));
          out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
        return util::OkStatus();
      }
      default:
        return Error("unknown escape");
    }
  }

  util::Status ScanLiteral(Token* token, char quote) {
    // Long string ("""...""" or '''...''')?
    const bool long_string = PeekAt(1) == quote && PeekAt(2) == quote;
    pos_ += long_string ? 3 : 1;
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      const char c = Peek();
      if (c == quote) {
        if (!long_string) {
          ++pos_;
          break;
        }
        if (PeekAt(1) == quote && PeekAt(2) == quote) {
          pos_ += 3;
          break;
        }
        out.push_back(c);
        ++pos_;
        continue;
      }
      if (c == '\\') {
        util::Status s = AppendEscape(&out);
        if (!s.ok()) return s;
        continue;
      }
      if (c == '\n') {
        if (!long_string) return Error("newline in string literal");
        ++line_;
      }
      out.push_back(c);
      ++pos_;
    }
    token->kind = TokenKind::kLiteral;
    token->text = std::move(out);
    // Optional ^^datatype or @lang suffix.
    if (!AtEnd() && Peek() == '^') {
      if (PeekAt(1) != '^') return Error("expected '^^'");
      pos_ += 2;
      Token dt;
      if (AtEnd()) return Error("missing datatype");
      if (Peek() == '<') {
        util::Status s = ScanIri(&dt);
        if (!s.ok()) return s;
        token->datatype = dt.text;
      } else {
        util::Status s = ScanName(&dt);
        if (!s.ok()) return s;
        token->datatype = dt.text;  // prefixed datatype kept verbatim
      }
    } else if (!AtEnd() && Peek() == '@') {
      ++pos_;
      std::string lang;
      while (!AtEnd() &&
             (std::isalnum(static_cast<unsigned char>(Peek())) ||
              Peek() == '-')) {
        lang.push_back(Peek());
        ++pos_;
      }
      if (lang.empty()) return Error("empty language tag");
      token->language = std::move(lang);
    }
    return util::OkStatus();
  }

  util::Status ScanAtKeyword(Token* token) {
    ++pos_;  // consume '@'
    std::string word;
    while (!AtEnd() && std::isalpha(static_cast<unsigned char>(Peek()))) {
      word.push_back(Peek());
      ++pos_;
    }
    if (word == "prefix") {
      token->kind = TokenKind::kAtPrefix;
      return util::OkStatus();
    }
    if (word == "base") return Error("@base is not supported");
    return Error("unknown @ directive: @" + word);
  }

  util::Status ScanNumber(Token* token) {
    std::string out;
    if (Peek() == '+' || Peek() == '-') {
      out.push_back(Peek());
      ++pos_;
    }
    bool saw_digit = false;
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        saw_digit = true;
        out.push_back(c);
        ++pos_;
        continue;
      }
      // A '.' is part of the number only if followed by a digit
      // (otherwise it terminates the statement).
      if (c == '.' && std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
        out.push_back(c);
        ++pos_;
        continue;
      }
      if ((c == 'e' || c == 'E') && saw_digit) {
        out.push_back(c);
        ++pos_;
        if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
          out.push_back(Peek());
          ++pos_;
        }
        continue;
      }
      break;
    }
    if (!saw_digit) return Error("malformed number");
    token->kind = TokenKind::kNumber;
    token->text = std::move(out);
    return util::OkStatus();
  }

  // Prefixed name (ex:name), bare keyword (a, true, false), or the
  // SPARQL-style PREFIX directive.
  util::Status ScanName(Token* token) {
    std::string out;
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c)) || c == ';' ||
          c == ',' || c == '#' || c == '"' || c == '\'' || c == '<' ||
          c == '(' || c == ')' || c == '[' || c == ']') {
        break;
      }
      // A '.' ends the name unless followed by a name character (IRI local
      // parts may contain dots, e.g. ex:v1.2, but "ex:x ." must split).
      if (c == '.') {
        const char next = PeekAt(1);
        if (!(std::isalnum(static_cast<unsigned char>(next)) ||
              next == '_' || next == '-')) {
          break;
        }
      }
      out.push_back(c);
      ++pos_;
    }
    if (out.empty()) return Error("unexpected character");
    if (out == "true" || out == "false") {
      token->kind = TokenKind::kBoolean;
      token->text = std::move(out);
      return util::OkStatus();
    }
    if (out == "PREFIX" || out == "prefix") {
      token->kind = TokenKind::kAtPrefix;
      return util::OkStatus();
    }
    token->kind = TokenKind::kPrefixedName;
    token->text = std::move(out);
    return util::OkStatus();
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

// Statement-level parser driving the scanner.
class Parser {
 public:
  Parser(std::string_view text, TripleSink* sink)
      : scanner_(text), sink_(sink) {}

  util::Status Run() {
    util::Status s = Advance();
    if (!s.ok()) return s;
    while (token_.kind != TokenKind::kEnd) {
      if (token_.kind == TokenKind::kAtPrefix) {
        s = ParsePrefixDirective();
      } else {
        s = ParseStatement();
      }
      if (!s.ok()) return s;
    }
    return util::OkStatus();
  }

 private:
  util::Status Advance() { return scanner_.Next(&token_); }

  util::Status Error(const std::string& what) const {
    return util::InvalidArgumentError(
        "line " + std::to_string(token_.line) + ": " + what);
  }

  // @prefix ex: <http://...> .
  util::Status ParsePrefixDirective() {
    util::Status s = Advance();
    if (!s.ok()) return s;
    if (token_.kind != TokenKind::kPrefixedName || token_.text.empty() ||
        token_.text.back() != ':') {
      return Error("expected prefix label ending in ':'");
    }
    const std::string label = token_.text.substr(0, token_.text.size() - 1);
    s = Advance();
    if (!s.ok()) return s;
    if (token_.kind != TokenKind::kIri) return Error("expected IRI");
    prefixes_[label] = token_.text;
    s = Advance();
    if (!s.ok()) return s;
    // @prefix requires a dot; SPARQL-style PREFIX does not.
    if (token_.kind == TokenKind::kDot) return Advance();
    return util::OkStatus();
  }

  // Expands ex:name using the declared prefixes. The bare keyword `a`
  // expands to rdf:type.
  util::Status ResolveName(const std::string& name, std::string* out) const {
    if (name == "a") {
      *out = std::string(ontology::kRdfType);
      return util::OkStatus();
    }
    const size_t colon = name.find(':');
    if (colon == std::string::npos) {
      return util::InvalidArgumentError("line " + std::to_string(token_.line) +
                                        ": bare name without prefix: " + name);
    }
    const std::string prefix = name.substr(0, colon);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return util::InvalidArgumentError("line " + std::to_string(token_.line) +
                                        ": undeclared prefix: " + prefix);
    }
    *out = it->second + name.substr(colon + 1);
    return util::OkStatus();
  }

  // subject predicate object (',' object)* (';' predicate ...)* '.'
  util::Status ParseStatement() {
    std::string subject;
    util::Status s = ParseResource(&subject, "subject");
    if (!s.ok()) return s;

    while (true) {
      std::string predicate;
      s = ParseResource(&predicate, "predicate");
      if (!s.ok()) return s;

      while (true) {
        ParsedTriple triple;
        triple.subject = subject;
        triple.predicate = predicate;
        s = ParseObject(&triple);
        if (!s.ok()) return s;
        sink_->OnTriple(triple);
        if (token_.kind == TokenKind::kComma) {
          s = Advance();
          if (!s.ok()) return s;
          continue;
        }
        break;
      }

      if (token_.kind == TokenKind::kSemicolon) {
        s = Advance();
        if (!s.ok()) return s;
        // A trailing ';' before '.' is legal Turtle.
        if (token_.kind == TokenKind::kDot) break;
        continue;
      }
      break;
    }
    if (token_.kind != TokenKind::kDot) return Error("expected '.'");
    return Advance();
  }

  // Consumes the current token as an IRI or prefixed name.
  util::Status ParseResource(std::string* out, const char* what) {
    if (token_.kind == TokenKind::kIri) {
      *out = token_.text;
      return Advance();
    }
    if (token_.kind == TokenKind::kPrefixedName) {
      util::Status s = ResolveName(token_.text, out);
      if (!s.ok()) return s;
      return Advance();
    }
    return Error(std::string("expected ") + what);
  }

  util::Status ParseObject(ParsedTriple* triple) {
    switch (token_.kind) {
      case TokenKind::kIri:
      case TokenKind::kPrefixedName: {
        triple->object_is_literal = false;
        return ParseResource(&triple->object, "object");
      }
      case TokenKind::kLiteral: {
        triple->object_is_literal = true;
        triple->object = token_.text;
        triple->language = token_.language;
        if (!token_.datatype.empty()) {
          // Datatype may itself be a prefixed name.
          if (token_.datatype.find("://") == std::string::npos &&
              token_.datatype.find(':') != std::string::npos) {
            util::Status s = ResolveName(token_.datatype, &triple->datatype);
            if (!s.ok()) triple->datatype = token_.datatype;  // keep verbatim
          } else {
            triple->datatype = token_.datatype;
          }
        }
        return Advance();
      }
      case TokenKind::kNumber: {
        triple->object_is_literal = true;
        triple->object = token_.text;
        triple->datatype = token_.text.find('.') != std::string::npos ||
                                   token_.text.find('e') != std::string::npos
                               ? "http://www.w3.org/2001/XMLSchema#decimal"
                               : "http://www.w3.org/2001/XMLSchema#integer";
        return Advance();
      }
      case TokenKind::kBoolean: {
        triple->object_is_literal = true;
        triple->object = token_.text;
        triple->datatype = "http://www.w3.org/2001/XMLSchema#boolean";
        return Advance();
      }
      default:
        return Error("expected object");
    }
  }

  Scanner scanner_;
  TripleSink* sink_;
  Token token_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

util::Status TurtleParser::ParseDocument(std::string_view text,
                                         TripleSink* sink) {
  Parser parser(text, sink);
  return parser.Run();
}

util::Status TurtleParser::ParseFile(const std::string& path,
                                     TripleSink* sink) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDocument(buffer.str(), sink);
}

}  // namespace paris::rdf
