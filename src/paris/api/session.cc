#include "paris/api/session.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ostream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "paris/core/checkpoint.h"
#include "paris/core/result_io.h"
#include "paris/core/result_snapshot.h"
#include "paris/core/telemetry.h"
#include "paris/obs/metrics.h"
#include "paris/obs/trace.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/turtle.h"

namespace paris::api {

namespace {

// Prefixes an error with the file it concerns, so every facade failure
// reports the failing path uniformly. Skipped when the underlying layer
// already named it.
util::Status Annotate(const std::string& context, const util::Status& status) {
  if (status.ok()) return status;
  if (status.message().find(context) != std::string::npos) return status;
  return util::Status(status.code(), context + ": " + status.message());
}

// printf-style formatting into a std::string (the stats report reproduces
// the historical printf output byte for byte, so iostream formatting is
// not an option).
template <typename... Args>
std::string StrFormat(const char* format, Args... args) {
  const int size = std::snprintf(nullptr, 0, format, args...);
  std::string out(static_cast<size_t>(size), '\0');
  std::snprintf(out.data(), out.size() + 1, format, args...);
  return out;
}

// Files ending in .ttl/.turtle are parsed as Turtle, everything else as
// N-Triples.
util::Status ParseRdfFile(const std::string& path, rdf::TripleSink* sink) {
  const bool turtle =
      path.size() >= 4 &&
      (path.rfind(".ttl") == path.size() - 4 ||
       (path.size() >= 7 && path.rfind(".turtle") == path.size() - 7));
  return turtle ? rdf::TurtleParser::ParseFile(path, sink)
                : rdf::NTriplesParser::ParseFile(path, sink);
}

}  // namespace

Session::Session() : Session(Options()) {}

Session::Session(Options options) : options_(std::move(options)) {
  // Sized for the worker pool `workers()` would create: slots [0, threads)
  // for the pool workers plus a main slot — matching how the instrumented
  // layers hand out slot ids (obs/hooks.h).
  const size_t worker_slots =
      options_.config.num_threads > 0 ? options_.config.num_threads : 1;
  if (options_.trace) {
    trace_ = std::make_unique<obs::TraceRecorder>(worker_slots);
  }
  if (options_.metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>(worker_slots);
  }
}

Session::~Session() = default;

util::ThreadPool* Session::workers() {
  if (thread_pool_ == nullptr && options_.config.num_threads > 0) {
    thread_pool_ =
        std::make_unique<util::ThreadPool>(options_.config.num_threads);
  }
  return thread_pool_.get();
}

util::Status Session::LoadFromFiles(const std::string& left_path,
                                    const std::string& right_path) {
  if (loaded()) {
    return util::FailedPreconditionError(
        "session already has ontologies loaded");
  }
  auto pool = std::make_unique<rdf::TermPool>();

  ontology::OntologyBuilder left_builder(pool.get(), "left");
  {
    obs::Span span(trace_.get(), hooks().main_slot(), "io", "rdf.parse.left");
    auto status = ParseRdfFile(left_path, &left_builder);
    if (!status.ok()) return Annotate(left_path, status);
  }
  auto left = left_builder.Build(workers(), hooks());
  if (!left.ok()) return Annotate("left ontology", left.status());

  ontology::OntologyBuilder right_builder(pool.get(), "right");
  {
    obs::Span span(trace_.get(), hooks().main_slot(), "io",
                   "rdf.parse.right");
    auto status = ParseRdfFile(right_path, &right_builder);
    if (!status.ok()) return Annotate(right_path, status);
  }
  auto right = right_builder.Build(workers(), hooks());
  if (!right.ok()) return Annotate("right ontology", right.status());

  pool_ = std::move(pool);
  left_.emplace(std::move(left).value());
  right_.emplace(std::move(right).value());
  return util::OkStatus();
}

util::Status Session::LoadFromSnapshot(const std::string& path) {
  if (loaded()) {
    return util::FailedPreconditionError(
        "session already has ontologies loaded");
  }
  // The loader leaves a pool unspecified on failure, so commit the pool to
  // the session only once the load succeeded.
  auto pool = std::make_unique<rdf::TermPool>();
  obs::Span span(trace_.get(), hooks().main_slot(), "io", "snapshot.load");
  auto snapshot = ontology::LoadAlignmentSnapshot(path, pool.get(),
                                                  options_.snapshot_load_mode);
  if (!snapshot.ok()) return Annotate(path, snapshot.status());
  pool_ = std::move(pool);
  left_.emplace(std::move(snapshot->left));
  right_.emplace(std::move(snapshot->right));
  return util::OkStatus();
}

util::Status Session::SaveSnapshot(const std::string& path) const {
  if (!loaded()) {
    return util::FailedPreconditionError("no ontologies loaded");
  }
  obs::Span span(trace_.get(), hooks().main_slot(), "io", "snapshot.save");
  return Annotate(path, ontology::SaveAlignmentSnapshot(path, *left_, *right_));
}

util::Status Session::Align(const RunCallbacks& callbacks) {
  return RunAligner(callbacks, /*resume_path=*/"");
}

util::Status Session::Resume(const std::string& result_snapshot_path,
                             const RunCallbacks& callbacks) {
  return RunAligner(callbacks, result_snapshot_path);
}

util::StatusOr<std::unique_ptr<core::Aligner>> Session::MakeAligner(
    const RunCallbacks& callbacks, std::atomic<bool>* cancelled) {
  const MatcherRegistry& registry =
      options_.registry != nullptr ? *options_.registry
                                   : MatcherRegistry::Default();
  auto factory = registry.Resolve(options_.matcher);
  if (!factory.ok()) return factory.status();

  auto aligner =
      std::make_unique<core::Aligner>(*left_, *right_, options_.config);
  aligner->set_literal_matcher_factory(std::move(factory).value());
  aligner->set_matcher_name(options_.matcher);
  aligner->set_thread_pool(workers());
  aligner->set_observability(hooks());

  // `cancelled` is written from the run thread (iteration observer) and
  // from pool workers (shard observer); the runs never overlap, but the
  // atomic keeps the flag race-free without leaning on the pool's
  // synchronization. The callbacks are copied into the observers: the
  // aligner outlives this call (the caller runs it next), the caller's
  // RunCallbacks may not.
  aligner->set_iteration_observer(
      [callbacks, cancelled, this](const core::IterationRecord& record) {
        if (callbacks.on_iteration) {
          IterationProgress progress;
          progress.iteration = record.index;
          progress.max_iterations = options_.config.max_iterations;
          progress.num_aligned = record.num_left_aligned;
          progress.change_fraction = record.change_fraction;
          progress.seconds =
              record.seconds_instances + record.seconds_relations;
          progress.num_changed = record.telemetry.num_changed();
          callbacks.on_iteration(progress);
        }
        if (callbacks.cancellation && callbacks.cancellation->cancelled()) {
          cancelled->store(true, std::memory_order_relaxed);
          return false;
        }
        return true;
      });
  // Shard-granular progress + cancellation: polled after every completed
  // shard, so a cancel takes effect mid-pass instead of waiting out the
  // instance pass (minutes at YAGO scale). The aligner checkpoints the
  // completed shards; Resume picks them up.
  if (callbacks.on_shard || callbacks.cancellation) {
    aligner->set_shard_observer(
        [callbacks, cancelled](const core::ShardProgress& shard) {
          if (callbacks.on_shard) {
            ShardProgress progress;
            progress.pass = shard.pass;
            progress.iteration = shard.iteration;
            progress.shard = shard.shard;
            progress.num_shards = shard.num_shards;
            progress.num_completed = shard.num_completed;
            callbacks.on_shard(progress);
          }
          if (callbacks.cancellation && callbacks.cancellation->cancelled()) {
            cancelled->store(true, std::memory_order_relaxed);
            return false;
          }
          return true;
        });
  }
  return aligner;
}

util::Status Session::RunAligner(const RunCallbacks& callbacks,
                                 const std::string& resume_path) {
  if (!loaded()) {
    return util::FailedPreconditionError(
        "no ontologies loaded; call LoadFromFiles or LoadFromSnapshot first");
  }
  if (has_result()) {
    return util::FailedPreconditionError(
        "session already has an alignment result; one Session runs one "
        "alignment — create a new Session to re-run, or stage a delta and "
        "Realign to update this one");
  }
  std::atomic<bool> cancelled{false};
  auto made = MakeAligner(callbacks, &cancelled);
  if (!made.ok()) return made.status();
  core::Aligner& aligner = **made;

  size_t resumed = 0;
  if (resume_path.empty()) {
    // Crash recovery: adopt the newest usable periodic checkpoint, if the
    // caller opted in and a previous run left one behind. Anything short of
    // a clean load (no directory, no manifest, corrupt or incompatible
    // files) degrades to a cold start — the checkpoint loader has already
    // logged why.
    std::optional<core::AlignmentResult> adopted;
    if (options_.auto_resume && !options_.config.checkpoint_dir.empty()) {
      obs::Span span(trace_.get(), hooks().main_slot(), "io",
                     "checkpoint.load");
      auto checkpoint = core::LoadLatestCheckpoint(
          options_.config.checkpoint_dir, *left_, *right_, aligner.config(),
          options_.matcher);
      if (checkpoint.ok()) adopted.emplace(std::move(checkpoint).value());
    }
    if (adopted.has_value()) {
      resumed = adopted->iterations.size();
      result_.emplace(aligner.Resume(std::move(*adopted)));
    } else {
      result_.emplace(aligner.Run());
    }
  } else {
    auto checkpoint = [&] {
      obs::Span span(trace_.get(), hooks().main_slot(), "io", "result.load");
      return core::LoadAlignmentResult(resume_path, *left_, *right_,
                                       aligner.config(), options_.matcher,
                                       options_.snapshot_load_mode);
    }();
    if (!checkpoint.ok()) return Annotate(resume_path, checkpoint.status());
    resumed = checkpoint->iterations.size();
    result_.emplace(aligner.Resume(std::move(checkpoint).value()));
  }
  return FinishRun(aligner, resumed, cancelled.load(std::memory_order_relaxed));
}

util::Status Session::FinishRun(const core::Aligner& aligner, size_t resumed,
                                bool cancelled) {
  resolved_config_ = aligner.config();
  resumed_iterations_ = resumed;
  // A cancellation that raced the natural end of the run (the converging
  // iteration, or the iteration cap) stopped nothing: the result is the
  // complete one, so report success, not kCancelled.
  const bool finished_naturally =
      result_->converged_at > 0 ||
      result_->iterations.size() >=
          static_cast<size_t>(resolved_config_.max_iterations);
  cancelled_ = cancelled && !finished_naturally;
  if (cancelled_) {
    std::string detail;
    if (result_->partial.has_value()) {
      detail = " (iteration " + std::to_string(result_->partial->iteration) +
               " checkpointed after " +
               std::to_string(result_->partial->shards.size()) + " of " +
               std::to_string(result_->partial->num_shards) + " " +
               (result_->partial->pass == core::kInstancePass ? "instance"
                                                              : "relation") +
               "-pass shards)";
    }
    return util::CancelledError(
        "alignment cancelled after iteration " +
        std::to_string(result_->iterations.size()) + detail +
        "; the partial result is retained and can be saved with SaveResult");
  }
  return util::OkStatus();
}

util::Status Session::ApplyDelta(DeltaSide side,
                                 std::vector<rdf::ParsedTriple> triples) {
  if (!loaded()) {
    return util::FailedPreconditionError(
        "no ontologies loaded; call LoadFromFiles or LoadFromSnapshot first");
  }
  staged_deltas_.push_back({side, std::move(triples)});
  return util::OkStatus();
}

util::Status Session::ApplyDelta(DeltaSide side,
                                 const std::string& delta_path) {
  if (!loaded()) {
    return util::FailedPreconditionError(
        "no ontologies loaded; call LoadFromFiles or LoadFromSnapshot first");
  }
  rdf::VectorTripleSink sink;
  {
    obs::Span span(trace_.get(), hooks().main_slot(), "io", "rdf.parse.delta");
    auto status = ParseRdfFile(delta_path, &sink);
    if (!status.ok()) return Annotate(delta_path, status);
  }
  staged_deltas_.push_back({side, sink.triples()});
  return util::OkStatus();
}

util::Status Session::Realign(const RunCallbacks& callbacks) {
  return RealignInternal(/*realign_from=*/"", callbacks);
}

util::Status Session::Realign(const std::string& realign_from,
                              const RunCallbacks& callbacks) {
  if (realign_from.empty()) {
    return util::InvalidArgumentError("empty result snapshot path");
  }
  return RealignInternal(realign_from, callbacks);
}

util::Status Session::RealignInternal(const std::string& realign_from,
                                      const RunCallbacks& callbacks) {
  if (!loaded()) {
    return util::FailedPreconditionError(
        "no ontologies loaded; call LoadFromFiles or LoadFromSnapshot first");
  }
  if (staged_deltas_.empty()) {
    return util::FailedPreconditionError(
        "no delta staged; call ApplyDelta before Realign");
  }
  std::atomic<bool> cancelled{false};
  auto made = MakeAligner(callbacks, &cancelled);
  if (!made.ok()) return made.status();
  core::Aligner& aligner = **made;

  // Resolve the base result BEFORE merging any delta: a result snapshot's
  // compatibility key fingerprints the pre-delta ontology pair (the run it
  // captures aligned those stores), so the load must see them unmodified.
  core::AlignmentResult base;
  if (!realign_from.empty()) {
    auto loaded_result = [&] {
      obs::Span span(trace_.get(), hooks().main_slot(), "io", "result.load");
      return core::LoadAlignmentResult(realign_from, *left_, *right_,
                                       aligner.config(), options_.matcher,
                                       options_.snapshot_load_mode);
    }();
    if (!loaded_result.ok()) {
      return Annotate(realign_from, loaded_result.status());
    }
    base = std::move(loaded_result).value();
    result_.reset();
  } else {
    if (!has_result()) {
      return util::FailedPreconditionError(
          "nothing to realign from; run Align first or pass a result "
          "snapshot path");
    }
    base = std::move(*result_);
    result_.reset();
  }

  core::RealignSeed seed;
  for (size_t i = 0; i < staged_deltas_.size(); ++i) {
    StagedDelta& delta = staged_deltas_[i];
    ontology::Ontology& onto =
        delta.side == DeltaSide::kLeft ? *left_ : *right_;
    auto summary = [&] {
      obs::Span span(trace_.get(), hooks().main_slot(), "io", "delta.merge");
      return onto.ApplyDelta(delta.triples, workers(), hooks());
    }();
    if (!summary.ok()) {
      // Batches merged before the failing one stay merged (Ontology's
      // ApplyDelta is all-or-nothing per batch, so the stores are
      // consistent); drop the failing and later batches and put the base
      // result back so the session stays usable.
      staged_deltas_.clear();
      result_.emplace(std::move(base));
      return Annotate("delta batch " + std::to_string(i + 1),
                      summary.status());
    }
    std::vector<rdf::TermId>& touched = delta.side == DeltaSide::kLeft
                                            ? seed.left_touched_terms
                                            : seed.right_touched_terms;
    touched.insert(touched.end(), summary->touched_terms.begin(),
                   summary->touched_terms.end());
  }
  staged_deltas_.clear();
  for (auto* touched : {&seed.left_touched_terms, &seed.right_touched_terms}) {
    std::sort(touched->begin(), touched->end());
    touched->erase(std::unique(touched->begin(), touched->end()),
                   touched->end());
  }
  seed.instances = std::move(base.instances);
  seed.relations = std::move(base.relations);

  result_.emplace(aligner.Realign(std::move(seed)));
  return FinishRun(aligner, /*resumed=*/0,
                   cancelled.load(std::memory_order_relaxed));
}

util::Status Session::SaveResult(const std::string& path) const {
  if (!has_result()) {
    return util::FailedPreconditionError("no alignment result to save");
  }
  obs::Span span(trace_.get(), hooks().main_slot(), "io", "result.save");
  return Annotate(path,
                  core::SaveAlignmentResult(path, *result_, *left_, *right_,
                                            resolved_config_,
                                            options_.matcher));
}

util::StatusOr<std::vector<rdf::Triple>> Session::Query(
    DeltaSide side, const storage::TriplePattern& pattern,
    size_t limit) const {
  if (!loaded()) {
    return util::FailedPreconditionError("no ontologies loaded to query");
  }
  const ontology::Ontology& onto =
      side == DeltaSide::kLeft ? *left_ : *right_;
  return onto.store().tri().Collect(pattern, limit);
}

util::Status Session::Export(const std::string& prefix) const {
  if (!has_result()) {
    return util::FailedPreconditionError("no alignment result to export");
  }
  return core::WriteAlignmentFiles(*result_, *left_, *right_, prefix);
}

util::Status Session::WriteInstanceAlignment(std::ostream& out) const {
  if (!has_result()) {
    return util::FailedPreconditionError("no alignment result to write");
  }
  core::WriteInstanceAlignment(result_->instances, *left_, *right_, out);
  return util::OkStatus();
}

util::Status Session::PrintStats(std::ostream& out) const {
  if (!loaded()) {
    return util::FailedPreconditionError("no ontologies loaded");
  }
  for (const ontology::Ontology* onto : {&*left_, &*right_}) {
    out << StrFormat(
        "%s: %zu instances, %zu classes, %zu relations, %zu triples\n",
        onto->name().c_str(), onto->instances().size(),
        onto->classes().size(), onto->num_relations(), onto->num_triples());
    out << "  relation functionalities (fun / fun⁻¹):\n";
    for (rdf::RelId r = 1;
         r <= static_cast<rdf::RelId>(onto->num_relations()); ++r) {
      out << StrFormat("    %-32s %.3f / %.3f  (%zu facts)\n",
                       onto->RelationName(r).c_str(), onto->Fun(r),
                       onto->FunInverse(r), onto->store().PairCount(r));
    }
  }
  return util::OkStatus();
}

util::Status Session::WriteTrace(std::ostream& out) const {
  if (trace_ == nullptr) {
    return util::FailedPreconditionError(
        "tracing disabled; construct the Session with "
        "Options::set_trace(true)");
  }
  trace_->WriteJson(out);
  return util::OkStatus();
}

util::StatusOr<obs::MetricsSnapshot> Session::Metrics() const {
  if (metrics_ == nullptr) {
    return util::FailedPreconditionError(
        "metrics disabled; construct the Session with "
        "Options::set_metrics(true)");
  }
  return metrics_->Snapshot();
}

util::Status Session::WriteMetricsJson(std::ostream& out) const {
  if (metrics_ == nullptr) {
    return util::FailedPreconditionError(
        "metrics disabled; construct the Session with "
        "Options::set_metrics(true)");
  }
  std::ostringstream registry_json;
  metrics_->WriteJson(registry_json);
  std::string body = std::move(registry_json).str();
  // The registry snapshot is a closed JSON object; re-open it to append the
  // per-iteration convergence telemetry as one more section.
  body.pop_back();
  out << body << ",\"iterations\":[";
  if (has_result()) {
    for (size_t i = 0; i < result_->iterations.size(); ++i) {
      const core::IterationRecord& record = result_->iterations[i];
      const core::ConvergenceTelemetry& t = record.telemetry;
      if (i > 0) out << ",";
      out << "{\"iteration\":" << record.index
          << ",\"num_aligned\":" << record.num_left_aligned
          << ",\"change_fraction\":"
          << StrFormat("%g", record.change_fraction)
          << ",\"changed\":" << t.changed << ",\"gained\":" << t.gained
          << ",\"dropped\":" << t.dropped << ",\"stable\":" << t.stable
          << ",\"score_delta\":{\"bounds\":[";
      for (size_t b = 0; b < std::size(core::kScoreDeltaBounds); ++b) {
        if (b > 0) out << ",";
        out << StrFormat("%g", core::kScoreDeltaBounds[b]);
      }
      out << "],\"counts\":[";
      for (size_t c = 0; c < t.score_delta_counts.size(); ++c) {
        if (c > 0) out << ",";
        out << t.score_delta_counts[c];
      }
      out << "]},\"shard_changed\":[";
      for (size_t s = 0; s < t.shard_changed.size(); ++s) {
        if (s > 0) out << ",";
        out << t.shard_changed[s];
      }
      out << "]}";
    }
  }
  out << "]}\n";
  return util::OkStatus();
}

RunSummary Session::summary() const {
  RunSummary summary;
  if (!has_result()) return summary;
  summary.instances_aligned = result_->instances.num_left_aligned();
  summary.relation_scores = result_->relations.size();
  summary.class_scores = result_->classes.entries().size();
  summary.iterations = result_->iterations.size();
  summary.resumed_iterations = resumed_iterations_;
  summary.seconds = result_->seconds_total;
  summary.converged = result_->converged_at > 0;
  summary.cancelled = cancelled_;
  return summary;
}

}  // namespace paris::api
