#ifndef PARIS_API_SESSION_H_
#define PARIS_API_SESSION_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include <vector>

#include "paris/api/matcher_registry.h"
#include "paris/core/aligner.h"
#include "paris/core/config.h"
#include "paris/obs/hooks.h"
#include "paris/ontology/ontology.h"
#include "paris/ontology/snapshot.h"
#include "paris/rdf/ntriples.h"
#include "paris/rdf/term.h"
#include "paris/storage/tri_index.h"
#include "paris/util/status.h"
#include "paris/util/thread_pool.h"

namespace paris::api {

// Re-exported so facade callers spell everything in one namespace.
using SnapshotLoadMode = ontology::SnapshotLoadMode;

// Cooperative cancellation for `Session::Align` / `Session::Resume`. Safe
// to `Cancel()` from any thread; the run checks it at *shard* granularity
// (after every completed shard of the instance/relation passes, typically
// 1/64th of a pass) and stops with a consistent, resumable partial result:
// a cancel that lands mid-iteration checkpoints the completed shards, and
// `Resume` continues byte-identically to the uninterrupted run.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Scalar progress report for one completed fixpoint iteration.
struct IterationProgress {
  int iteration = 0;       // 1-based
  int max_iterations = 0;  // the configured cap
  size_t num_aligned = 0;  // left instances with a counterpart
  double change_fraction = 1.0;
  double seconds = 0.0;    // instance + relation pass wall time
  // Convergence telemetry: left instances whose maximal assignment moved
  // this iteration (changed counterpart + newly assigned + dropped).
  size_t num_changed = 0;
};

// Scalar progress report for one completed pipeline shard (a fixed
// fraction of one pass — see src/core/README.md for the pass pipeline).
struct ShardProgress {
  const char* pass = "";     // "instance" | "relation" | "class"
  int iteration = 0;         // 1-based; for the final class pass, the last
                             // completed iteration
  size_t shard = 0;          // shard that just completed
  size_t num_shards = 0;     // shards in this pass
  size_t num_completed = 0;  // completed so far this pass
};

// Hooks into a run. All members are optional. `on_iteration` is invoked on
// the thread driving the run, after each completed iteration. `on_shard`
// is invoked after every completed shard of every pass — serialized, but
// possibly on a worker thread, so it must be cheap and thread-safe (a
// progress bar update, an atomic counter). The cancellation token is
// polled after every shard.
struct RunCallbacks {
  std::function<void(const IterationProgress&)> on_iteration;
  std::function<void(const ShardProgress&)> on_shard;
  std::shared_ptr<CancellationToken> cancellation;
};

// What a finished (or cancelled) run produced, in plain scalars — enough
// for a caller to report without reaching into the core result types.
struct RunSummary {
  size_t instances_aligned = 0;
  size_t relation_scores = 0;
  size_t class_scores = 0;
  size_t iterations = 0;          // completed, including resumed-over ones
  size_t resumed_iterations = 0;  // iterations adopted from a checkpoint
  double seconds = 0.0;
  bool converged = false;
  bool cancelled = false;
};

// The PARIS run lifecycle behind one handle:
//
//   load (files or snapshot) -> align / resume -> export / save
//                                  |
//                                  v
//                  apply delta -> realign -> export / save   (repeatable)
//
// A Session owns the shared term pool, both ontologies, and the worker
// pool; every method returns `util::Status` / `util::StatusOr` instead of
// printing or exiting, so the facade is embeddable (the CLI tools are thin
// adapters over it). One Session runs one *cold* alignment: load once,
// align once; re-running with different options means a new Session (the
// underlying data can be re-loaded cheaply from a snapshot). Incremental
// updates are the exception — ApplyDelta + Realign consume the current
// result (the session's own, or a saved one) and replace it, and may be
// repeated as new deltas arrive. Methods are not synchronized — drive a
// Session from one thread (cancellation tokens are the exception and may
// be flipped from anywhere).
//
//   paris::api::Session session(
//       paris::api::Session::Options().set_threads(4).set_matcher("fuzzy"));
//   auto status = session.LoadFromFiles("a.nt", "b.ttl");
//   if (status.ok()) status = session.Align();
//   if (status.ok()) status = session.Export("out");
class Session {
 public:
  struct Options {
    Options() = default;

    // Full engine configuration; the named setters below cover the common
    // knobs, the rest is reachable directly for ablation-style embedding.
    core::AlignmentConfig config;
    // Literal matcher, resolved by name when Align/Resume starts. The name
    // is recorded in result snapshots for the resume compatibility check.
    std::string matcher = "identity";
    // Registry the matcher name resolves against; null = Default().
    const MatcherRegistry* registry = nullptr;
    // How LoadFromSnapshot / Resume bring snapshot files in.
    ontology::SnapshotLoadMode snapshot_load_mode =
        ontology::SnapshotLoadMode::kAuto;
    // Observability (src/obs/): when set, the session owns a TraceRecorder
    // / MetricsRegistry sized for its worker pool and instruments loading,
    // the pass pipeline, and snapshot IO. Never changes alignment output.
    bool trace = false;
    bool metrics = false;
    // When set (and `config.checkpoint_dir` names a directory), Align()
    // first looks for the newest usable periodic checkpoint in that
    // directory and resumes from it — recomputing at most the shard that
    // was in flight when the previous run died — instead of starting cold.
    // A directory with no usable checkpoint (or a setup that no longer
    // matches) degrades to a cold start, never to an error.
    bool auto_resume = false;

    Options& set_threads(size_t n) { config.num_threads = n; return *this; }
    Options& set_theta(double theta) { config.theta = theta; return *this; }
    Options& set_max_iterations(int n) {
      config.max_iterations = n;
      return *this;
    }
    Options& set_negative_evidence(bool on) {
      config.use_negative_evidence = on;
      return *this;
    }
    Options& set_name_prior(bool on) {
      config.use_relation_name_prior = on;
      return *this;
    }
    Options& set_matcher(std::string name) {
      matcher = std::move(name);
      return *this;
    }
    Options& set_registry(const MatcherRegistry* r) {
      registry = r;
      return *this;
    }
    Options& set_snapshot_load_mode(ontology::SnapshotLoadMode mode) {
      snapshot_load_mode = mode;
      return *this;
    }
    Options& set_trace(bool on) {
      trace = on;
      return *this;
    }
    Options& set_metrics(bool on) {
      metrics = on;
      return *this;
    }
    Options& set_checkpointing(std::string dir, double interval_seconds) {
      config.checkpoint_dir = std::move(dir);
      config.checkpoint_interval = interval_seconds;
      return *this;
    }
    Options& set_auto_resume(bool on) {
      auto_resume = on;
      return *this;
    }
  };

  Session();  // all-default options
  explicit Session(Options options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  const Options& options() const { return options_; }

  // ---- Load --------------------------------------------------------------

  // Parses two RDF files into the left/right ontologies. Files ending in
  // .ttl/.turtle are parsed as Turtle, everything else as N-Triples.
  // FailedPrecondition if the session is already loaded; parse and build
  // errors carry the failing path.
  util::Status LoadFromFiles(const std::string& left_path,
                             const std::string& right_path);

  // Loads both ontologies from a binary alignment snapshot
  // (`SaveSnapshot`'s format) instead of parsing RDF.
  util::Status LoadFromSnapshot(const std::string& path);

  // Writes the loaded pair as a binary snapshot for fast future loads.
  util::Status SaveSnapshot(const std::string& path) const;

  // ---- Run ---------------------------------------------------------------

  // Runs the fixpoint to convergence (or the iteration cap). On
  // cancellation — honored at shard granularity, so even a cancel landing
  // deep inside the instance pass takes effect promptly — returns
  // kCancelled but keeps the partial result: it can still be saved with
  // SaveResult (a mid-iteration cancel records its completed shards in the
  // snapshot) and continued later via Resume, byte-identically to an
  // uninterrupted run. FailedPrecondition when nothing is loaded or the
  // session already has a result (one Session = one run).
  util::Status Align(const RunCallbacks& callbacks = {});

  // Continues a previous run from its result snapshot (`SaveResult`'s
  // format); the loaded inputs and the session config must match the saved
  // run or the load fails with FailedPrecondition naming the field. The
  // final tables are identical to an uninterrupted run.
  util::Status Resume(const std::string& result_snapshot_path,
                      const RunCallbacks& callbacks = {});

  // Writes the run's result (equivalences, relation and class scores,
  // iteration metadata) as a binary snapshot that Resume accepts.
  util::Status SaveResult(const std::string& path) const;

  // ---- Incremental update (delta ingestion + re-alignment) ---------------

  // Which side of the loaded pair a delta applies to.
  enum class DeltaSide { kLeft, kRight };

  // Stages a batch of new statements against one side: regular facts and
  // rdf:type statements for terms that keep their class/instance role
  // (schema deltas are rejected at Realign time — see
  // ontology::Ontology::ApplyDelta for the exact contract). Staging does
  // not touch the ontology yet: the merge happens inside the next Realign,
  // *after* the base result has been validated against the pre-delta pair
  // (a result snapshot fingerprints the ontologies its run aligned, so the
  // merge must not precede the check). Several deltas may be staged — both
  // sides, several batches — and are merged in staging order.
  // FailedPrecondition when nothing is loaded.
  util::Status ApplyDelta(DeltaSide side,
                          std::vector<rdf::ParsedTriple> triples);

  // Parses an RDF file (.ttl/.turtle as Turtle, everything else as
  // N-Triples) and stages it, as above.
  util::Status ApplyDelta(DeltaSide side, const std::string& delta_path);

  size_t num_staged_deltas() const { return staged_deltas_.size(); }

  // Incremental re-alignment: merges the staged deltas into the ontologies
  // and re-runs the fixpoint warm-started from the session's own result
  // (the first overload; requires a completed Align/Resume/Realign) or
  // from the result snapshot at `realign_from` (the second; a previous
  // session's SaveResult over the same pre-delta pair). Only the entities
  // in the deltas' structural cone are recomputed — with
  // `config.semi_naive` (the default) a small delta re-aligns in a small
  // fraction of a cold run — and the session's result is *replaced* by the
  // new fixpoint, so Export/SaveResult/Realign chain naturally. The result
  // is a fixpoint of the post-delta pair, not a bit-replay of a cold run
  // over base+delta (see core::Aligner::Realign for the precise
  // guarantee); it is still byte-identical across thread and shard counts.
  // FailedPrecondition when no delta is staged. On a delta that fails
  // validation the ontologies keep the batches merged before the failing
  // one, the failing and later batches are dropped, and the base result is
  // retained, so the session stays usable.
  util::Status Realign(const RunCallbacks& callbacks = {});
  util::Status Realign(const std::string& realign_from,
                       const RunCallbacks& callbacks = {});

  // ---- Inspect / export --------------------------------------------------

  // Evaluates one triple pattern against one side's statements via the
  // hexastore-style orderings (storage::TriIndex): every combination of
  // bound / variable / ignored subject, relation, and object positions is
  // answered by a single range scan of the best-fit ordering — no full
  // scans except the all-variable pattern. A bound relation may be an
  // inverse id (the matching statements are returned in their positive
  // direction). Matches arrive as whole triples, deduplicated when ignored
  // positions would collapse distinct statements; `limit` = 0 means no
  // limit. FailedPrecondition when nothing is loaded.
  //
  //   auto triples = session.Query(
  //       Session::DeltaSide::kLeft,
  //       storage::TriplePattern().BindRel(rel).BindObject(city));
  util::StatusOr<std::vector<rdf::Triple>> Query(
      DeltaSide side, const storage::TriplePattern& pattern,
      size_t limit = 0) const;

  // Writes `<prefix>_{instances,relations,classes}.tsv`.
  util::Status Export(const std::string& prefix) const;

  // Writes the maximal instance assignment as TSV to `out`.
  util::Status WriteInstanceAlignment(std::ostream& out) const;

  // Writes per-ontology statistics (sizes plus per-relation
  // functionalities) for both sides to `out`.
  util::Status PrintStats(std::ostream& out) const;

  // ---- Observability (Options::trace / Options::metrics) -----------------

  // Writes every span recorded so far as Chrome trace-event JSON (openable
  // in chrome://tracing or https://ui.perfetto.dev). FailedPrecondition
  // unless Options::trace was set.
  util::Status WriteTrace(std::ostream& out) const;

  // The merged metric values (deterministic across thread and shard
  // counts). FailedPrecondition unless Options::metrics was set.
  util::StatusOr<obs::MetricsSnapshot> Metrics() const;

  // The registry snapshot plus, when a result exists, the per-iteration
  // convergence telemetry, as one JSON object. FailedPrecondition unless
  // Options::metrics was set.
  util::Status WriteMetricsJson(std::ostream& out) const;

  bool loaded() const { return left_.has_value(); }
  bool has_result() const { return result_.has_value(); }

  // Require `loaded()` / `has_result()` respectively.
  const ontology::Ontology& left() const { return *left_; }
  const ontology::Ontology& right() const { return *right_; }
  const core::AlignmentResult& result() const { return *result_; }
  RunSummary summary() const;  // zero-value summary before a run

 private:
  util::Status RunAligner(const RunCallbacks& callbacks,
                          const std::string& resume_path);
  util::Status RealignInternal(const std::string& realign_from,
                               const RunCallbacks& callbacks);
  // Builds the aligner every run method shares: matcher resolved from the
  // registry, worker pool, observability, and the callback adapters
  // (iteration/shard observers flipping `cancelled` when the token fires).
  util::StatusOr<std::unique_ptr<core::Aligner>> MakeAligner(
      const RunCallbacks& callbacks, std::atomic<bool>* cancelled);
  // Shared post-run bookkeeping: records the resolved config, translates a
  // cancellation that raced the natural end of the run, and formats the
  // kCancelled detail. `resumed` = iterations adopted from a checkpoint.
  util::Status FinishRun(const core::Aligner& aligner, size_t resumed,
                         bool cancelled);
  // The worker pool, created on demand (null when options request 0
  // threads). Used for both index finalization and the alignment passes.
  util::ThreadPool* workers();
  // The session's recorders as non-owning hooks ({} when observability is
  // off); handed to every instrumented layer.
  obs::Hooks hooks() const { return {trace_.get(), metrics_.get()}; }

  Options options_;
  std::unique_ptr<rdf::TermPool> pool_;
  std::unique_ptr<util::ThreadPool> thread_pool_;
  // Created in the constructor (sized for the worker pool) when the
  // corresponding option is on, so spans/metrics cover loading too.
  std::unique_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::optional<ontology::Ontology> left_;
  std::optional<ontology::Ontology> right_;
  std::optional<core::AlignmentResult> result_;
  // The config the run actually used (instance_threshold resolved by the
  // Aligner); what SaveResult records for the resume compatibility check.
  core::AlignmentConfig resolved_config_;
  size_t resumed_iterations_ = 0;
  bool cancelled_ = false;
  // Deltas staged by ApplyDelta, merged (and cleared) by the next Realign.
  struct StagedDelta {
    DeltaSide side;
    std::vector<rdf::ParsedTriple> triples;
  };
  std::vector<StagedDelta> staged_deltas_;
};

}  // namespace paris::api

#endif  // PARIS_API_SESSION_H_
