#include "paris/api/matcher_registry.h"

#include <memory>
#include <utility>

namespace paris::api {

MatcherRegistry& MatcherRegistry::Default() {
  static MatcherRegistry* registry = [] {
    auto* r = new MatcherRegistry();
    (void)r->Register("identity", core::IdentityMatcherFactory());
    (void)r->Register("normalized", core::NormalizingMatcherFactory());
    (void)r->Register("fuzzy", core::FuzzyMatcherFactory());
    (void)r->Register("token-jaccard", [] {
      return std::unique_ptr<core::LiteralMatcher>(
          new core::TokenJaccardMatcher());
    });
    return r;
  }();
  return *registry;
}

util::Status MatcherRegistry::Register(const std::string& name,
                                       core::LiteralMatcherFactory factory) {
  if (factories_.contains(name)) {
    return util::AlreadyExistsError("matcher already registered: " + name);
  }
  factories_.emplace(name, std::move(factory));
  return util::OkStatus();
}

util::StatusOr<core::LiteralMatcherFactory> MatcherRegistry::Resolve(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [registered, unused] : factories_) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    return util::NotFoundError("unknown matcher: " + name +
                               " (known: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> MatcherRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, unused] : factories_) names.push_back(name);
  return names;
}

}  // namespace paris::api
