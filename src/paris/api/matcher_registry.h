#ifndef PARIS_API_MATCHER_REGISTRY_H_
#define PARIS_API_MATCHER_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "paris/core/literal_match.h"
#include "paris/util/status.h"

namespace paris::api {

// Resolves literal matchers by name, so callers (the Session facade, the
// CLI tools, embedders) select a matcher with a string and new matchers
// plug in without touching any call site. `Default()` comes preloaded with
// the library's built-ins:
//
//   identity       exact lexical equality (the paper's default)
//   normalized     alphanumeric-lowercase normalization (§6.3)
//   fuzzy          trigram candidates + edit similarity (§6.4)
//   token-jaccard  token-set Jaccard similarity
//
// The registered name is also what alignment-result snapshots record for
// the resume-time compatibility check, so names should be stable.
class MatcherRegistry {
 public:
  MatcherRegistry() = default;

  // The process-wide registry with the built-ins preregistered. Embedders
  // may Register additional matchers on it at startup; it is not
  // synchronized, so mutation belongs before threads fan out.
  static MatcherRegistry& Default();

  // Registers a factory under `name`. AlreadyExists if the name is taken.
  util::Status Register(const std::string& name,
                        core::LiteralMatcherFactory factory);

  // Looks up a factory. NotFound (listing the known names) otherwise.
  util::StatusOr<core::LiteralMatcherFactory> Resolve(
      const std::string& name) const;

  bool Contains(const std::string& name) const {
    return factories_.contains(name);
  }

  // Registered names in sorted order.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, core::LiteralMatcherFactory> factories_;
};

}  // namespace paris::api

#endif  // PARIS_API_MATCHER_REGISTRY_H_
