#include "paris/api/dataset.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>

#include "paris/ontology/export.h"
#include "paris/ontology/snapshot.h"
#include "paris/ontology/vocab.h"
#include "paris/synth/profiles.h"
#include "paris/util/fs.h"
#include "paris/util/thread_pool.h"

namespace paris::api {

namespace {

// Splits the left ontology's N-Triples serialization into a base file and a
// delta file holding roughly `fraction` of the regular fact statements.
// Selection is deterministic (every k-th eligible fact, per relation) and the
// first fact of every relation stays in the base, so each delta relation is
// already known to the base ontology and `Ontology::ApplyDelta` accepts the
// delta as-is. Schema statements (rdf:type, rdfs:subClassOf) and the header
// comment always stay in the base.
util::Status SplitExportWithDelta(const ontology::Ontology& onto,
                                  double fraction, const std::string& base_path,
                                  const std::string& delta_path,
                                  size_t* delta_triples) {
  std::ostringstream full;
  ontology::ExportToNTriples(onto, full);
  const std::string text = full.str();
  const size_t stride = std::max<size_t>(
      2, static_cast<size_t>(std::llround(1.0 / fraction)));

  util::AtomicFileWriter base(base_path);
  util::AtomicFileWriter delta(delta_path);
  std::unordered_map<std::string, size_t> facts_seen;  // per relation
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;

    bool to_delta = false;
    if (line.front() == '<') {
      // Predicate is the second angle-bracketed token of the statement.
      const size_t pred_begin = line.find("> <");
      const size_t pred_end = pred_begin == std::string_view::npos
                                  ? std::string_view::npos
                                  : line.find('>', pred_begin + 3);
      if (pred_end != std::string_view::npos) {
        const std::string_view pred =
            line.substr(pred_begin + 3, pred_end - (pred_begin + 3));
        if (!ontology::IsTypePredicate(pred) &&
            !ontology::IsSubClassOfPredicate(pred)) {
          size_t& seen = facts_seen[std::string(pred)];
          to_delta = (seen % stride) == stride - 1;
          ++seen;
        }
      }
    }
    (to_delta ? delta : base).stream() << line << "\n";
    if (to_delta) ++*delta_triples;
  }
  auto status = base.Commit();
  if (!status.ok()) return status;
  return delta.Commit();
}

}  // namespace

util::StatusOr<DatasetSummary> GenerateDataset(const DatasetSpec& spec) {
  synth::ProfileOptions options;
  options.scale = spec.scale;
  std::unique_ptr<util::ThreadPool> workers;
  if (spec.num_threads > 0) {
    workers = std::make_unique<util::ThreadPool>(spec.num_threads);
    options.pool = workers.get();
  }

  util::StatusOr<synth::OntologyPair> pair =
      util::InvalidArgumentError("unknown profile: " + spec.profile +
                                 " (known: person, restaurant, yago-dbpedia, "
                                 "yago-imdb)");
  if (spec.profile == "person") {
    pair = synth::MakeOaeiPersonPair(options);
  } else if (spec.profile == "restaurant") {
    pair = synth::MakeOaeiRestaurantPair(options);
  } else if (spec.profile == "yago-dbpedia") {
    pair = synth::MakeYagoDbpediaPair(options);
  } else if (spec.profile == "yago-imdb") {
    pair = synth::MakeYagoImdbPair(options);
  }
  if (!pair.ok()) return pair.status();

  DatasetSummary summary;
  summary.left_path = spec.output_prefix + "_left.nt";
  summary.right_path = spec.output_prefix + "_right.nt";
  summary.gold_path = spec.output_prefix + "_gold.tsv";

  util::Status status;
  if (spec.delta_fraction > 0.0) {
    if (spec.delta_fraction >= 0.5) {
      return util::InvalidArgumentError(
          "delta_fraction must be in (0, 0.5): the base file has to retain "
          "the majority of every relation's facts");
    }
    summary.delta_path = spec.output_prefix + "_left_delta.nt";
    status = SplitExportWithDelta(*pair->left, spec.delta_fraction,
                                  summary.left_path, summary.delta_path,
                                  &summary.delta_triples);
  } else {
    status = ontology::ExportToNTriplesFile(*pair->left, summary.left_path);
  }
  if (!status.ok()) return status;
  status = ontology::ExportToNTriplesFile(*pair->right, summary.right_path);
  if (!status.ok()) return status;

  if (!spec.save_snapshot.empty()) {
    status = ontology::SaveAlignmentSnapshot(spec.save_snapshot, *pair->left,
                                             *pair->right);
    if (!status.ok()) return status;
    summary.snapshot_written = true;
  }

  std::ofstream gold(summary.gold_path);
  if (!gold) {
    return util::InvalidArgumentError("cannot open " + summary.gold_path +
                                      " for writing");
  }
  gold << "# gold instance pairs: left\tright\n";
  std::map<std::string, std::string> sorted;
  for (const auto& [l, r] : pair->gold.left_to_right()) {
    sorted.emplace(pair->left->TermName(l), pair->right->TermName(r));
  }
  for (const auto& [l, r] : sorted) gold << l << "\t" << r << "\n";

  summary.left_triples = pair->left->num_triples();
  summary.right_triples = pair->right->num_triples();
  summary.gold_pairs = pair->gold.num_instance_pairs();
  return summary;
}

}  // namespace paris::api
