#ifndef PARIS_API_DATASET_H_
#define PARIS_API_DATASET_H_

#include <cstddef>
#include <string>

#include "paris/util/status.h"

namespace paris::api {

// Synthetic benchmark-dataset generation behind the same Status-based
// surface as the Session facade, so the `paris_generate` CLI (and any
// embedder that wants reproducible test data) is flag parsing plus one
// call. The generated files feed straight back into
// `Session::LoadFromFiles` / `Session::LoadFromSnapshot`.
struct DatasetSpec {
  // One of the paper's evaluation profiles:
  // person | restaurant | yago-dbpedia | yago-imdb.
  std::string profile;
  // Writes `<prefix>_left.nt`, `<prefix>_right.nt`, `<prefix>_gold.tsv`.
  std::string output_prefix;
  // Multiplies every entity count (1.0 = the profile's documented size).
  double scale = 1.0;
  // When non-empty, also writes a binary snapshot of the generated pair,
  // loadable via `Session::LoadFromSnapshot`.
  std::string save_snapshot;
  // Worker threads for index finalization of the generated pair; 0 = build
  // serially. The generated files are byte-identical either way.
  size_t num_threads = 0;
  // When > 0, holds back roughly this fraction of the left ontology's fact
  // triples into `<prefix>_left_delta.nt`, leaving the rest in
  // `<prefix>_left.nt`. The split is deterministic (every k-th eligible
  // fact) and only moves facts whose relation keeps at least one statement
  // in the base file, so the delta feeds straight into
  // `Session::ApplyDelta` + `Session::Realign`. Schema statements
  // (rdf:type, rdfs:subClassOf) always stay in the base. Must be < 0.5.
  double delta_fraction = 0.0;
};

// What GenerateDataset wrote, for reporting.
struct DatasetSummary {
  size_t left_triples = 0;
  size_t right_triples = 0;
  size_t gold_pairs = 0;
  std::string left_path;
  std::string right_path;
  std::string gold_path;
  bool snapshot_written = false;
  // Populated only when `DatasetSpec::delta_fraction` > 0.
  std::string delta_path;
  size_t delta_triples = 0;
};

// Materializes the profile: InvalidArgument for an unknown profile name,
// I/O errors carry the failing path. The snapshot (when requested) is
// written before the gold TSV, matching the historical CLI ordering.
util::StatusOr<DatasetSummary> GenerateDataset(const DatasetSpec& spec);

}  // namespace paris::api

#endif  // PARIS_API_DATASET_H_
