// paris_client — command-line client for parisd.
//
//   paris_client --port P <command> [args]                (see --help)
//
// Commands:
//   ping                            liveness check
//   submit [key=value ...]          queue an alignment job, print its id
//   status JOB                      one job's state and progress
//   list                            all jobs
//   cancel JOB                      cancel a queued or running job
//   watch JOB [FROM]                stream progress events until the job ends
//   lookup KIND SIDE KEY            query the served result snapshot
//                                   (KIND: entity|relation|class,
//                                    SIDE: left|right, KEY: IRI or #id)
//   query SIDE S P O [LIMIT]        triple-pattern scan of one ontology
//                                   (positions: ? variable, _ ignored,
//                                    #id raw, or an IRI; P may be -rel for
//                                    the inverse direction)
//   result                          served snapshot's generation and stats
//   metrics                         service metrics as JSON
//   trace                           per-request spans as Chrome trace JSON
//   shutdown                        ask the daemon to exit gracefully
//
// Exit status 0 on OK replies, 1 on errors (the daemon's ERR line or the
// transport failure goes to stderr).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "paris/service/protocol.h"
#include "paris/util/flags.h"
#include "paris/util/net.h"

namespace {

int Fail(const paris::util::Status& status) {
  std::fprintf(stderr, "paris_client: %s\n", status.ToString().c_str());
  return 1;
}

// Prints a reply payload: the "OK ..." head line goes to stdout as-is;
// follow-on lines (lookup rows, job lists, JSON) are printed verbatim.
int PrintReply(const std::string& payload) {
  const paris::util::Status status = paris::service::StatusFromReply(payload);
  if (!status.ok()) {
    std::fprintf(stderr, "paris_client: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", payload.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string port_file;
  size_t max_frame = paris::service::kDefaultMaxFrameBytes;

  paris::util::FlagParser parser("paris_client", "COMMAND [args]");
  parser.AddString("--host", &host, "daemon address (default 127.0.0.1)",
                   "ADDR");
  parser.AddInt("--port", &port, "daemon port");
  parser.AddString("--port-file", &port_file,
                   "read the daemon port from PATH (parisd --port-file)",
                   "PATH");
  parser.AddSize("--max-frame-bytes", &max_frame,
                 "largest accepted reply frame (default 1m)");

  std::vector<std::string> args;
  auto status = parser.Parse(argc, argv, &args);
  if (!status.ok()) {
    std::fprintf(stderr, "paris_client: %s\n%s\n", status.ToString().c_str(),
                 parser.Usage().c_str());
    return 1;
  }
  if (parser.help_requested() || args.empty()) {
    std::printf("%s", parser.Help().c_str());
    return parser.help_requested() ? 0 : 1;
  }
  if (!port_file.empty()) {
    std::ifstream in(port_file);
    long long parsed = 0;
    std::string line;
    if (!std::getline(in, line) ||
        !paris::util::ParseFullInt64(line, &parsed) || parsed <= 0 ||
        parsed > 65535) {
      return Fail(paris::util::InvalidArgumentError(
          "cannot read a port from '" + port_file + "'"));
    }
    port = static_cast<int>(parsed);
  }
  if (port <= 0 || port > 65535) {
    return Fail(paris::util::InvalidArgumentError(
        "--port (or --port-file) is required"));
  }

  // Map the subcommand onto one protocol request line.
  const std::string& command = args[0];
  std::string request;
  bool streaming = false;
  if (command == "ping") {
    request = "PING";
  } else if (command == "submit") {
    request = "SUBMIT";
    for (size_t i = 1; i < args.size(); ++i) request += " " + args[i];
  } else if (command == "status" && args.size() == 2) {
    request = "STATUS " + args[1];
  } else if (command == "list") {
    request = "LIST";
  } else if (command == "cancel" && args.size() == 2) {
    request = "CANCEL " + args[1];
  } else if (command == "watch" && (args.size() == 2 || args.size() == 3)) {
    request = "WATCH " + args[1];
    if (args.size() == 3) request += " " + args[2];
    streaming = true;
  } else if (command == "lookup" && args.size() == 4) {
    request = "LOOKUP " + args[1] + " " + args[2] + " " + args[3];
  } else if (command == "query" && (args.size() == 5 || args.size() == 6)) {
    request = "QUERY";
    for (size_t i = 1; i < args.size(); ++i) request += " " + args[i];
  } else if (command == "result") {
    request = "RESULT";
  } else if (command == "metrics") {
    request = "METRICS";
  } else if (command == "trace") {
    request = "TRACE";
  } else if (command == "shutdown") {
    request = "SHUTDOWN";
  } else {
    return Fail(paris::util::InvalidArgumentError(
        "unknown command or wrong arguments: '" + command + "' (see --help)"));
  }

  auto conn = paris::util::SocketConn::Connect(
      host, static_cast<uint16_t>(port));
  if (!conn.ok()) return Fail(conn.status());
  status = paris::service::WriteFrame(*conn, request, max_frame);
  if (!status.ok()) return Fail(status);

  std::string payload;
  if (!streaming) {
    auto got = paris::service::ReadFrame(*conn, &payload, max_frame);
    if (!got.ok()) return Fail(got.status());
    if (!*got) {
      return Fail(paris::util::DataLossError(
          "daemon closed the connection without replying"));
    }
    return PrintReply(payload);
  }

  // watch: one frame per event, then a terminal "END <state>" frame.
  for (;;) {
    auto got = paris::service::ReadFrame(*conn, &payload, max_frame);
    if (!got.ok()) return Fail(got.status());
    if (!*got) {
      return Fail(paris::util::DataLossError(
          "daemon closed the connection mid-stream"));
    }
    const paris::util::Status reply_status =
        paris::service::StatusFromReply(payload);
    if (!reply_status.ok()) return Fail(reply_status);
    std::printf("%s\n", payload.c_str());
    std::fflush(stdout);
    if (payload.rfind("END ", 0) == 0) {
      return payload == "END done" ? 0 : 1;
    }
  }
}
