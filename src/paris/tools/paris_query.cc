// paris_query — triple-pattern queries against an ontology pair.
//
//   paris_query LEFT.nt RIGHT.ttl SIDE S P O [options]
//   paris_query --snapshot PAIR.snap SIDE S P O [options]
//
// SIDE is `left` or `right`. Each of S / P / O is one of:
//   ?        a variable (match anything, report the binding)
//   _        ignored (match anything, collapse duplicates)
//   #<id>    a raw term or relation id
//   <name>   a lexical IRI (the relation may be prefixed `-` for the
//            inverse direction)
//
// Every pattern is answered by a single range scan of the best-fit
// hexastore ordering (storage::TriIndex); matches print as
// subject<TAB>relation<TAB>object lines in that ordering's sort order,
// with `_` for ignored positions.
//
// Exit status 0 on success (including zero matches), 1 on usage, load, or
// resolution errors.
#include <cstdio>
#include <string>
#include <vector>

#include "paris/paris.h"
#include "paris/util/flags.h"

namespace {

int Fail(const paris::util::Status& status) {
  std::fprintf(stderr, "paris_query: %s\n", status.ToString().c_str());
  return 1;
}

paris::util::StatusOr<paris::rdf::TermId> ResolveTerm(
    const paris::ontology::Ontology& onto, const std::string& key) {
  if (!key.empty() && key[0] == '#') {
    long long raw = 0;
    if (!paris::util::ParseFullInt64(key.substr(1), &raw) || raw < 0 ||
        static_cast<size_t>(raw) >= onto.pool().size()) {
      return paris::util::InvalidArgumentError("bad raw term id '" + key +
                                               "'");
    }
    return static_cast<paris::rdf::TermId>(raw);
  }
  const auto id = onto.pool().Find(key, paris::rdf::TermKind::kIri);
  if (!id.has_value()) {
    return paris::util::NotFoundError("unknown term '" + key + "'");
  }
  return *id;
}

paris::util::StatusOr<paris::rdf::RelId> ResolveRelation(
    const paris::ontology::Ontology& onto, const std::string& key) {
  std::string name = key;
  bool inverse = false;
  if (!name.empty() && name[0] == '-') {
    inverse = true;
    name = name.substr(1);
  }
  if (!name.empty() && name[0] == '#') {
    long long raw = 0;
    if (!paris::util::ParseFullInt64(name.substr(1), &raw) || raw < 1 ||
        static_cast<size_t>(raw) > onto.store().num_relations()) {
      return paris::util::InvalidArgumentError("bad raw relation id '" + key +
                                               "'");
    }
    const auto rel = static_cast<paris::rdf::RelId>(raw);
    return inverse ? paris::rdf::Inverse(rel) : rel;
  }
  const auto name_id = onto.pool().Find(name, paris::rdf::TermKind::kIri);
  if (name_id.has_value()) {
    const auto rel = onto.store().FindRelation(*name_id);
    if (rel.has_value()) return inverse ? paris::rdf::Inverse(*rel) : *rel;
  }
  return paris::util::NotFoundError("unknown relation '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot;
  size_t limit = 0;
  bool count_only = false;

  paris::util::FlagParser parser(
      "paris_query", "LEFT RIGHT left|right S P O  (or --snapshot PAIR ...)");
  parser.AddString("--snapshot", &snapshot,
                   "load the pair from a binary snapshot instead of RDF files",
                   "PATH");
  parser.AddSizeT("--limit", &limit, "stop after N matches (0 = no limit)");
  parser.AddBool("--count", &count_only,
                 "print only the number of matches");

  std::vector<std::string> args;
  auto status = parser.Parse(argc, argv, &args);
  if (!status.ok()) {
    std::fprintf(stderr, "paris_query: %s\n%s\n", status.ToString().c_str(),
                 parser.Usage().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }
  const size_t expected = snapshot.empty() ? 6 : 4;
  if (args.size() != expected) {
    std::fprintf(stderr, "paris_query: expected %zu positional arguments\n%s\n",
                 expected, parser.Usage().c_str());
    return 1;
  }

  paris::api::Session session;
  status = snapshot.empty()
               ? session.LoadFromFiles(args[0], args[1])
               : session.LoadFromSnapshot(snapshot);
  if (!status.ok()) return Fail(status);

  const size_t base = snapshot.empty() ? 2 : 0;
  const std::string& side_name = args[base];
  if (side_name != "left" && side_name != "right") {
    return Fail(paris::util::InvalidArgumentError(
        "SIDE must be left or right, got '" + side_name + "'"));
  }
  const bool side_is_left = side_name == "left";
  const auto side = side_is_left ? paris::api::Session::DeltaSide::kLeft
                                 : paris::api::Session::DeltaSide::kRight;
  const paris::ontology::Ontology& onto =
      side_is_left ? session.left() : session.right();

  paris::storage::TriplePattern pattern;
  const std::string& s = args[base + 1];
  const std::string& p = args[base + 2];
  const std::string& o = args[base + 3];
  if (s == "_") {
    pattern.IgnoreSubject();
  } else if (s != "?") {
    auto id = ResolveTerm(onto, s);
    if (!id.ok()) return Fail(id.status());
    pattern.BindSubject(*id);
  }
  if (p == "_") {
    pattern.IgnoreRel();
  } else if (p != "?") {
    auto rel = ResolveRelation(onto, p);
    if (!rel.ok()) return Fail(rel.status());
    pattern.BindRel(*rel);
  }
  if (o == "_") {
    pattern.IgnoreObject();
  } else if (o != "?") {
    auto id = ResolveTerm(onto, o);
    if (!id.ok()) return Fail(id.status());
    pattern.BindObject(*id);
  }

  if (count_only) {
    std::printf("%llu\n", static_cast<unsigned long long>(
                              onto.store().tri().Count(pattern)));
    return 0;
  }
  auto matches = session.Query(side, pattern, limit);
  if (!matches.ok()) return Fail(matches.status());
  for (const paris::rdf::Triple& t : *matches) {
    std::printf(
        "%s\t%s\t%s\n",
        t.subject == paris::rdf::kNullTerm ? "_" : onto.TermName(t.subject).c_str(),
        t.rel == paris::rdf::kNullRel ? "_" : onto.RelationName(t.rel).c_str(),
        t.object == paris::rdf::kNullTerm ? "_" : onto.TermName(t.object).c_str());
  }
  return 0;
}
