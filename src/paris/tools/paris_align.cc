// paris_align — align two RDF ontologies from the command line.
//
//   paris_align LEFT.nt RIGHT.ttl [options]      (see --help)
//
// Files ending in .ttl/.turtle are parsed as Turtle, everything else as
// N-Triples.
//
// This tool is a thin adapter over `paris::api::Session`: it parses flags,
// drives the load → align/resume → export lifecycle through the facade,
// prints the facade's results, and maps Status to the exit code. All
// engine behavior lives behind the API.
//
// Exit status 0 on success, 1 on usage/load/run errors (the failing path
// and Status code are reported on stderr).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "paris/paris.h"
#include "paris/util/fault_injection.h"
#include "paris/util/flags.h"
#include "paris/util/fs.h"
#include "paris/util/logging.h"

namespace {

int Fail(const paris::util::Status& status) {
  std::fprintf(stderr, "paris_align: %s\n", status.ToString().c_str());
  return 1;
}

int UsageError(const paris::util::FlagParser& parser,
               const paris::util::Status& status) {
  std::fprintf(stderr, "paris_align: %s\n%s\n", status.ToString().c_str(),
               parser.Usage().c_str());
  return 1;
}

// Throttled per-shard progress: at most ~10 lines per second plus the final
// shard of every pass, with an ETA extrapolated from the shards completed
// since the pass started. The shard observer is serialized by the pipeline
// (api::RunCallbacks), so no locking is needed here.
class ProgressPrinter {
 public:
  void OnShard(const paris::api::ShardProgress& shard) {
    const auto now = std::chrono::steady_clock::now();
    if (shard.iteration != iteration_ || pass_ != shard.pass) {
      iteration_ = shard.iteration;
      pass_ = shard.pass;
      pass_start_ = now;
      // Shards adopted from a checkpoint complete instantly; exclude them
      // from the extrapolation base.
      completed_at_start_ = shard.num_completed - 1;
    }
    const bool last = shard.num_completed == shard.num_shards;
    if (!last &&
        now - last_print_ < std::chrono::milliseconds(100)) {
      return;
    }
    last_print_ = now;
    std::string eta;
    const size_t measured = shard.num_completed - completed_at_start_;
    if (!last && measured > 0) {
      const double elapsed =
          std::chrono::duration<double>(now - pass_start_).count();
      const double remaining = elapsed / static_cast<double>(measured) *
                               static_cast<double>(shard.num_shards -
                                                   shard.num_completed);
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), ", eta %.1fs", remaining);
      eta = buffer;
    }
    std::fprintf(stderr,
                 "progress: iteration %d %s pass %zu/%zu shards%s\n",
                 shard.iteration, shard.pass, shard.num_completed,
                 shard.num_shards, eta.c_str());
  }

 private:
  int iteration_ = -1;
  std::string pass_;
  std::chrono::steady_clock::time_point pass_start_;
  std::chrono::steady_clock::time_point last_print_;
  size_t completed_at_start_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  paris::api::Session::Options options;
  std::string output_prefix;
  std::string save_snapshot;
  std::string load_snapshot;
  std::string save_result;
  std::string resume_from;
  std::string realign_from;
  std::string delta_left;
  std::string delta_right;
  std::string load_mode = "auto";
  std::string log_level = "info";
  std::string trace_json;
  std::string metrics_json;
  bool stats_only = false;

  paris::util::FlagParser parser("paris_align", "LEFT.nt RIGHT.nt");
  parser.AddString("--output", &output_prefix,
                   "write PREFIX_{instances,relations,classes}.tsv",
                   "PREFIX");
  parser.AddInt("--max-iterations", &options.config.max_iterations,
                "fixpoint cap (default 10)");
  parser.AddDouble("--theta", &options.config.theta,
                   "bootstrap sub-relation probability (default 0.1)");
  parser.AddChoice("--matcher", &options.matcher,
                   paris::api::MatcherRegistry::Default().Names(),
                   "literal matcher (default identity)");
  parser.AddSizeT("--threads", &options.config.num_threads,
                  "worker threads for the alignment passes and index "
                  "finalization");
  parser.AddSizeT("--shards", &options.config.num_shards,
                  "shards per alignment pass (0 = default 64); results are "
                  "identical across shard counts");
  bool progress = false;
  parser.AddBool("--progress", &progress,
                 "report per-shard pipeline progress on stderr");
  parser.AddBool("--negative-evidence", &options.config.use_negative_evidence,
                 "use Eq. (14) instead of Eq. (13)");
  parser.AddBool("--name-prior", &options.config.use_relation_name_prior,
                 "seed iteration 1 with relation-name similarity");
  parser.AddBool("--stats", &stats_only,
                 "print ontology statistics and exit");
  parser.AddString("--save-snapshot", &save_snapshot,
                   "after loading, write a binary snapshot of both "
                   "ontologies", "PATH");
  parser.AddString("--load-snapshot", &load_snapshot,
                   "load ontologies from a snapshot instead of parsing RDF "
                   "files", "PATH");
  parser.AddChoice("--snapshot-load-mode", &load_mode,
                   {"auto", "mmap", "stream"},
                   "how snapshots are brought in (default auto)");
  parser.AddString("--save-result", &save_result,
                   "after the run, write a binary snapshot of the alignment "
                   "result", "PATH");
  parser.AddString("--resume-from", &resume_from,
                   "continue a previous run from its result snapshot",
                   "PATH");
  parser.AddString("--realign-from", &realign_from,
                   "incrementally re-align from a completed run's result "
                   "snapshot after applying --delta* files (much cheaper "
                   "than a cold re-run for small deltas)", "PATH");
  parser.AddString("--delta", &delta_left,
                   "RDF delta file merged into the LEFT ontology before "
                   "re-aligning (shorthand for --delta-left)", "PATH");
  parser.AddString("--delta-left", &delta_left,
                   "RDF delta file merged into the LEFT ontology", "PATH");
  parser.AddString("--delta-right", &delta_right,
                   "RDF delta file merged into the RIGHT ontology", "PATH");
  parser.AddString("--checkpoint-dir", &options.config.checkpoint_dir,
                   "directory for periodic background checkpoints (with "
                   "--checkpoint-interval)", "DIR");
  parser.AddDuration("--checkpoint-interval",
                     &options.config.checkpoint_interval,
                     "time between background checkpoints, e.g. 500ms, 2s; "
                     "bare numbers mean seconds (0 = off)");
  parser.AddBool("--auto-resume", &options.auto_resume,
                 "resume from the newest usable checkpoint in "
                 "--checkpoint-dir instead of starting cold");
  parser.AddString("--trace-json", &trace_json,
                   "write a Chrome trace-event JSON of the run (open in "
                   "chrome://tracing or ui.perfetto.dev)", "PATH");
  parser.AddString("--metrics-json", &metrics_json,
                   "write pipeline metrics and per-iteration convergence "
                   "telemetry as JSON", "PATH");
  parser.AddChoice("--log-level", &log_level,
                   {"debug", "info", "warning", "error", "none"},
                   "minimum log severity on stderr (default info)");

  std::vector<std::string> positional;
  auto status = parser.Parse(argc, argv, &positional);
  if (!status.ok()) return UsageError(parser, status);
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }
  if (load_mode == "mmap") {
    options.snapshot_load_mode = paris::api::SnapshotLoadMode::kMmap;
  } else if (load_mode == "stream") {
    options.snapshot_load_mode = paris::api::SnapshotLoadMode::kStream;
  }
  paris::util::SetLogLevel(*paris::util::LogLevelFromName(log_level));
  options.trace = !trace_json.empty();
  options.metrics = !metrics_json.empty();

  // Deterministic fault injection for the crash/durability tests
  // (PARIS_FAULT_INJECT / PARIS_FAULT_SEED); a no-op when the variables
  // are unset, a hard usage error when they are set but unparsable.
  status = paris::util::FaultInjector::Global().ArmFromEnv();
  if (!status.ok()) return Fail(status);

  paris::api::Session session(options);

  // Flushes --trace-json / --metrics-json (no-ops when the flags are
  // unset). Called on every exit path that has something recorded.
  auto write_observability = [&]() -> paris::util::Status {
    if (!trace_json.empty()) {
      paris::util::AtomicFileWriter out(trace_json);
      auto s = session.WriteTrace(out.stream());
      if (s.ok()) s = out.Commit();
      if (!s.ok()) return s;
      std::printf("wrote trace %s\n", trace_json.c_str());
    }
    if (!metrics_json.empty()) {
      paris::util::AtomicFileWriter out(metrics_json);
      auto s = session.WriteMetricsJson(out.stream());
      if (s.ok()) s = out.Commit();
      if (!s.ok()) return s;
      std::printf("wrote metrics %s\n", metrics_json.c_str());
    }
    return paris::util::OkStatus();
  };

  // --- Load ---------------------------------------------------------------
  if (!load_snapshot.empty()) {
    // The snapshot replaces the RDF inputs entirely.
    if (!positional.empty()) {
      return UsageError(parser, paris::util::InvalidArgumentError(
                                    "positional inputs and --load-snapshot "
                                    "are mutually exclusive"));
    }
    status = session.LoadFromSnapshot(load_snapshot);
  } else {
    if (positional.size() != 2) {
      return UsageError(parser, paris::util::InvalidArgumentError(
                                    "expected exactly two input files"));
    }
    status = session.LoadFromFiles(positional[0], positional[1]);
  }
  if (!status.ok()) return Fail(status);

  if (!save_snapshot.empty()) {
    status = session.SaveSnapshot(save_snapshot);
    if (!status.ok()) return Fail(status);
    std::printf("wrote snapshot %s\n", save_snapshot.c_str());
  }

  if (stats_only) {
    status = session.PrintStats(std::cout);
    if (!status.ok()) return Fail(status);
    status = write_observability();
    return status.ok() ? 0 : Fail(status);
  }

  // --- Align / resume -----------------------------------------------------
  paris::api::RunCallbacks callbacks;
  if (progress) {
    // Progress goes to stderr so the goldened stdout stays byte-identical.
    auto printer = std::make_shared<ProgressPrinter>();
    callbacks.on_shard = [printer](const paris::api::ShardProgress& shard) {
      printer->OnShard(shard);
    };
    callbacks.on_iteration = [](const paris::api::IterationProgress& it) {
      std::fprintf(stderr,
                   "progress: iteration %d/%d done, %zu aligned, "
                   "change %.4f\n",
                   it.iteration, it.max_iterations, it.num_aligned,
                   it.change_fraction);
    };
  }
  const bool have_delta = !delta_left.empty() || !delta_right.empty();
  if (have_delta != !realign_from.empty()) {
    return UsageError(parser, paris::util::InvalidArgumentError(
                                  "--realign-from and --delta/--delta-left/"
                                  "--delta-right go together"));
  }
  if (have_delta && !resume_from.empty()) {
    return UsageError(parser, paris::util::InvalidArgumentError(
                                  "--resume-from and --realign-from are "
                                  "mutually exclusive"));
  }
  if (have_delta) {
    // Incremental update: stage the delta file(s), then re-align from the
    // saved base result (validated against the pre-delta pair first).
    using Side = paris::api::Session::DeltaSide;
    if (!delta_left.empty()) {
      status = session.ApplyDelta(Side::kLeft, delta_left);
      if (!status.ok()) return Fail(status);
    }
    if (!delta_right.empty()) {
      status = session.ApplyDelta(Side::kRight, delta_right);
      if (!status.ok()) return Fail(status);
    }
    status = session.Realign(realign_from, callbacks);
  } else {
    status = resume_from.empty() ? session.Align(callbacks)
                                 : session.Resume(resume_from, callbacks);
  }
  if (!status.ok()) return Fail(status);

  const paris::api::RunSummary summary = session.summary();
  if (have_delta) {
    std::printf("re-aligned from %s\n", realign_from.c_str());
  }
  if (!resume_from.empty() ||
      (options.auto_resume && summary.resumed_iterations > 0)) {
    std::printf("resumed after iteration %zu\n", summary.resumed_iterations);
  }
  std::printf("aligned %zu instances, %zu relation scores, %zu class "
              "scores in %.2fs (%zu iterations%s)\n",
              summary.instances_aligned, summary.relation_scores,
              summary.class_scores, summary.seconds, summary.iterations,
              summary.converged ? ", converged" : "");

  // --- Persist / export ---------------------------------------------------
  if (!save_result.empty()) {
    status = session.SaveResult(save_result);
    if (!status.ok()) return Fail(status);
    std::printf("wrote result snapshot %s\n", save_result.c_str());
  }

  if (!output_prefix.empty()) {
    status = session.Export(output_prefix);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s_{instances,relations,classes}.tsv\n",
                output_prefix.c_str());
  } else {
    // No output prefix: print the instance alignment to stdout.
    status = session.WriteInstanceAlignment(std::cout);
    if (!status.ok()) return Fail(status);
  }

  status = write_observability();
  if (!status.ok()) return Fail(status);
  return 0;
}
