// parisd — alignment-as-a-service daemon.
//
//   parisd LEFT.nt RIGHT.nt --data-dir DIR [options]      (see --help)
//
// Serves one ontology pair over a framed TCP protocol (see
// src/paris/service/README.md): clients submit alignment jobs, watch their
// shard-granular progress, and run low-latency LOOKUP queries against the
// latest completed result snapshot while jobs run. Jobs checkpoint
// periodically; a SIGKILL'd daemon restarted with --auto-resume requeues
// and resumes in-flight jobs from their last checkpoint.
//
// Exit status 0 on a clean shutdown (client SHUTDOWN request or
// SIGINT/SIGTERM), 1 on startup errors.
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "paris/service/daemon.h"
#include "paris/util/fault_injection.h"
#include "paris/util/flags.h"
#include "paris/util/fs.h"
#include "paris/util/logging.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

int Fail(const paris::util::Status& status) {
  std::fprintf(stderr, "parisd: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  paris::service::Daemon::Config config;
  int port = 0;
  size_t handlers = 4;
  std::string port_file;
  std::string load_snapshot;
  std::string log_level = "info";
  bool no_auto_resume = false;

  paris::util::FlagParser parser("parisd", "LEFT.nt RIGHT.nt");
  parser.AddString("--host", &config.host,
                   "listen address (default 127.0.0.1)", "ADDR");
  parser.AddInt("--port", &port,
                "listen port (default 0 = pick an ephemeral port)");
  parser.AddString("--port-file", &port_file,
                   "write the bound port to PATH once listening (for "
                   "scripts using --port 0)", "PATH");
  parser.AddString("--data-dir", &config.queue.data_dir,
                   "directory for job state, checkpoints, and results "
                   "(required)", "DIR");
  parser.AddString("--load-snapshot", &load_snapshot,
                   "load the ontology pair from a binary snapshot instead "
                   "of parsing RDF files", "PATH");
  parser.AddString("--serve-result", &config.serve_result,
                   "result snapshot to serve before the first job "
                   "completes", "PATH");
  parser.AddDuration("--checkpoint-interval",
                     &config.queue.checkpoint_interval_seconds,
                     "time between job checkpoints, e.g. 500ms, 2s "
                     "(default 1s)");
  parser.AddSize("--cache-bytes", &config.cache_bytes,
                 "lookup hot-key cache budget, e.g. 64k, 4m (default 4m; "
                 "0 disables)");
  parser.AddSize("--max-frame-bytes", &config.max_frame_bytes,
                 "largest accepted protocol frame (default 1m)");
  parser.AddSizeT("--handlers", &handlers,
                  "connection handler threads (default 4)");
  bool auto_resume_flag = false;
  parser.AddBool("--auto-resume", &auto_resume_flag,
                 "requeue and resume in-flight jobs found in --data-dir "
                 "(the default; kept for explicit spelling)");
  parser.AddBool("--no-auto-resume", &no_auto_resume,
                 "start with a clean queue; jobs persisted as "
                 "queued/running stay untouched on disk");
  parser.AddBool("--trace", &config.trace,
                 "record per-request spans, served by the TRACE verb");
  parser.AddSizeT("--threads", &config.queue.base_options.config.num_threads,
                  "worker threads for each alignment job");
  parser.AddInt("--max-iterations",
                &config.queue.base_options.config.max_iterations,
                "fixpoint cap for jobs (default 10)");
  parser.AddDouble("--theta", &config.queue.base_options.config.theta,
                   "bootstrap sub-relation probability (default 0.1)");
  parser.AddSizeT("--shards", &config.queue.base_options.config.num_shards,
                  "shards per alignment pass (0 = default 64)");
  parser.AddChoice("--matcher", &config.queue.base_options.matcher,
                   paris::api::MatcherRegistry::Default().Names(),
                   "literal matcher for jobs (default identity)");
  parser.AddBool("--negative-evidence",
                 &config.queue.base_options.config.use_negative_evidence,
                 "use Eq. (14) instead of Eq. (13)");
  parser.AddBool("--name-prior",
                 &config.queue.base_options.config.use_relation_name_prior,
                 "seed iteration 1 with relation-name similarity");
  parser.AddChoice("--log-level", &log_level,
                   {"debug", "info", "warning", "error", "none"},
                   "minimum log severity on stderr (default info)");

  std::vector<std::string> positional;
  auto status = parser.Parse(argc, argv, &positional);
  if (!status.ok()) {
    std::fprintf(stderr, "parisd: %s\n%s\n", status.ToString().c_str(),
                 parser.Usage().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }
  paris::util::SetLogLevel(*paris::util::LogLevelFromName(log_level));
  status = paris::util::FaultInjector::Global().ArmFromEnv();
  if (!status.ok()) return Fail(status);

  if (config.queue.data_dir.empty()) {
    return Fail(paris::util::InvalidArgumentError("--data-dir is required"));
  }
  if (!load_snapshot.empty()) {
    if (!positional.empty()) {
      return Fail(paris::util::InvalidArgumentError(
          "positional inputs and --load-snapshot are mutually exclusive"));
    }
    config.queue.snapshot_path = load_snapshot;
  } else if (positional.size() == 2) {
    config.queue.left_path = positional[0];
    config.queue.right_path = positional[1];
  } else {
    return Fail(paris::util::InvalidArgumentError(
        "expected two input files (or --load-snapshot)"));
  }
  config.port = port;
  config.num_handlers = handlers;
  config.auto_resume = !no_auto_resume;

  paris::service::Daemon daemon(std::move(config));
  status = daemon.Start();
  if (!status.ok()) return Fail(status);
  PARIS_LOG(kInfo) << "parisd listening on port " << daemon.port();
  if (!port_file.empty()) {
    status = paris::util::WriteFileAtomic(
        port_file, std::to_string(daemon.port()) + "\n");
    if (!status.ok()) return Fail(status);
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0 && !daemon.WaitFor(0.25)) {
  }
  PARIS_LOG(kInfo) << "parisd shutting down";
  daemon.Stop();
  return 0;
}
