// paris_generate — materialize the synthetic benchmark datasets as
// N-Triples files plus a gold-standard TSV, so the full pipeline can be
// driven from the command line:
//
//   paris_generate restaurant /tmp/rest          # writes three files
//   paris_align /tmp/rest_left.nt /tmp/rest_right.nt --output /tmp/run
//   join -t $'\t' <(sort /tmp/run_instances.tsv) <(sort /tmp/rest_gold.tsv)
//
// Profiles: person | restaurant | yago-dbpedia | yago-imdb
// Optional third argument: scale factor (default 1.0).
//
// This tool is a thin adapter over `paris::api::GenerateDataset`: flag
// parsing, one facade call, result printing, Status-to-exit-code.
#include <cstdio>
#include <string>
#include <vector>

#include "paris/paris.h"
#include "paris/util/flags.h"
#include "paris/util/logging.h"

int main(int argc, char** argv) {
  paris::api::DatasetSpec spec;
  std::string scale = "1.0";
  std::string log_level = "info";

  paris::util::FlagParser parser(
      "paris_generate",
      "person|restaurant|yago-dbpedia|yago-imdb OUTPUT_PREFIX [scale]");
  parser.AddString("--save-snapshot", &spec.save_snapshot,
                   "also write a binary snapshot of the generated pair, "
                   "loadable via `paris_align --load-snapshot`", "PATH");
  parser.AddDouble("--delta-fraction", &spec.delta_fraction,
                   "hold back roughly this fraction of the left ontology's "
                   "fact triples into <prefix>_left_delta.nt for "
                   "`paris_align --delta ... --realign-from ...` (must be "
                   "< 0.5; default 0 = no delta file)");
  parser.AddSizeT("--threads", &spec.num_threads,
                  "worker threads for index finalization of the generated "
                  "pair (output is identical across thread counts)");
  parser.AddChoice("--log-level", &log_level,
                   {"debug", "info", "warning", "error", "none"},
                   "minimum log severity on stderr (default info)");

  std::vector<std::string> positional;
  auto status = parser.Parse(argc, argv, &positional);
  if (!status.ok()) {
    std::fprintf(stderr, "paris_generate: %s\n%s\n",
                 status.ToString().c_str(), parser.Usage().c_str());
    return 1;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }
  paris::util::SetLogLevel(*paris::util::LogLevelFromName(log_level));
  if (positional.size() < 2 || positional.size() > 3) {
    std::fprintf(stderr, "%s\n", parser.Usage().c_str());
    return 1;
  }
  spec.profile = positional[0];
  spec.output_prefix = positional[1];
  if (positional.size() > 2) scale = positional[2];
  if (!paris::util::ParseFullDouble(scale, &spec.scale)) {
    std::fprintf(stderr, "paris_generate: invalid scale: '%s'\n",
                 scale.c_str());
    return 1;
  }

  auto summary = paris::api::GenerateDataset(spec);
  if (!summary.ok()) {
    std::fprintf(stderr, "paris_generate: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }

  if (summary->snapshot_written) {
    std::printf("wrote snapshot %s\n", spec.save_snapshot.c_str());
  }
  std::printf(
      "%s: wrote %s (%zu triples), %s (%zu triples), %s (%zu gold pairs)\n",
      spec.profile.c_str(), summary->left_path.c_str(),
      summary->left_triples, summary->right_path.c_str(),
      summary->right_triples, summary->gold_path.c_str(),
      summary->gold_pairs);
  if (!summary->delta_path.empty()) {
    std::printf("held back %zu fact triples into %s\n",
                summary->delta_triples, summary->delta_path.c_str());
  }
  return 0;
}
