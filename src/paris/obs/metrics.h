#ifndef PARIS_OBS_METRICS_H_
#define PARIS_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace paris::obs {

// Handle for one registered metric; cheap to copy and store in pass
// members. Obtained from MetricsRegistry registration (serial phases only).
using MetricId = uint32_t;

// The merged, order-independent view of a registry: every value is an
// integer count (or an explicitly set gauge), so two runs of the same work
// produce equal snapshots regardless of thread or shard scheduling. Name
// vectors are sorted, so equality is plain member comparison.
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    uint64_t value = 0;
    friend bool operator==(const Counter&, const Counter&) = default;
  };
  struct Gauge {
    std::string name;
    int64_t value = 0;
    friend bool operator==(const Gauge&, const Gauge&) = default;
  };
  struct Histogram {
    std::string name;
    std::vector<double> bounds;     // ascending upper bounds
    std::vector<uint64_t> counts;   // bounds.size() + 1 (last = overflow)
    friend bool operator==(const Histogram&, const Histogram&) = default;
  };

  std::vector<Counter> counters;      // sorted by name
  std::vector<Gauge> gauges;          // sorted by name
  std::vector<Histogram> histograms;  // sorted by name

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;

  // {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
  // "counts":[...]}}} — keys in sorted order, so equal snapshots serialize
  // to equal bytes.
  void WriteJson(std::ostream& out) const;
};

// Counters, gauges, and fixed-bucket histograms with per-worker slots.
//
// The registry follows the pass pipeline's determinism discipline:
//
//  * Registration (`Counter`/`Gauge`/`Histogram`) may allocate and must
//    happen in a serial phase (Pass::Prepare, or between passes).
//    Registration is idempotent by name, so a pass re-registering its
//    metrics every iteration gets the same ids back.
//  * Updates (`Add`/`Observe`) are lock-free: slot `w` is written only by
//    the thread holding worker slot `w` (same contract as TraceRecorder and
//    IterationContext scratch); `main_slot()` belongs to the run thread.
//  * Only integer counts are accumulated — never wall times, never float
//    sums — so `Snapshot()` (which merges the slots in ascending slot
//    order) is identical across thread AND shard counts for the same work.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(size_t worker_slots);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  size_t num_slots() const { return num_slots_; }
  size_t main_slot() const { return num_slots_ - 1; }

  // ---- Registration (serial phases only; idempotent by name) -------------
  MetricId Counter(const std::string& name);
  MetricId Gauge(const std::string& name);
  MetricId Histogram(const std::string& name, std::vector<double> bounds);

  // ---- Updates (slot-local, lock-free) -----------------------------------

  // Counter += delta in `slot`'s cell.
  void Add(MetricId id, size_t slot, uint64_t delta);

  // Histogram: bumps the bucket of the first bound >= value (the overflow
  // bucket when none is) in `slot`'s cells.
  void Observe(MetricId id, size_t slot, double value);

  // Histogram: folds pre-binned counts (bounds.size() + 1 entries) into
  // `slot`'s cells — how convergence telemetry, already binned per
  // iteration, lands in the registry without re-observing every entity.
  void MergeCounts(MetricId id, size_t slot,
                   const std::vector<uint64_t>& counts);

  // Gauge = value (last write wins; serial phases only).
  void SetGauge(MetricId id, int64_t value);

  // ---- Export (serial; no concurrent updates) ----------------------------
  MetricsSnapshot Snapshot() const;
  void WriteJson(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    std::string name;
    Kind kind;
    size_t offset = 0;  // first cell in each slot's slab
    size_t cells = 1;   // counter: 1; histogram: bounds.size() + 1
    std::vector<double> bounds;  // histograms only
  };

  size_t num_slots_;
  size_t cells_per_slot_ = 0;
  std::vector<Metric> metrics_;
  std::unordered_map<std::string, MetricId> by_name_;
  // One slab of cells per slot; grown (all slots together) at registration.
  std::vector<std::vector<uint64_t>> slots_;
  std::vector<int64_t> gauges_;  // indexed by Metric::offset for kGauge
};

}  // namespace paris::obs

#endif  // PARIS_OBS_METRICS_H_
