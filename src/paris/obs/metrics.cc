#include "paris/obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace paris::obs {

namespace {

// Histograms carry double bounds; emit them losslessly enough for the
// schema check while keeping the JSON readable.
void WriteDouble(std::ostream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  out << buffer;
}

}  // namespace

MetricsRegistry::MetricsRegistry(size_t worker_slots)
    : num_slots_((worker_slots == 0 ? 1 : worker_slots) + 1),
      slots_(num_slots_) {}

MetricId MetricsRegistry::Counter(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    assert(metrics_[it->second].kind == Kind::kCounter);
    return it->second;
  }
  Metric metric;
  metric.name = name;
  metric.kind = Kind::kCounter;
  metric.offset = cells_per_slot_;
  metric.cells = 1;
  cells_per_slot_ += 1;
  for (auto& slab : slots_) slab.resize(cells_per_slot_, 0);
  const MetricId id = static_cast<MetricId>(metrics_.size());
  metrics_.push_back(std::move(metric));
  by_name_.emplace(name, id);
  return id;
}

MetricId MetricsRegistry::Gauge(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    assert(metrics_[it->second].kind == Kind::kGauge);
    return it->second;
  }
  Metric metric;
  metric.name = name;
  metric.kind = Kind::kGauge;
  metric.offset = gauges_.size();
  gauges_.push_back(0);
  const MetricId id = static_cast<MetricId>(metrics_.size());
  metrics_.push_back(std::move(metric));
  by_name_.emplace(name, id);
  return id;
}

MetricId MetricsRegistry::Histogram(const std::string& name,
                                    std::vector<double> bounds) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    assert(metrics_[it->second].kind == Kind::kHistogram);
    return it->second;
  }
  assert(std::is_sorted(bounds.begin(), bounds.end()));
  Metric metric;
  metric.name = name;
  metric.kind = Kind::kHistogram;
  metric.offset = cells_per_slot_;
  metric.cells = bounds.size() + 1;
  metric.bounds = std::move(bounds);
  cells_per_slot_ += metric.cells;
  for (auto& slab : slots_) slab.resize(cells_per_slot_, 0);
  const MetricId id = static_cast<MetricId>(metrics_.size());
  metrics_.push_back(std::move(metric));
  by_name_.emplace(name, id);
  return id;
}

void MetricsRegistry::Add(MetricId id, size_t slot, uint64_t delta) {
  assert(slot < num_slots_);
  assert(metrics_[id].kind == Kind::kCounter);
  slots_[slot][metrics_[id].offset] += delta;
}

void MetricsRegistry::Observe(MetricId id, size_t slot, double value) {
  assert(slot < num_slots_);
  const Metric& metric = metrics_[id];
  assert(metric.kind == Kind::kHistogram);
  const size_t bucket =
      std::lower_bound(metric.bounds.begin(), metric.bounds.end(), value) -
      metric.bounds.begin();
  slots_[slot][metric.offset + bucket] += 1;
}

void MetricsRegistry::MergeCounts(MetricId id, size_t slot,
                                  const std::vector<uint64_t>& counts) {
  assert(slot < num_slots_);
  const Metric& metric = metrics_[id];
  assert(metric.kind == Kind::kHistogram);
  assert(counts.size() == metric.cells);
  for (size_t i = 0; i < counts.size() && i < metric.cells; ++i) {
    slots_[slot][metric.offset + i] += counts[i];
  }
}

void MetricsRegistry::SetGauge(MetricId id, int64_t value) {
  assert(metrics_[id].kind == Kind::kGauge);
  gauges_[metrics_[id].offset] = value;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const Metric& metric : metrics_) {
    switch (metric.kind) {
      case Kind::kCounter: {
        uint64_t total = 0;
        for (const auto& slab : slots_) total += slab[metric.offset];
        snapshot.counters.push_back({metric.name, total});
        break;
      }
      case Kind::kGauge:
        snapshot.gauges.push_back({metric.name, gauges_[metric.offset]});
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::Histogram histogram;
        histogram.name = metric.name;
        histogram.bounds = metric.bounds;
        histogram.counts.assign(metric.cells, 0);
        for (const auto& slab : slots_) {
          for (size_t i = 0; i < metric.cells; ++i) {
            histogram.counts[i] += slab[metric.offset + i];
          }
        }
        snapshot.histograms.push_back(std::move(histogram));
        break;
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  Snapshot().WriteJson(out);
}

void MetricsSnapshot::WriteJson(std::ostream& out) const {
  out << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << counters[i].name << "\":" << counters[i].value;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << gauges[i].name << "\":" << gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out << ",";
    const Histogram& h = histograms[i];
    out << "\"" << h.name << "\":{\"bounds\":[";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out << ",";
      WriteDouble(out, h.bounds[b]);
    }
    out << "],\"counts\":[";
    for (size_t c = 0; c < h.counts.size(); ++c) {
      if (c > 0) out << ",";
      out << h.counts[c];
    }
    out << "]}";
  }
  out << "}}";
}

}  // namespace paris::obs
