#ifndef PARIS_OBS_HOOKS_H_
#define PARIS_OBS_HOOKS_H_

#include <cstddef>

#include "paris/obs/metrics.h"
#include "paris/obs/trace.h"

namespace paris::obs {

// The observability handle instrumented code carries: two non-owning
// pointers, both nullable. Default-constructed Hooks are "observability
// off" — hot paths pay exactly one branch on the pointer they care about
// (the disabled-cost contract), and cold paths hand the pointers to Span /
// MetricsRegistry, which accept null.
//
// Both recorders must be sized for the worker pool the instrumented code
// runs on (slots [0, max(1, threads)) plus the main slot); the owner that
// creates them (api::Session, a bench harness) also owns keeping them alive
// for the duration of the run.
struct Hooks {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool enabled() const { return trace != nullptr || metrics != nullptr; }

  // The slot for code running on the thread that drives the run (serial
  // phases, IO); 0 when tracing is off (unused — Span ignores it).
  size_t main_slot() const {
    return trace != nullptr
               ? trace->main_slot()
               : (metrics != nullptr ? metrics->main_slot() : 0);
  }
};

}  // namespace paris::obs

#endif  // PARIS_OBS_HOOKS_H_
