#ifndef PARIS_OBS_TRACE_H_
#define PARIS_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace paris::obs {

// One completed span. `cat` and `name` must be string literals (or other
// pointers that outlive the recorder): spans are recorded on the pass hot
// path, and a fixed-size POD append is what keeps that path allocation-free.
struct TraceEvent {
  const char* cat = "";   // scope kind: "run"|"iteration"|"pass"|"phase"|
                          // "shard"|"io"|"bench"
  const char* name = "";  // e.g. "instance", "snapshot.load"
  uint64_t start_us = 0;  // monotonic microseconds since recorder creation
  uint64_t dur_us = 0;
  int32_t iteration = 0;  // 1-based fixpoint iteration; 0 = not iteration-
                          // scoped
  int64_t shard = -1;     // shard id; -1 = not shard-scoped
};

// Collects spans into per-worker buffers and exports them as Chrome
// trace-event JSON (chrome://tracing, https://ui.perfetto.dev).
//
// Concurrency protocol — the same one the pass pipeline already lives by:
// slot `w` is written only by the thread currently holding worker slot `w`
// of the util::ThreadPool (stable ids in [0, worker_slots)), and
// `main_slot()` only by the thread driving the run. Buffers are therefore
// never contended and `Record` takes no lock. `WriteJson` must only run
// after the instrumented work has finished (no concurrent writers).
//
// Timestamps come from one steady clock, zeroed at recorder creation, so
// spans recorded by different threads land on one consistent timeline.
class TraceRecorder {
 public:
  // `worker_slots` must cover every worker slot id the instrumented code
  // will run under (max(1, pool threads)); one extra slot is reserved for
  // the driving thread.
  explicit TraceRecorder(size_t worker_slots);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  size_t num_slots() const { return buffers_.size(); }
  size_t main_slot() const { return buffers_.size() - 1; }

  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void Record(size_t slot, const TraceEvent& event) {
    buffers_[slot].push_back(event);
  }

  size_t num_events() const;

  // Chrome trace-event JSON: one ph:"M" thread_name metadata event per
  // slot, then every span as a ph:"X" complete event with args
  // {"iteration", "shard"} when scoped. Deterministic order: slots
  // ascending, each buffer in record order.
  void WriteJson(std::ostream& out) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::vector<TraceEvent>> buffers_;
};

// RAII span: reads the steady clock on construction and records one
// TraceEvent into `recorder` when it ends (destruction, or an explicit
// `End()`). A null recorder is valid — the span still times itself and
// `End()` still returns the elapsed seconds — so instrumented code keeps
// one code path whether tracing is on or off, and callers that need the
// duration (pass timings) read it from the span instead of a second clock.
class Span {
 public:
  Span(TraceRecorder* recorder, size_t slot, const char* cat, const char* name,
       int iteration = 0, int64_t shard = -1)
      : recorder_(recorder),
        slot_(slot),
        cat_(cat),
        name_(name),
        iteration_(iteration),
        shard_(shard),
        start_(std::chrono::steady_clock::now()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { End(); }

  // Ends the span (idempotent) and returns its duration in seconds.
  double End() {
    if (!ended_) {
      ended_ = true;
      const auto stop = std::chrono::steady_clock::now();
      elapsed_ = std::chrono::duration<double>(stop - start_).count();
      if (recorder_ != nullptr) {
        TraceEvent event;
        event.cat = cat_;
        event.name = name_;
        const uint64_t end_us = recorder_->NowMicros();
        event.dur_us = static_cast<uint64_t>(elapsed_ * 1e6);
        event.start_us = end_us >= event.dur_us ? end_us - event.dur_us : 0;
        event.iteration = static_cast<int32_t>(iteration_);
        event.shard = shard_;
        recorder_->Record(slot_, event);
      }
    }
    return elapsed_;
  }

  double elapsed_seconds() { return End(); }

 private:
  TraceRecorder* recorder_;
  size_t slot_;
  const char* cat_;
  const char* name_;
  int iteration_;
  int64_t shard_;
  std::chrono::steady_clock::time_point start_;
  bool ended_ = false;
  double elapsed_ = 0.0;
};

}  // namespace paris::obs

#endif  // PARIS_OBS_TRACE_H_
