#include "paris/obs/trace.h"

#include <ostream>

namespace paris::obs {

TraceRecorder::TraceRecorder(size_t worker_slots)
    : epoch_(std::chrono::steady_clock::now()),
      buffers_((worker_slots == 0 ? 1 : worker_slots) + 1) {}

size_t TraceRecorder::num_events() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer.size();
  return total;
}

void TraceRecorder::WriteJson(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // tid 0 is the driving thread (recorded under main_slot()), tid w+1 is
  // pool worker slot w — the driver reads most naturally at the top of the
  // Perfetto track list.
  for (size_t slot = 0; slot < buffers_.size(); ++slot) {
    const size_t tid = slot == main_slot() ? 0 : slot + 1;
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (slot == main_slot()) {
      out << "main";
    } else {
      out << "worker-" << slot;
    }
    out << "\"}}";
  }
  for (size_t slot = 0; slot < buffers_.size(); ++slot) {
    const size_t tid = slot == main_slot() ? 0 : slot + 1;
    for (const TraceEvent& event : buffers_[slot]) {
      out << ",{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"cat\":\""
          << event.cat << "\",\"name\":\"" << event.name
          << "\",\"ts\":" << event.start_us << ",\"dur\":" << event.dur_us;
      if (event.iteration != 0 || event.shard >= 0) {
        out << ",\"args\":{";
        bool first_arg = true;
        if (event.iteration != 0) {
          out << "\"iteration\":" << event.iteration;
          first_arg = false;
        }
        if (event.shard >= 0) {
          if (!first_arg) out << ",";
          out << "\"shard\":" << event.shard;
        }
        out << "}";
      }
      out << "}";
    }
  }
  out << "]}\n";
}

}  // namespace paris::obs
